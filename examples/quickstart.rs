//! Quickstart: enumerate the triangles of a random graph with every
//! algorithm and compare their exact I/O costs.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```

use emsim::EmConfig;
use graphgen::{generators, naive};
use trienum::{enumerate_triangles, Algorithm, CountingSink, ALL_ALGORITHMS};

fn main() {
    // A moderately sized Erdős–Rényi graph: 2 000 vertices, 16 000 edges.
    let graph = generators::erdos_renyi(2_000, 16_000, 42);
    let expected = naive::count_triangles(&graph);
    println!(
        "input: V = {}, E = {}, triangles (oracle) = {}",
        graph.vertex_count(),
        graph.edge_count(),
        expected
    );

    // A deliberately memory-starved external-memory machine, so that the
    // difference between the algorithms is visible: M = 1024 words, B = 64.
    let cfg = EmConfig::new(1 << 10, 64);
    println!(
        "machine: M = {} words, B = {} words ({} block frames)\n",
        cfg.mem_words,
        cfg.block_words,
        cfg.frames()
    );

    println!(
        "{:<28} {:>10} {:>12} {:>12} {:>14}",
        "algorithm", "triangles", "I/Os", "I/O / bound", "peak mem (w)"
    );
    for alg in ALL_ALGORITHMS {
        // Skip the cubic baseline on this size — it is only interesting on
        // small inputs (see EXPERIMENTS.md, experiment E1).
        if matches!(alg, Algorithm::BlockNestedLoop) {
            continue;
        }
        let mut sink = CountingSink::new();
        let report = enumerate_triangles(&graph, alg, cfg, &mut sink);
        assert_eq!(sink.count(), expected, "{} missed triangles!", alg.name());
        println!(
            "{:<28} {:>10} {:>12} {:>12.2} {:>14}",
            report.algorithm,
            report.triangles,
            report.io.total(),
            report.io.total() as f64 / alg.analytic_bound(cfg, report.edges).max(1.0),
            report.peak_mem_words,
        );
    }

    println!(
        "\nAll algorithms emitted exactly the oracle's {expected} triangles; \
         the paper's algorithms stay within a constant factor of their\n\
         E^(3/2)/(sqrt(M)*B) bound, while Hu-Tao-Chung pays the extra sqrt(E/M) factor."
    );
}
