//! Triangle enumeration on a skewed, social-network-like graph.
//!
//! The paper's introduction cites social-network analysis (friend-of-friend
//! structure, community detection) as a driving application. This example
//! generates a power-law (Chung–Lu) graph, enumerates its triangles with the
//! cache-oblivious algorithm, and derives two classic analytics from the
//! stream of emitted triangles *without ever storing the triangle list*:
//! per-vertex triangle counts (the numerator of local clustering
//! coefficients) and the global transitivity.
//!
//! Run with:
//! ```text
//! cargo run --release --example social_network
//! ```

use emsim::EmConfig;
use graphgen::{generators, Triangle};
use trienum::{enumerate_triangles, Algorithm, FnSink};

fn main() {
    let n = 4_000;
    let graph = generators::chung_lu_power_law(n, 24_000, 2.3, 99);
    println!(
        "social graph: V = {}, E = {}, max degree = {}",
        graph.vertex_count(),
        graph.edge_count(),
        graph.max_degree()
    );

    let cfg = EmConfig::new(1 << 12, 128);

    // The sink is a pair of small accumulators — this is exactly the
    // "enumeration, not listing" usage the paper argues for: the triangles
    // are consumed on the fly (here: counted per vertex), never written out.
    let mut per_vertex = vec![0u32; graph.vertex_count()];
    let mut total = 0u64;
    let report = {
        let mut sink = FnSink(|t: Triangle| {
            total += 1;
            per_vertex[t.a as usize] += 1;
            per_vertex[t.b as usize] += 1;
            per_vertex[t.c as usize] += 1;
        });
        enumerate_triangles(
            &graph,
            Algorithm::CacheObliviousRandomized { seed: 3 },
            cfg,
            &mut sink,
        )
    };

    println!(
        "enumerated {} triangles in {} I/Os (cache-oblivious; {:.2}x the E^1.5/(sqrt(M)B) bound)",
        total,
        report.io.total(),
        report.normalized_to_triangle_bound()
    );

    // Global transitivity = 3·triangles / #wedges.
    let degrees = graph.degrees();
    let wedges: u64 = degrees
        .iter()
        .map(|&d| (d as u64) * (d as u64).saturating_sub(1) / 2)
        .sum();
    println!(
        "global transitivity: {:.4}  (3*{} / {} wedges)",
        3.0 * total as f64 / wedges.max(1) as f64,
        total,
        wedges
    );

    // The ten most "triangle-central" members of the network.
    let mut ranked: Vec<(u32, u32)> = per_vertex
        .iter()
        .enumerate()
        .map(|(v, &c)| (v as u32, c))
        .collect();
    ranked.sort_unstable_by_key(|&(_, c)| std::cmp::Reverse(c));
    println!("top members by triangle participation:");
    for (v, c) in ranked.iter().take(10) {
        let d = degrees[*v as usize];
        let possible = (d as u64 * (d as u64 - 1) / 2).max(1);
        println!(
            "  vertex {v:>5}: {c:>6} triangles, degree {d:>4}, local clustering {:.3}",
            *c as f64 / possible as f64
        );
    }
}
