//! The paper's motivating database scenario (Section 1): reconstructing a
//! `Sells(salesperson, brand, productType)` relation in 5th normal form from
//! its three two-attribute projections by enumerating triangles of the union
//! of the corresponding bipartite graphs.
//!
//! Run with:
//! ```text
//! cargo run --release --example database_join
//! ```

use emsim::EmConfig;
use graphgen::generators;
use trienum::{enumerate_triangles, Algorithm, CollectingSink};

fn main() {
    // 400 salespeople, 60 brands, 120 product types; each of the 80 "market
    // groups" sells every product of a brand set to a salesperson set — the
    // situation in which 5NF decomposition loses nothing and the original
    // relation is exactly the set of triangles.
    let (graph, brand_base, type_base) = generators::sells_join(400, 60, 120, 80, 6, 2024);
    println!(
        "decomposed tables as a graph: V = {}, E = {}",
        graph.vertex_count(),
        graph.edge_count()
    );

    let cfg = EmConfig::new(1 << 11, 64);
    let mut sink = CollectingSink::new();
    let report = enumerate_triangles(
        &graph,
        Algorithm::CacheAwareRandomized { seed: 7 },
        cfg,
        &mut sink,
    );

    println!(
        "reconstructed {} Sells rows with {} ({} I/Os, {:.2}x the paper bound)\n",
        sink.len(),
        report.algorithm,
        report.io.total(),
        report.normalized_to_triangle_bound()
    );

    // Decode a few triangles back into relational rows. Each triangle has
    // exactly one vertex per attribute column by construction.
    println!("first rows of Sells(salesperson, brand, productType):");
    let mut rows: Vec<(u32, u32, u32)> = sink
        .triangles()
        .iter()
        .map(|t| {
            let mut sp = None;
            let mut brand = None;
            let mut ptype = None;
            for v in [t.a, t.b, t.c] {
                if v < brand_base {
                    sp = Some(v);
                } else if v < type_base {
                    brand = Some(v - brand_base);
                } else {
                    ptype = Some(v - type_base);
                }
            }
            (
                sp.expect("salesperson column"),
                brand.expect("brand column"),
                ptype.expect("productType column"),
            )
        })
        .collect();
    rows.sort_unstable();
    for (sp, brand, ptype) in rows.iter().take(10) {
        println!("  (salesperson {sp:>4}, brand {brand:>3}, productType {ptype:>3})");
    }
    println!("  ... {} rows in total", rows.len());
}
