//! The cache-obliviousness demonstration: one binary, one algorithm, zero
//! tuning — run it against machines with different memory sizes and block
//! sizes and watch the I/O count track `E^{3/2}/(√M·B)` anyway.
//!
//! This is the essence of Theorem 1: the algorithm's code never mentions `M`
//! or `B`; only the simulator (standing in for the real cache hierarchy)
//! knows them.
//!
//! Run with:
//! ```text
//! cargo run --release --example cache_oblivious_scaling
//! ```

use emsim::EmConfig;
use graphgen::generators;
use trienum::{count_triangles, Algorithm};

fn main() {
    let graph = generators::erdos_renyi(1_500, 12_000, 7);
    println!(
        "fixed input: V = {}, E = {}\n",
        graph.vertex_count(),
        graph.edge_count()
    );

    println!(
        "{:>10} {:>8} {:>12} {:>18} {:>12}",
        "M (words)", "B", "I/Os", "bound E^1.5/(√M·B)", "I/O / bound"
    );

    let alg = Algorithm::CacheObliviousRandomized { seed: 11 };
    for (mem, block) in [
        (1usize << 9, 32usize),
        (1 << 10, 32),
        (1 << 12, 32),
        (1 << 14, 32),
        (1 << 12, 64),
        (1 << 12, 128),
        (1 << 14, 128),
    ] {
        let cfg = EmConfig::new(mem, block);
        let (t, report) = count_triangles(&graph, alg, cfg);
        let bound = cfg.triangle_bound(report.edges);
        println!(
            "{:>10} {:>8} {:>12} {:>18.0} {:>12.2}",
            mem,
            block,
            report.io.total(),
            bound,
            report.io.total() as f64 / bound
        );
        assert_eq!(t, report.triangles);
    }

    println!(
        "\nThe right-hand column stays within a narrow constant band: the same\n\
         binary adapts to every (M, B) without being told either parameter —\n\
         the defining property of a cache-oblivious algorithm (Theorem 1)."
    );
}
