//! Offline stand-in for the `rand` crate (0.9-style API).
//!
//! The build environment cannot reach crates.io, so this shim provides the
//! exact subset of `rand` the workspace uses. Everything is deterministic in
//! the seed: `StdRng` is xoshiro256** with SplitMix64 state expansion.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Items a `use rand::prelude::*` is expected to bring into scope.
pub mod prelude {
    pub use crate::{Rng, RngCore, SeedableRng, SliceRandom, StdRng};
}

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose entire stream is determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The workspace's standard generator: xoshiro256**.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        StdRng { s }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Types that can be drawn uniformly from their full domain (`rng.random()`).
pub trait Standard: Sized {
    /// Draws a uniform value from `rng`.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for usize {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Integer types usable with `rng.random_range(lo..hi)`.
pub trait SampleUniform: Sized {
    /// Draws uniformly from the half-open range `[lo, hi)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty random_range");
                let span = (hi as i128 - lo as i128) as u128;
                // Widening-multiply range reduction (Lemire); bias is
                // span / 2^64, negligible for every use in this workspace.
                let scaled = ((rng.next_u64() as u128) * span) >> 64;
                (lo as i128 + scaled as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// High-level sampling methods, available on any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniform value of type `T` over its natural domain.
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }

    /// Draws uniformly from the half-open range `lo..hi`.
    fn random_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range.start, range.end)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        f64::draw(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// In-place random permutation of slices.
pub trait SliceRandom {
    /// Fisher–Yates shuffle driven by `rng`.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = usize::sample_range(rng, 0, i + 1);
            self.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn range_and_bool_are_well_behaved() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: u32 = rng.random_range(5..17);
            assert!((5..17).contains(&x));
        }
        let heads = (0..10_000).filter(|_| rng.random_bool(0.5)).count();
        assert!((4_500..=5_500).contains(&heads), "heads = {heads}");
        let f: f64 = rng.random();
        assert!((0.0..1.0).contains(&f));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice in order");
    }

    #[test]
    fn uniformity_coarse_check() {
        // 16 buckets over 64k draws: each within 10% of the mean.
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0u32; 16];
        for _ in 0..65_536 {
            counts[rng.random_range(0usize..16)] += 1;
        }
        for c in counts {
            assert!((c as f64 - 4096.0).abs() < 410.0, "bucket {c}");
        }
    }
}
