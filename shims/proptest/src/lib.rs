//! Offline stand-in for the `proptest` property-testing crate.
//!
//! Provides the subset of proptest used by this workspace's integration
//! tests: the [`Strategy`] trait with `prop_map`/`prop_flat_map`, integer
//! range and tuple strategies, `prop::collection::vec`, `any::<T>()`,
//! [`ProptestConfig`], and the `proptest!`/`prop_assert!`/`prop_assert_eq!`
//! macros. Case generation is deterministic (seeded per case index); there
//! is no shrinking — a failing case panics with its case number so it can be
//! replayed.

#![forbid(unsafe_code)]

use rand::prelude::*;
use std::marker::PhantomData;
use std::ops::Range;

/// The RNG handed to strategies while generating a case.
pub type TestRng = StdRng;

/// Builds the deterministic RNG for case number `case`.
pub fn test_rng(case: u64) -> TestRng {
    // Golden-ratio stride decorrelates consecutive case indices.
    StdRng::seed_from_u64(case.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x0005_DEEC_E66D)
}

/// Runner configuration; only the case count is honoured by the shim.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases each property is checked against.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A recipe for generating random values of `Self::Value`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Generates one value using `rng`.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Feeds generated values into `f`, which returns a dependent strategy.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.start..self.end)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

/// `any::<T>()` — the whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Namespaced strategy constructors, mirroring `proptest::prop`.
pub mod prop {
    /// Collection strategies (`prop::collection::vec`).
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use rand::prelude::*;
        use std::ops::Range;

        /// A `Vec` whose length is drawn from `len` and whose elements come
        /// from `element`.
        pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, len }
        }

        /// Strategy returned by [`vec`].
        pub struct VecStrategy<S> {
            element: S,
            len: Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let n = if self.len.start >= self.len.end {
                    self.len.start
                } else {
                    rng.random_range(self.len.start..self.len.end)
                };
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

/// Everything a `use proptest::prelude::*` is expected to provide.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary,
        ProptestConfig, Strategy,
    };
}

/// Defines `#[test]` functions over generated inputs, proptest-style.
#[macro_export]
macro_rules! proptest {
    (@run $cfg:expr; $(#[test] fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases as u64 {
                    let mut __proptest_rng = $crate::test_rng(case);
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut __proptest_rng);)+
                    $body
                }
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run $cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run $crate::ProptestConfig::default(); $($rest)*);
    };
}

/// `assert!` inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `assert_ne!` inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    fn arb_even(limit: u32) -> impl Strategy<Value = u32> {
        (0..limit).prop_map(|x| x * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in 0usize..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 5);
        }

        #[test]
        fn vec_and_tuple_strategies_compose(v in prop::collection::vec((0u32..10, 0u32..10), 0..20)) {
            prop_assert!(v.len() < 20);
            for (a, b) in v {
                prop_assert!(a < 10 && b < 10);
            }
        }

        #[test]
        fn flat_map_sees_upstream_value(pair in (1u32..50).prop_flat_map(|n| (0..n).prop_map(move |k| (n, k)))) {
            let (n, k) = pair;
            prop_assert!(k < n);
        }

        #[test]
        fn mapped_strategy_applies_function(e in arb_even(100), _any in any::<u64>()) {
            prop_assert_eq!(e % 2, 0);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let a: Vec<u64> = (0..5).map(|c| test_rng(c).next_u64()).collect();
        let b: Vec<u64> = (0..5).map(|c| test_rng(c).next_u64()).collect();
        assert_eq!(a, b);
    }

    use super::{test_rng, TestRng};
    use rand::prelude::*;

    #[test]
    fn strategy_generate_is_rng_driven() {
        let mut rng: TestRng = test_rng(7);
        let s = 0u32..1000;
        let vals: Vec<u32> = (0..10).map(|_| s.generate(&mut rng)).collect();
        assert!(vals.iter().any(|&v| v != vals[0]), "constant stream");
    }
}
