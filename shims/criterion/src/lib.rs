//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the subset of criterion's API the `trienum-bench` targets use:
//! groups with `sample_size` / `warm_up_time` / `measurement_time`,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, and the
//! `criterion_group!` / `criterion_main!` macros. Timing is plain
//! `std::time::Instant` with a warm-up phase and a measurement budget; each
//! benchmark prints its mean and best iteration time.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness handle passed to every `criterion_group!` target.
#[derive(Default)]
pub struct Criterion {
    /// When true (set by `--test`, as `cargo test --benches` passes), run
    /// each benchmark body exactly once instead of timing it.
    test_mode: bool,
}

impl Criterion {
    /// Applies command-line arguments (`--test` → smoke mode; everything
    /// else, e.g. cargo's `--bench` flag or a name filter, is ignored).
    pub fn configure_from_args(mut self) -> Self {
        self.test_mode = std::env::args().any(|a| a == "--test");
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 20,
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(2),
            test_mode: self.test_mode,
            _marker: std::marker::PhantomData,
        }
    }

    /// Runs a benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("ungrouped");
        group.bench_function(id, f);
        group.finish();
        self
    }
}

/// Identifier `function-name/parameter` for a parameterised benchmark.
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and the parameter being swept.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            full: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            full: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { full: s }
    }
}

/// A named collection of benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    test_mode: bool,
    // Tie the group to the `Criterion` borrow like the real API does.
    #[allow(dead_code)]
    _marker: std::marker::PhantomData<&'a ()>,
}

// Separate constructor site needs the marker default; spelled out here so the
// struct literal in `benchmark_group` stays short.
impl<'a> BenchmarkGroup<'a> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// How long to run the body untimed before measuring.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Upper bound on total measured time per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run(&id.full, &mut |b| f(b));
        self
    }

    /// Benchmarks `f` with a borrowed `input` under `id`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.full, &mut |b| f(b, input));
        self
    }

    fn run(&self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let label = format!("{}/{}", self.name, id);
        if self.test_mode {
            let mut b = Bencher {
                once: true,
                times: Vec::new(),
            };
            f(&mut b);
            println!("{label}: ok (test mode)");
            return;
        }
        // Warm-up: run the body until the warm-up budget is spent.
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up {
            let mut b = Bencher {
                once: true,
                times: Vec::new(),
            };
            f(&mut b);
        }
        // Measurement: `sample_size` samples or until the budget runs out.
        let mut times: Vec<Duration> = Vec::with_capacity(self.sample_size);
        let meas_start = Instant::now();
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                once: false,
                times: Vec::new(),
            };
            f(&mut b);
            times.extend(b.times);
            if meas_start.elapsed() > self.measurement {
                break;
            }
        }
        if times.is_empty() {
            println!("{label}: no samples collected");
            return;
        }
        let total: Duration = times.iter().sum();
        let mean = total / times.len() as u32;
        let best = times.iter().min().copied().unwrap_or_default();
        println!(
            "{label}: mean {} / best {} over {} samples",
            fmt_duration(mean),
            fmt_duration(best),
            times.len()
        );
    }

    /// Ends the group (prints nothing; provided for API compatibility).
    pub fn finish(self) {}
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Timer handle passed to each benchmark body.
pub struct Bencher {
    once: bool,
    times: Vec<Duration>,
}

impl Bencher {
    /// Times one execution of `routine` (or runs it untimed in warm-up /
    /// test mode).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if self.once {
            black_box(routine());
            return;
        }
        let start = Instant::now();
        black_box(routine());
        self.times.push(start.elapsed());
    }
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the `main` function running one or more benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        group.warm_up_time(Duration::from_millis(1));
        group.measurement_time(Duration::from_millis(10));
        let mut runs = 0u32;
        group.bench_function("noop", |b| {
            b.iter(|| runs += 1);
        });
        group.finish();
        assert!(runs > 0);
    }

    #[test]
    fn benchmark_id_formats_name_and_param() {
        let id = BenchmarkId::new("alg", 4096);
        assert_eq!(id.full, "alg/4096");
    }
}
