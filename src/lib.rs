//! The `trienum-suite` root package exists only to host the workspace's
//! cross-crate integration tests (`tests/`) and runnable examples
//! (`examples/`). All library code lives in the member crates:
//! [`trienum`](../trienum), `emsim`, `emalgo`, `graphgen`, and `kwise`.

#![forbid(unsafe_code)]
