//! Lemma 1: enumerating all triangles through a given vertex in
//! `O(sort(E))` I/Os.
//!
//! The paper's subroutine (used by the high-degree steps of every algorithm):
//!
//! 1. scan `E` to collect `Γ_v`, the neighbours of `v`, and sort it;
//! 2. scan `E` (already sorted by smaller endpoint) against `Γ_v` to keep the
//!    edges whose smaller endpoint is a neighbour of `v` (`E_v`);
//! 3. sort `E_v` by larger endpoint and scan it against `Γ_v` to keep the
//!    edges with **both** endpoints in `Γ_v` (`E'_v`);
//! 4. every `{u, w} ∈ E'_v` closes the triangle `{v, u, w}`.
//!
//! Each step is a sort or a simultaneous scan, so the total is `O(sort(E))`.

use emsim::ExtVec;
use graphgen::{Edge, Triangle, VertexId};

use crate::sink::TriangleSink;
use crate::util::{sort_edges_by, sort_vertices, SortKind};

/// Enumerates every triangle of `edges` that contains `v`, passing each
/// candidate through `filter` before emitting it to `sink`.
///
/// `edges` must be in canonical form (each edge `(u, w)` with `u < w`, sorted
/// lexicographically). Returns the number of triangles emitted.
///
/// The `filter` hook is how callers implement the paper's variations: the
/// cache-aware step 1 uses it to avoid double-emitting triangles with several
/// high-degree vertices, and the cache-oblivious step 1 uses it to keep only
/// triangles that are *proper* for the current colour vector.
pub(crate) fn enumerate_through_vertex(
    edges: &ExtVec<Edge>,
    v: VertexId,
    kind: SortKind,
    mut filter: impl FnMut(Triangle) -> bool,
    sink: &mut dyn TriangleSink,
) -> u64 {
    let machine = edges.machine().clone();

    // Step 1: Γ_v by one scan, then sort.
    let mut gamma_raw: ExtVec<u32> = ExtVec::new(&machine);
    for e in edges.iter() {
        machine.work(1);
        if e.u == v {
            gamma_raw.push(e.v);
        } else if e.v == v {
            gamma_raw.push(e.u);
        }
    }
    if gamma_raw.is_empty() {
        return 0;
    }
    let gamma = sort_vertices(&gamma_raw, kind);
    drop(gamma_raw);

    // Step 2: E_v = edges whose smaller endpoint is in Γ_v
    // (simultaneous scan of the lexicographically sorted edge list and Γ_v).
    let mut e_v: ExtVec<Edge> = ExtVec::new(&machine);
    {
        let mut gi = gamma.iter().peekable();
        for e in edges.iter() {
            machine.work(1);
            while let Some(&g) = gi.peek() {
                if g < e.u {
                    gi.next();
                } else {
                    break;
                }
            }
            if gi.peek() == Some(&e.u) {
                e_v.push(e);
            }
        }
    }

    // Step 3: sort E_v by larger endpoint and keep edges whose larger
    // endpoint is also in Γ_v.
    let e_v_by_larger = sort_edges_by(&e_v, kind, |e| e.v);
    drop(e_v);
    let mut emitted = 0u64;
    {
        let mut gi = gamma.iter().peekable();
        for e in e_v_by_larger.iter() {
            machine.work(1);
            while let Some(&g) = gi.peek() {
                if g < e.v {
                    gi.next();
                } else {
                    break;
                }
            }
            if gi.peek() == Some(&e.v) {
                // Step 4: {v, e.u, e.v} is a triangle (e.u, e.v ∈ Γ_v and
                // {e.u, e.v} ∈ E). Edges incident to v itself can never reach
                // this point because v ∉ Γ_v in a simple graph.
                debug_assert!(e.u != v && e.v != v);
                let t = Triangle::new(v, e.u, e.v);
                if filter(t) {
                    sink.emit(t);
                    emitted += 1;
                }
            }
        }
    }
    emitted
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::ExtGraph;
    use crate::sink::CollectingSink;
    use emsim::{EmConfig, Machine};
    use graphgen::{generators, naive, Graph};

    fn run_for_vertex(g: &Graph, v: VertexId, kind: SortKind) -> Vec<Triangle> {
        // Use the graph's own ids (no degree reordering) to keep the test
        // easy to reason about: build the canonical sorted edge list manually.
        let machine = Machine::new(EmConfig::new(1 << 12, 64));
        let mut edges: Vec<Edge> = g.edges().to_vec();
        edges.sort_unstable();
        let ext = ExtVec::from_slice(&machine, &edges);
        let mut sink = CollectingSink::new();
        enumerate_through_vertex(&ext, v, kind, |_| true, &mut sink);
        sink.into_triangles()
    }

    #[test]
    fn finds_all_triangles_through_a_clique_vertex() {
        let g = generators::clique(7);
        for kind in [SortKind::Aware, SortKind::Oblivious] {
            let tris = run_for_vertex(&g, 3, kind);
            // Triangles through one vertex of K7: C(6,2) = 15.
            assert_eq!(tris.len(), 15);
            assert!(tris.iter().all(|t| t.a == 3 || t.b == 3 || t.c == 3));
            let distinct: std::collections::HashSet<_> = tris.iter().collect();
            assert_eq!(distinct.len(), 15);
        }
    }

    #[test]
    fn vertex_not_in_any_triangle_emits_nothing() {
        let g = generators::path(10);
        assert!(run_for_vertex(&g, 4, SortKind::Aware).is_empty());
        let g2 = generators::star(10);
        assert!(run_for_vertex(&g2, 0, SortKind::Aware).is_empty());
    }

    #[test]
    fn matches_oracle_restricted_to_vertex() {
        let g = generators::erdos_renyi(60, 500, 77);
        let all = naive::enumerate_triangles(&g);
        for v in [0u32, 7, 31] {
            let expected: std::collections::HashSet<Triangle> = all
                .iter()
                .copied()
                .filter(|t| t.a == v || t.b == v || t.c == v)
                .collect();
            let got: std::collections::HashSet<Triangle> =
                run_for_vertex(&g, v, SortKind::Aware).into_iter().collect();
            assert_eq!(got, expected, "vertex {v}");
        }
    }

    #[test]
    fn filter_can_suppress_emissions() {
        let g = generators::clique(5);
        let machine = Machine::new(EmConfig::new(1 << 12, 64));
        let eg = ExtGraph::load(&machine, &g);
        let mut sink = CollectingSink::new();
        let n = enumerate_through_vertex(eg.edges(), 0, SortKind::Aware, |t| t.c != 4, &mut sink);
        // Triangles through vertex 0 avoiding vertex 4: choose 2 from {1,2,3} = 3.
        assert_eq!(n, 3);
        assert_eq!(sink.len(), 3);
    }

    #[test]
    fn io_cost_is_within_constant_of_sort_bound() {
        let g = generators::erdos_renyi(300, 3000, 9);
        let machine = Machine::new(EmConfig::new(1 << 11, 64));
        let eg = ExtGraph::load(&machine, &g);
        machine.cold_cache();
        let before = machine.io().total();
        let mut sink = CollectingSink::new();
        enumerate_through_vertex(eg.edges(), 5, SortKind::Aware, |_| true, &mut sink);
        let cost = machine.io().total() - before;
        let bound = machine.config().sort_cost(eg.edge_count());
        assert!(
            cost <= 8 * bound,
            "Lemma 1 cost {cost} should be O(sort(E)) = O({bound})"
        );
    }
}
