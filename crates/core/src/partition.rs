//! Colour-class partitioning of the edge set (paper Section 2, step 2).
//!
//! Given a colouring `ξ : V → {0, …, c−1}`, the low-degree edge set `E_l` is
//! partitioned into the `c²` classes
//! `E_{τ1,τ2} = {(v1,v2) ∈ E_l | v1 < v2, ξ(v1) = τ1, ξ(v2) = τ2}`.
//! The partition is materialised as **one** edge array sorted by
//! `(class, v1, v2)` plus an in-core offset table of `c² + 1` entries
//! (`c² ≤ E/M ≤ M` under the paper's assumptions, so the table respects the
//! memory budget and is accounted on the gauge by the caller).

use emalgo::external_sort_by_key;
use emsim::ExtVec;
use graphgen::{Edge, VertexId};

/// The partition of an edge set into colour classes.
pub(crate) struct ColorPartition {
    edges: ExtVec<Edge>,
    offsets: Vec<usize>,
    c: u64,
}

impl ColorPartition {
    /// Builds the partition of `el` under `color` with `c` colours, using the
    /// cache-aware sort (`O(sort(E))` I/Os).
    pub(crate) fn build(el: &ExtVec<Edge>, c: u64, color: &dyn Fn(VertexId) -> u64) -> Self {
        assert!(c >= 1);
        let machine = el.machine().clone();
        let class_of = |e: &Edge| -> u64 { color(e.u) * c + color(e.v) };
        // Sort by (class, edge) so that every class is a contiguous,
        // lexicographically sorted range.
        let sorted = external_sort_by_key(el, |e| (class_of(e), e.u, e.v));

        // One scan to find the class boundaries.
        let classes = (c * c) as usize;
        let mut offsets = vec![0usize; classes + 1];
        let mut counts = vec![0usize; classes];
        for e in sorted.iter() {
            machine.work(1);
            counts[class_of(&e) as usize] += 1;
        }
        let mut acc = 0usize;
        for (k, cnt) in counts.iter().enumerate() {
            offsets[k] = acc;
            acc += cnt;
        }
        offsets[classes] = acc;

        Self {
            edges: sorted,
            offsets,
            c,
        }
    }

    /// Number of edges in class `(τ1, τ2)`.
    pub(crate) fn class_len(&self, t1: u64, t2: u64) -> usize {
        let k = (t1 * self.c + t2) as usize;
        self.offsets[k + 1] - self.offsets[k]
    }

    /// Total number of partitioned edges.
    #[cfg(test)]
    pub(crate) fn total_edges(&self) -> usize {
        *self.offsets.last().unwrap()
    }

    /// The number of words the in-core offset table occupies (for gauge
    /// accounting by the caller).
    pub(crate) fn index_words(&self) -> u64 {
        self.offsets.len() as u64
    }

    /// Copies class `(τ1, τ2)` into its own array (one scan of the class).
    pub(crate) fn extract_class(&self, t1: u64, t2: u64) -> ExtVec<Edge> {
        let machine = self.edges.machine().clone();
        let k = (t1 * self.c + t2) as usize;
        let mut out: ExtVec<Edge> = ExtVec::new(&machine);
        for e in self.edges.range(self.offsets[k], self.offsets[k + 1]) {
            out.push(e);
        }
        out
    }

    /// Merges the listed classes (given as ordered colour pairs, duplicates
    /// ignored) into a single lexicographically sorted edge array — the edge
    /// set `E_{τ1,τ2} ∪ E_{τ1,τ3} ∪ E_{τ2,τ3}` that step 3 feeds to Lemma 2.
    pub(crate) fn union_sorted(&self, pairs: &[(u64, u64)]) -> ExtVec<Edge> {
        let machine = self.edges.machine().clone();
        let mut distinct: Vec<(u64, u64)> = pairs.to_vec();
        distinct.sort_unstable();
        distinct.dedup();

        // k-way merge (k ≤ 3) of the sorted class ranges by (u, v).
        let mut cursors: Vec<(usize, usize)> = distinct
            .iter()
            .map(|&(a, b)| {
                let k = (a * self.c + b) as usize;
                (self.offsets[k], self.offsets[k + 1])
            })
            .collect();
        let mut out: ExtVec<Edge> = ExtVec::new(&machine);
        loop {
            let mut best: Option<(usize, Edge)> = None;
            for (idx, &(pos, end)) in cursors.iter().enumerate() {
                if pos < end {
                    let e = self.edges.get(pos);
                    if best.is_none_or(|(_, be)| e < be) {
                        best = Some((idx, e));
                    }
                }
            }
            match best {
                Some((idx, e)) => {
                    machine.work(1);
                    out.push(e);
                    cursors[idx].0 += 1;
                }
                None => break,
            }
        }
        out
    }

    /// The colour-balance statistic
    /// `X_ξ = Σ_{τ1,τ2} C(|E_{τ1,τ2}|, 2)` of equation (1) — the quantity
    /// Lemma 3 bounds by `E·M` in expectation and the derandomization keeps
    /// below `e·E·M`.
    pub(crate) fn x_statistic(&self) -> u128 {
        let mut x = 0u128;
        for k in 0..(self.c * self.c) as usize {
            let n = (self.offsets[k + 1] - self.offsets[k]) as u128;
            x += n * n.saturating_sub(1) / 2;
        }
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emsim::{EmConfig, Machine};
    use graphgen::generators;
    use kwise::RandomColoring;

    fn setup(c: u64, seed: u64) -> (Machine, ExtVec<Edge>, ColorPartition, RandomColoring) {
        let g = generators::erdos_renyi(120, 700, seed);
        let machine = Machine::new(EmConfig::new(1 << 12, 64));
        let mut edges: Vec<Edge> = g.edges().to_vec();
        edges.sort_unstable();
        let el = ExtVec::from_slice(&machine, &edges);
        let coloring = RandomColoring::new(c, seed + 1);
        let part = ColorPartition::build(&el, c, &|v| coloring.color(v));
        (machine, el, part, coloring)
    }

    #[test]
    fn partition_covers_every_edge_exactly_once() {
        let (_m, el, part, coloring) = setup(4, 3);
        assert_eq!(part.total_edges(), el.len());
        let mut reassembled: Vec<Edge> = Vec::new();
        for t1 in 0..4 {
            for t2 in 0..4 {
                let class = part.extract_class(t1, t2).load_all();
                assert_eq!(class.len(), part.class_len(t1, t2));
                for e in &class {
                    assert_eq!(coloring.color(e.u), t1, "wrong colour of smaller endpoint");
                    assert_eq!(coloring.color(e.v), t2, "wrong colour of larger endpoint");
                }
                reassembled.extend(class);
            }
        }
        reassembled.sort_unstable();
        assert_eq!(reassembled, el.load_all());
    }

    #[test]
    fn union_is_sorted_and_deduplicated() {
        let (_m, _el, part, _col) = setup(3, 5);
        let u = part
            .union_sorted(&[(0, 1), (1, 2), (0, 1), (0, 2)])
            .load_all();
        assert!(u.windows(2).all(|w| w[0] < w[1]), "sorted, no duplicates");
        let expected = part.class_len(0, 1) + part.class_len(1, 2) + part.class_len(0, 2);
        assert_eq!(u.len(), expected);
    }

    #[test]
    fn x_statistic_matches_direct_computation() {
        let (_m, el, part, coloring) = setup(4, 9);
        let mut counts = std::collections::HashMap::new();
        for e in el.load_all() {
            *counts
                .entry((coloring.color(e.u), coloring.color(e.v)))
                .or_insert(0u128) += 1;
        }
        let expected: u128 = counts.values().map(|&n| n * (n - 1) / 2).sum();
        assert_eq!(part.x_statistic(), expected);
    }

    #[test]
    fn single_color_partition_is_the_whole_edge_set() {
        let (_m, el, part, _col) = setup(1, 2);
        assert_eq!(part.class_len(0, 0), el.len());
        let n = el.len() as u128;
        assert_eq!(part.x_statistic(), n * (n - 1) / 2);
    }
}
