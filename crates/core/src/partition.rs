//! Colour-class partitioning of the edge set (paper Section 2, step 2).
//!
//! Given a colouring `ξ : V → {0, …, c−1}`, the low-degree edge set `E_l` is
//! partitioned into the `c²` classes
//! `E_{τ1,τ2} = {(v1,v2) ∈ E_l | v1 < v2, ξ(v1) = τ1, ξ(v2) = τ2}`.
//! The partition is materialised as **one** edge array sorted by
//! `(class, v1, v2)` plus an in-core offset table of `c² + 1` entries
//! (`c² ≤ E/M ≤ M` under the paper's assumptions, so the table respects the
//! memory budget and is accounted on the gauge by the caller).

use emalgo::{external_sort_by_key, kway_merge};
use emsim::{ExtSlice, ExtVec};
use graphgen::{Edge, VertexId};

/// The partition of an edge set into colour classes.
pub(crate) struct ColorPartition {
    edges: ExtVec<Edge>,
    offsets: Vec<usize>,
    c: u64,
}

impl ColorPartition {
    /// Builds the partition of `el` under `color` with `c` colours, using the
    /// cache-aware sort (`O(sort(E))` I/Os).
    pub(crate) fn build(el: &ExtVec<Edge>, c: u64, color: &dyn Fn(VertexId) -> u64) -> Self {
        assert!(c >= 1);
        let class_of = |e: &Edge| -> u64 { color(e.u) * c + color(e.v) };
        // Sort by (class, edge) so that every class is a contiguous,
        // lexicographically sorted range.
        let sorted = external_sort_by_key(el, |e| (class_of(e), e.u, e.v));

        // Derive the class boundaries from the sorted run structure: each
        // boundary is a partition point located by binary search on a view
        // narrowed by the previous boundary ([`ExtSlice::partition_point`]),
        // so finding all of them costs `O(c² log E)` colour probes against
        // cached blocks instead of re-evaluating `class_of` — two hash
        // chains — on every edge in a full second scan of the array. An
        // empty edge set (every class empty) skips the searches entirely.
        let classes = (c * c) as usize;
        let n = sorted.len();
        // emlint: allow(unleased, reason = "the c²+1 offset table is leased by the caller via index_words() — see cache_aware.rs _index_lease")
        let mut offsets = vec![0usize; classes + 1];
        offsets[classes] = n;
        if n > 0 {
            for k in 1..classes {
                // First index whose class is ≥ k; classes are sorted, so the
                // search space starts at the previous boundary.
                let tail = sorted.as_slice().slice(offsets[k - 1], n);
                offsets[k] = offsets[k - 1] + tail.partition_point(|e| class_of(e) < k as u64);
            }
        }

        Self {
            edges: sorted,
            offsets,
            c,
        }
    }

    /// Number of edges in class `(τ1, τ2)`.
    pub(crate) fn class_len(&self, t1: u64, t2: u64) -> usize {
        let k = (t1 * self.c + t2) as usize;
        self.offsets[k + 1] - self.offsets[k]
    }

    /// Total number of partitioned edges. The offset table always holds
    /// `c² + 1 ≥ 2` entries (`build` asserts `c ≥ 1`), so this is total even
    /// for an empty partition of an empty edge set.
    #[cfg(test)]
    pub(crate) fn total_edges(&self) -> usize {
        self.offsets.last().copied().unwrap_or(0)
    }

    /// The number of words the in-core offset table occupies (for gauge
    /// accounting by the caller).
    pub(crate) fn index_words(&self) -> u64 {
        self.offsets.len() as u64
    }

    /// Zero-copy view of class `(τ1, τ2)`: the class's contiguous,
    /// lexicographically sorted range of the partition array. Creating the
    /// view moves no blocks and registers nothing on the gauge — this is
    /// what step 3 hands to the multi-cone Lemma 2 instead of copies.
    pub(crate) fn class_slice(&self, t1: u64, t2: u64) -> ExtSlice<'_, Edge> {
        let k = (t1 * self.c + t2) as usize;
        self.edges.slice(self.offsets[k], self.offsets[k + 1])
    }

    /// Copies class `(τ1, τ2)` into its own array (one scan of the class).
    /// Kept for the per-triple reference implementation of step 3 and the
    /// tests; the production path uses [`ColorPartition::class_slice`].
    pub(crate) fn extract_class(&self, t1: u64, t2: u64) -> ExtVec<Edge> {
        let machine = self.edges.machine().clone();
        let mut out: ExtVec<Edge> = ExtVec::new(&machine);
        out.extend(self.class_slice(t1, t2).iter());
        out
    }

    /// Merges the listed classes (given as ordered colour pairs, duplicates
    /// ignored) into a single lexicographically sorted edge array — the edge
    /// set `E_{τ1,τ2} ∪ E_{τ1,τ3} ∪ E_{τ2,τ3}` that the per-triple reference
    /// step 3 feeds to Lemma 2, materialised via the streaming
    /// [`emalgo::kway_merge`] (sequential cursors instead of per-element
    /// best-of-k random probes).
    pub(crate) fn union_sorted(&self, pairs: &[(u64, u64)]) -> ExtVec<Edge> {
        let machine = self.edges.machine().clone();
        let mut distinct: Vec<(u64, u64)> = pairs.to_vec();
        distinct.sort_unstable(); // emlint: allow(uncharged-std, reason = "sorts at most three colour pairs")
        distinct.dedup();

        let cursors = distinct
            .iter()
            .map(|&(a, b)| self.class_slice(a, b).iter())
            .collect();
        let mut out: ExtVec<Edge> = ExtVec::new(&machine);
        out.extend(kway_merge(&machine, cursors, |e: &Edge| (e.u, e.v)));
        out
    }

    /// The colour-balance statistic
    /// `X_ξ = Σ_{τ1,τ2} C(|E_{τ1,τ2}|, 2)` of equation (1) — the quantity
    /// Lemma 3 bounds by `E·M` in expectation and the derandomization keeps
    /// below `e·E·M`.
    pub(crate) fn x_statistic(&self) -> u128 {
        let mut x = 0u128;
        for k in 0..(self.c * self.c) as usize {
            let n = (self.offsets[k + 1] - self.offsets[k]) as u128;
            x += n * n.saturating_sub(1) / 2;
        }
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emsim::{EmConfig, Machine};
    use graphgen::generators;
    use kwise::RandomColoring;

    fn setup(c: u64, seed: u64) -> (Machine, ExtVec<Edge>, ColorPartition, RandomColoring) {
        let g = generators::erdos_renyi(120, 700, seed);
        let machine = Machine::new(EmConfig::new(1 << 12, 64));
        let mut edges: Vec<Edge> = g.edges().to_vec();
        edges.sort_unstable();
        let el = ExtVec::from_slice(&machine, &edges);
        let coloring = RandomColoring::new(c, seed + 1);
        let part = ColorPartition::build(&el, c, &|v| coloring.color(v));
        (machine, el, part, coloring)
    }

    #[test]
    fn partition_covers_every_edge_exactly_once() {
        let (_m, el, part, coloring) = setup(4, 3);
        assert_eq!(part.total_edges(), el.len());
        let mut reassembled: Vec<Edge> = Vec::new();
        for t1 in 0..4 {
            for t2 in 0..4 {
                let class = part.extract_class(t1, t2).load_all();
                assert_eq!(class.len(), part.class_len(t1, t2));
                for e in &class {
                    assert_eq!(coloring.color(e.u), t1, "wrong colour of smaller endpoint");
                    assert_eq!(coloring.color(e.v), t2, "wrong colour of larger endpoint");
                }
                reassembled.extend(class);
            }
        }
        reassembled.sort_unstable();
        assert_eq!(reassembled, el.load_all());
    }

    #[test]
    fn union_is_sorted_and_deduplicated() {
        let (_m, _el, part, _col) = setup(3, 5);
        let u = part
            .union_sorted(&[(0, 1), (1, 2), (0, 1), (0, 2)])
            .load_all();
        assert!(u.windows(2).all(|w| w[0] < w[1]), "sorted, no duplicates");
        let expected = part.class_len(0, 1) + part.class_len(1, 2) + part.class_len(0, 2);
        assert_eq!(u.len(), expected);
    }

    #[test]
    fn class_slices_are_zero_copy_and_agree_with_extraction() {
        let (m, _el, part, _col) = setup(4, 7);
        m.cold_cache();
        let before = m.io().total();
        let mut covered = 0usize;
        for t1 in 0..4 {
            for t2 in 0..4 {
                let s = part.class_slice(t1, t2);
                assert_eq!(s.len(), part.class_len(t1, t2));
                covered += s.len();
            }
        }
        assert_eq!(m.io().total(), before, "creating views must move no blocks");
        assert_eq!(covered, part.total_edges());
        for t1 in 0..4 {
            for t2 in 0..4 {
                assert_eq!(
                    part.class_slice(t1, t2).load(),
                    part.extract_class(t1, t2).load_all(),
                    "class ({t1},{t2})"
                );
            }
        }
    }

    #[test]
    fn x_statistic_matches_direct_computation() {
        let (_m, el, part, coloring) = setup(4, 9);
        let mut counts = std::collections::HashMap::new();
        for e in el.load_all() {
            *counts
                .entry((coloring.color(e.u), coloring.color(e.v)))
                .or_insert(0u128) += 1;
        }
        let expected: u128 = counts.values().map(|&n| n * (n - 1) / 2).sum();
        assert_eq!(part.x_statistic(), expected);
    }

    #[test]
    fn empty_edge_set_partitions_into_all_empty_classes() {
        let machine = Machine::new(EmConfig::new(256, 32));
        let el: ExtVec<Edge> = ExtVec::new(&machine);
        for c in [1u64, 3] {
            let part = ColorPartition::build(&el, c, &|v| v as u64 % c);
            assert_eq!(part.total_edges(), 0);
            assert_eq!(part.x_statistic(), 0);
            for t1 in 0..c {
                for t2 in 0..c {
                    assert_eq!(part.class_len(t1, t2), 0);
                    assert!(part.class_slice(t1, t2).is_empty());
                }
            }
            assert_eq!(part.index_words(), c * c + 1);
            assert!(part.union_sorted(&[(0, 0)]).is_empty());
        }
    }

    #[test]
    fn single_color_partition_is_the_whole_edge_set() {
        let (_m, el, part, _col) = setup(1, 2);
        assert_eq!(part.class_len(0, 0), el.len());
        let n = el.len() as u128;
        assert_eq!(part.x_statistic(), n * (n - 1) / 2);
    }
}
