//! Run reports: what an algorithm run measured.

use emsim::{EmConfig, IoStats, MemGauge, PhaseSnapshot};

/// Everything measured during one triangle-enumeration run.
///
/// Produced by [`crate::enumerate_triangles`]; consumed by the tests (which
/// assert the paper's bounds hold up to constants) and by the experiment
/// harness (which prints the tables of EXPERIMENTS.md).
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Human-readable algorithm name.
    pub algorithm: String,
    /// Machine configuration the run used.
    pub config: EmConfig,
    /// Number of edges `E` of the (preprocessed) input graph.
    pub edges: usize,
    /// Number of vertices `V` of the input graph.
    pub vertices: usize,
    /// Number of triangles emitted.
    pub triangles: u64,
    /// Total block transfers of the run.
    pub io: IoStats,
    /// Per-phase block transfers, in execution order.
    pub phases: Vec<(String, IoStats)>,
    /// Per-phase peak gauge usage, captured at the same phase boundaries as
    /// [`RunReport::phases`]: how many working-buffer words each phase had
    /// resident at its worst, and what survived into the next phase. Empty
    /// when an algorithm records no phases.
    pub phase_peaks: Vec<PhaseSnapshot>,
    /// Peak in-core working-buffer usage (words) registered with the gauge.
    pub peak_mem_words: u64,
    /// Peak simulated-disk usage in words (validates `O(E)` space claims).
    pub peak_disk_words: u64,
    /// Coarse RAM-operation count (validates `O(E^{3/2})` work claims).
    pub work_ops: u64,
    /// Algorithm-specific extra metrics, e.g. the colour-balance statistic
    /// `X_ξ` of the colouring-based algorithms or the number of recursive
    /// subproblems of the cache-oblivious algorithm.
    pub extra: Vec<(String, f64)>,
}

impl RunReport {
    /// Measured I/Os divided by the paper's upper bound `E^{3/2}/(√M·B)`.
    /// For the paper's algorithms this ratio should be bounded by a modest
    /// constant across the whole parameter sweep.
    pub fn normalized_to_triangle_bound(&self) -> f64 {
        self.io.total() as f64 / self.config.triangle_bound(self.edges).max(1.0)
    }

    /// Measured I/Os divided by Hu–Tao–Chung's bound `E²/(M·B)`.
    pub fn normalized_to_hu_bound(&self) -> f64 {
        self.io.total() as f64 / self.config.hu_tao_chung_bound(self.edges).max(1.0)
    }

    /// Measured I/Os divided by the Theorem 3 lower bound for the number of
    /// triangles this run emitted — the "optimality ratio". Values below a
    /// small constant demonstrate Theorem 3 is tight for this input.
    pub fn optimality_ratio(&self) -> f64 {
        self.io.total() as f64 / self.config.lower_bound(self.triangles).max(1.0)
    }

    /// Measured work divided by `E^{3/2}` (the work-optimality reference).
    pub fn work_ratio(&self) -> f64 {
        self.work_ops as f64 / (self.edges as f64).powf(1.5).max(1.0)
    }

    /// The I/Os attributed to a named phase, if that phase was recorded.
    pub fn phase_io(&self, name: &str) -> Option<IoStats> {
        self.phases
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, io)| *io)
    }

    /// The peak gauge words attributed to a named phase, if recorded.
    pub fn phase_peak(&self, name: &str) -> Option<u64> {
        self.phase_peaks
            .iter()
            .find(|p| p.name == name)
            .map(|p| p.peak_words)
    }

    /// Looks up an algorithm-specific extra metric by name.
    pub fn extra(&self, name: &str) -> Option<f64> {
        self.extra.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }
}

impl std::fmt::Display for RunReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{}: E={}, V={}, t={}, {}",
            self.algorithm, self.edges, self.vertices, self.triangles, self.io
        )?;
        writeln!(
            f,
            "  M={} B={} | peak mem {} w | peak disk {} w | work {}",
            self.config.mem_words,
            self.config.block_words,
            self.peak_mem_words,
            self.peak_disk_words,
            self.work_ops
        )?;
        for (name, io) in &self.phases {
            writeln!(f, "  phase {name}: {io}")?;
        }
        Ok(())
    }
}

/// Helper used by the algorithm implementations to attribute I/Os — and,
/// via [`MemGauge::snapshot_phase`], peak gauge words — to phases.
#[derive(Debug)]
pub(crate) struct PhaseRecorder {
    gauge: MemGauge,
    phases: Vec<(String, IoStats)>,
    peaks: Vec<PhaseSnapshot>,
}

impl PhaseRecorder {
    /// Starts a recorder over `gauge`. The phase window opens here: usage
    /// spikes before this call (e.g. graph loading) belong to no phase.
    pub(crate) fn new(gauge: &MemGauge) -> Self {
        let gauge = gauge.clone();
        gauge.snapshot_phase("__recorder_start__"); // discard; opens the window
        Self {
            gauge,
            // emlint: allow(unleased, reason = "recorder bookkeeping, O(phases) entries, not data buffers")
            phases: Vec::new(),
            peaks: Vec::new(),
        }
    }

    /// Records that the I/Os between `before` and `after` belong to `name`,
    /// and closes the gauge's phase window under the same name.
    pub(crate) fn record(&mut self, name: &str, before: IoStats, after: IoStats) {
        self.phases.push((name.to_string(), after.since(before)));
        self.peaks.push(self.gauge.snapshot_phase(name));
    }

    pub(crate) fn into_parts(self) -> (Vec<(String, IoStats)>, Vec<PhaseSnapshot>) {
        (self.phases, self.peaks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy_report() -> RunReport {
        RunReport {
            algorithm: "test".into(),
            config: EmConfig::new(1 << 10, 64),
            edges: 10_000,
            vertices: 1_000,
            triangles: 5_000,
            io: IoStats {
                reads: 700,
                writes: 300,
            },
            phases: vec![(
                "partition".into(),
                IoStats {
                    reads: 100,
                    writes: 50,
                },
            )],
            phase_peaks: vec![PhaseSnapshot {
                name: "partition".into(),
                peak_words: 800,
                live_words: 128,
                live_leases: Vec::new(),
            }],
            peak_mem_words: 900,
            peak_disk_words: 20_000,
            work_ops: 1_000_000,
            extra: vec![("x_statistic".into(), 42.0)],
        }
    }

    #[test]
    fn ratios_are_finite_and_positive() {
        let r = dummy_report();
        assert!(r.normalized_to_triangle_bound() > 0.0);
        assert!(r.normalized_to_hu_bound() > 0.0);
        assert!(r.optimality_ratio() > 0.0);
        assert!(r.work_ratio() > 0.0);
    }

    #[test]
    fn phase_lookup() {
        let r = dummy_report();
        assert_eq!(r.phase_io("partition").unwrap().total(), 150);
        assert!(r.phase_io("missing").is_none());
        assert_eq!(r.phase_peak("partition"), Some(800));
        assert!(r.phase_peak("missing").is_none());
    }

    #[test]
    fn extra_lookup() {
        let r = dummy_report();
        assert_eq!(r.extra("x_statistic"), Some(42.0));
        assert_eq!(r.extra("nope"), None);
    }

    #[test]
    fn display_contains_key_numbers() {
        let s = format!("{}", dummy_report());
        assert!(s.contains("E=10000"));
        assert!(s.contains("phase partition"));
    }

    #[test]
    fn phase_recorder_attributes_deltas_and_gauge_peaks() {
        let gauge = MemGauge::new();
        {
            let _preexisting_spike = gauge.lease(10_000);
        }
        let mut rec = PhaseRecorder::new(&gauge);
        {
            let _phase_buffer = gauge.lease(64);
        }
        let a = IoStats {
            reads: 10,
            writes: 5,
        };
        let b = IoStats {
            reads: 30,
            writes: 9,
        };
        rec.record("x", a, b);
        let (phases, peaks) = rec.into_parts();
        assert_eq!(
            phases[0].1,
            IoStats {
                reads: 20,
                writes: 4
            }
        );
        assert_eq!(peaks[0].name, "x");
        assert_eq!(
            peaks[0].peak_words, 64,
            "spikes before the recorder opened must not count"
        );
        assert_eq!(peaks[0].live_words, 0);
    }
}
