//! Crash-safe checkpoints of the cache-oblivious driver.
//!
//! A checkpoint captures, at a subproblem boundary, everything the explicit
//! depth-first stack needs to continue after the process dies: the run
//! parameters (`seed`, root edge count, depth limit — the colour-refinement
//! tree is a pure function of these), the sink's high-water mark (triangles
//! durably committed so far), the stack frontier (one compact descriptor per
//! pending subproblem), and the log of oversized depth-limit leaves batched
//! since the run started (their run-global wedge/edge files die with the
//! simulated machine, so a resume replays them).
//!
//! A pending subproblem's *edge list* is deliberately **not** serialised.
//! Colour-vector compatibility is hereditary (an edge compatible with a
//! node's vector at its depth is compatible with every ancestor's), and both
//! high-degree removal and partition routing preserve the root's `(u, v)`
//! order — so the node's exact edge list is recovered by one order-preserving
//! scan of the (re-sorted) root: keep each edge whose colour pair is
//! compatible at `(depth, target)` and which is not incident to a vertex in
//! the node's accumulated `removed` set. That makes checkpoints `O(frontier)`
//! words instead of `O(E)`.
//!
//! Checkpoints are serialised with the repo's hand-rolled flat-JSON style (no
//! serde in the dependency tree) and written **atomically**: the bytes go to
//! a temporary file which is then renamed over the target, so a crash during
//! the write leaves either the previous checkpoint or the new one, never a
//! truncated hybrid. Writing durable state targets the *host* filesystem —
//! it models a separate durable store and is not charged to the simulated
//! machine.

use std::io::Write;
use std::path::{Path, PathBuf};

/// When and where the cache-oblivious driver writes checkpoints.
#[derive(Debug, Clone)]
pub struct CheckpointSpec {
    /// Target file of the (atomically replaced) checkpoint.
    pub path: PathBuf,
    /// Write a checkpoint at the first subproblem boundary after this many
    /// simulated I/Os have accumulated since the previous checkpoint.
    pub interval_io: u64,
}

/// One pending subproblem of the depth-first stack (or one batched oversized
/// leaf): enough to reconstruct its edge list from the root by a single
/// compatibility-and-removal filter scan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeDescriptor {
    /// Depth of the node in the colour-refinement tree.
    pub depth: usize,
    /// The node's colour vector `(c0, c1, c2)`.
    pub target: (u64, u64, u64),
    /// Sorted vertex ids removed by high-degree enumeration along the node's
    /// ancestor path (removal sets at different levels are disjoint: a
    /// removed vertex has no edges left below its removal level).
    pub removed: Vec<u32>,
}

/// One frame of the serialised driver stack, bottom-to-top.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameDescriptor {
    /// A pending subproblem.
    Node(NodeDescriptor),
    /// A gauge-lease marker: the ancestor's child-summary lease of `words`
    /// words, released when the subtree below it completes. Restored on
    /// resume so post-resume gauge accounting matches the crashed run's.
    Release {
        /// Leased words.
        words: u64,
    },
}

/// A complete, resumable snapshot of a cache-oblivious run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    /// Format version (current: 1).
    pub version: u32,
    /// Seed of the per-level refinement bits.
    pub seed: u64,
    /// Root edge count (sanity-checked against the input on resume).
    pub edges: usize,
    /// Depth limit `⌈log₄ E⌉` of the run.
    pub depth_limit: usize,
    /// Triangles durably committed when this checkpoint was taken — the
    /// sink's high-water mark. Resume restarts emission numbering here.
    pub hwm: u64,
    /// The driver stack, bottom-to-top.
    pub frontier: Vec<FrameDescriptor>,
    /// Every oversized depth-limit leaf batched since the run started, in
    /// leaf-id order; replayed before the frontier on resume.
    pub leaves: Vec<NodeDescriptor>,
}

/// Current checkpoint format version.
pub const CHECKPOINT_VERSION: u32 = 1;

impl Checkpoint {
    /// Serialises the checkpoint as flat JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256 + 64 * (self.frontier.len() + self.leaves.len())); // emlint: allow(unleased, reason = "host-side durable-state serialisation, not simulated-machine memory")
        out.push_str(&format!(
            "{{\n  \"version\": {},\n  \"seed\": {},\n  \"edges\": {},\n  \"depth_limit\": {},\n  \"hwm\": {},\n",
            self.version, self.seed, self.edges, self.depth_limit, self.hwm
        ));
        out.push_str("  \"frontier\": [");
        for (i, frame) in self.frontier.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            match frame {
                FrameDescriptor::Node(node) => out.push_str(&node_json(node)),
                FrameDescriptor::Release { words } => {
                    out.push_str(&format!("{{\"kind\": \"release\", \"words\": {words}}}"));
                }
            }
        }
        out.push_str("\n  ],\n  \"leaves\": [");
        for (i, leaf) in self.leaves.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            out.push_str(&node_json(leaf));
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Parses a checkpoint from its JSON serialisation.
    ///
    /// # Errors
    ///
    /// Returns a description of the first syntactic or structural problem
    /// (truncated file, wrong version, missing field, wrong type).
    pub fn parse(text: &str) -> Result<Checkpoint, String> {
        let value = Json::parse(text)?;
        let obj = value.as_object("checkpoint")?;
        let version = u32::try_from(get_u64(obj, "version")?)
            .map_err(|_| "field 'version' out of range".to_string())?;
        if version != CHECKPOINT_VERSION {
            return Err(format!(
                "unsupported checkpoint version {version} (expected {CHECKPOINT_VERSION})"
            ));
        }
        let edges = usize::try_from(get_u64(obj, "edges")?)
            .map_err(|_| "field 'edges' out of range".to_string())?;
        let depth_limit = usize::try_from(get_u64(obj, "depth_limit")?)
            .map_err(|_| "field 'depth_limit' out of range".to_string())?;
        let mut frontier = Vec::new(); // emlint: allow(unleased, reason = "host-side durable-state deserialisation, not simulated-machine memory")
        for frame in get(obj, "frontier")?.as_array("frontier")? {
            let fobj = frame.as_object("frontier entry")?;
            if matches!(lookup(fobj, "kind"), Some(Json::Str(k)) if k == "release") {
                frontier.push(FrameDescriptor::Release {
                    words: get_u64(fobj, "words")?,
                });
            } else {
                frontier.push(FrameDescriptor::Node(parse_node(fobj)?));
            }
        }
        let mut leaves = Vec::new(); // emlint: allow(unleased, reason = "host-side durable-state deserialisation, not simulated-machine memory")
        for leaf in get(obj, "leaves")?.as_array("leaves")? {
            leaves.push(parse_node(leaf.as_object("leaf entry")?)?);
        }
        Ok(Checkpoint {
            version,
            seed: get_u64(obj, "seed")?,
            edges,
            depth_limit,
            hwm: get_u64(obj, "hwm")?,
            frontier,
            leaves,
        })
    }

    /// Writes the checkpoint atomically: serialise to `<path>.tmp`, sync,
    /// rename over `path`. A crash mid-write leaves the previous checkpoint
    /// intact.
    pub fn write_atomic(&self, path: &Path) -> std::io::Result<()> {
        atomic_write(path, self.to_json().as_bytes())
    }

    /// Loads and parses a checkpoint file.
    pub fn load(path: &Path) -> std::io::Result<Checkpoint> {
        let text = std::fs::read_to_string(path)?;
        Checkpoint::parse(&text)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }
}

fn node_json(node: &NodeDescriptor) -> String {
    let mut removed = String::new();
    for (i, v) in node.removed.iter().enumerate() {
        if i > 0 {
            removed.push_str(", ");
        }
        removed.push_str(&v.to_string());
    }
    let (c0, c1, c2) = node.target;
    format!(
        "{{\"kind\": \"node\", \"depth\": {}, \"target\": [{c0}, {c1}, {c2}], \"removed\": [{removed}]}}",
        node.depth
    )
}

fn parse_node(obj: &[(String, Json)]) -> Result<NodeDescriptor, String> {
    let depth = usize::try_from(get_u64(obj, "depth")?)
        .map_err(|_| "field 'depth' out of range".to_string())?;
    let target = get(obj, "target")?.as_array("target")?;
    if target.len() != 3 {
        return Err("field 'target' must hold exactly three colours".to_string());
    }
    let target = (
        target[0].as_u64("target[0]")?,
        target[1].as_u64("target[1]")?,
        target[2].as_u64("target[2]")?,
    );
    let mut removed = Vec::new(); // emlint: allow(unleased, reason = "host-side durable-state deserialisation, not simulated-machine memory")
    for v in get(obj, "removed")?.as_array("removed")? {
        removed.push(
            u32::try_from(v.as_u64("removed entry")?)
                .map_err(|_| "removed vertex id out of range".to_string())?,
        );
    }
    Ok(NodeDescriptor {
        depth,
        target,
        removed,
    })
}

/// Writes `bytes` to `path` atomically (temp file in the same directory,
/// flush, rename). Shared by the checkpoint writer and the experiment-record
/// writer so no crashed run can leave a truncated artifact.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)
}

// ---------------------------------------------------------------------------
// A minimal recursive-descent JSON reader: just enough for the checkpoint
// format (objects, arrays, unsigned integers, plain strings). Kept here so
// the core crate stays free of serialisation dependencies.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Json {
    Num(u64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing content at byte {pos}"));
        }
        Ok(value)
    }

    fn as_object(&self, what: &str) -> Result<&[(String, Json)], String> {
        match self {
            Json::Obj(fields) => Ok(fields),
            _ => Err(format!("{what}: expected an object")),
        }
    }

    fn as_array(&self, what: &str) -> Result<&[Json], String> {
        match self {
            Json::Arr(items) => Ok(items),
            _ => Err(format!("{what}: expected an array")),
        }
    }

    fn as_u64(&self, what: &str) -> Result<u64, String> {
        match self {
            Json::Num(n) => Ok(*n),
            _ => Err(format!("{what}: expected an unsigned integer")),
        }
    }
}

fn lookup<'a>(obj: &'a [(String, Json)], key: &str) -> Option<&'a Json> {
    obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn get<'a>(obj: &'a [(String, Json)], key: &str) -> Result<&'a Json, String> {
    lookup(obj, key).ok_or_else(|| format!("missing field '{key}'"))
}

fn get_u64(obj: &[(String, Json)], key: &str) -> Result<u64, String> {
    get(obj, key)?.as_u64(key)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && bytes[*pos].is_ascii_whitespace() {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(c) if c.is_ascii_digit() => parse_number(bytes, pos),
        Some(c) => Err(format!("unexpected byte '{}' at {}", *c as char, *pos)),
        None => Err("unexpected end of input".to_string()),
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // consume '{'
    let mut fields = Vec::new(); // emlint: allow(unleased, reason = "host-side durable-state deserialisation, not simulated-machine memory")
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}"));
        }
        *pos += 1;
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // consume '['
    let mut items = Vec::new(); // emlint: allow(unleased, reason = "host-side durable-state deserialisation, not simulated-machine memory")
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected '\"' at byte {pos}"));
    }
    *pos += 1;
    let start = *pos;
    while let Some(&c) = bytes.get(*pos) {
        if c == b'"' {
            let s = std::str::from_utf8(&bytes[start..*pos])
                .map_err(|_| "invalid UTF-8 in string".to_string())?
                .to_string();
            *pos += 1;
            return Ok(s);
        }
        if c == b'\\' {
            return Err("escape sequences are not used by the checkpoint format".to_string());
        }
        *pos += 1;
    }
    Err("unterminated string".to_string())
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while bytes.get(*pos).is_some_and(u8::is_ascii_digit) {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("invalid number at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        Checkpoint {
            version: CHECKPOINT_VERSION,
            seed: 7,
            edges: 2_000,
            depth_limit: 6,
            hwm: 123,
            frontier: vec![
                FrameDescriptor::Node(NodeDescriptor {
                    depth: 0,
                    target: (1, 1, 1),
                    removed: vec![],
                }),
                FrameDescriptor::Release { words: 264 },
                FrameDescriptor::Node(NodeDescriptor {
                    depth: 2,
                    target: (3, 4, 4),
                    removed: vec![5, 17, 99],
                }),
            ],
            leaves: vec![NodeDescriptor {
                depth: 6,
                target: (41, 42, 43),
                removed: vec![2],
            }],
        }
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let c = sample();
        let parsed = Checkpoint::parse(&c.to_json()).unwrap();
        assert_eq!(parsed, c);
    }

    #[test]
    fn empty_frontier_and_leaves_round_trip() {
        let c = Checkpoint {
            version: CHECKPOINT_VERSION,
            seed: 0,
            edges: 3,
            depth_limit: 1,
            hwm: 0,
            frontier: vec![],
            leaves: vec![],
        };
        assert_eq!(Checkpoint::parse(&c.to_json()).unwrap(), c);
    }

    #[test]
    fn truncated_and_malformed_inputs_are_rejected_with_reasons() {
        let json = sample().to_json();
        let truncated = &json[..json.len() / 2];
        assert!(Checkpoint::parse(truncated).is_err());
        assert!(Checkpoint::parse("").is_err());
        assert!(Checkpoint::parse("{\"version\": 1}")
            .unwrap_err()
            .contains("missing field"));
        let wrong_version = json.replace("\"version\": 1", "\"version\": 9");
        assert!(Checkpoint::parse(&wrong_version)
            .unwrap_err()
            .contains("version"));
    }

    #[test]
    fn atomic_write_replaces_and_leaves_no_temp_file() {
        let dir = std::env::temp_dir().join("trienum-checkpoint-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt.json");
        let c = sample();
        c.write_atomic(&path).unwrap();
        let mut newer = c.clone();
        newer.hwm = 999;
        newer.write_atomic(&path).unwrap();
        let loaded = Checkpoint::load(&path).unwrap();
        assert_eq!(loaded, newer);
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        assert!(
            !PathBuf::from(tmp).exists(),
            "the temp file must be renamed away"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_of_a_missing_file_is_an_io_error() {
        let err = Checkpoint::load(Path::new("/nonexistent/trienum/ckpt.json")).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::NotFound);
    }
}
