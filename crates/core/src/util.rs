//! Shared external-memory helpers for the enumeration algorithms.

use emalgo::{external_sort_by_key, oblivious_sort_by_key};
use emsim::ExtVec;
use graphgen::{Edge, VertexId};

/// Which sorting primitive a (sub)algorithm is allowed to use.
///
/// The cache-aware algorithms use the multiway mergesort; the cache-oblivious
/// algorithm must not look at `M`/`B` and therefore uses the cache-oblivious
/// mergesort everywhere.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SortKind {
    /// Cache-aware multiway mergesort (`sort(n)` I/Os).
    Aware,
    /// Cache-oblivious recursive mergesort.
    Oblivious,
}

/// Sorts an edge array by an arbitrary key with the chosen sort kind.
pub(crate) fn sort_edges_by<K, F>(edges: &ExtVec<Edge>, kind: SortKind, key: F) -> ExtVec<Edge>
where
    K: Ord + Copy,
    F: Fn(&Edge) -> K,
{
    match kind {
        SortKind::Aware => external_sort_by_key(edges, key),
        SortKind::Oblivious => oblivious_sort_by_key(edges, key),
    }
}

/// Sorts a vertex-id array with the chosen sort kind.
pub(crate) fn sort_vertices(ids: &ExtVec<u32>, kind: SortKind) -> ExtVec<u32> {
    match kind {
        SortKind::Aware => external_sort_by_key(ids, |v| *v),
        SortKind::Oblivious => oblivious_sort_by_key(ids, |v| *v),
    }
}

/// Computes the degree table of an edge array: an external array of
/// `(vertex, degree)` pairs sorted by vertex, covering every vertex with
/// degree ≥ 1.
///
/// Implemented as the paper would: write both endpoints of every edge,
/// sort the `2E` endpoints, and count run lengths in one scan —
/// `O(sort(E))` I/Os.
pub(crate) fn degree_table(edges: &ExtVec<Edge>, kind: SortKind) -> ExtVec<(u32, u32)> {
    let machine = edges.machine().clone();
    let mut endpoints: ExtVec<u32> = ExtVec::new(&machine);
    for e in edges.iter() {
        endpoints.push(e.u);
        endpoints.push(e.v);
    }
    let sorted = sort_vertices(&endpoints, kind);
    drop(endpoints);

    let mut out: ExtVec<(u32, u32)> = ExtVec::new(&machine);
    let mut current: Option<(u32, u32)> = None;
    for v in sorted.iter() {
        machine.work(1);
        match current {
            Some((cv, cnt)) if cv == v => current = Some((cv, cnt + 1)),
            Some(run) => {
                out.push(run);
                current = Some((v, 1));
            }
            None => current = Some((v, 1)),
        }
    }
    if let Some(last) = current {
        out.push(last);
    }
    out
}

/// Scans a degree table and returns, in core, the vertices whose degree
/// satisfies `pred` (ascending by vertex id). The caller is responsible for
/// bounding the size of the result (the paper's high-degree sets are provably
/// small) and for leasing it on the memory gauge.
pub(crate) fn vertices_with_degree(
    degrees: &ExtVec<(u32, u32)>,
    mut pred: impl FnMut(u32) -> bool,
) -> Vec<VertexId> {
    // emlint: allow(unleased, reason = "documented contract: the caller bounds the result (provably small high-degree sets) and leases it")
    let mut out = Vec::new();
    for (v, d) in degrees.iter() {
        if pred(d) {
            out.push(v);
        }
    }
    out
}

/// Exact floor integer square root of a `u128` (Newton's method).
///
/// The paper's thresholds `⌊√(E·M)⌋` and `⌈√(E/M)⌉` must be exact: routing
/// them through `f64::sqrt` mis-rounds near perfect squares once the product
/// exceeds 2⁵³ (a degree-2¹⁶-off-by-one at `E·M ≈ 2⁶²` flips which vertices
/// count as high-degree).
pub(crate) fn isqrt_u128(n: u128) -> u128 {
    if n < 2 {
        return n;
    }
    // Initial guess ≥ √n, then monotone Newton descent to the floor root.
    let mut x0 = 1u128 << (n.ilog2() / 2 + 1);
    let mut x1 = (x0 + n / x0) / 2;
    while x1 < x0 {
        x0 = x1;
        x1 = (x0 + n / x0) / 2;
    }
    x0
}

/// Removes from `edges` every edge incident to a vertex in `forbidden`
/// (given as a sorted slice), returning the filtered array. One scan.
pub(crate) fn remove_incident_edges(edges: &ExtVec<Edge>, forbidden: &[VertexId]) -> ExtVec<Edge> {
    let machine = edges.machine().clone();
    let mut out: ExtVec<Edge> = ExtVec::new(&machine);
    for e in edges.iter() {
        machine.work(1);
        if forbidden.binary_search(&e.u).is_err() && forbidden.binary_search(&e.v).is_err() {
            out.push(e);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::ExtGraph;
    use emsim::{EmConfig, Machine};
    use graphgen::generators;

    fn load(edges: &[(u32, u32)]) -> (Machine, ExtVec<Edge>) {
        let machine = Machine::new(EmConfig::new(1 << 10, 64));
        let v = ExtVec::from_slice(
            &machine,
            &edges
                .iter()
                .map(|&(a, b)| Edge::new(a, b))
                .collect::<Vec<_>>(),
        );
        (machine, v)
    }

    #[test]
    fn degree_table_counts_both_endpoints() {
        let (_m, edges) = load(&[(0, 1), (0, 2), (0, 3), (2, 3)]);
        for kind in [SortKind::Aware, SortKind::Oblivious] {
            let table = degree_table(&edges, kind).load_all();
            assert_eq!(table, vec![(0, 3), (1, 1), (2, 2), (3, 2)]);
        }
    }

    #[test]
    fn degree_table_matches_graphgen_degrees() {
        let g = generators::erdos_renyi(80, 400, 5);
        let machine = Machine::new(EmConfig::new(1 << 12, 64));
        let eg = ExtGraph::load(&machine, &g);
        let table = degree_table(eg.edges(), SortKind::Aware).load_all();
        let mut expected: Vec<(u32, u32)> = Vec::new();
        // The loaded graph is degree-ordered, so recompute degrees on the
        // canonical edges directly.
        let canon = eg.edges().load_all();
        let mut deg = vec![0u32; eg.vertex_count()];
        for e in &canon {
            deg[e.u as usize] += 1;
            deg[e.v as usize] += 1;
        }
        for (v, d) in deg.iter().enumerate() {
            if *d > 0 {
                expected.push((v as u32, *d));
            }
        }
        assert_eq!(table, expected);
    }

    #[test]
    fn high_degree_selection_and_removal() {
        let (_m, edges) = load(&[(0, 1), (0, 2), (0, 3), (2, 3), (1, 4)]);
        let table = degree_table(&edges, SortKind::Aware);
        let high = vertices_with_degree(&table, |d| d >= 3);
        assert_eq!(high, vec![0]);
        // The scan preserves the input order of the surviving edges.
        let rest = remove_incident_edges(&edges, &high).load_all();
        assert_eq!(rest, vec![Edge::new(2, 3), Edge::new(1, 4)]);
    }

    #[test]
    fn isqrt_is_exact_on_and_around_perfect_squares() {
        assert_eq!(isqrt_u128(0), 0);
        assert_eq!(isqrt_u128(1), 1);
        assert_eq!(isqrt_u128(2), 1);
        assert_eq!(isqrt_u128(3), 1);
        assert_eq!(isqrt_u128(4), 2);
        for k in [
            7u128,
            1 << 26,
            (1 << 26) + 1,
            (1 << 31) - 1,
            1 << 31,
            3_037_000_499,    // isqrt(2^63) territory
            u64::MAX as u128, // k² just below 2^128
        ] {
            assert_eq!(isqrt_u128(k * k), k, "k={k}");
            assert_eq!(isqrt_u128(k * k - 1), k - 1, "k={k}");
            assert_eq!(isqrt_u128(k * k + 2 * k), k, "k={k}");
            if let Some(next_square) = (k * k).checked_add(2 * k + 1) {
                assert_eq!(isqrt_u128(next_square), k + 1, "k={k}");
            }
        }
    }

    #[test]
    fn remove_with_empty_forbidden_is_identity() {
        let (_m, edges) = load(&[(0, 1), (1, 2)]);
        assert_eq!(
            remove_incident_edges(&edges, &[]).load_all(),
            edges.load_all()
        );
    }
}
