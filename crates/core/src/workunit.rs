//! Multi-worker (PEM) enumeration: deterministic work-unit sharding, the
//! worker pool, and the merged report.
//!
//! The parallel external-memory (PEM) model runs `P` machines, each with its
//! own internal memory of `M` words and its own block channel; the cost of a
//! computation is the **maximum** per-worker I/O, not the sum. This module
//! refactors the repo's drivers from "one machine, one driver" to "a
//! work-unit queue over `P` workers":
//!
//! * Every driver exposes its independent pieces as **work units** — the
//!   Lemma 1 high-degree vertices and the non-empty pivot colour pairs
//!   `(τ2, τ3)` of the cache-aware step 3, and the top-of-tree subtrees (at a
//!   configurable spawn depth) plus the top-of-tree leaf/high-degree
//!   emissions of the cache-oblivious refinement. Units are numbered by a
//!   single cursor ticking in the driver's deterministic execution order, so
//!   the numbering is identical on every worker and *independent of `P`*.
//! * A unit belongs to worker `unit_index % workers` — the static assignment
//!   of the timely-dataflow exemplar (`node % peers == index`) — so the unit
//!   partition, and with it every downstream result, is worker-count
//!   invariant by construction.
//! * Each worker thread builds its **own** [`Machine`] from the shared
//!   `Copy` [`EmConfig`] (a [`Machine`] is deliberately `!Send`), replays
//!   the driver with its shard cursor, and buffers its triangles. All
//!   randomness is derived from `(seed, unit id)`-equivalent state — the
//!   colouring seed and the per-level refinement bits — never from the
//!   worker id or arrival order, so all workers expand the *same* recursion
//!   tree and skip the parts they do not own.
//! * The per-worker buffers are merged by [`emalgo::kway_merge_tagged`] into
//!   one globally sorted triangle stream, so the delivered multiset (and its
//!   order) is bit-identical regardless of `P` and scheduling.
//!
//! With `P = 1` every unit is owned, the claim calls degenerate to counter
//! increments charged to nothing, and the worker performs *exactly* the
//! sequential driver's operation sequence — the refactor is zero-cost, and
//! the E10 gate pins `sum_io` at `P = 1` to the sequential driver's I/O.

use emsim::{BackendKind, EmConfig, ExtVec, IoStats, Machine, PhaseSnapshot, WorkerReport};
use graphgen::{Graph, Triangle};

use crate::checkpoint::CheckpointSpec;
use crate::input::ExtGraph;
use crate::sink::{CollectingSink, TriangleSink};
use crate::stats::{PhaseRecorder, RunReport};
use crate::{cache_aware, cache_oblivious, derandomized};
use crate::{Algorithm, Step3Strategy, TranslatingSink};

/// Default spawn depth of the cache-oblivious driver: subtrees rooted at
/// depth 2 of the colour-refinement tree become work units (up to `8² = 64`
/// of them — comfortably more than the worker counts E10 sweeps, so the
/// round-robin assignment balances well), while the two levels above are
/// replicated on every worker.
pub const DEFAULT_SPAWN_DEPTH: usize = 2;

/// One schedulable piece of a driver's execution, as logged by the unit
/// cursor (see [`ShardPlan::log_units`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum WorkUnitKind {
    /// Cache-aware step 1: one Lemma 1 pass through a high-degree vertex.
    HighDegreeVertex {
        /// The high-degree vertex (canonical id).
        v: u32,
    },
    /// Cache-aware step 3: all `c` cone colours against the non-empty pivot
    /// class `E_{τ2,τ3}`.
    PivotPair {
        /// Pivot colour `τ2`.
        t2: u64,
        /// Pivot colour `τ3`.
        t3: u64,
    },
    /// Cache-oblivious: a whole subtree of the colour-refinement tree rooted
    /// at the spawn depth.
    RefinementSubtree {
        /// Depth of the subtree root (always the plan's spawn depth).
        depth: usize,
        /// Colour-vector target of the subtree root.
        target: (u64, u64, u64),
    },
    /// Cache-oblivious: an in-core (or oversized) leaf above the spawn
    /// depth, emitted as its own unit.
    RefinementLeaf {
        /// Depth of the leaf.
        depth: usize,
        /// Colour-vector target of the leaf.
        target: (u64, u64, u64),
    },
    /// Cache-oblivious: the Lemma 1 high-degree enumeration of a replicated
    /// top-of-tree node, emitted as its own unit.
    RefinementHighDegree {
        /// Depth of the node.
        depth: usize,
        /// Colour-vector target of the node.
        target: (u64, u64, u64),
    },
}

/// A claimed work unit: its position in the deterministic unit stream plus
/// what it was.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct WorkUnit {
    /// Index in the global unit stream (identical on every worker and for
    /// every worker count).
    pub index: u64,
    /// What the unit was.
    pub kind: WorkUnitKind,
}

/// The deterministic unit→worker assignment: a counter over the driver's
/// unit stream plus this worker's identity. `claim` answers "is the next
/// unit mine?" — `unit_index % workers == worker`, the timely idiom.
///
/// The cursor must tick identically on every worker: drivers call `claim`
/// at points whose reachability depends only on the (seed-deterministic,
/// worker-replicated) computation, never on what a worker skipped.
#[derive(Debug)]
pub(crate) struct ShardCursor {
    worker: u64,
    workers: u64,
    next_unit: u64,
    /// `Some` when unit logging is on: every unit this worker *owns*.
    log: Option<Vec<WorkUnit>>,
}

impl ShardCursor {
    /// The sequential cursor: one worker owning every unit. The sequential
    /// drivers run with this — claims always succeed, so the sharded code
    /// path is byte-for-byte the sequential one.
    pub(crate) fn solo() -> ShardCursor {
        ShardCursor::new(0, 1, false)
    }

    pub(crate) fn new(worker: usize, workers: usize, log_units: bool) -> ShardCursor {
        assert!(
            worker < workers,
            "worker {worker} out of range 0..{workers}"
        );
        ShardCursor {
            worker: worker as u64,
            workers: workers as u64,
            log: log_units.then(Vec::new),
            next_unit: 0,
        }
    }

    /// Whether every unit is owned (the sequential degenerate case).
    pub(crate) fn is_solo(&self) -> bool {
        self.workers == 1
    }

    /// Ticks the unit counter and answers whether this worker owns the unit
    /// just passed. Pure in-core bookkeeping: charges no I/O and no work, so
    /// a solo cursor leaves the sequential accounting untouched.
    pub(crate) fn claim(&mut self, kind: WorkUnitKind) -> bool {
        let index = self.next_unit;
        self.next_unit += 1;
        let owned = index % self.workers == self.worker;
        if owned {
            if let Some(log) = &mut self.log {
                log.push(WorkUnit { index, kind });
            }
        }
        owned
    }

    /// The units this worker owned (empty unless logging was requested).
    pub(crate) fn into_log(self) -> Vec<WorkUnit> {
        self.log.unwrap_or_default()
    }
}

/// Configuration of a sharded (multi-worker) run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardPlan {
    /// Number of workers `P` (threads, each with its own [`Machine`]).
    pub workers: usize,
    /// Depth of the cache-oblivious refinement tree at which whole subtrees
    /// become work units (ignored by the cache-aware drivers). The tree
    /// above this depth is replicated on every worker.
    pub spawn_depth: usize,
    /// When set, each worker records the units it owned; they come back in
    /// [`ShardedReport::worker_units`]. Off by default (the log is
    /// proportional to the unit count).
    pub log_units: bool,
    /// Data plane of each worker's machine. On [`BackendKind::Disk`] every
    /// worker runs genuinely out-of-core with its own backing file and
    /// buffer pool (temp-dir scoped, unlinked when the worker's machine
    /// drops); the merge epilogue stays in-memory (it is the host-side
    /// sequential pass). In-memory by default.
    pub backend: BackendKind,
}

impl ShardPlan {
    /// A plan with `workers` workers and the default spawn depth.
    pub fn new(workers: usize) -> ShardPlan {
        ShardPlan {
            workers,
            spawn_depth: DEFAULT_SPAWN_DEPTH,
            log_units: false,
            backend: BackendKind::InMemory,
        }
    }

    /// Overrides the cache-oblivious spawn depth.
    pub fn with_spawn_depth(mut self, spawn_depth: usize) -> ShardPlan {
        self.spawn_depth = spawn_depth;
        self
    }

    /// Turns on per-worker unit logging.
    pub fn with_unit_log(mut self) -> ShardPlan {
        self.log_units = true;
        self
    }

    /// Selects the data plane of every worker machine.
    pub fn with_backend(mut self, backend: BackendKind) -> ShardPlan {
        self.backend = backend;
        self
    }
}

impl Default for ShardPlan {
    fn default() -> ShardPlan {
        ShardPlan::new(1)
    }
}

/// A sharded-run configuration the scheduler refuses to execute. Returned —
/// never silently ignored — so a misconfiguration cannot corrupt results.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardConfigError {
    /// `workers == 0`: there is no machine to run on.
    ZeroWorkers,
    /// The algorithm is a baseline without a work-unit decomposition; only
    /// the paper's drivers are sharded.
    UnsupportedAlgorithm {
        /// [`Algorithm::name`] of the rejected algorithm.
        name: &'static str,
    },
    /// A [`CheckpointSpec`] was supplied: checkpoint frontiers are
    /// per-machine, and the sharded scheduler does not (yet) compose
    /// per-worker frontier files into one resumable state. Use
    /// [`crate::enumerate_triangles_with_recovery`] for crash-safe
    /// (sequential) runs.
    CheckpointUnsupported {
        /// The worker count of the rejected plan.
        workers: usize,
    },
}

impl std::fmt::Display for ShardConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardConfigError::ZeroWorkers => write!(f, "a sharded run needs at least one worker"),
            ShardConfigError::UnsupportedAlgorithm { name } => {
                write!(f, "algorithm {name} has no work-unit decomposition; only the paper's drivers run sharded")
            }
            ShardConfigError::CheckpointUnsupported { workers } => {
                write!(
                    f,
                    "checkpointing does not compose with {workers}-worker sharding: checkpoint \
                     frontiers are per-machine; use enumerate_triangles_with_recovery instead"
                )
            }
        }
    }
}

impl std::error::Error for ShardConfigError {}

/// Everything a sharded run reports: the merged [`RunReport`], the
/// per-worker PEM accounting, and (when requested) the per-worker unit logs.
#[derive(Debug, Clone)]
pub struct ShardedReport {
    /// The merged run report. `io` / `work_ops` are *sums* over workers
    /// (phase rows likewise, summed by phase name; phase peaks are per-name
    /// maxima; `peak_mem_words` / `peak_disk_words` are maxima — each worker
    /// has its own memory and disk). Extras are worker 0's rows (the
    /// seed-derived ones are identical on every worker) plus the aggregate
    /// `workers` / `max_worker_io` / `sum_worker_io` / `worker_balance` /
    /// `merge_io` rows.
    pub report: RunReport,
    /// Per-worker I/O and the PEM aggregates (`max_io` is the PEM cost).
    /// `per_worker` is indexed by worker id — the pool sorts by worker index
    /// before aggregating, so the report is deterministic for any join
    /// order.
    pub workers: WorkerReport,
    /// Block transfers of the merge pass (sorting and k-way-merging the
    /// per-worker triangle buffers on a separate merge machine). Reported
    /// apart from the workers' I/O: in the PEM model the merge is the
    /// sequential epilogue, and at `P = 1` the gate pins the workers' I/O
    /// alone to the sequential driver's.
    pub merge_io: IoStats,
    /// The work units each worker owned, indexed by worker id; empty unless
    /// [`ShardPlan::log_units`] was set.
    pub worker_units: Vec<Vec<WorkUnit>>,
}

/// What one worker thread brings home.
struct WorkerRun {
    worker: usize,
    triangles: Vec<Triangle>,
    io: IoStats,
    work_ops: u64,
    peak_mem_words: u64,
    peak_disk_words: u64,
    phases: Vec<(String, IoStats)>,
    phase_peaks: Vec<PhaseSnapshot>,
    extra: Vec<(String, f64)>,
    units: Vec<WorkUnit>,
    edges: usize,
    vertices: usize,
}

/// Enumerates every triangle of `graph` across `plan.workers` worker
/// threads, each with its own simulated machine, merging the per-worker
/// buffers into one deterministic, globally sorted triangle stream delivered
/// to `sink`.
///
/// The unit→worker assignment is `unit_index % workers` over a unit stream
/// numbered in the driver's deterministic execution order, so the triangle
/// multiset (and the delivery order) is bit-identical for every worker
/// count. Triangles reach `sink` in ascending `(a, b, c)` order of the
/// caller's original vertex ids — note this differs from the sequential
/// entry points, which deliver in driver emission order.
///
/// Only the paper's three drivers are supported; baselines return
/// [`ShardConfigError::UnsupportedAlgorithm`].
pub fn enumerate_triangles_sharded(
    graph: &Graph,
    algorithm: Algorithm,
    cfg: EmConfig,
    plan: ShardPlan,
    sink: &mut dyn TriangleSink,
) -> Result<ShardedReport, ShardConfigError> {
    enumerate_triangles_sharded_with_checkpoint(graph, algorithm, cfg, plan, sink, None)
}

/// [`enumerate_triangles_sharded`] with an explicit checkpoint argument —
/// which the scheduler **rejects** with a typed error whenever a spec is
/// supplied: checkpoint frontiers are per-machine, and composing `P`
/// per-worker frontier files into one resumable state is not implemented.
/// The argument exists so callers migrating from
/// [`crate::enumerate_triangles_with_recovery`] get a compile-visible,
/// typed answer instead of a silently ignored spec.
pub fn enumerate_triangles_sharded_with_checkpoint(
    graph: &Graph,
    algorithm: Algorithm,
    cfg: EmConfig,
    plan: ShardPlan,
    sink: &mut dyn TriangleSink,
    checkpoint: Option<&CheckpointSpec>,
) -> Result<ShardedReport, ShardConfigError> {
    if plan.workers == 0 {
        return Err(ShardConfigError::ZeroWorkers);
    }
    if checkpoint.is_some() {
        return Err(ShardConfigError::CheckpointUnsupported {
            workers: plan.workers,
        });
    }
    if !algorithm.is_paper_algorithm() {
        return Err(ShardConfigError::UnsupportedAlgorithm {
            name: algorithm.name(),
        });
    }

    let runs = run_worker_pool(graph, algorithm, cfg, plan);
    let (triangles, merge_io) = merge_worker_triangles(cfg, &runs, sink);
    // emlint: allow(unleased, reason = "P per-worker stat rows of scheduler bookkeeping, not algorithm memory")
    let workers = WorkerReport::from_per_worker(runs.iter().map(|r| r.io).collect());
    let report = merged_report(algorithm, cfg, &runs, &workers, merge_io, triangles);
    // emlint: allow(unleased, reason = "unit-log handover to the report, scheduler bookkeeping")
    let worker_units = runs.into_iter().map(|r| r.units).collect();
    Ok(ShardedReport {
        report,
        workers,
        merge_io,
        worker_units,
    })
}

/// The hand-rolled worker pool: one `std::thread` per worker, scoped so the
/// shared `graph` borrow needs no `Arc`. Results are collected in join order
/// and re-sorted by worker index, so everything downstream is deterministic
/// whatever the scheduling; a worker panic (e.g. a gauge-audit lease leak)
/// is propagated, not swallowed.
fn run_worker_pool(
    graph: &Graph,
    algorithm: Algorithm,
    cfg: EmConfig,
    plan: ShardPlan,
) -> Vec<WorkerRun> {
    if plan.workers == 1 {
        // No thread for the degenerate case: keeps single-worker runs (and
        // their panics/backtraces) on the caller's stack.
        // emlint: allow(unleased, reason = "one-element pool result, scheduler bookkeeping")
        return vec![run_worker(graph, algorithm, cfg, plan, 0)];
    }
    std::thread::scope(|scope| {
        // emlint: allow(unleased, reason = "P thread handles of scheduler bookkeeping, not algorithm memory")
        let handles: Vec<_> = (0..plan.workers)
            .map(|worker| scope.spawn(move || run_worker(graph, algorithm, cfg, plan, worker)))
            .collect();
        // emlint: allow(unleased, reason = "P worker results collected on the host, outside the measured region")
        let mut runs: Vec<WorkerRun> = handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|p| std::panic::resume_unwind(p)))
            .collect();
        // emlint: allow(uncharged-std, reason = "sorting P pool results by worker index for deterministic reports; host-side, not algorithm work")
        runs.sort_by_key(|r| r.worker);
        runs
    })
}

/// One worker: its own machine from the shared `Copy` config, its own graph
/// load (uncharged, as in the model), its own gauge/recorder, and the
/// driver replayed under this worker's shard cursor.
fn run_worker(
    graph: &Graph,
    algorithm: Algorithm,
    cfg: EmConfig,
    plan: ShardPlan,
    worker: usize,
) -> WorkerRun {
    let machine = Machine::with_backend(cfg, plan.backend);
    let ext = ExtGraph::load(&machine, graph);
    machine.cold_cache();
    machine.gauge().reset_peak();
    let before = machine.stats();

    let mut recorder = PhaseRecorder::new(machine.gauge());
    let mut cursor = ShardCursor::new(worker, plan.workers, plan.log_units);
    let mut collected = CollectingSink::new();
    // emlint: allow(unleased, reason = "run-report bookkeeping outside the measured region, not algorithm memory")
    let mut extra: Vec<(String, f64)> = Vec::new();
    {
        let mut translating = TranslatingSink {
            graph: &ext,
            inner: &mut collected,
        };
        match algorithm {
            Algorithm::CacheAwareRandomized { seed } => {
                let out = cache_aware::run_cache_aware_randomized_sharded(
                    &ext,
                    cfg,
                    seed,
                    Step3Strategy::default(),
                    &mut translating,
                    &mut recorder,
                    &mut cursor,
                );
                extra.push(("colors".into(), out.colors as f64));
                extra.push(("x_statistic".into(), out.x_statistic as f64));
                extra.push((
                    "high_degree_vertices".into(),
                    out.high_degree_vertices as f64,
                ));
                extra.push(("step3_chunk_passes".into(), out.step3_chunk_passes as f64));
            }
            Algorithm::DeterministicCacheAware {
                family_seed,
                candidates,
            } => {
                let (out, info) = derandomized::run_derandomized_sharded(
                    &ext,
                    cfg,
                    family_seed,
                    candidates,
                    Step3Strategy::default(),
                    &mut translating,
                    &mut recorder,
                    &mut cursor,
                );
                extra.push(("colors".into(), info.colors as f64));
                extra.push(("x_statistic".into(), out.x_statistic as f64));
                extra.push(("greedy_levels".into(), info.levels as f64));
                extra.push(("candidates_per_level".into(), info.candidates as f64));
                extra.push(("step3_chunk_passes".into(), out.step3_chunk_passes as f64));
            }
            Algorithm::CacheObliviousRandomized { seed } => {
                let (_, stats) = cache_oblivious::run_cache_oblivious_sharded(
                    &ext,
                    seed,
                    &mut translating,
                    &mut recorder,
                    &mut cursor,
                    plan.spawn_depth,
                );
                extra.push(("subproblems".into(), stats.subproblems as f64));
                extra.push(("max_recursion_depth".into(), stats.max_depth as f64));
                extra.push((
                    "high_degree_truncations".into(),
                    stats.high_degree_truncations as f64,
                ));
                extra.push(("partition_sweeps".into(), stats.partition_sweeps as f64));
            }
            // Rejected by validation before the pool spawns.
            Algorithm::HuTaoChung | Algorithm::SortBased | Algorithm::BlockNestedLoop => {
                unreachable!("baselines are rejected before the pool starts")
            }
        }
    }

    let after = machine.stats();
    let delta = after.since(&before);
    let (phases, phase_peaks) = recorder.into_parts();
    WorkerRun {
        worker,
        triangles: collected.into_triangles(),
        io: delta.io,
        work_ops: delta.work_ops,
        peak_mem_words: after.peak_mem_words,
        peak_disk_words: after.peak_disk_words,
        phases,
        phase_peaks,
        extra,
        units: cursor.into_log(),
        edges: ext.edge_count(),
        vertices: ext.vertex_count(),
    }
}

/// Merges the per-worker triangle buffers into one globally sorted stream
/// delivered to `sink`, on a separate merge machine: each worker's buffer is
/// written to external memory, sorted, and the `P` runs are k-way-merged by
/// [`emalgo::kway_merge_tagged`] keyed on the triangle itself (equal
/// triangles are indistinguishable, so the tag tie-break never shows).
/// Returns the merged count and the merge machine's I/O.
fn merge_worker_triangles(
    cfg: EmConfig,
    runs: &[WorkerRun],
    sink: &mut dyn TriangleSink,
) -> (u64, IoStats) {
    let machine = Machine::new(cfg);
    // emlint: allow(unleased, reason = "P run handles of view metadata, not algorithm memory")
    let mut sorted: Vec<ExtVec<(u32, u32, u32)>> = Vec::with_capacity(runs.len());
    for run in runs {
        let mut buf: ExtVec<(u32, u32, u32)> = ExtVec::new(&machine);
        for t in &run.triangles {
            buf.push((t.a, t.b, t.c));
        }
        sorted.push(emalgo::oblivious_sort_by_key(&buf, |&t| t));
    }
    let mut triangles = 0u64;
    // emlint: allow(unleased, reason = "P reader handles of view metadata, not algorithm memory")
    for (_tag, (a, b, c)) in
        emalgo::kway_merge_tagged(&machine, sorted.iter().map(|v| v.iter()).collect(), |&t| t)
    {
        sink.emit(Triangle::new(a, b, c));
        triangles += 1;
    }
    (triangles, machine.stats().io)
}

/// Builds the merged [`RunReport`]. Sums and maxima are taken over the
/// worker-index-sorted runs, and phase rows keep worker 0's phase order, so
/// serialising the report is byte-stable across runs and join orders.
fn merged_report(
    algorithm: Algorithm,
    cfg: EmConfig,
    runs: &[WorkerRun],
    workers: &WorkerReport,
    merge_io: IoStats,
    triangles: u64,
) -> RunReport {
    // emlint: allow(unleased, reason = "run-report bookkeeping outside the measured region, not algorithm memory")
    let mut phases: Vec<(String, IoStats)> = Vec::new();
    // emlint: allow(unleased, reason = "run-report bookkeeping outside the measured region, not algorithm memory")
    let mut phase_peaks: Vec<PhaseSnapshot> = Vec::new();
    for run in runs {
        for (name, io) in &run.phases {
            match phases.iter_mut().find(|(n, _)| n == name) {
                Some((_, sum)) => *sum += *io,
                None => phases.push((name.clone(), *io)),
            }
        }
        for snap in &run.phase_peaks {
            match phase_peaks.iter_mut().find(|s| s.name == snap.name) {
                Some(max) => {
                    if snap.peak_words > max.peak_words {
                        *max = snap.clone();
                    }
                }
                None => phase_peaks.push(snap.clone()),
            }
        }
    }
    // Worker 0's extras stand for the run (the seed-derived rows — colours,
    // X_ξ, greedy levels — are identical on every worker; the per-worker
    // counters are in `ShardedReport::workers`), followed by the aggregates.
    let mut extra = runs[0].extra.clone();
    extra.push(("workers".into(), runs.len() as f64));
    extra.push(("max_worker_io".into(), workers.max_io as f64));
    extra.push(("sum_worker_io".into(), workers.sum_io as f64));
    extra.push(("worker_balance".into(), workers.balance));
    extra.push(("merge_io".into(), merge_io.total() as f64));

    RunReport {
        algorithm: algorithm.name().to_string(),
        config: cfg,
        edges: runs[0].edges,
        vertices: runs[0].vertices,
        triangles,
        io: IoStats::merge(runs.iter().map(|r| r.io)),
        phases,
        phase_peaks,
        peak_mem_words: runs.iter().map(|r| r.peak_mem_words).max().unwrap_or(0),
        peak_disk_words: runs.iter().map(|r| r.peak_disk_words).max().unwrap_or(0),
        work_ops: runs.iter().map(|r| r.work_ops).sum(),
        extra,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphgen::{generators, naive};

    fn sorted_sequential(g: &Graph, algorithm: Algorithm, cfg: EmConfig) -> (Vec<Triangle>, u64) {
        let mut sink = CollectingSink::new();
        let report = crate::enumerate_triangles(g, algorithm, cfg, &mut sink);
        let mut ts = sink.into_triangles();
        ts.sort_unstable();
        (ts, report.io.total())
    }

    #[test]
    fn sharded_run_matches_sequential_for_every_worker_count() {
        let g = generators::erdos_renyi(300, 2400, 7);
        let cfg = EmConfig::new(256, 32);
        for algorithm in [
            Algorithm::CacheAwareRandomized { seed: 5 },
            Algorithm::CacheObliviousRandomized { seed: 5 },
            Algorithm::DeterministicCacheAware {
                family_seed: 5,
                candidates: Some(12),
            },
        ] {
            let (expected, _) = sorted_sequential(&g, algorithm, cfg);
            assert_eq!(expected.len() as u64, naive::count_triangles(&g));
            for workers in 1..=4 {
                let mut sink = CollectingSink::new();
                let report = enumerate_triangles_sharded(
                    &g,
                    algorithm,
                    cfg,
                    ShardPlan::new(workers),
                    &mut sink,
                )
                .expect("valid plan");
                // The merged stream is delivered already sorted.
                assert_eq!(sink.triangles(), &expected[..], "{algorithm:?} P={workers}");
                assert_eq!(report.report.triangles, expected.len() as u64);
                assert_eq!(report.workers.workers(), workers);
            }
        }
    }

    #[test]
    fn single_worker_io_matches_the_sequential_driver_exactly() {
        // The zero-cost pin: with one worker every claim succeeds, so the
        // sharded path must charge byte-for-byte the sequential I/O.
        let g = generators::chung_lu_power_law(250, 1800, 2.3, 9);
        let cfg = EmConfig::new(256, 32);
        for algorithm in [
            Algorithm::CacheAwareRandomized { seed: 3 },
            Algorithm::CacheObliviousRandomized { seed: 3 },
            Algorithm::DeterministicCacheAware {
                family_seed: 3,
                candidates: Some(12),
            },
        ] {
            let (_, sequential_io) = sorted_sequential(&g, algorithm, cfg);
            let mut sink = CollectingSink::new();
            let report =
                enumerate_triangles_sharded(&g, algorithm, cfg, ShardPlan::new(1), &mut sink)
                    .expect("valid plan");
            assert_eq!(
                report.workers.sum_io, sequential_io,
                "{algorithm:?}: P=1 must be a zero-cost refactor"
            );
            assert_eq!(report.workers.max_io, sequential_io);
        }
    }

    #[test]
    fn owned_units_partition_the_unit_stream_and_are_worker_count_invariant() {
        // Satellite regression: the union of per-worker owned units at P=4
        // must be exactly the P=1 unit stream (same indices, same kinds) —
        // i.e. all randomness and numbering derive from the seed and unit
        // order, never from worker identity. Covers both drivers.
        let g = generators::erdos_renyi(300, 2400, 7);
        let cfg = EmConfig::new(128, 16); // small M: several colours
        for algorithm in [
            Algorithm::CacheAwareRandomized { seed: 5 },
            Algorithm::CacheObliviousRandomized { seed: 5 },
        ] {
            let units_at = |workers: usize| {
                let mut sink = CollectingSink::new();
                let report = enumerate_triangles_sharded(
                    &g,
                    algorithm,
                    cfg,
                    ShardPlan::new(workers).with_unit_log(),
                    &mut sink,
                )
                .expect("valid plan");
                report.worker_units
            };
            let solo = units_at(1);
            assert!(
                solo[0].len() >= 4,
                "{algorithm:?}: expected a non-trivial unit stream, got {}",
                solo[0].len()
            );
            let sharded = units_at(4);
            // Each worker owns exactly its residue class...
            for (w, units) in sharded.iter().enumerate() {
                for unit in units {
                    assert_eq!(unit.index % 4, w as u64, "{algorithm:?}");
                }
            }
            // ...and together they are exactly the sequential stream.
            let mut union: Vec<WorkUnit> = sharded.into_iter().flatten().collect();
            union.sort_unstable();
            assert_eq!(union, solo[0], "{algorithm:?}");
        }
    }

    #[test]
    fn checkpoint_spec_is_rejected_with_a_typed_error() {
        let g = generators::erdos_renyi(50, 200, 1);
        let cfg = EmConfig::new(256, 32);
        let spec = CheckpointSpec {
            path: std::path::PathBuf::from("unused.ckpt"),
            interval_io: 100,
        };
        for workers in [1usize, 4] {
            let mut sink = CollectingSink::new();
            let err = enumerate_triangles_sharded_with_checkpoint(
                &g,
                Algorithm::CacheObliviousRandomized { seed: 1 },
                cfg,
                ShardPlan::new(workers),
                &mut sink,
                Some(&spec),
            )
            .expect_err("checkpointing must not silently combine with sharding");
            assert_eq!(err, ShardConfigError::CheckpointUnsupported { workers });
            assert_eq!(sink.len(), 0, "no partial results on a config error");
        }
    }

    #[test]
    fn invalid_plans_are_typed_errors() {
        let g = generators::erdos_renyi(50, 200, 1);
        let cfg = EmConfig::new(256, 32);
        let mut sink = CollectingSink::new();
        assert_eq!(
            enumerate_triangles_sharded(
                &g,
                Algorithm::CacheAwareRandomized { seed: 1 },
                cfg,
                ShardPlan::new(0),
                &mut sink,
            )
            .expect_err("zero workers"),
            ShardConfigError::ZeroWorkers
        );
        assert_eq!(
            enumerate_triangles_sharded(
                &g,
                Algorithm::HuTaoChung,
                cfg,
                ShardPlan::new(2),
                &mut sink
            )
            .expect_err("baselines have no unit decomposition"),
            ShardConfigError::UnsupportedAlgorithm {
                name: "hu-tao-chung"
            }
        );
        let err = ShardConfigError::CheckpointUnsupported { workers: 2 };
        assert!(err
            .to_string()
            .contains("enumerate_triangles_with_recovery"));
    }

    #[test]
    fn sharded_reports_are_deterministic_across_repeated_runs() {
        let g = generators::erdos_renyi(200, 1500, 3);
        let cfg = EmConfig::new(256, 32);
        let run = || {
            let mut sink = CollectingSink::new();
            let r = enumerate_triangles_sharded(
                &g,
                Algorithm::CacheObliviousRandomized { seed: 2 },
                cfg,
                ShardPlan::new(3),
                &mut sink,
            )
            .expect("valid plan");
            (
                r.workers.per_worker.clone(),
                r.report.phases.clone(),
                r.report.extra.clone(),
            )
        };
        assert_eq!(run(), run());
    }
}
