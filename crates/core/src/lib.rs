//! # trienum — I/O-efficient triangle enumeration
//!
//! A from-scratch Rust reproduction of
//! **Pagh & Silvestri, "The Input/Output Complexity of Triangle Enumeration"
//! (PODS 2014)**: the cache-aware randomized algorithm, the cache-oblivious
//! randomized algorithm, the deterministic (derandomized) cache-aware
//! algorithm — all achieving `O(E^{3/2}/(√M·B))` I/Os — together with the
//! matching lower bound of Theorem 3 and the baselines the paper compares
//! against (block-nested-loop join, Dementiev's sort-based algorithm,
//! Hu–Tao–Chung).
//!
//! Everything runs on the external-memory simulator of the [`emsim`] crate,
//! so every block transfer is counted exactly and the paper's bounds can be
//! validated empirically (see the `trienum-bench` crate and EXPERIMENTS.md).
//!
//! ## Quick start
//!
//! ```
//! use emsim::EmConfig;
//! use graphgen::generators;
//! use trienum::{enumerate_triangles, Algorithm, CountingSink};
//!
//! let graph = generators::erdos_renyi(500, 3_000, 42);
//! let cfg = EmConfig::new(1 << 12, 128); // M = 4096 words, B = 128 words
//! let mut sink = CountingSink::new();
//! let report = enumerate_triangles(
//!     &graph,
//!     Algorithm::CacheObliviousRandomized { seed: 7 },
//!     cfg,
//!     &mut sink,
//! );
//! assert_eq!(report.triangles, sink.count());
//! println!("{} triangles using {}", report.triangles, report.io);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod baselines;
mod cache_aware;
mod cache_oblivious;
pub mod checkpoint;
mod derandomized;
mod input;
mod lemma1;
mod lemma2;
pub mod lower_bound;
mod partition;
mod potential;
mod sink;
mod stats;
mod util;
pub mod workunit;

pub use cache_aware::measure_random_coloring_balance;
pub use checkpoint::{Checkpoint, CheckpointSpec};
pub use input::ExtGraph;
pub use sink::{CollectingSink, CountingSink, DurableSink, FnSink, StrictSink, TriangleSink};
pub use stats::RunReport;
pub use workunit::{
    enumerate_triangles_sharded, enumerate_triangles_sharded_with_checkpoint, ShardConfigError,
    ShardPlan, ShardedReport, WorkUnit, WorkUnitKind,
};

// Re-export the configuration and machine types so downstream users need
// only this crate (the machine is part of the public API of the crash-safe
// entry points, which accept a caller-built — possibly fault-injected —
// machine).
pub use emsim::{BackendKind, EmConfig, Machine};

use graphgen::{Graph, Triangle};
use stats::PhaseRecorder;

/// The triangle-enumeration algorithms available in this crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algorithm {
    /// Section 2 / Theorem 4: cache-aware randomized colouring algorithm,
    /// `O(E^{3/2}/(√M·B))` expected I/Os.
    CacheAwareRandomized {
        /// Seed of the 4-wise independent colouring.
        seed: u64,
    },
    /// Section 3 / Theorem 1: cache-oblivious randomized algorithm,
    /// `O(E^{3/2}/(√M·B))` expected I/Os without knowing `M` or `B`.
    CacheObliviousRandomized {
        /// Seed of the per-level refinement bits.
        seed: u64,
    },
    /// Section 4 / Theorem 2: deterministic cache-aware algorithm,
    /// `O(E^{3/2}/(√M·B))` worst-case I/Os assuming `M ≥ E^ε`.
    DeterministicCacheAware {
        /// Seed used to generate the candidate family (the run is fully
        /// deterministic given the seed).
        family_seed: u64,
        /// Optional override of the per-level candidate-family size.
        candidates: Option<usize>,
    },
    /// Baseline: Hu–Tao–Chung (SIGMOD 2013), `O(E²/(M·B))` I/Os.
    HuTaoChung,
    /// Baseline: Dementiev's sort-based algorithm, `O(sort(E^{3/2}))` I/Os.
    SortBased,
    /// Baseline: pipelined block-nested-loop join, `O(E³/(M²·B))` I/Os.
    BlockNestedLoop,
}

impl Algorithm {
    /// A short human-readable name (used in reports and experiment tables).
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::CacheAwareRandomized { .. } => "cache-aware-randomized",
            Algorithm::CacheObliviousRandomized { .. } => "cache-oblivious",
            Algorithm::DeterministicCacheAware { .. } => "deterministic-cache-aware",
            Algorithm::HuTaoChung => "hu-tao-chung",
            Algorithm::SortBased => "sort-based (Dementiev)",
            Algorithm::BlockNestedLoop => "block-nested-loop",
        }
    }

    /// Whether this is one of the paper's own algorithms (as opposed to a
    /// baseline).
    pub fn is_paper_algorithm(&self) -> bool {
        matches!(
            self,
            Algorithm::CacheAwareRandomized { .. }
                | Algorithm::CacheObliviousRandomized { .. }
                | Algorithm::DeterministicCacheAware { .. }
        )
    }

    /// The analytic I/O bound of this algorithm for `e` edges under `cfg`
    /// (the reference curve the experiments normalise against).
    pub fn analytic_bound(&self, cfg: EmConfig, e: usize) -> f64 {
        match self {
            Algorithm::CacheAwareRandomized { .. }
            | Algorithm::CacheObliviousRandomized { .. }
            | Algorithm::DeterministicCacheAware { .. } => cfg.triangle_bound(e),
            Algorithm::HuTaoChung => cfg.hu_tao_chung_bound(e),
            Algorithm::SortBased => cfg.sort_cost(((e as f64).powf(1.5)) as usize) as f64,
            Algorithm::BlockNestedLoop => {
                let e = e as f64;
                e * e * e / (cfg.mem_words as f64 * cfg.mem_words as f64 * cfg.block_words as f64)
            }
        }
    }
}

/// Which implementation of the cache-aware algorithms' step 3 (the
/// colour-triple enumeration) a run uses.
///
/// Hidden from the public API: the production path is always
/// [`Step3Strategy::PivotGrouped`]; the per-triple loop is retained solely
/// so the test-suite can pin the two bit-identical (same triangle multiset,
/// same counts) across graph families and drivers.
#[doc(hidden)]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Step3Strategy {
    /// Group the `c³` colour triples by pivot colour pair `(τ2, τ3)`: build
    /// each pivot chunk's Lemma 2 indexes once and stream all `c` cone
    /// colours' class views against it (zero-copy, no per-triangle filter).
    #[default]
    PivotGrouped,
    /// The pre-grouping reference: one Lemma 2 invocation per colour triple,
    /// with a materialised pivot copy, a re-merged edge set and a
    /// per-triangle cone-colour filter each time.
    PerTripleReference,
}

/// Which order evaluates the cache-oblivious algorithm's colour-refinement
/// tree. Both orders compute the identical tree and triangle multiset (the
/// oracle suite pins them bit-identical).
///
/// Hidden from the public API: the production path is always
/// [`RecursionStrategy::DepthFirst`] — depth-first order is what keeps
/// below-memory subtrees cache-resident, which is where the algorithm's
/// `√M` I/O saving comes from. The level-synchronous driver (one
/// order-preserving partition sweep per tree depth) is retained as a
/// measured alternative so its equivalence and O(depth)-sweeps guarantees
/// stay executable; see `cache_oblivious.rs` for why measurement rejected
/// it as the default.
#[doc(hidden)]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RecursionStrategy {
    /// Per-node depth-first recursion (production): one partition sweep per
    /// internal node, subtrees completed before their siblings start.
    #[default]
    DepthFirst,
    /// Process the tree one depth at a time: a single order-preserving
    /// partition sweep routes every live node to the next level (`O(depth)`
    /// sweeps in total), with per-node metadata in thin disk streams.
    LevelSynchronous,
}

/// All algorithms, in the order the experiment tables list them.
pub const ALL_ALGORITHMS: [Algorithm; 6] = [
    Algorithm::CacheAwareRandomized { seed: 0xC0FFEE },
    Algorithm::CacheObliviousRandomized { seed: 0xC0FFEE },
    Algorithm::DeterministicCacheAware {
        family_seed: 0xC0FFEE,
        candidates: None,
    },
    Algorithm::HuTaoChung,
    Algorithm::SortBased,
    Algorithm::BlockNestedLoop,
];

/// A sink adapter translating triangles from the canonical (degree-ordered)
/// vertex ids back to the caller's original ids before forwarding them.
struct TranslatingSink<'a> {
    graph: &'a ExtGraph,
    inner: &'a mut dyn TriangleSink,
}

impl TriangleSink for TranslatingSink<'_> {
    fn emit(&mut self, t: Triangle) {
        self.inner.emit(self.graph.translate(t));
    }

    fn on_checkpoint(&mut self) {
        // Checkpoint boundaries must reach the wrapped sink — a DurableSink
        // behind the translation commits its buffer on this signal.
        self.inner.on_checkpoint();
    }
}

/// Enumerates every triangle of `graph` with the chosen `algorithm` on a
/// simulated external-memory machine configured by `cfg`, forwarding each
/// triangle (in the caller's original vertex ids) to `sink` exactly once.
///
/// Returns a [`RunReport`] with the exact I/O count, per-phase attribution,
/// peak memory and disk usage, and work counter for the run. Loading the
/// input onto the simulated disk is *not* charged to the algorithm (the
/// model assumes the input already resides in external memory), but all
/// I/Os from the first block read onwards are.
pub fn enumerate_triangles(
    graph: &Graph,
    algorithm: Algorithm,
    cfg: EmConfig,
    sink: &mut dyn TriangleSink,
) -> RunReport {
    enumerate_triangles_with_step3(graph, algorithm, cfg, sink, Step3Strategy::default())
}

/// [`enumerate_triangles`] with an explicit [`Step3Strategy`] for the
/// cache-aware algorithms (ignored by the others). Hidden: only the
/// equivalence test-suite selects a non-default strategy.
#[doc(hidden)]
pub fn enumerate_triangles_with_step3(
    graph: &Graph,
    algorithm: Algorithm,
    cfg: EmConfig,
    sink: &mut dyn TriangleSink,
    strategy: Step3Strategy,
) -> RunReport {
    enumerate_triangles_with_strategies(graph, algorithm, cfg, sink, strategy, Default::default())
}

/// [`enumerate_triangles`] with every strategy toggle explicit: the
/// [`Step3Strategy`] of the cache-aware algorithms and the
/// [`RecursionStrategy`] of the cache-oblivious one (each ignored by the
/// algorithms it does not apply to). Hidden: only the equivalence
/// test-suites select non-default strategies.
#[doc(hidden)]
pub fn enumerate_triangles_with_strategies(
    graph: &Graph,
    algorithm: Algorithm,
    cfg: EmConfig,
    sink: &mut dyn TriangleSink,
    strategy: Step3Strategy,
    recursion: RecursionStrategy,
) -> RunReport {
    let machine = Machine::new(cfg);
    run_on_machine(&machine, graph, algorithm, sink, strategy, recursion)
}

/// Enumerates every triangle of `graph` on a *caller-built* machine — the
/// entry point for backend selection: pass a machine from
/// [`Machine::with_backend`]`(cfg, `[`BackendKind::Disk`]`)` to run the
/// identical algorithm genuinely out-of-core (payloads in a real temp file
/// behind a buffer pool), with the gauge API and charge accounting
/// unchanged. The report counts the same charged transfers on either
/// backend; `machine.disk_counters()` afterwards exposes the *real* block
/// I/O the run performed.
pub fn enumerate_triangles_on(
    machine: &Machine,
    graph: &Graph,
    algorithm: Algorithm,
    sink: &mut dyn TriangleSink,
) -> RunReport {
    run_on_machine(
        machine,
        graph,
        algorithm,
        sink,
        Step3Strategy::default(),
        RecursionStrategy::default(),
    )
}

fn run_on_machine(
    machine: &Machine,
    graph: &Graph,
    algorithm: Algorithm,
    sink: &mut dyn TriangleSink,
    strategy: Step3Strategy,
    recursion: RecursionStrategy,
) -> RunReport {
    let cfg = machine.config();
    let ext = ExtGraph::load(machine, graph);
    // Start from a cold cache and a clean slate of counters for the run
    // itself (the load cost is excluded, as in the model).
    machine.cold_cache();
    machine.gauge().reset_peak();
    let before = machine.stats();

    let mut recorder = PhaseRecorder::new(machine.gauge());
    // emlint: allow(unleased, reason = "run-report bookkeeping outside the measured region, not algorithm memory")
    let mut extra: Vec<(String, f64)> = Vec::new();
    let triangles = {
        let mut translating = TranslatingSink {
            graph: &ext,
            inner: sink,
        };
        match algorithm {
            Algorithm::CacheAwareRandomized { seed } => {
                let out = cache_aware::run_cache_aware_randomized(
                    &ext,
                    cfg,
                    seed,
                    strategy,
                    &mut translating,
                    &mut recorder,
                );
                extra.push(("colors".into(), out.colors as f64));
                extra.push(("x_statistic".into(), out.x_statistic as f64));
                extra.push((
                    "high_degree_vertices".into(),
                    out.high_degree_vertices as f64,
                ));
                extra.push(("step3_chunk_passes".into(), out.step3_chunk_passes as f64));
                out.triangles
            }
            Algorithm::DeterministicCacheAware {
                family_seed,
                candidates,
            } => {
                let (out, info) = derandomized::run_derandomized(
                    &ext,
                    cfg,
                    family_seed,
                    candidates,
                    strategy,
                    &mut translating,
                    &mut recorder,
                );
                extra.push(("colors".into(), info.colors as f64));
                extra.push(("x_statistic".into(), out.x_statistic as f64));
                extra.push(("greedy_levels".into(), info.levels as f64));
                extra.push(("candidates_per_level".into(), info.candidates as f64));
                extra.push(("step3_chunk_passes".into(), out.step3_chunk_passes as f64));
                out.triangles
            }
            Algorithm::CacheObliviousRandomized { seed } => {
                let (n, stats) = cache_oblivious::run_cache_oblivious(
                    &ext,
                    seed,
                    recursion,
                    &mut translating,
                    &mut recorder,
                );
                extra.push(("subproblems".into(), stats.subproblems as f64));
                extra.push(("max_recursion_depth".into(), stats.max_depth as f64));
                extra.push((
                    "high_degree_truncations".into(),
                    stats.high_degree_truncations as f64,
                ));
                extra.push(("partition_sweeps".into(), stats.partition_sweeps as f64));
                n
            }
            Algorithm::HuTaoChung => {
                let io0 = machine.io();
                let n = baselines::hu_tao_chung::run_hu_tao_chung(&ext, cfg, &mut translating);
                recorder.record("pivot_join", io0, machine.io());
                n
            }
            Algorithm::SortBased => {
                let io0 = machine.io();
                let n = baselines::dementiev::sort_based_enumeration(
                    ext.edges(),
                    util::SortKind::Aware,
                    |_| true,
                    &mut translating,
                );
                recorder.record("wedge_sort_join", io0, machine.io());
                n
            }
            Algorithm::BlockNestedLoop => {
                let io0 = machine.io();
                let n = baselines::nested_loop::run_block_nested_loop(&ext, cfg, &mut translating);
                recorder.record("nested_loops", io0, machine.io());
                n
            }
        }
    };

    let after = machine.stats();
    let delta = after.since(&before);
    let (phases, phase_peaks) = recorder.into_parts();
    RunReport {
        algorithm: algorithm.name().to_string(),
        config: cfg,
        edges: ext.edge_count(),
        vertices: ext.vertex_count(),
        triangles,
        io: delta.io,
        phases,
        phase_peaks,
        peak_mem_words: after.peak_mem_words,
        peak_disk_words: after.peak_disk_words,
        work_ops: delta.work_ops,
        extra,
    }
}

/// Convenience wrapper: enumerate and return only the triangle count and the
/// run report (using an internal [`CountingSink`]).
pub fn count_triangles(graph: &Graph, algorithm: Algorithm, cfg: EmConfig) -> (u64, RunReport) {
    let mut sink = CountingSink::new();
    let report = enumerate_triangles(graph, algorithm, cfg, &mut sink);
    (sink.count(), report)
}

/// Crash-safe cache-oblivious enumeration on a caller-built machine.
///
/// Unlike [`enumerate_triangles`], the machine is supplied by the caller —
/// typically [`Machine::with_faults`] under a chaos harness — and emissions
/// reach `sink` only at checkpoint boundaries (and at successful
/// completion), buffered through a [`DurableSink`]. When `spec` is `Some`,
/// the run writes an atomic checkpoint to `spec.path` at each subproblem
/// boundary that crosses `spec.interval_io` simulated I/Os; a later
/// [`resume_enumeration`] against that file (and the same `graph`/`seed`,
/// on a fresh machine) replays to the bit-identical triangle multiset with
/// exactly-once delivery across the crash boundary.
///
/// A `CrashAt` fault surfaces as a panic carrying [`emsim::CrashPoint`];
/// the harness catches it, discards the dead machine (uncommitted buffered
/// emissions die with this call's stack), and resumes.
pub fn enumerate_triangles_with_recovery(
    graph: &Graph,
    machine: &Machine,
    seed: u64,
    sink: &mut dyn TriangleSink,
    spec: Option<&CheckpointSpec>,
) -> RunReport {
    run_recoverable(graph, machine, seed, sink, spec, None)
}

/// Resumes a crashed [`enumerate_triangles_with_recovery`] run from its last
/// checkpoint, on a fresh `machine`. `sink` must be the same sink (or one
/// holding the same state) the crashed run committed into: the checkpoint's
/// high-water mark says how many triangles it already holds, and the resumed
/// run delivers exactly the remainder. Passing `spec` keeps checkpointing
/// armed across the resume, so repeated crashes stay recoverable.
pub fn resume_enumeration(
    graph: &Graph,
    machine: &Machine,
    checkpoint: &Checkpoint,
    sink: &mut dyn TriangleSink,
    spec: Option<&CheckpointSpec>,
) -> RunReport {
    run_recoverable(
        graph,
        machine,
        checkpoint.seed,
        sink,
        spec,
        Some(checkpoint),
    )
}

fn run_recoverable(
    graph: &Graph,
    machine: &Machine,
    seed: u64,
    sink: &mut dyn TriangleSink,
    spec: Option<&CheckpointSpec>,
    resume: Option<&Checkpoint>,
) -> RunReport {
    let cfg = machine.config();
    let ext = ExtGraph::load(machine, graph);
    machine.cold_cache();
    machine.gauge().reset_peak();
    let before = machine.stats();

    let mut recorder = PhaseRecorder::new(machine.gauge());
    let mut durable = DurableSink::resume_from(sink, resume.map_or(0, |c| c.hwm));
    let (triangles, stats) = {
        let mut translating = TranslatingSink {
            graph: &ext,
            inner: &mut durable,
        };
        cache_oblivious::run_cache_oblivious_recoverable(
            &ext,
            seed,
            RecursionStrategy::DepthFirst,
            &mut translating,
            &mut recorder,
            spec,
            resume,
        )
    };
    // The run completed: deliver the tail buffered since the last
    // checkpoint. (On a crash this line is never reached and the tail dies
    // with the buffer — exactly what resume replays.)
    durable.commit();
    debug_assert_eq!(durable.committed(), triangles);

    let after = machine.stats();
    let delta = after.since(&before);
    let (phases, phase_peaks) = recorder.into_parts();
    // emlint: allow(unleased, reason = "run-report bookkeeping outside the measured region, not algorithm memory")
    let extra: Vec<(String, f64)> = vec![
        ("subproblems".into(), stats.subproblems as f64),
        ("max_recursion_depth".into(), stats.max_depth as f64),
        (
            "high_degree_truncations".into(),
            stats.high_degree_truncations as f64,
        ),
        ("partition_sweeps".into(), stats.partition_sweeps as f64),
        ("retry_io".into(), delta.retry_io as f64),
        ("retry_work".into(), delta.retry_work as f64),
    ];
    RunReport {
        algorithm: Algorithm::CacheObliviousRandomized { seed }
            .name()
            .to_string(),
        config: cfg,
        edges: ext.edge_count(),
        vertices: ext.vertex_count(),
        triangles,
        io: delta.io,
        phases,
        phase_peaks,
        peak_mem_words: after.peak_mem_words,
        peak_disk_words: after.peak_disk_words,
        work_ops: delta.work_ops,
        extra,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphgen::{generators, naive};

    #[test]
    fn every_algorithm_agrees_with_the_oracle() {
        let g = generators::erdos_renyi(100, 700, 99);
        let expected = naive::count_triangles(&g);
        let cfg = EmConfig::new(512, 32);
        for alg in ALL_ALGORITHMS {
            let (n, report) = count_triangles(&g, alg, cfg);
            assert_eq!(n, expected, "{}", alg.name());
            assert_eq!(report.triangles, expected, "{}", alg.name());
            assert!(report.io.total() > 0, "{} did no I/O?", alg.name());
        }
    }

    #[test]
    fn emitted_triangles_are_the_oracle_set_in_original_ids() {
        let g = generators::chung_lu_power_law(200, 900, 2.4, 17);
        let expected: std::collections::HashSet<_> =
            naive::enumerate_triangles(&g).into_iter().collect();
        let cfg = EmConfig::new(512, 32);
        for alg in [
            Algorithm::CacheAwareRandomized { seed: 5 },
            Algorithm::CacheObliviousRandomized { seed: 5 },
            Algorithm::DeterministicCacheAware {
                family_seed: 5,
                candidates: Some(16),
            },
        ] {
            let mut sink = CollectingSink::new();
            enumerate_triangles(&g, alg, cfg, &mut sink);
            let got: std::collections::HashSet<_> = sink.triangles().iter().copied().collect();
            assert_eq!(got.len(), sink.len(), "{}: duplicate emissions", alg.name());
            assert_eq!(got, expected, "{}", alg.name());
        }
    }

    #[test]
    fn report_contains_phases_and_extras() {
        let g = generators::erdos_renyi(200, 1500, 1);
        let cfg = EmConfig::new(512, 32);
        let (_, report) = count_triangles(&g, Algorithm::CacheAwareRandomized { seed: 1 }, cfg);
        assert!(report.phase_io("step3_color_triples").is_some());
        assert!(report.extra("x_statistic").is_some());
        assert!(
            report.extra("step3_chunk_passes").unwrap_or(0.0) >= 1.0,
            "the adaptive Lemma 2 pass counter must be surfaced"
        );
        assert!(report.peak_disk_words >= report.edges as u64);
        assert!(report.work_ops > 0);
    }

    #[test]
    fn analytic_bounds_order_matches_theory_when_memory_is_scarce() {
        let cfg = EmConfig::new(1 << 10, 64);
        let e = 1 << 18;
        let paper = Algorithm::CacheAwareRandomized { seed: 0 }.analytic_bound(cfg, e);
        let hu = Algorithm::HuTaoChung.analytic_bound(cfg, e);
        let bnl = Algorithm::BlockNestedLoop.analytic_bound(cfg, e);
        assert!(paper < hu);
        assert!(hu < bnl);
    }

    #[test]
    fn recovery_entry_point_on_a_healthy_machine_matches_the_plain_run_exactly() {
        // The fault/checkpoint layer is pay-for-what-you-use: with no fault
        // plan and no checkpoint spec, the crash-safe entry point must
        // reproduce the ordinary run's triangles, I/O and work to the digit.
        let g = generators::erdos_renyi(150, 1100, 12);
        let cfg = EmConfig::new(512, 32);
        let mut plain_sink = CollectingSink::new();
        let plain = enumerate_triangles(
            &g,
            Algorithm::CacheObliviousRandomized { seed: 6 },
            cfg,
            &mut plain_sink,
        );
        let machine = Machine::new(cfg);
        let mut safe_sink = CollectingSink::new();
        let safe = enumerate_triangles_with_recovery(&g, &machine, 6, &mut safe_sink, None);
        assert_eq!(plain.triangles, safe.triangles);
        assert_eq!(plain.io, safe.io);
        assert_eq!(plain.work_ops, safe.work_ops);
        assert_eq!(plain.peak_disk_words, safe.peak_disk_words);
        assert_eq!(plain_sink.triangles(), safe_sink.triangles());
        assert_eq!(safe.extra("retry_io"), Some(0.0));
        assert_eq!(safe.extra("retry_work"), Some(0.0));
    }

    #[test]
    fn algorithm_names_are_distinct() {
        let names: std::collections::HashSet<_> = ALL_ALGORITHMS.iter().map(|a| a.name()).collect();
        assert_eq!(names.len(), ALL_ALGORITHMS.len());
        assert!(Algorithm::CacheObliviousRandomized { seed: 1 }.is_paper_algorithm());
        assert!(!Algorithm::HuTaoChung.is_paper_algorithm());
    }
}
