//! Triangle sinks: the `emit(·,·,·)` procedure of the paper.
//!
//! The paper studies *enumeration*, not *listing*: every triangle must be
//! reported through a call to `emit` at a moment when its three edges are in
//! internal memory, but it need not be written to external memory. A
//! [`TriangleSink`] is exactly that `emit` procedure; the built-in sinks
//! count, checksum or collect the triangles, and tests use them to check the
//! exactly-once guarantee against the in-memory oracle.

use graphgen::Triangle;

/// The consumer of emitted triangles.
pub trait TriangleSink {
    /// Called exactly once per triangle of the input graph.
    fn emit(&mut self, t: Triangle);
}

/// Counts emitted triangles and folds them into an order-independent digest.
///
/// This is the recommended sink for experiments: it is `O(1)` memory, so it
/// cannot distort the I/O accounting, and the digest still allows an
/// exact set-equality check against [`graphgen::naive::triangle_checksum`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CountingSink {
    count: u64,
    digest: u64,
}

impl CountingSink {
    /// Creates an empty counting sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of triangles emitted so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Order-independent digest (wrapping sum of per-triangle digests) of the
    /// emitted set. Equal sets produce equal digests; duplicated emissions
    /// change the digest.
    pub fn digest(&self) -> u64 {
        self.digest
    }

    /// The `(count, digest)` pair in the same format as
    /// [`graphgen::naive::triangle_checksum`].
    pub fn checksum(&self) -> (u64, u64) {
        (self.count, self.digest)
    }
}

impl TriangleSink for CountingSink {
    fn emit(&mut self, t: Triangle) {
        self.count += 1;
        self.digest = self.digest.wrapping_add(t.digest());
    }
}

/// Collects every emitted triangle in memory. Intended for tests and small
/// examples — on large inputs it deliberately defeats the point of
/// enumeration (the paper's distinction from listing), so experiments use
/// [`CountingSink`] instead.
#[derive(Debug, Default, Clone)]
pub struct CollectingSink {
    triangles: Vec<Triangle>,
}

impl CollectingSink {
    /// Creates an empty collecting sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// The triangles collected so far, in emission order.
    pub fn triangles(&self) -> &[Triangle] {
        &self.triangles
    }

    /// Consumes the sink and returns the collected triangles.
    pub fn into_triangles(self) -> Vec<Triangle> {
        self.triangles
    }

    /// Number of triangles collected.
    pub fn len(&self) -> usize {
        self.triangles.len()
    }

    /// Whether nothing has been emitted yet.
    pub fn is_empty(&self) -> bool {
        self.triangles.is_empty()
    }
}

impl TriangleSink for CollectingSink {
    fn emit(&mut self, t: Triangle) {
        self.triangles.push(t);
    }
}

/// Adapts a closure into a sink.
pub struct FnSink<F: FnMut(Triangle)>(pub F);

impl<F: FnMut(Triangle)> TriangleSink for FnSink<F> {
    fn emit(&mut self, t: Triangle) {
        (self.0)(t)
    }
}

/// A sink that panics on the first duplicate emission — used by the test
/// suite to enforce the exactly-once contract.
#[derive(Debug, Default)]
pub struct StrictSink {
    // emlint: allow(uncharged-std, reason = "verification sink enforcing the exactly-once contract for tests; never part of a measured run")
    seen: std::collections::HashSet<Triangle>,
}

impl StrictSink {
    /// Creates an empty strict sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// The distinct triangles seen.
    // emlint: allow(uncharged-std, reason = "accessor of the verification sink's set; test-only inspection")
    pub fn seen(&self) -> &std::collections::HashSet<Triangle> {
        &self.seen
    }

    /// Number of distinct triangles seen.
    pub fn len(&self) -> usize {
        self.seen.len()
    }

    /// Whether no triangle has been emitted yet.
    pub fn is_empty(&self) -> bool {
        self.seen.is_empty()
    }
}

impl TriangleSink for StrictSink {
    fn emit(&mut self, t: Triangle) {
        assert!(self.seen.insert(t), "triangle {t:?} emitted more than once");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_sink_matches_collecting_sink() {
        let ts = [
            Triangle::new(1, 2, 3),
            Triangle::new(2, 3, 4),
            Triangle::new(1, 3, 9),
        ];
        let mut c = CountingSink::new();
        let mut v = CollectingSink::new();
        for t in ts {
            c.emit(t);
            v.emit(t);
        }
        assert_eq!(c.count(), 3);
        assert_eq!(v.len(), 3);
        let expected: u64 = ts.iter().map(|t| t.digest()).fold(0, u64::wrapping_add);
        assert_eq!(c.digest(), expected);
    }

    #[test]
    fn digest_is_order_independent_but_multiset_sensitive() {
        let a = Triangle::new(1, 2, 3);
        let b = Triangle::new(4, 5, 6);
        let mut s1 = CountingSink::new();
        s1.emit(a);
        s1.emit(b);
        let mut s2 = CountingSink::new();
        s2.emit(b);
        s2.emit(a);
        assert_eq!(s1.checksum(), s2.checksum());
        let mut s3 = CountingSink::new();
        s3.emit(a);
        s3.emit(a);
        assert_ne!(s1.checksum(), s3.checksum());
    }

    #[test]
    fn fn_sink_forwards() {
        let mut n = 0;
        {
            let mut s = FnSink(|_t| n += 1);
            s.emit(Triangle::new(1, 2, 3));
            s.emit(Triangle::new(1, 2, 4));
        }
        assert_eq!(n, 2);
    }

    #[test]
    #[should_panic(expected = "emitted more than once")]
    fn strict_sink_rejects_duplicates() {
        let mut s = StrictSink::new();
        s.emit(Triangle::new(1, 2, 3));
        s.emit(Triangle::new(1, 2, 3));
    }
}
