//! Triangle sinks: the `emit(·,·,·)` procedure of the paper.
//!
//! The paper studies *enumeration*, not *listing*: every triangle must be
//! reported through a call to `emit` at a moment when its three edges are in
//! internal memory, but it need not be written to external memory. A
//! [`TriangleSink`] is exactly that `emit` procedure; the built-in sinks
//! count, checksum or collect the triangles, and tests use them to check the
//! exactly-once guarantee against the in-memory oracle.

use graphgen::Triangle;

/// The consumer of emitted triangles.
pub trait TriangleSink {
    /// Called exactly once per triangle of the input graph.
    fn emit(&mut self, t: Triangle);

    /// Called when the enumeration reaches a durable checkpoint boundary —
    /// immediately *after* the checkpoint file has been atomically replaced.
    /// Ordinary sinks ignore it; [`DurableSink`] uses it to commit buffered
    /// emissions, which is what makes crash-and-resume exactly-once.
    fn on_checkpoint(&mut self) {}
}

/// Counts emitted triangles and folds them into an order-independent digest.
///
/// This is the recommended sink for experiments: it is `O(1)` memory, so it
/// cannot distort the I/O accounting, and the digest still allows an
/// exact set-equality check against [`graphgen::naive::triangle_checksum`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CountingSink {
    count: u64,
    digest: u64,
}

impl CountingSink {
    /// Creates an empty counting sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of triangles emitted so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Order-independent digest (wrapping sum of per-triangle digests) of the
    /// emitted set. Equal sets produce equal digests; duplicated emissions
    /// change the digest.
    pub fn digest(&self) -> u64 {
        self.digest
    }

    /// The `(count, digest)` pair in the same format as
    /// [`graphgen::naive::triangle_checksum`].
    pub fn checksum(&self) -> (u64, u64) {
        (self.count, self.digest)
    }
}

impl TriangleSink for CountingSink {
    fn emit(&mut self, t: Triangle) {
        self.count += 1;
        self.digest = self.digest.wrapping_add(t.digest());
    }
}

/// Collects every emitted triangle in memory. Intended for tests and small
/// examples — on large inputs it deliberately defeats the point of
/// enumeration (the paper's distinction from listing), so experiments use
/// [`CountingSink`] instead.
#[derive(Debug, Default, Clone)]
pub struct CollectingSink {
    triangles: Vec<Triangle>,
}

impl CollectingSink {
    /// Creates an empty collecting sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// The triangles collected so far, in emission order.
    pub fn triangles(&self) -> &[Triangle] {
        &self.triangles
    }

    /// Consumes the sink and returns the collected triangles.
    pub fn into_triangles(self) -> Vec<Triangle> {
        self.triangles
    }

    /// Number of triangles collected.
    pub fn len(&self) -> usize {
        self.triangles.len()
    }

    /// Whether nothing has been emitted yet.
    pub fn is_empty(&self) -> bool {
        self.triangles.is_empty()
    }
}

impl TriangleSink for CollectingSink {
    fn emit(&mut self, t: Triangle) {
        self.triangles.push(t);
    }
}

/// A write-ahead buffer that makes an inner sink's view crash-consistent:
/// emissions are held back until [`TriangleSink::on_checkpoint`] commits
/// them, so a crash between checkpoints discards exactly the triangles whose
/// originating subproblems the matching resume will replay.
///
/// The committed count is the *high-water mark* persisted in each
/// [`crate::checkpoint::Checkpoint`]; [`DurableSink::resume_from`] restores
/// it so a resumed run continues the exactly-once numbering across the
/// crash boundary.
pub struct DurableSink<'a> {
    inner: &'a mut dyn TriangleSink,
    pending: Vec<Triangle>,
    committed: u64,
}

impl<'a> DurableSink<'a> {
    /// Wraps `inner` for a fresh run (high-water mark 0).
    pub fn new(inner: &'a mut dyn TriangleSink) -> Self {
        Self::resume_from(inner, 0)
    }

    /// Wraps `inner` for a run resumed from a checkpoint whose high-water
    /// mark is `high_water_mark`: the inner sink is assumed to have already
    /// received exactly that many triangles before the crash.
    pub fn resume_from(inner: &'a mut dyn TriangleSink, high_water_mark: u64) -> Self {
        Self {
            inner,
            // emlint: allow(unleased, reason = "user-side durability buffer between checkpoint commits; sits outside the measured algorithm like every other sink")
            pending: Vec::new(),
            committed: high_water_mark,
        }
    }

    /// Triangles durably delivered to the inner sink (including any counted
    /// by the resume high-water mark).
    pub fn committed(&self) -> u64 {
        self.committed
    }

    /// Emissions buffered since the last commit.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Flushes the buffer to the inner sink and advances the high-water
    /// mark. Called by [`TriangleSink::on_checkpoint`] and, by the driver,
    /// once more when a run completes.
    pub fn commit(&mut self) {
        for t in self.pending.drain(..) {
            self.inner.emit(t);
            self.committed += 1;
        }
    }
}

impl TriangleSink for DurableSink<'_> {
    fn emit(&mut self, t: Triangle) {
        self.pending.push(t);
    }

    fn on_checkpoint(&mut self) {
        self.commit();
    }
}

/// Adapts a closure into a sink.
pub struct FnSink<F: FnMut(Triangle)>(pub F);

impl<F: FnMut(Triangle)> TriangleSink for FnSink<F> {
    fn emit(&mut self, t: Triangle) {
        (self.0)(t)
    }
}

/// A sink that panics on the first duplicate emission — used by the test
/// suite to enforce the exactly-once contract.
#[derive(Debug, Default)]
pub struct StrictSink {
    // emlint: allow(uncharged-std, reason = "verification sink enforcing the exactly-once contract for tests; never part of a measured run")
    seen: std::collections::HashSet<Triangle>,
}

impl StrictSink {
    /// Creates an empty strict sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// The distinct triangles seen.
    // emlint: allow(uncharged-std, reason = "accessor of the verification sink's set; test-only inspection")
    pub fn seen(&self) -> &std::collections::HashSet<Triangle> {
        &self.seen
    }

    /// Number of distinct triangles seen.
    pub fn len(&self) -> usize {
        self.seen.len()
    }

    /// Whether no triangle has been emitted yet.
    pub fn is_empty(&self) -> bool {
        self.seen.is_empty()
    }
}

impl TriangleSink for StrictSink {
    fn emit(&mut self, t: Triangle) {
        assert!(self.seen.insert(t), "triangle {t:?} emitted more than once");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_sink_matches_collecting_sink() {
        let ts = [
            Triangle::new(1, 2, 3),
            Triangle::new(2, 3, 4),
            Triangle::new(1, 3, 9),
        ];
        let mut c = CountingSink::new();
        let mut v = CollectingSink::new();
        for t in ts {
            c.emit(t);
            v.emit(t);
        }
        assert_eq!(c.count(), 3);
        assert_eq!(v.len(), 3);
        let expected: u64 = ts.iter().map(|t| t.digest()).fold(0, u64::wrapping_add);
        assert_eq!(c.digest(), expected);
    }

    #[test]
    fn digest_is_order_independent_but_multiset_sensitive() {
        let a = Triangle::new(1, 2, 3);
        let b = Triangle::new(4, 5, 6);
        let mut s1 = CountingSink::new();
        s1.emit(a);
        s1.emit(b);
        let mut s2 = CountingSink::new();
        s2.emit(b);
        s2.emit(a);
        assert_eq!(s1.checksum(), s2.checksum());
        let mut s3 = CountingSink::new();
        s3.emit(a);
        s3.emit(a);
        assert_ne!(s1.checksum(), s3.checksum());
    }

    #[test]
    fn fn_sink_forwards() {
        let mut n = 0;
        {
            let mut s = FnSink(|_t| n += 1);
            s.emit(Triangle::new(1, 2, 3));
            s.emit(Triangle::new(1, 2, 4));
        }
        assert_eq!(n, 2);
    }

    #[test]
    #[should_panic(expected = "emitted more than once")]
    fn strict_sink_rejects_duplicates() {
        let mut s = StrictSink::new();
        s.emit(Triangle::new(1, 2, 3));
        s.emit(Triangle::new(1, 2, 3));
    }

    #[test]
    fn durable_sink_commits_only_at_checkpoints() {
        let mut inner = CollectingSink::new();
        {
            let mut d = DurableSink::new(&mut inner);
            d.emit(Triangle::new(1, 2, 3));
            d.emit(Triangle::new(2, 3, 4));
            assert_eq!(d.pending_len(), 2);
            assert_eq!(d.committed(), 0);
            d.on_checkpoint();
            assert_eq!(d.pending_len(), 0);
            assert_eq!(d.committed(), 2);
            // A crash here would drop this uncommitted tail.
            d.emit(Triangle::new(3, 4, 5));
        }
        assert_eq!(inner.len(), 2, "uncommitted emissions must not leak");
    }

    #[test]
    fn durable_sink_resume_restores_the_high_water_mark() {
        let mut inner = CountingSink::new();
        let mut d = DurableSink::resume_from(&mut inner, 41);
        assert_eq!(d.committed(), 41);
        d.emit(Triangle::new(7, 8, 9));
        d.commit();
        assert_eq!(d.committed(), 42);
    }
}
