//! The colour-balance potential driving the derandomization (Section 4).
//!
//! The derandomized algorithm builds its colouring one bit at a time. At
//! level `i` it must pick, from a candidate family of two-colourings
//! `b : V → {0,1}`, one that keeps inequality (4) satisfied:
//!
//! ```text
//! 4^i · X^nonadj_{ξ_i} / c²  +  2^i · X^adj_{ξ_i} / c  ≤  (1 + α)^i · E·M
//! ```
//!
//! where `X^adj` / `X^nonadj` are the contributions to `X_ξ` (equation (1))
//! from pairs of edges that do / do not share a vertex. This module evaluates
//! the two statistics **exactly for every candidate simultaneously**, using
//! only scans and sorts of the edge set:
//!
//! * pass A sorts the edges by their *parent* colour class and, for each
//!   class run, counts how every candidate splits the run into the four child
//!   classes — yielding `X_total` per candidate;
//! * pass B builds the incidence list (each edge listed under both
//!   endpoints), sorts it by `(parent class, vertex)` and, for each run,
//!   counts per candidate how many incident edges land in each ordered child
//!   class — yielding `X^adj` per candidate (two edges that share a vertex
//!   are in the same child class iff their ordered bit-pairs agree).
//!
//! Both passes keep only `O(candidates)` words of counters in memory, so the
//! evaluation respects the memory budget; the I/O cost is `O(sort(E))` per
//! level, matching the `O(E·log(E/M)/B)` preprocessing charge of Theorem 2.

use emalgo::external_sort_by_key;
use emsim::ExtVec;
use graphgen::Edge;
use kwise::{BitFunctionFamily, RefinedColoring};

/// Exact per-candidate statistics at one refinement level.
#[derive(Debug, Clone)]
pub(crate) struct LevelEvaluation {
    /// `X_ξ` (all same-class pairs) per candidate.
    pub x_total: Vec<u128>,
    /// `X^adj_ξ` (same-class pairs sharing a vertex) per candidate.
    pub x_adj: Vec<u128>,
}

impl LevelEvaluation {
    /// `X^nonadj` for candidate `j`.
    pub(crate) fn x_nonadj(&self, j: usize) -> u128 {
        self.x_total[j] - self.x_adj[j]
    }

    /// The potential of inequality (4) for candidate `j` at level `i` with
    /// `c` final colours.
    pub(crate) fn potential(&self, j: usize, level: u32, c: u64) -> f64 {
        let four_i = 4f64.powi(level as i32);
        let two_i = 2f64.powi(level as i32);
        four_i * self.x_nonadj(j) as f64 / (c as f64 * c as f64)
            + two_i * self.x_adj[j] as f64 / c as f64
    }
}

fn pairs(n: u64) -> u128 {
    let n = n as u128;
    n * n.saturating_sub(1) / 2
}

/// Evaluates every candidate of `family` against the current colouring
/// `parent` on edge set `el`.
pub(crate) fn evaluate_candidates(
    el: &ExtVec<Edge>,
    parent: &RefinedColoring,
    family: &BitFunctionFamily,
) -> LevelEvaluation {
    let machine = el.machine().clone();
    let t = family.len();
    let parent_colors = 1u64 << parent.depth();
    // Parent colours are in [1, 2^depth]; class id of edge (u,v) is
    // (ξ(u)-1)·2^depth + (ξ(v)-1).
    let class_of =
        |e: &Edge| -> u64 { (parent.color(e.u) - 1) * parent_colors + (parent.color(e.v) - 1) };

    let mut x_total = vec![0u128; t];
    let mut x_adj = vec![0u128; t];

    // ---- Pass A: X_total via the class-sorted edge list. ----
    {
        let sorted = external_sort_by_key(el, |e| (class_of(e), e.u, e.v));
        // 4 child-class counters per candidate for the current parent class.
        let _lease = machine.gauge().lease((4 * t) as u64);
        let mut counters = vec![[0u64; 4]; t];
        let mut current_class: Option<u64> = None;
        let flush = |counters: &mut Vec<[u64; 4]>, x_total: &mut Vec<u128>| {
            for (j, cs) in counters.iter_mut().enumerate() {
                for c in cs.iter_mut() {
                    x_total[j] += pairs(*c);
                    *c = 0;
                }
            }
        };
        for e in sorted.iter() {
            machine.work(t as u64);
            let cls = class_of(&e);
            if current_class != Some(cls) {
                if current_class.is_some() {
                    flush(&mut counters, &mut x_total);
                }
                current_class = Some(cls);
            }
            for (j, cs) in counters.iter_mut().enumerate() {
                let bu = u64::from(family.eval(j, e.u as u64));
                let bv = u64::from(family.eval(j, e.v as u64));
                cs[(bu * 2 + bv) as usize] += 1;
            }
        }
        if current_class.is_some() {
            flush(&mut counters, &mut x_total);
        }
    }

    // ---- Pass B: X_adj via the incidence list. ----
    {
        // Entry: word0 = parent class, word1 = (vertex << 32) | other.
        let mut incidence: ExtVec<(u64, u64)> = ExtVec::new(&machine);
        for e in el.iter() {
            machine.work(1);
            let cls = class_of(&e);
            incidence.push((cls, ((e.u as u64) << 32) | e.v as u64));
            incidence.push((cls, ((e.v as u64) << 32) | e.u as u64));
        }
        let sorted = external_sort_by_key(&incidence, |&(cls, vo)| (cls, vo));
        drop(incidence);

        let _lease = machine.gauge().lease((4 * t) as u64);
        let mut counters = vec![[0u64; 4]; t];
        let mut current_key: Option<(u64, u32)> = None;
        let flush = |counters: &mut Vec<[u64; 4]>, x_adj: &mut Vec<u128>| {
            for (j, cs) in counters.iter_mut().enumerate() {
                for c in cs.iter_mut() {
                    x_adj[j] += pairs(*c);
                    *c = 0;
                }
            }
        };
        for (cls, vo) in sorted.iter() {
            machine.work(t as u64);
            let vertex = (vo >> 32) as u32;
            let other = (vo & 0xffff_ffff) as u32;
            if current_key != Some((cls, vertex)) {
                if current_key.is_some() {
                    flush(&mut counters, &mut x_adj);
                }
                current_key = Some((cls, vertex));
            }
            for (j, cs) in counters.iter_mut().enumerate() {
                let bx = u64::from(family.eval(j, vertex as u64));
                let bo = u64::from(family.eval(j, other as u64));
                // Ordered (smaller endpoint, larger endpoint) bit pair.
                let idx = if vertex < other {
                    bx * 2 + bo
                } else {
                    bo * 2 + bx
                };
                cs[idx as usize] += 1;
            }
        }
        if current_key.is_some() {
            flush(&mut counters, &mut x_adj);
        }
    }

    LevelEvaluation { x_total, x_adj }
}

/// Reference (in-core) computation of the same statistics for one concrete
/// refinement — used by the unit tests to validate `evaluate_candidates`.
#[cfg(test)]
pub(crate) fn reference_statistics(edges: &[Edge], color: impl Fn(u32) -> u64) -> (u128, u128) {
    use std::collections::HashMap;
    let mut class_sizes: HashMap<(u64, u64), u64> = HashMap::new();
    let mut vertex_class: HashMap<(u32, (u64, u64)), u64> = HashMap::new();
    for e in edges {
        let cls = (color(e.u), color(e.v));
        *class_sizes.entry(cls).or_default() += 1;
        *vertex_class.entry((e.u, cls)).or_default() += 1;
        *vertex_class.entry((e.v, cls)).or_default() += 1;
    }
    let x_total: u128 = class_sizes.values().map(|&n| pairs(n)).sum();
    let x_adj: u128 = vertex_class.values().map(|&n| pairs(n)).sum();
    (x_total, x_adj)
}

#[cfg(test)]
mod tests {
    use super::*;
    use emsim::{EmConfig, Machine};
    use graphgen::generators;

    #[test]
    fn pairs_formula() {
        assert_eq!(pairs(0), 0);
        assert_eq!(pairs(1), 0);
        assert_eq!(pairs(2), 1);
        assert_eq!(pairs(10), 45);
    }

    #[test]
    fn candidate_statistics_match_reference() {
        let g = generators::erdos_renyi(100, 600, 21);
        let machine = Machine::new(EmConfig::new(1 << 11, 64));
        let mut edges: Vec<Edge> = g.edges().to_vec();
        edges.sort_unstable();
        let el = ExtVec::from_slice(&machine, &edges);

        // One refinement level already applied, so parent classes are
        // non-trivial.
        let fam = BitFunctionFamily::new(6, 42);
        let mut parent = RefinedColoring::identity();
        parent.push(fam.function(5));

        let eval = evaluate_candidates(&el, &parent, &fam);
        for j in 0..fam.len() {
            let refined_color = |v: u32| -> u64 {
                2 * parent.color(v) - u64::from(fam.function(j).eval_bit(v as u64))
            };
            let (x_total, x_adj) = reference_statistics(&edges, refined_color);
            assert_eq!(eval.x_total[j], x_total, "candidate {j} x_total");
            assert_eq!(eval.x_adj[j], x_adj, "candidate {j} x_adj");
            assert!(eval.x_nonadj(j) <= eval.x_total[j]);
        }
    }

    #[test]
    fn potential_prefers_balanced_candidates() {
        // On a sizable graph, the minimum potential across candidates should
        // not exceed the average — trivially true, but it guards against sign
        // or scaling errors in the potential formula.
        let g = generators::erdos_renyi(200, 2000, 5);
        let machine = Machine::new(EmConfig::new(1 << 11, 64));
        let mut edges: Vec<Edge> = g.edges().to_vec();
        edges.sort_unstable();
        let el = ExtVec::from_slice(&machine, &edges);
        let fam = BitFunctionFamily::new(8, 7);
        let parent = RefinedColoring::identity();
        let eval = evaluate_candidates(&el, &parent, &fam);
        let potentials: Vec<f64> = (0..fam.len()).map(|j| eval.potential(j, 1, 4)).collect();
        let min = potentials.iter().cloned().fold(f64::INFINITY, f64::min);
        let avg = potentials.iter().sum::<f64>() / potentials.len() as f64;
        assert!(min <= avg);
        assert!(min > 0.0);
    }
}
