//! The deterministic cache-aware algorithm (paper Section 4, Theorem 2).
//!
//! Identical to the cache-aware algorithm of Section 2 except that the vertex
//! colouring is not drawn at random: it is built greedily, one bit per level,
//! by choosing from a small candidate family the bit function minimising the
//! potential of inequality (4). After `log c` levels the resulting colouring
//! `ξ` provably satisfies `X_ξ ≤ e·E·M` (the derandomized analogue of
//! Lemma 3), which is what Theorem 4's analysis needs, so the deterministic
//! algorithm inherits the `O(E^{3/2}/(√M·B))` bound under `M ≥ E^ε`.
//!
//! See DESIGN.md §5 for the documented substitution in how the candidate
//! family is generated; the greedy selection and the per-level inequality are
//! implemented exactly as in the paper, and the final `X_ξ` is measured and
//! reported so the guarantee is verified on every run.

use emsim::{EmConfig, IoStats};
use kwise::{BitFunctionFamily, RefinedColoring};

use crate::cache_aware::{number_of_colors, run_colored, split_high_low_degree, ColoredRunOutcome};
use crate::input::ExtGraph;
use crate::potential::evaluate_candidates;
use crate::sink::TriangleSink;
use crate::stats::PhaseRecorder;
use crate::workunit::ShardCursor;
use crate::Step3Strategy;

/// Extra information reported by a derandomized run.
#[derive(Debug, Clone)]
pub(crate) struct DerandInfo {
    /// Number of colours `c` (rounded up to a power of two, as in the paper).
    pub colors: u64,
    /// Number of greedy refinement levels (`log₂ c`).
    pub levels: u32,
    /// Size of the candidate family per level.
    pub candidates: usize,
    /// The potential value of the chosen candidate at every level.
    #[allow(dead_code)] // consumed by tests and kept for diagnostics
    pub chosen_potentials: Vec<f64>,
    /// The per-level bound `(1+α)^i · E·M` of inequality (4).
    #[allow(dead_code)] // consumed by tests and kept for diagnostics
    pub level_bounds: Vec<f64>,
}

/// Runs the deterministic cache-aware algorithm. `candidate_override`, when
/// set, fixes the per-level candidate-family size (otherwise the
/// `O(log² V)`-style recommendation of Lemma 6 is used).
pub(crate) fn run_derandomized(
    graph: &ExtGraph,
    cfg: EmConfig,
    family_seed: u64,
    candidate_override: Option<usize>,
    strategy: Step3Strategy,
    sink: &mut dyn TriangleSink,
    recorder: &mut PhaseRecorder,
) -> (ColoredRunOutcome, DerandInfo) {
    run_derandomized_sharded(
        graph,
        cfg,
        family_seed,
        candidate_override,
        strategy,
        sink,
        recorder,
        &mut ShardCursor::solo(),
    )
}

/// [`run_derandomized`] under a shard cursor.
///
/// The greedy per-level bit selection (step 0) is **replicated** on every
/// worker rather than sharded: each refinement level consumes the colouring
/// chosen by all previous levels, so the levels form a sequential dependency
/// chain that a statically assigned worker pool cannot split without
/// cross-worker barriers. The selection is fully deterministic given
/// `family_seed` — no worker-dependent state enters it — so every worker
/// derives the identical colouring and then shares `run_colored`'s unit
/// stream (high-degree vertices + pivot pairs), which is where the actual
/// enumeration cost lives.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_derandomized_sharded(
    graph: &ExtGraph,
    cfg: EmConfig,
    family_seed: u64,
    candidate_override: Option<usize>,
    strategy: Step3Strategy,
    sink: &mut dyn TriangleSink,
    recorder: &mut PhaseRecorder,
    shard: &mut ShardCursor,
) -> (ColoredRunOutcome, DerandInfo) {
    let machine = graph.machine().clone();
    let e = graph.edge_count();

    // As in the paper, round the number of colours up to a power of two so
    // the colouring can be built bit by bit (this can only decrease X_ξ).
    let c = number_of_colors(e, cfg.mem_words).next_power_of_two();
    let levels = c.trailing_zeros();
    let candidates = candidate_override
        .unwrap_or_else(|| BitFunctionFamily::recommended_size(graph.vertex_count(), c as usize));

    // The greedy selection operates on the low-degree edge set E_l, exactly
    // like the colouring it replaces.
    let before: IoStats = machine.io();
    let (_high, el) = split_high_low_degree(graph.edges(), cfg.mem_words);
    let el_len = el.len() as f64;

    let alpha = if levels == 0 {
        0.0
    } else {
        1.0 / levels as f64
    };
    let mut coloring = RefinedColoring::identity();
    let mut chosen_potentials = Vec::new();
    let mut level_bounds = Vec::new();
    for level in 1..=levels {
        let family = BitFunctionFamily::new(
            candidates,
            family_seed
                .wrapping_mul(0xA24B_AED4_963E_E407)
                .wrapping_add(level as u64),
        );
        let _family_lease = machine.gauge().lease((4 * family.len()) as u64);
        let eval = evaluate_candidates(&el, &coloring, &family);
        let mut best = 0usize;
        let mut best_potential = f64::INFINITY;
        for j in 0..family.len() {
            let p = eval.potential(j, level, c);
            if p < best_potential {
                best_potential = p;
                best = j;
            }
        }
        coloring.push(family.function(best));
        chosen_potentials.push(best_potential);
        level_bounds.push((1.0 + alpha).powi(level as i32) * el_len * cfg.mem_words as f64);
    }
    drop(el);
    recorder.record("step0_greedy_coloring", before, machine.io());

    // The refined colouring assigns values in [1, c]; the shared driver
    // expects colours in [0, c).
    let color = move |v: u32| coloring.color(v) - 1;
    let outcome = run_colored(graph, cfg, c, &color, strategy, sink, recorder, shard);

    (
        outcome,
        DerandInfo {
            colors: c,
            levels,
            candidates,
            chosen_potentials,
            level_bounds,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::StrictSink;
    use emsim::Machine;
    use graphgen::{generators, naive};

    fn run(g: &graphgen::Graph, cfg: EmConfig) -> (u64, ColoredRunOutcome, DerandInfo) {
        let machine = Machine::new(cfg);
        let eg = ExtGraph::load(&machine, g);
        let mut sink = StrictSink::new();
        let mut rec = PhaseRecorder::new(machine.gauge());
        let (out, info) = run_derandomized(
            &eg,
            cfg,
            1,
            Some(24),
            Step3Strategy::default(),
            &mut sink,
            &mut rec,
        );
        (out.triangles, out, info)
    }

    #[test]
    fn counts_match_oracle() {
        for seed in [2u64, 8] {
            let g = generators::erdos_renyi(140, 1100, seed);
            let expected = naive::count_triangles(&g);
            let (got, _, _) = run(&g, EmConfig::new(1 << 9, 32));
            assert_eq!(got, expected, "seed {seed}");
        }
    }

    #[test]
    fn deterministic_runs_are_identical() {
        let g = generators::erdos_renyi(120, 900, 4);
        let cfg = EmConfig::new(1 << 9, 32);
        let (a, outa, _) = run(&g, cfg);
        let (b, outb, _) = run(&g, cfg);
        assert_eq!(a, b);
        assert_eq!(outa.x_statistic, outb.x_statistic);
    }

    #[test]
    fn final_coloring_satisfies_the_e_em_bound() {
        // The derandomized guarantee: X_ξ ≤ e·E·M (with E the low-degree edge
        // count, bounded by the total edge count).
        let g = generators::erdos_renyi(500, 6000, 3);
        let cfg = EmConfig::new(512, 32);
        let (_, out, info) = run(&g, cfg);
        assert!(info.colors.is_power_of_two());
        let bound = std::f64::consts::E * 6000.0 * cfg.mem_words as f64;
        assert!(
            (out.x_statistic as f64) <= bound,
            "X_xi = {} exceeds e*E*M = {bound}",
            out.x_statistic
        );
        // Each chosen level's potential stays below its inequality-(4) bound.
        for (p, b) in info.chosen_potentials.iter().zip(&info.level_bounds) {
            assert!(p <= b, "level potential {p} exceeds bound {b}");
        }
    }

    #[test]
    fn shares_the_adaptive_step3_driver_with_the_randomized_algorithm() {
        // The derandomized driver funnels into the same `run_colored` step 3
        // as the randomized one, so the adaptive Lemma 2 sizing must show up
        // here too: the pass counter is reported, and a run at a doubled
        // memory budget needs (roughly half, but at least) fewer passes.
        let g = generators::erdos_renyi(400, 4000, 9);
        let passes_at = |mem: usize| -> u64 {
            let cfg = EmConfig::new(mem, 32);
            let machine = Machine::new(cfg);
            let eg = ExtGraph::load(&machine, &g);
            let mut sink = StrictSink::new();
            let mut rec = PhaseRecorder::new(machine.gauge());
            let (out, _) = run_derandomized(
                &eg,
                cfg,
                1,
                Some(16),
                Step3Strategy::PivotGrouped,
                &mut sink,
                &mut rec,
            );
            assert_eq!(out.triangles, naive::count_triangles(&g));
            out.step3_chunk_passes
        };
        let small = passes_at(256);
        let large = passes_at(1024);
        assert!(small >= 1 && large >= 1);
        assert!(
            large < small,
            "4x memory must cut step-3 chunk passes ({small} -> {large})"
        );
    }

    #[test]
    fn single_color_case_degenerates_gracefully() {
        // When E ≤ M the number of colours is 1 and no greedy level runs.
        let g = generators::clique(12);
        let cfg = EmConfig::new(1 << 12, 64);
        let (got, _, info) = run(&g, cfg);
        assert_eq!(got, 220);
        assert_eq!(info.levels, 0);
        assert!(info.chosen_potentials.is_empty());
    }

    #[test]
    fn triangle_free_input_yields_zero() {
        let g = generators::complete_bipartite(40, 40);
        let (got, _, _) = run(&g, EmConfig::new(256, 32));
        assert_eq!(got, 0);
    }
}
