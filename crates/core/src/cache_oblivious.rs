//! The cache-oblivious randomized algorithm (paper Section 3, Theorem 1).
//!
//! The algorithm solves the more general `(c0, c1, c2)`-enumeration problem:
//! given a colouring `ξ` of the vertices, enumerate the triangles
//! `{u, v, w}`, `u < v < w`, with `(ξ(u), ξ(v), ξ(w)) = (c0, c1, c2)`.
//! Plain triangle enumeration is the `(1, 1, 1)` problem under the constant
//! colouring.
//!
//! Each recursive call:
//!
//! 1. enumerates the *proper* triangles through every **local high-degree
//!    vertex** (degree ≥ E/8 within the current subproblem; at most 16 of
//!    them) with Lemma 1, removing each such vertex's edges afterwards;
//! 2. refines the colouring with one fresh random bit per vertex,
//!    `ξ'(v) = 2ξ(v) − b(v)`, `b` drawn from a 4-wise independent family;
//! 3. recurses on the 8 colour vectors
//!    `{2c0−1, 2c0} × {2c1−1, 2c1} × {2c2−1, 2c2}`, each restricted to the
//!    edges compatible with that vector.
//!
//! The recursion bottoms out on empty inputs, on inputs of constant size, or
//! at depth `log₄ E` (where the sort-based algorithm of Dementiev finishes
//! the job) — none of which involves the machine parameters `M` or `B`. The
//! **code below never reads the machine configuration**; every I/O the run is
//! charged comes from LRU misses in the simulator, which is exactly how a
//! cache-oblivious algorithm is supposed to be evaluated.

use emsim::ExtVec;
use graphgen::{Edge, Triangle, VertexId};
use kwise::{FourWise, RefinedColoring};

use crate::baselines::dementiev::sort_based_enumeration;
use crate::input::ExtGraph;
use crate::lemma1::enumerate_through_vertex;
use crate::sink::TriangleSink;
use crate::util::{
    degree_table, remove_incident_edges, scan_filter_edges, vertices_with_degree, SortKind,
};

/// Subproblems of at most this many edges are finished with the base-case
/// algorithm directly. A fixed constant — the cache-oblivious model forbids
/// dependence on `M`/`B`, not on constants.
const BASE_CASE_EDGES: usize = 24;

/// A colour vector `(c0, c1, c2)` of a subproblem.
type ColorVector = (u64, u64, u64);

struct CoContext<'a> {
    sink: &'a mut dyn TriangleSink,
    emitted: u64,
    depth_limit: usize,
    next_seed: u64,
    /// Number of recursive calls made (reported for the experiments).
    subproblems: u64,
    /// Maximum recursion depth reached.
    max_depth: usize,
}

/// Statistics of a cache-oblivious run (besides the emitted count).
#[derive(Debug, Clone, Copy)]
pub(crate) struct CacheObliviousStats {
    /// Number of recursive subproblems solved.
    pub subproblems: u64,
    /// Deepest recursion level reached.
    pub max_depth: usize,
}

/// Runs the cache-oblivious randomized algorithm on `graph` with the given
/// random seed; returns the number of triangles emitted and recursion
/// statistics.
pub(crate) fn run_cache_oblivious(
    graph: &ExtGraph,
    seed: u64,
    sink: &mut dyn TriangleSink,
) -> (u64, CacheObliviousStats) {
    let machine = graph.machine().clone();
    let e = graph.edge_count();
    if e < 3 {
        return (
            0,
            CacheObliviousStats {
                subproblems: 1,
                max_depth: 0,
            },
        );
    }
    // Depth limit log₄ E (a function of the input size only).
    let depth_limit = ((e as f64).ln() / 4f64.ln()).ceil() as usize;

    // Copy the edge list so the recursion may consume it (one scan).
    let mut root: ExtVec<Edge> = ExtVec::new(&machine);
    root.extend_from(graph.edges());

    let mut ctx = CoContext {
        sink,
        emitted: 0,
        depth_limit,
        next_seed: seed,
        subproblems: 0,
        max_depth: 0,
    };
    let mut coloring = RefinedColoring::identity();
    solve(&mut ctx, root, &mut coloring, (1, 1, 1), 0);
    let stats = CacheObliviousStats {
        subproblems: ctx.subproblems,
        max_depth: ctx.max_depth,
    };
    (ctx.emitted, stats)
}

/// Whether edge `e` is compatible with colour vector `target` under `coloring`
/// (paper: not *incompatible*, i.e. its ordered colour pair appears among the
/// pairs a proper triangle would use).
fn compatible(e: &Edge, coloring: &RefinedColoring, target: ColorVector) -> bool {
    let cu = coloring.color(e.u);
    let cv = coloring.color(e.v);
    let (c0, c1, c2) = target;
    (cu, cv) == (c0, c1) || (cu, cv) == (c1, c2) || (cu, cv) == (c0, c2)
}

/// Whether triangle `t` is proper for `target` under `coloring`.
fn proper(t: &Triangle, coloring: &RefinedColoring, target: ColorVector) -> bool {
    (
        coloring.color(t.a),
        coloring.color(t.b),
        coloring.color(t.c),
    ) == target
}

fn solve(
    ctx: &mut CoContext<'_>,
    edges: ExtVec<Edge>,
    coloring: &mut RefinedColoring,
    target: ColorVector,
    depth: usize,
) {
    ctx.subproblems += 1;
    ctx.max_depth = ctx.max_depth.max(depth);
    if edges.len() < 3 {
        return;
    }
    if edges.len() <= BASE_CASE_EDGES || depth >= ctx.depth_limit {
        // Base case: Dementiev's sort-based algorithm (with the
        // cache-oblivious sort), restricted to proper triangles.
        let emitted = {
            let coloring_ref: &RefinedColoring = coloring;
            sort_based_enumeration(
                &edges,
                SortKind::Oblivious,
                |t| proper(&t, coloring_ref, target),
                ctx.sink,
            )
        };
        ctx.emitted += emitted;
        return;
    }

    // ---- Step 1: local high-degree vertices. ----
    let e_here = edges.len();
    let degrees = degree_table(&edges, SortKind::Oblivious);
    let mut high: Vec<VertexId> = vertices_with_degree(&degrees, |d| 8 * d as usize >= e_here);
    drop(degrees);
    high.sort_unstable();
    debug_assert!(high.len() <= 16, "more than 16 local high-degree vertices");

    let mut current = edges;
    for &v in &high {
        let emitted = {
            let coloring_ref: &RefinedColoring = coloring;
            enumerate_through_vertex(
                &current,
                v,
                SortKind::Oblivious,
                |t| proper(&t, coloring_ref, target),
                ctx.sink,
            )
        };
        ctx.emitted += emitted;
        // Remove the vertex's edges so no later step sees them again.
        current = remove_incident_edges(&current, &[v]);
        if current.len() < 3 {
            return;
        }
    }

    // ---- Step 2: refine the colouring with one fresh random bit. ----
    let bit = FourWise::new(splitmix(&mut ctx.next_seed));
    coloring.push(bit);

    // ---- Step 3: the eight child colour vectors. ----
    let (c0, c1, c2) = target;
    for z0 in [2 * c0 - 1, 2 * c0] {
        for z1 in [2 * c1 - 1, 2 * c1] {
            for z2 in [2 * c2 - 1, 2 * c2] {
                let child_target = (z0, z1, z2);
                let child = {
                    let coloring_ref: &RefinedColoring = coloring;
                    scan_filter_edges(&current, |e| compatible(e, coloring_ref, child_target))
                };
                solve(ctx, child, coloring, child_target, depth + 1);
            }
        }
    }
    coloring.pop();
}

/// A small deterministic seed sequence (splitmix64) so one user-supplied seed
/// drives the whole recursion reproducibly.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::StrictSink;
    use emsim::{EmConfig, Machine};
    use graphgen::{generators, naive};

    fn run(g: &graphgen::Graph, cfg: EmConfig, seed: u64) -> (u64, u64, CacheObliviousStats) {
        let machine = Machine::new(cfg);
        let eg = ExtGraph::load(&machine, g);
        machine.cold_cache();
        let before = machine.io().total();
        let mut sink = StrictSink::new();
        let (n, stats) = run_cache_oblivious(&eg, seed, &mut sink);
        (n, machine.io().total() - before, stats)
    }

    #[test]
    fn counts_match_oracle_on_er_graphs() {
        for seed in [3u64, 12] {
            let g = generators::erdos_renyi(120, 900, seed);
            let expected = naive::count_triangles(&g);
            let (got, _, stats) = run(&g, EmConfig::new(1 << 9, 32), seed);
            assert_eq!(got, expected, "seed {seed}");
            assert!(stats.subproblems > 1);
        }
    }

    #[test]
    fn counts_match_oracle_on_structured_graphs() {
        let clique = generators::clique(20);
        let (got, _, _) = run(&clique, EmConfig::new(256, 32), 1);
        assert_eq!(got, 1140);

        let star = generators::star(200);
        let (got, _, _) = run(&star, EmConfig::new(256, 32), 1);
        assert_eq!(got, 0);

        let lolli = generators::lollipop(10, 40);
        let (got, _, _) = run(&lolli, EmConfig::new(256, 32), 2);
        assert_eq!(got, 120);
    }

    #[test]
    fn different_seeds_agree_on_the_count() {
        let g = generators::erdos_renyi(100, 800, 5);
        let expected = naive::count_triangles(&g);
        for seed in 0..4u64 {
            let (got, _, _) = run(&g, EmConfig::new(512, 32), seed);
            assert_eq!(got, expected, "seed {seed}");
        }
    }

    #[test]
    fn more_memory_reduces_ios_without_any_code_awareness() {
        // The defining property of cache-obliviousness: the same run on a
        // machine with more internal memory performs fewer block transfers,
        // even though the algorithm never inspects M.
        let g = generators::erdos_renyi(300, 3000, 9);
        let (_, io_small, _) = run(&g, EmConfig::new(256, 32), 7);
        let (_, io_large, _) = run(&g, EmConfig::new(1 << 13, 32), 7);
        assert!(
            io_large * 2 < io_small,
            "expected fewer I/Os with 32x memory (small={io_small}, large={io_large})"
        );
    }

    #[test]
    fn recursion_depth_is_bounded_by_log4_e() {
        let g = generators::erdos_renyi(200, 1600, 3);
        let (_, _, stats) = run(&g, EmConfig::new(512, 32), 11);
        let limit = ((1600f64).ln() / 4f64.ln()).ceil() as usize;
        assert!(stats.max_depth <= limit);
    }
}
