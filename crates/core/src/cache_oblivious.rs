//! The cache-oblivious randomized algorithm (paper Section 3, Theorem 1).
//!
//! The algorithm solves the more general `(c0, c1, c2)`-enumeration problem:
//! given a colouring `ξ` of the vertices, enumerate the triangles
//! `{u, v, w}`, `u < v < w`, with `(ξ(u), ξ(v), ξ(w)) = (c0, c1, c2)`.
//! Plain triangle enumeration is the `(1, 1, 1)` problem under the constant
//! colouring.
//!
//! Each subproblem of the colour-refinement tree:
//!
//! 1. enumerates the *proper* triangles through every **local high-degree
//!    vertex** (degree ≥ E/8 within the current subproblem; at most 16 of
//!    them, see [`MAX_LOCAL_HIGH_DEGREE`]) with Lemma 1, removing each such
//!    vertex's edges afterwards;
//! 2. refines the colouring with one fresh random bit per vertex,
//!    `ξ'(v) = 2ξ(v) − b(v)`, `b` drawn from a 4-wise independent family —
//!    one bit function **per tree level**, installed up front as a batch
//!    (see [`RefinedColoring::push_batch`]), so sibling subproblems share
//!    the same refinement and the whole tree is a function of the seed and
//!    the level alone (which is what lets two different tree-evaluation
//!    orders compute the identical tree);
//! 3. splits into the 8 colour vectors
//!    `{2c0−1, 2c0} × {2c1−1, 2c1} × {2c2−1, 2c2}`, each restricted to the
//!    edges compatible with that vector.
//!
//! The recursion bottoms out on constant-size inputs or at depth `log₄ E` —
//! neither involves the machine parameters. The **code below never reads
//! the machine configuration**; every I/O the run is charged comes from LRU
//! misses in the simulator, which is exactly how a cache-oblivious algorithm
//! is supposed to be evaluated.
//!
//! ## Subproblem representation: canonical edge lists
//!
//! A subproblem is its **canonical edge list**: every edge `(u, v)`, `u < v`,
//! one word each, sorted lexicographically — half the volume of the
//! incidence-list (both-orientations) representation this module previously
//! used. The list is "sorted" exactly once, at the root, through the
//! defensive [`emalgo::oblivious_sort_by_key`], whose sorted-input detection
//! turns the already-sorted input into a plain copy scan. Partitioning is
//! **order-preserving** (colour refinement splits classes without reordering
//! within them), so every child inherits the parent's `(u, v)` sort and *no
//! subproblem below the root ever sorts its input* — a one-scan
//! `debug_assert` checks the inherited sortedness during each routing scan
//! at zero extra I/O.
//!
//! The price of dropping the reverse orientations is that a vertex's local
//! degree is no longer a run length (a high-id hub appears only as a
//! *destination*, scattered across the sorted list). Step 1 instead keeps a
//! [`HeavyHitters`] summary (Misra–Gries, 16 counters) **per child, fed by
//! the parent's routing scan**: every vertex with degree ≥ E_child/8 — a
//! frequency above `1/17` of the child's endpoint stream — is guaranteed to
//! be tracked, with counter error bounded by the decrement count. A child
//! whose summary proves no vertex *can* clear the bar (the common case)
//! skips degree work entirely; otherwise one exact counting scan over the
//! ≤ 16 candidates settles the set. The result is provably the exact
//! high-degree set, at the cost of one extra scan only when a plausible
//! candidate exists.
//!
//! ## Base cases
//!
//! * `E ≤ `[`BASE_CASE_EDGES`]: the subproblem is **constant-sized**, so it
//!   is joined entirely in core (the edge list is leased on the memory
//!   gauge, wedges are probed against it by binary search) — no wedge file,
//!   no sort, no extra I/O beyond the one segment read. This matches the
//!   paper's O(1)-size base case, which assumes constant working storage.
//! * **oversized depth-limit leaves** (`E > `[`BASE_CASE_EDGES`] at depth
//!   `log₄ E`, rare): these are *batched across the whole run* — each
//!   appends its wedges and its (already sorted) edges, tagged by leaf id,
//!   to two run-global files; at the end the wedge file is sorted **once**
//!   (`sort(ΣW)` instead of `Σ sort(W_leaf)`) and a single tagged
//!   two-source merge ([`emalgo::kway_merge_tagged`]) closes every leaf's
//!   wedges against its edges in one pass (see [`close_oversized_leaves`]).
//!
//! ## Two tree-evaluation orders
//!
//! [`RecursionStrategy::DepthFirst`] (production) evaluates the tree in
//! depth-first order over an **explicit subproblem stack** (one frame per
//! pending node, plus gauge-lease markers so the accounting matches the old
//! recursion frame for frame). The explicit stack is what makes the run
//! *checkpointable*: at any subproblem boundary the whole frontier can be
//! serialised as `O(1)`-word descriptors (depth, colour vector, removed
//! vertices) and the edge lists recovered later by order-preserving filter
//! scans of the root — see [`crate::checkpoint`]. Depth-first order is what
//! makes the run cache-adaptive: a
//! subtree whose working set fits internal memory is created, consumed and
//! freed before the LRU cache ever evicts it, so deep levels cost no I/O at
//! all and the charged I/O concentrates on the above-memory part of the
//! tree — exactly the structure Theorem 1's `O(E^{3/2}/(√M·B))` bound needs.
//!
//! [`RecursionStrategy::LevelSynchronous`] evaluates the tree one depth at a
//! time: all live nodes' edges grouped in eight level-wide bucket files, a
//! single [`emalgo::PartitionWriter`] sweep per level (`O(depth)` partition
//! sweeps in total, against one per internal node), per-node metadata in
//! thin disk streams. It computes the identical tree and triangle multiset
//! (the oracle suite pins both), and it is what the level-batched variant of
//! this algorithm looks like — but **measurement rejected it as the
//! production default**: holding an entire level's files live defeats the
//! free-before-eviction locality of the depth-first order, and the deep
//! levels' `E·2^d` volume then streams cold at every machine size (measured
//! ~9–50× the depth-first I/O on E3, see EXPERIMENTS.md). It is retained as
//! a doc-hidden toggle so the equivalence and pass-count guarantees stay
//! executable.

use std::rc::Rc;

use emalgo::{kway_merge_tagged, PartitionWriter};
use emsim::{ExtVec, Machine, MemLease};
use graphgen::{Edge, Triangle, VertexId};
use kwise::{FourWise, RefinedColoring};

use crate::checkpoint::{
    Checkpoint, CheckpointSpec, FrameDescriptor, NodeDescriptor, CHECKPOINT_VERSION,
};
use crate::input::ExtGraph;
use crate::lemma1::enumerate_through_vertex;
use crate::sink::TriangleSink;
use crate::stats::PhaseRecorder;
use crate::util::{remove_incident_edges, SortKind};
use crate::workunit::{ShardCursor, WorkUnitKind};
use crate::RecursionStrategy;

/// Subproblems of at most this many edges are joined in core directly. A
/// fixed constant — the cache-oblivious model forbids dependence on `M`/`B`,
/// not on constants (and the paper's base case likewise assumes constant
/// working storage).
const BASE_CASE_EDGES: usize = 24;

/// The paper's bound on the number of local high-degree vertices: since each
/// has degree ≥ E/8 and the degrees sum to 2E, there can be at most 16. The
/// bound is enforced (not merely asserted): if a future change to the
/// degree accounting ever produced more candidates, step 1 processes the 16
/// highest-degree ones and leaves the rest to the recursion — which stays
/// correct, because Lemma 1 handles *any* subset of vertices — instead of
/// silently degrading into unbounded quadratic Lemma 1 passes.
const MAX_LOCAL_HIGH_DEGREE: usize = 16;

/// Fan-out of the colour refinement (2³ child colour vectors per node).
const CHILDREN: usize = 8;

/// A colour vector `(c0, c1, c2)` of a subproblem.
type ColorVector = (u64, u64, u64);

/// A leaf-tagged record `(leaf, v, w, u)` of the batched oversized base
/// case: a wedge `v–u–w` awaiting its closing edge, or a canonical edge
/// `(v, w)` of the leaf (with `u = 0` unused). Both files are keyed by
/// `(leaf, v, w)`.
type LeafRecord = (u32, u32, u32, u32);

/// A Misra–Gries heavy-hitter summary of a subproblem's endpoint stream
/// (each edge contributes both endpoints, so a vertex's frequency is its
/// local degree).
///
/// With [`MAX_LOCAL_HIGH_DEGREE`] counters, every vertex whose degree
/// exceeds `1/17` of the stream is guaranteed a counter, and a local
/// high-degree vertex has degree ≥ E/8 = `1/16` of the stream — so the
/// summary provably contains every vertex step 1 must process. Counters are
/// lower bounds; `decrements` bounds the error (`count ≤ degree ≤ count +
/// decrements`), and since `decrements ≤ stream/17 < E/8`, a vertex *not*
/// in the summary can never be high-degree.
#[derive(Default)]
struct HeavyHitters {
    counters: Vec<(VertexId, u64)>,
    decrements: u64,
}

impl HeavyHitters {
    /// In-core footprint in words (for gauge accounting).
    const WORDS: u64 = 2 * MAX_LOCAL_HIGH_DEGREE as u64 + 1;

    fn feed(&mut self, v: VertexId) {
        if let Some(c) = self.counters.iter_mut().find(|(x, _)| *x == v) {
            c.1 += 1;
            return;
        }
        if self.counters.len() < MAX_LOCAL_HIGH_DEGREE {
            self.counters.push((v, 1));
            return;
        }
        self.decrements += 1;
        for c in &mut self.counters {
            c.1 -= 1;
        }
        self.counters.retain(|&(_, n)| n > 0);
    }

    fn feed_edge(&mut self, e: &Edge) {
        self.feed(e.u);
        self.feed(e.v);
    }

    /// Summary of a whole edge stream (used at the root, which has no parent
    /// sweep to piggyback on). One charged scan.
    fn of_stream(machine: &Machine, edges: impl Iterator<Item = Edge>) -> Self {
        let _lease = machine.gauge().lease(Self::WORDS);
        let mut hh = Self::default();
        for e in edges {
            machine.work(1);
            hh.feed_edge(&e);
        }
        hh
    }

    /// The candidates that *could* have degree ≥ `e_here`/8 given the
    /// counter error — every true high-degree vertex is among them, and an
    /// empty result proves the high-degree set empty without any further
    /// scan.
    fn possible_high(&self, e_here: usize) -> Vec<VertexId> {
        let mut out: Vec<VertexId> = self
            .counters
            .iter()
            .filter(|&&(_, n)| 8 * (n + self.decrements) >= e_here as u64)
            .map(|&(v, _)| v)
            .collect();
        out.sort_unstable(); // emlint: allow(uncharged-std, reason = "O(1)-bounded candidate list; negligible next to the charged scan that fed the summary")
        out
    }
}

struct CoContext<'a> {
    sink: &'a mut dyn TriangleSink,
    emitted: u64,
    depth_limit: usize,
    /// Number of recursive subproblems solved (reported for the experiments).
    subproblems: u64,
    /// Maximum recursion depth reached.
    max_depth: usize,
    /// Times the ≤ 16 high-degree invariant had to be enforced by truncation
    /// (always 0 unless the degree accounting is broken).
    high_degree_truncations: u64,
    /// Number of multi-way partition sweeps performed: one per internal node
    /// under the depth-first driver, one per *level* under the
    /// level-synchronous driver (the pass-count the O(depth) test pins).
    partition_sweeps: u64,
    /// Gauge lease tracking the colouring's memoised bit evaluations.
    bit_cache_lease: MemLease,
    /// The run-global files of the batched oversized-leaf wedge join.
    leaf_batch: LeafBatch,
    /// Descriptors of every oversized leaf batched so far, in leaf-id order.
    /// The run-global batch files die with the simulated machine on a crash,
    /// so checkpoints persist this log and a resume replays it. Maintained
    /// only when `log_leaves` is armed — zero cost on ordinary runs.
    leaf_log: Vec<NodeDescriptor>,
    /// Whether checkpointing is armed (and hence the leaf log maintained).
    log_leaves: bool,
    /// The unit→worker assignment of a sharded run; a solo cursor (every
    /// claim succeeds, pure counter ticks) on sequential runs.
    shard: &'a mut ShardCursor,
    /// Depth of the refinement tree at which whole subtrees become work
    /// units. The tree strictly above is replicated on every worker, with
    /// its leaf and high-degree *emissions* individually sharded;
    /// `usize::MAX` on sequential runs, making every node "above" the spawn
    /// depth and every claim a solo-cursor no-op.
    spawn_depth: usize,
}

/// The run-global files of the batched oversized-leaf base case: wedges and
/// canonical edges, both tagged by leaf id, plus one `(c0, c1, c2, depth)`
/// record per leaf. Leaf ids increase in emission order, so the edge file is
/// born sorted by `(leaf, v, w)`; only the wedge file needs the single
/// run-global sort.
struct LeafBatch {
    wedges: ExtVec<LeafRecord>,
    edges: ExtVec<LeafRecord>,
    info: ExtVec<(u32, u32, u32, u32)>,
    count: u32,
}

impl LeafBatch {
    fn new(machine: &Machine) -> Self {
        Self {
            wedges: ExtVec::new(machine),
            edges: ExtVec::new(machine),
            info: ExtVec::new(machine),
            count: 0,
        }
    }
}

/// Statistics of a cache-oblivious run (besides the emitted count).
#[derive(Debug, Clone, Copy)]
pub(crate) struct CacheObliviousStats {
    /// Number of recursive subproblems solved.
    pub subproblems: u64,
    /// Deepest recursion level reached.
    pub max_depth: usize,
    /// Times the local high-degree set had to be truncated to 16 entries.
    pub high_degree_truncations: u64,
    /// Number of multi-way partition sweeps performed.
    pub partition_sweeps: u64,
}

/// Runs the cache-oblivious randomized algorithm on `graph` with the given
/// random seed and tree-evaluation order; returns the number of triangles
/// emitted and recursion statistics. Both orders compute the identical
/// recursion tree (the refinement bits are a function of `seed` and the
/// level alone).
pub(crate) fn run_cache_oblivious(
    graph: &ExtGraph,
    seed: u64,
    strategy: RecursionStrategy,
    sink: &mut dyn TriangleSink,
    recorder: &mut PhaseRecorder,
) -> (u64, CacheObliviousStats) {
    run_cache_oblivious_recoverable(graph, seed, strategy, sink, recorder, None, None)
}

/// [`run_cache_oblivious`] under a shard cursor: every worker replicates the
/// top of the refinement tree (strictly above `spawn_depth`) — the per-level
/// bits are a function of `seed` and the level alone, so all workers expand
/// the identical tree — and each node *at* the spawn depth is one whole
/// subtree unit processed only by its owner. Leaf and high-degree emissions
/// of the replicated top are individually sharded so their triangles are
/// emitted exactly once across the pool. Always depth-first; checkpointing
/// is rejected upstream by the scheduler.
pub(crate) fn run_cache_oblivious_sharded(
    graph: &ExtGraph,
    seed: u64,
    sink: &mut dyn TriangleSink,
    recorder: &mut PhaseRecorder,
    shard: &mut ShardCursor,
    spawn_depth: usize,
) -> (u64, CacheObliviousStats) {
    run_cache_oblivious_inner(
        graph,
        seed,
        RecursionStrategy::DepthFirst,
        sink,
        recorder,
        None,
        None,
        shard,
        spawn_depth,
    )
}

/// [`run_cache_oblivious`] with crash-safety armed: when `spec` is given the
/// depth-first driver writes an atomic checkpoint at each subproblem boundary
/// that crosses the I/O interval (committing the sink via
/// [`TriangleSink::on_checkpoint`] right after each write); when `resume` is
/// given the run starts from that checkpoint instead of the root — replaying
/// the batched-leaf log, rebuilding the stack frontier by filter scans of the
/// re-sorted root, and continuing the exactly-once emission numbering at the
/// checkpoint's high-water mark. Both options require the depth-first driver.
///
/// With both options `None` this is byte-for-byte the ordinary run: the
/// checkpoint plumbing is pay-for-what-you-use.
pub(crate) fn run_cache_oblivious_recoverable(
    graph: &ExtGraph,
    seed: u64,
    strategy: RecursionStrategy,
    sink: &mut dyn TriangleSink,
    recorder: &mut PhaseRecorder,
    spec: Option<&CheckpointSpec>,
    resume: Option<&Checkpoint>,
) -> (u64, CacheObliviousStats) {
    // A solo cursor and an unreachable spawn depth: every claim succeeds
    // without charging anything, so this is the sequential driver verbatim.
    run_cache_oblivious_inner(
        graph,
        seed,
        strategy,
        sink,
        recorder,
        spec,
        resume,
        &mut ShardCursor::solo(),
        usize::MAX,
    )
}

#[allow(clippy::too_many_arguments)]
fn run_cache_oblivious_inner(
    graph: &ExtGraph,
    seed: u64,
    strategy: RecursionStrategy,
    sink: &mut dyn TriangleSink,
    recorder: &mut PhaseRecorder,
    spec: Option<&CheckpointSpec>,
    resume: Option<&Checkpoint>,
    shard: &mut ShardCursor,
    spawn_depth: usize,
) -> (u64, CacheObliviousStats) {
    let machine = graph.machine().clone();
    let e = graph.edge_count();
    if e < 3 {
        return (
            resume.map_or(0, |c| c.hwm),
            CacheObliviousStats {
                subproblems: 1,
                max_depth: 0,
                high_degree_truncations: 0,
                partition_sweeps: 0,
            },
        );
    }
    // Depth limit log₄ E (a function of the input size only).
    let depth_limit = ((e as f64).ln() / 4f64.ln()).ceil() as usize;
    if let Some(ck) = resume {
        assert_eq!(
            (ck.seed, ck.edges, ck.depth_limit),
            (seed, e, depth_limit),
            "checkpoint does not describe this run (seed / edge count / depth limit mismatch)"
        );
    }

    // Root canonical edge list. The input is already sorted, which the
    // defensive sort detects in one charged scan and answers with a copy —
    // this is exactly the call site the sorted-input early exit exists for.
    let io0 = machine.io();
    let root = emalgo::oblivious_sort_by_key(graph.edges(), |e| (e.u, e.v));
    recorder.record("root_sort", io0, machine.io());

    // The per-level refinement bits: one 4-wise independent function per tree
    // depth, derived from the seed by a fixed splitmix sequence. Memoised —
    // the recursion queries every endpoint's colour at every level, and the
    // memo's in-core footprint is tracked on the gauge through
    // `ctx.bit_cache_lease`.
    let mut bit_seed = seed;
    let mut coloring = RefinedColoring::memoised();
    coloring.push_batch((0..depth_limit).map(|_| FourWise::new(splitmix(&mut bit_seed))));

    let mut ctx = CoContext {
        sink,
        emitted: resume.map_or(0, |c| c.hwm),
        depth_limit,
        subproblems: 0,
        max_depth: 0,
        high_degree_truncations: 0,
        partition_sweeps: 0,
        bit_cache_lease: machine.gauge().lease(0),
        leaf_batch: LeafBatch::new(&machine),
        leaf_log: Vec::new(),
        log_leaves: spec.is_some(),
        shard,
        spawn_depth,
    };
    match strategy {
        RecursionStrategy::DepthFirst => {
            let stack = match resume {
                None => vec![Frame::Node(PendingNode {
                    edges: root,
                    summary: None,
                    target: (1, 1, 1),
                    depth: 0,
                    removed: None,
                })],
                Some(ck) => {
                    let io0 = machine.io();
                    let stack =
                        rebuild_stack_from_checkpoint(&mut ctx, &machine, &coloring, &root, ck);
                    drop(root);
                    recorder.record("resume_rebuild", io0, machine.io());
                    stack
                }
            };
            let ckpt = spec.map(|s| CheckpointCtl {
                spec: s,
                seed,
                root_edges: e,
                last_io: machine.io().total(),
            });
            let io0 = machine.io();
            drive_depth_first(&mut ctx, &machine, &coloring, stack, ckpt);
            recorder.record("recursion", io0, machine.io());
        }
        RecursionStrategy::LevelSynchronous => {
            assert!(
                spec.is_none() && resume.is_none(),
                "checkpoint/resume requires the depth-first driver"
            );
            assert!(
                ctx.shard.is_solo(),
                "sharded runs require the depth-first driver"
            );
            let io0 = machine.io();
            solve_level_synchronous(&mut ctx, &machine, root, &coloring);
            recorder.record("recursion", io0, machine.io());
        }
    }
    let io0 = machine.io();
    close_oversized_leaves(&mut ctx, &machine, &coloring);
    recorder.record("leaf_batch", io0, machine.io());
    let stats = CacheObliviousStats {
        subproblems: ctx.subproblems,
        max_depth: ctx.max_depth,
        high_degree_truncations: ctx.high_degree_truncations,
        partition_sweeps: ctx.partition_sweeps,
    };
    (ctx.emitted, stats)
}

/// Whether the ordered colour pair `(cu, cv)` (colours of an edge's smaller
/// and larger endpoint) appears among the pairs a proper triangle of `target`
/// would use.
fn pair_compatible(cu: u64, cv: u64, target: ColorVector) -> bool {
    let (c0, c1, c2) = target;
    (cu, cv) == (c0, c1) || (cu, cv) == (c1, c2) || (cu, cv) == (c0, c2)
}

/// Whether edge `e` is compatible with colour vector `target` under the full
/// depth of `coloring` (paper: not *incompatible*, i.e. its ordered colour
/// pair appears among the pairs a proper triangle would use). The production
/// path computes prefix colours once per edge and calls [`pair_compatible`]
/// directly; this wrapper is the reference definition the partition-routing
/// test checks against.
#[cfg_attr(not(test), allow(dead_code))]
fn compatible(e: &Edge, coloring: &RefinedColoring, target: ColorVector) -> bool {
    pair_compatible(coloring.color(e.u), coloring.color(e.v), target)
}

/// Whether triangle `t` is proper for `target` under the depth-`depth`
/// prefix of `coloring`.
fn proper_at(t: &Triangle, coloring: &RefinedColoring, depth: usize, target: ColorVector) -> bool {
    (
        coloring.color_at(t.a, depth),
        coloring.color_at(t.b, depth),
        coloring.color_at(t.c, depth),
    ) == target
}

/// The one place that decides which candidates survive when there are more
/// than [`MAX_LOCAL_HIGH_DEGREE`]: keep the highest degrees, ties broken by
/// smaller vertex id.
fn keep_top_candidates(candidates: &mut Vec<(VertexId, usize)>) {
    if candidates.len() > MAX_LOCAL_HIGH_DEGREE {
        // emlint: allow(uncharged-std, reason = "bounded candidate scratch; the sources cap its length at a small multiple of MAX_LOCAL_HIGH_DEGREE")
        candidates.sort_unstable_by_key(|&(v, d)| (std::cmp::Reverse(d), v));
        candidates.truncate(MAX_LOCAL_HIGH_DEGREE);
    }
}

/// Enforces the ≤ [`MAX_LOCAL_HIGH_DEGREE`] invariant on the high-degree
/// candidates of a subproblem (`(vertex, local degree)` pairs). Returns the
/// vertices to hand to Lemma 1 in ascending id order, plus whether the set
/// had to be truncated. On truncation the highest-degree candidates win
/// (ties broken by id) and the remainder is left to the recursion, which
/// stays exact for any subset — "truncate and recurse" rather than a silent
/// slide into unbounded quadratic Lemma 1 passes.
fn select_local_high_degree(mut candidates: Vec<(VertexId, usize)>) -> (Vec<VertexId>, bool) {
    let truncated = candidates.len() > MAX_LOCAL_HIGH_DEGREE;
    keep_top_candidates(&mut candidates);
    let mut high: Vec<VertexId> = candidates.into_iter().map(|(v, _)| v).collect();
    high.sort_unstable(); // emlint: allow(uncharged-std, reason = "O(1)-bounded candidate list")
    (high, truncated)
}

/// Resolves the exact local high-degree set from a [`HeavyHitters`] summary.
///
/// If no tracked vertex can clear the bar even with the counter error added
/// (the common case), the set is provably empty and no scan happens at all.
/// Otherwise one charged counting scan over `edges()` measures the ≤ 16
/// candidates' exact degrees.
fn resolve_high_degree<I: Iterator<Item = Edge>>(
    machine: &Machine,
    summary: &HeavyHitters,
    e_here: usize,
    edges: impl Fn() -> I,
) -> (Vec<VertexId>, bool) {
    let possible = summary.possible_high(e_here);
    if possible.is_empty() {
        return (Vec::new(), false);
    }
    let _lease = machine.gauge().lease(2 * possible.len() as u64);
    let mut degrees = vec![0usize; possible.len()];
    for e in edges() {
        machine.work(1);
        if let Ok(i) = possible.binary_search(&e.u) {
            degrees[i] += 1;
        }
        if let Ok(i) = possible.binary_search(&e.v) {
            degrees[i] += 1;
        }
    }
    let exact: Vec<(VertexId, usize)> = possible
        .into_iter()
        .zip(degrees)
        .filter(|&(_, d)| 8 * d >= e_here)
        .collect();
    select_local_high_degree(exact)
}

/// Step 1 of one subproblem: Lemma 1 over the local high-degree vertices,
/// emitting the proper triangles through each and removing its edges before
/// the next. Returns the list with every `high` vertex's edges removed.
/// Shared verbatim by both drivers so the emissions cannot drift.
fn enumerate_high_degree(
    ctx: &mut CoContext<'_>,
    mut edges: ExtVec<Edge>,
    high: &[VertexId],
    coloring: &RefinedColoring,
    depth: usize,
    target: ColorVector,
) -> ExtVec<Edge> {
    let mut enumerated_all = true;
    for &v in high {
        let emitted = enumerate_through_vertex(
            &edges,
            v,
            SortKind::Oblivious,
            |t| proper_at(&t, coloring, depth, target),
            ctx.sink,
        );
        ctx.emitted += emitted;
        // Remove the vertex's edges so no later step sees them again.
        edges = remove_incident_edges(&edges, &[v]);
        if edges.len() < 3 {
            enumerated_all = false;
            break;
        }
    }
    if !enumerated_all {
        // The loop stopped early; the remaining high vertices cannot close
        // any more proper triangles among < 3 edges, but their edges must
        // still be excluded from the children.
        edges = remove_incident_edges(&edges, high);
    }
    edges
}

/// The eight child colour vectors of `target`, in slot order.
fn child_vectors(target: ColorVector) -> [ColorVector; CHILDREN] {
    let (c0, c1, c2) = target;
    let mut children = [(0u64, 0u64, 0u64); CHILDREN];
    let mut k = 0;
    for z0 in [2 * c0 - 1, 2 * c0] {
        for z1 in [2 * c1 - 1, 2 * c1] {
            for z2 in [2 * c2 - 1, 2 * c2] {
                children[k] = (z0, z1, z2);
                k += 1;
            }
        }
    }
    children
}

/// Constant-size base case, entirely in core: the sorted edge list is leased
/// onto the memory gauge, every vertex's out-neighbour run yields its
/// wedges, and each wedge is closed by binary search in the list itself. No
/// wedge file, no sort — the only I/O is the one charged read of the
/// segment.
fn solve_leaf_in_core(
    machine: &Machine,
    segment: impl Iterator<Item = Edge>,
    mut filter: impl FnMut(Triangle) -> bool,
    sink: &mut dyn TriangleSink,
) -> u64 {
    let mut lease = machine.gauge().lease(0);
    let mut edges: Vec<(u32, u32)> = Vec::new();
    for e in segment {
        machine.work(1);
        edges.push((e.u, e.v));
        lease.grow(1);
    }
    debug_assert!(edges.windows(2).all(|w| w[0] <= w[1]));
    let probe_cost = 1 + edges.len().max(2).ilog2() as u64;
    let mut emitted = 0u64;
    let mut i = 0;
    while i < edges.len() {
        let u = edges[i].0;
        let mut j = i;
        while j < edges.len() && edges[j].0 == u {
            j += 1;
        }
        for x in i..j {
            for y in (x + 1)..j {
                // A wedge v–u–w closes a triangle iff {v, w} is an edge.
                machine.work(probe_cost);
                let (v, w) = (edges[x].1.min(edges[y].1), edges[x].1.max(edges[y].1));
                if edges.binary_search(&(v, w)).is_ok() {
                    let t = Triangle::new(u, v, w);
                    if filter(t) {
                        sink.emit(t);
                        emitted += 1;
                    }
                }
            }
        }
        i = j;
    }
    emitted
}

/// One scan of an oversized leaf's sorted edge segment, appending its wedges
/// and its edges (both tagged with the fresh leaf id) to the run-global
/// batch files. The join itself happens once for all such leaves, in
/// [`close_oversized_leaves`].
fn batch_oversized_leaf(
    machine: &Machine,
    batch: &mut LeafBatch,
    segment: impl Iterator<Item = Edge>,
    target: ColorVector,
    depth: usize,
) {
    let leaf = batch.count;
    batch.count += 1;
    let (t0, t1, t2) = target;
    batch
        .info
        .push((t0 as u32, t1 as u32, t2 as u32, depth as u32));

    let mut lease = machine.gauge().lease(0);
    let mut current: Option<u32> = None;
    let mut out_neighbours: Vec<u32> = Vec::new();
    let flush = |u: u32, outn: &mut Vec<u32>, wedges: &mut ExtVec<LeafRecord>| {
        for i in 0..outn.len() {
            for j in (i + 1)..outn.len() {
                machine.work(1);
                let (v, w) = (outn[i].min(outn[j]), outn[i].max(outn[j]));
                wedges.push((leaf, v, w, u));
            }
        }
        outn.clear();
    };
    for e in segment {
        machine.work(1);
        if current != Some(e.u) {
            if let Some(u) = current {
                flush(u, &mut out_neighbours, &mut batch.wedges);
            }
            current = Some(e.u);
            lease.shrink(lease.words());
        }
        out_neighbours.push(e.v);
        lease.grow(1);
        batch.edges.push((leaf, e.u, e.v, 0));
    }
    if let Some(u) = current {
        flush(u, &mut out_neighbours, &mut batch.wedges);
    }
}

/// The batched base case's closing pass: sort the run-global wedge file once
/// by `(leaf, v, w)` (the edge file is already in that order) and stream a
/// tagged two-source merge over both. An edge arrives before its equal-key
/// wedges (tag 0 wins ties), so a wedge closes a triangle exactly when the
/// last edge seen carries its key; the leaf-info stream supplies each leaf's
/// colour vector and depth for the properness filter.
fn close_oversized_leaves(ctx: &mut CoContext<'_>, machine: &Machine, coloring: &RefinedColoring) {
    if ctx.leaf_batch.count == 0 {
        return;
    }
    let wedges_sorted =
        emalgo::oblivious_sort_by_key(&ctx.leaf_batch.wedges, |&(l, v, w, _)| (l, v, w));
    ctx.leaf_batch.wedges.clear();
    debug_assert!(emalgo::is_sorted_by_key(
        &ctx.leaf_batch.edges,
        |&(l, v, w, _)| (l, v, w)
    ));

    let mut info_iter = ctx.leaf_batch.info.iter();
    let mut info_next: u32 = 0;
    let mut current_info: Option<(u32, u32, u32, u32)> = None;
    let mut last_edge: Option<(u32, u32, u32)> = None;
    for (tag, (l, v, w, u)) in kway_merge_tagged(
        machine,
        vec![ctx.leaf_batch.edges.iter(), wedges_sorted.iter()],
        |&(l, v, w, _)| (l, v, w),
    ) {
        if tag == 0 {
            last_edge = Some((l, v, w));
            continue;
        }
        if last_edge != Some((l, v, w)) {
            continue;
        }
        while info_next <= l {
            current_info = info_iter.next();
            info_next += 1;
        }
        let (t0, t1, t2, leaf_depth) = current_info.expect("leaf info for every tagged record");
        let t = Triangle::new(u, v, w);
        let target = (u64::from(t0), u64::from(t1), u64::from(t2));
        if proper_at(&t, coloring, leaf_depth as usize, target) {
            ctx.sink.emit(t);
            ctx.emitted += 1;
        }
    }
}

// ---------------------------------------------------------------------------
// The depth-first driver (production path): an explicit subproblem stack.
// ---------------------------------------------------------------------------

/// The set of vertices removed by high-degree enumeration at one node, linked
/// to the ancestor sets above it. Shared (`Rc`) by all eight children so the
/// per-frame cost stays `O(1)` words; removal sets at different levels are
/// disjoint (a removed vertex has no edges left below its removal level), so
/// the flattened union needs no dedup.
struct RemovedSet {
    /// Ascending vertex ids removed at this node.
    vertices: Vec<VertexId>,
    parent: Option<Rc<RemovedSet>>,
}

/// Flattens a node's ancestor chain of removal sets into one sorted list —
/// the form [`NodeDescriptor`] persists and the resume filter scans against.
fn flatten_removed(removed: &Option<Rc<RemovedSet>>) -> Vec<u32> {
    let mut out: Vec<u32> = Vec::new();
    let mut cur = removed.as_ref();
    while let Some(set) = cur {
        out.extend_from_slice(&set.vertices);
        cur = set.parent.as_ref();
    }
    out.sort_unstable(); // emlint: allow(uncharged-std, reason = "O(16·depth)-bounded checkpoint descriptor scratch")
    out
}

/// A pending subproblem of the explicit depth-first stack — exactly the
/// arguments the old recursion passed, plus the removal chain a checkpoint
/// descriptor needs.
struct PendingNode {
    edges: ExtVec<Edge>,
    /// Heavy-hitter summary fed by the parent's routing scan; `None` at the
    /// root and for nodes rebuilt from a checkpoint (which pay one summary
    /// scan instead — recovery overhead, not a correctness difference: the
    /// exact high-degree set is resolved from either summary).
    summary: Option<HeavyHitters>,
    target: ColorVector,
    depth: usize,
    removed: Option<Rc<RemovedSet>>,
}

/// One frame of the explicit stack. `Release` marks where the old recursion
/// dropped a parent's child-summaries gauge lease (after its whole subtree),
/// keeping the gauge accounting identical frame for frame.
enum Frame {
    Node(PendingNode),
    Release(MemLease),
}

fn descriptor_of(node: &PendingNode) -> NodeDescriptor {
    NodeDescriptor {
        depth: node.depth,
        target: node.target,
        removed: flatten_removed(&node.removed),
    }
}

/// Live checkpointing state of a run with a [`CheckpointSpec`] armed.
struct CheckpointCtl<'a> {
    spec: &'a CheckpointSpec,
    seed: u64,
    root_edges: usize,
    /// Simulated I/O total at the last checkpoint.
    last_io: u64,
}

/// Writes a checkpoint if the I/O interval has elapsed and the stack top is a
/// node (checkpoints land on subproblem boundaries). The sink is committed
/// via [`TriangleSink::on_checkpoint`] only *after* the atomic file replace
/// succeeds, so the persisted high-water mark never runs ahead of the
/// durably delivered triangles.
fn maybe_checkpoint(
    ctx: &mut CoContext<'_>,
    machine: &Machine,
    stack: &[Frame],
    ctl: &mut CheckpointCtl<'_>,
) {
    if machine.io().total().saturating_sub(ctl.last_io) < ctl.spec.interval_io {
        return;
    }
    if !matches!(stack.last(), Some(Frame::Node(_))) {
        return;
    }
    let frontier: Vec<FrameDescriptor> = stack
        .iter()
        .map(|frame| match frame {
            Frame::Node(node) => FrameDescriptor::Node(descriptor_of(node)),
            Frame::Release(lease) => FrameDescriptor::Release {
                words: lease.words(),
            },
        })
        .collect();
    let checkpoint = Checkpoint {
        version: CHECKPOINT_VERSION,
        seed: ctl.seed,
        edges: ctl.root_edges,
        depth_limit: ctx.depth_limit,
        hwm: ctx.emitted,
        frontier,
        leaves: ctx.leaf_log.clone(),
    };
    checkpoint.write_atomic(&ctl.spec.path).unwrap_or_else(|e| {
        panic!(
            "failed to write checkpoint {}: {e}",
            ctl.spec.path.display()
        )
    });
    ctx.sink.on_checkpoint();
    ctl.last_io = machine.io().total();
}

/// Rebuilds the driver state persisted in `checkpoint`: replays the batched
/// oversized leaves (their run-global files died with the crashed machine),
/// then reconstructs each frontier node's edge list by one order-preserving
/// filter scan of the re-sorted root — compatibility is hereditary and both
/// removal and routing preserve the root's `(u, v)` order, so the scan
/// recovers the exact list the crashed run held.
fn rebuild_stack_from_checkpoint(
    ctx: &mut CoContext<'_>,
    machine: &Machine,
    coloring: &RefinedColoring,
    root: &ExtVec<Edge>,
    checkpoint: &Checkpoint,
) -> Vec<Frame> {
    for leaf in &checkpoint.leaves {
        let edges = reconstruct_edges(coloring, root, leaf);
        batch_oversized_leaf(
            machine,
            &mut ctx.leaf_batch,
            edges.iter(),
            leaf.target,
            leaf.depth,
        );
        if ctx.log_leaves {
            ctx.leaf_log.push(leaf.clone());
        }
    }
    let mut stack: Vec<Frame> = Vec::new();
    for frame in &checkpoint.frontier {
        match frame {
            FrameDescriptor::Release { words } => {
                stack.push(Frame::Release(machine.gauge().lease(*words)));
            }
            FrameDescriptor::Node(desc) => {
                let edges = reconstruct_edges(coloring, root, desc);
                let removed = if desc.removed.is_empty() {
                    None
                } else {
                    Some(Rc::new(RemovedSet {
                        vertices: desc.removed.clone(),
                        parent: None,
                    }))
                };
                stack.push(Frame::Node(PendingNode {
                    edges,
                    summary: None,
                    target: desc.target,
                    depth: desc.depth,
                    removed,
                }));
            }
        }
    }
    stack
}

/// One order-preserving filter scan of the root recovering a descriptor's
/// exact edge list: keep each edge whose colour pair is compatible with the
/// node's vector at its depth and which touches no removed vertex.
fn reconstruct_edges(
    coloring: &RefinedColoring,
    root: &ExtVec<Edge>,
    desc: &NodeDescriptor,
) -> ExtVec<Edge> {
    let removed = &desc.removed;
    emalgo::scan_filter(root, |e| {
        pair_compatible(
            coloring.color_at(e.u, desc.depth),
            coloring.color_at(e.v, desc.depth),
            desc.target,
        ) && removed.binary_search(&e.u).is_err()
            && removed.binary_search(&e.v).is_err()
    })
}

/// The driver loop: pop a frame, process it, push its children. Identical
/// operation order to the old recursion (children pushed last-child-first so
/// child 0 runs next; a parent's summary lease rides as a `Release` frame
/// below its children), so I/O, work, gauge and emissions are bit-identical.
fn drive_depth_first(
    ctx: &mut CoContext<'_>,
    machine: &Machine,
    coloring: &RefinedColoring,
    mut stack: Vec<Frame>,
    mut ckpt: Option<CheckpointCtl<'_>>,
) {
    while !stack.is_empty() {
        if let Some(ctl) = ckpt.as_mut() {
            maybe_checkpoint(ctx, machine, &stack, ctl);
        }
        match stack.pop().expect("loop guard: stack is non-empty") {
            Frame::Release(lease) => drop(lease),
            Frame::Node(node) => process_node(ctx, machine, coloring, node, &mut stack),
        }
    }
}

/// Processes one pending subproblem — the body of the old recursion, with
/// "recurse on the eight children" replaced by "push the eight children".
fn process_node(
    ctx: &mut CoContext<'_>,
    machine: &Machine,
    coloring: &RefinedColoring,
    node: PendingNode,
    stack: &mut Vec<Frame>,
) {
    let PendingNode {
        edges,
        summary: inherited,
        target,
        depth,
        removed,
    } = node;
    ctx.subproblems += 1;
    ctx.max_depth = ctx.max_depth.max(depth);
    let e_here = edges.len();
    if e_here < 3 {
        return;
    }
    // A node *at* the spawn depth is one whole subtree work unit: its owner
    // processes it and everything below (descendants sit beyond the spawn
    // depth and are never gated — they exist only on the owner's stack);
    // every other worker drops it here, before any charged access. Dead
    // nodes (< 3 edges) return above on every worker alike, so the claim
    // stream stays aligned across the pool. On sequential runs the spawn
    // depth is `usize::MAX` and no node ever claims here.
    if depth == ctx.spawn_depth
        && !ctx
            .shard
            .claim(WorkUnitKind::RefinementSubtree { depth, target })
    {
        return;
    }
    // Strictly above the spawn depth the tree is replicated on every worker,
    // and the *emissions* (leaves, oversized leaves, high-degree Lemma 1
    // passes) are individually sharded so each triangle is emitted exactly
    // once across the pool.
    let gated = depth < ctx.spawn_depth;
    if e_here <= BASE_CASE_EDGES {
        if gated
            && !ctx
                .shard
                .claim(WorkUnitKind::RefinementLeaf { depth, target })
        {
            return;
        }
        let emitted = solve_leaf_in_core(
            machine,
            edges.iter(),
            |t| proper_at(&t, coloring, depth, target),
            ctx.sink,
        );
        ctx.emitted += emitted;
        return;
    }
    if depth >= ctx.depth_limit {
        if gated
            && !ctx
                .shard
                .claim(WorkUnitKind::RefinementLeaf { depth, target })
        {
            return;
        }
        if ctx.log_leaves {
            ctx.leaf_log.push(NodeDescriptor {
                depth,
                target,
                removed: flatten_removed(&removed),
            });
        }
        batch_oversized_leaf(machine, &mut ctx.leaf_batch, edges.iter(), target, depth);
        return;
    }

    // ---- Step 1: local high-degree vertices. ----
    // Below the root the parent's routing scan already built this child's
    // heavy-hitter summary; only the root (and nodes rebuilt from a
    // checkpoint) pay for their own summary scan.
    let summary = inherited.unwrap_or_else(|| HeavyHitters::of_stream(machine, edges.iter()));
    let (high, truncated) = resolve_high_degree(machine, &summary, e_here, || edges.iter());
    ctx.high_degree_truncations += u64::from(truncated);

    let mut current = edges;
    let mut removed = removed;
    if !high.is_empty() {
        // On a replicated node the Lemma 1 enumeration is one work unit; the
        // other workers must still strip the high-degree vertices' edges —
        // [`enumerate_high_degree`] returns exactly the incident-removal of
        // its input, so every worker descends with the identical edge list.
        if !gated
            || ctx
                .shard
                .claim(WorkUnitKind::RefinementHighDegree { depth, target })
        {
            current = enumerate_high_degree(ctx, current, &high, coloring, depth, target);
        } else {
            current = remove_incident_edges(&current, &high);
        }
        removed = Some(Rc::new(RemovedSet {
            vertices: high,
            parent: removed,
        }));
        if current.len() < 3 {
            return;
        }
    }

    // ---- Steps 2–3: all eight children in one routing scan (this node's
    // own partition sweep), child degree summaries fed en passant. ----
    ctx.partition_sweeps += 1;
    let children = child_vectors(target);
    // The summaries stay resident until the last child consumes its own, so
    // the lease must span the whole subtree below this node: it rides the
    // stack as a Release frame underneath the eight children.
    let summary_lease = machine.gauge().lease(CHILDREN as u64 * HeavyHitters::WORDS);
    let mut summaries: Vec<HeavyHitters> = (0..CHILDREN).map(|_| HeavyHitters::default()).collect();
    let buckets = {
        let summaries = &mut summaries;
        let mut prev: Option<Edge> = None;
        emalgo::scan_partition(&current, CHILDREN, move |e: &Edge| {
            // The one-scan sortedness debug-assert: children must inherit
            // the parent's (u, v) order, checked inline at zero extra I/O.
            debug_assert!(
                prev.is_none_or(|p| p <= *e),
                "edge segment lost its inherited sort order"
            );
            prev = Some(*e);
            let cu = coloring.color_at(e.u, depth + 1);
            let cv = coloring.color_at(e.v, depth + 1);
            let mut mask = 0u32;
            for (i, &child) in children.iter().enumerate() {
                if pair_compatible(cu, cv, child) {
                    mask |= 1 << i;
                    summaries[i].feed_edge(e);
                }
            }
            mask
        })
    };
    drop(current);
    ctx.bit_cache_lease.resize(coloring.cached_bits() as u64);

    stack.push(Frame::Release(summary_lease));
    for ((bucket, &child_target), summary) in buckets
        .into_iter()
        .zip(children.iter())
        .zip(summaries)
        .rev()
    {
        stack.push(Frame::Node(PendingNode {
            edges: bucket,
            summary: Some(summary),
            target: child_target,
            depth: depth + 1,
            removed: removed.clone(),
        }));
    }
}

// ---------------------------------------------------------------------------
// The level-synchronous driver.
// ---------------------------------------------------------------------------

/// Per-level node metadata streams, all disk-resident: `meta` holds one
/// `(edge count, candidate count, summary error)` per node, `targets` its
/// colour vector (colours after `d` refinements fit 32 bits comfortably —
/// `2^d ≤ √E`), `cands` the flattened `(vertex, counter)` entries of the
/// node's inherited heavy-hitter summary. Node `j`'s edges are the next
/// `len_j` records of bucket `j mod 8` (bucket 0 of 1 at the root).
struct LevelMeta {
    meta: ExtVec<(u32, u32, u32)>,
    targets: ExtVec<(u32, u32, u32)>,
    cands: ExtVec<(u32, u32)>,
}

impl LevelMeta {
    fn empty(machine: &Machine) -> Self {
        Self {
            meta: ExtVec::new(machine),
            targets: ExtVec::new(machine),
            cands: ExtVec::new(machine),
        }
    }
}

fn solve_level_synchronous(
    ctx: &mut CoContext<'_>,
    machine: &Machine,
    root: ExtVec<Edge>,
    coloring: &RefinedColoring,
) {
    // Current level: the root is a single bucket holding the sorted root
    // edge list.
    let root_len = root.len();
    let mut buckets: Vec<ExtVec<Edge>> = vec![root];
    let mut level = LevelMeta::empty(machine);
    level.meta.push((root_len as u32, 0, 0));
    level.targets.push((1, 1, 1));

    let mut depth = 0usize;
    while !level.meta.is_empty() {
        let mut next = LevelMeta::empty(machine);
        let mut writer: Option<PartitionWriter<Edge>> = None;
        let mut offsets = vec![0usize; buckets.len()];
        {
            let mut cands_iter = level.cands.iter();
            for (j, ((len, ccount, error), (t0, t1, t2))) in
                level.meta.iter().zip(level.targets.iter()).enumerate()
            {
                machine.work(1);
                let len = len as usize;
                let bucket = j % buckets.len();
                let offset = offsets[bucket];
                offsets[bucket] += len;
                ctx.subproblems += 1;
                ctx.max_depth = ctx.max_depth.max(depth);
                // Always drain this node's candidate records, even when the
                // node is dead, so the stream stays aligned.
                let summary = HeavyHitters {
                    counters: cands_iter
                        .by_ref()
                        .take(ccount as usize)
                        .map(|(v, n)| (v, u64::from(n)))
                        .collect(),
                    decrements: u64::from(error),
                };
                let e_here = len;
                if e_here < 3 {
                    continue;
                }
                let segment = buckets[bucket].slice(offset, offset + len);
                let target = (u64::from(t0), u64::from(t1), u64::from(t2));

                if e_here <= BASE_CASE_EDGES {
                    let emitted = solve_leaf_in_core(
                        machine,
                        segment.iter(),
                        |t| proper_at(&t, coloring, depth, target),
                        ctx.sink,
                    );
                    ctx.emitted += emitted;
                    continue;
                }
                if depth >= ctx.depth_limit {
                    batch_oversized_leaf(
                        machine,
                        &mut ctx.leaf_batch,
                        segment.iter(),
                        target,
                        depth,
                    );
                    continue;
                }

                // ---- Step 1: local high-degree vertices (summary built by
                // the parent's sweep; the root pays its own scan). ----
                let summary = if depth == 0 {
                    HeavyHitters::of_stream(machine, segment.iter())
                } else {
                    summary
                };
                let (high, truncated) =
                    resolve_high_degree(machine, &summary, e_here, || segment.iter());
                ctx.high_degree_truncations += u64::from(truncated);

                let mut filtered: Option<ExtVec<Edge>> = None;
                if !high.is_empty() {
                    let mut local: ExtVec<Edge> = ExtVec::new(machine);
                    for e in segment.iter() {
                        machine.work(1);
                        local.push(e);
                    }
                    let kept = enumerate_high_degree(ctx, local, &high, coloring, depth, target);
                    if kept.len() < 3 {
                        continue;
                    }
                    filtered = Some(kept);
                }

                // ---- Steps 2–3: route this node into the level's one
                // distribution sweep. ----
                let writer = writer.get_or_insert_with(|| {
                    ctx.partition_sweeps += 1;
                    PartitionWriter::new(machine, CHILDREN)
                });
                let children = child_vectors(target);
                let before: [usize; CHILDREN] = std::array::from_fn(|slot| writer.bucket_len(slot));
                let mut summaries: Vec<HeavyHitters> =
                    (0..CHILDREN).map(|_| HeavyHitters::default()).collect();
                {
                    let _lease = machine.gauge().lease(CHILDREN as u64 * HeavyHitters::WORDS);
                    let mut route =
                        |writer: &mut PartitionWriter<Edge>,
                         source: &mut dyn Iterator<Item = Edge>| {
                            let mut prev: Option<Edge> = None;
                            for e in source {
                                debug_assert!(
                                    prev.is_none_or(|p| p <= e),
                                    "edge segment lost its inherited sort order"
                                );
                                prev = Some(e);
                                let cu = coloring.color_at(e.u, depth + 1);
                                let cv = coloring.color_at(e.v, depth + 1);
                                let mut mask = 0u32;
                                for (i, &child) in children.iter().enumerate() {
                                    if pair_compatible(cu, cv, child) {
                                        mask |= 1 << i;
                                        summaries[i].feed_edge(&e);
                                    }
                                }
                                writer.push(e, mask);
                            }
                        };
                    match &filtered {
                        Some(kept) => route(writer, &mut kept.iter()),
                        None => route(writer, &mut segment.iter()),
                    }
                }
                for (slot, summary) in summaries.into_iter().enumerate() {
                    let child_len = writer.bucket_len(slot) - before[slot];
                    next.meta.push((
                        child_len as u32,
                        summary.counters.len() as u32,
                        summary.decrements as u32,
                    ));
                    let (z0, z1, z2) = children[slot];
                    next.targets.push((z0 as u32, z1 as u32, z2 as u32));
                    for (v, n) in summary.counters {
                        next.cands.push((v, n as u32));
                    }
                }
                ctx.bit_cache_lease.resize(coloring.cached_bits() as u64);
            }
        }
        buckets = writer.map(PartitionWriter::finish).unwrap_or_default();
        level = next;
        depth += 1;
    }
}

/// A small deterministic seed sequence (splitmix64) so one user-supplied seed
/// drives the whole per-level bit schedule reproducibly.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::StrictSink;
    use emsim::{EmConfig, Machine};
    use graphgen::{generators, naive};
    use kwise::BitFunctionFamily;

    const BOTH: [RecursionStrategy; 2] = [
        RecursionStrategy::DepthFirst,
        RecursionStrategy::LevelSynchronous,
    ];

    fn run_with(
        g: &graphgen::Graph,
        cfg: EmConfig,
        seed: u64,
        strategy: RecursionStrategy,
    ) -> (u64, u64, CacheObliviousStats) {
        let machine = Machine::new(cfg);
        let eg = ExtGraph::load(&machine, g);
        machine.cold_cache();
        let before = machine.io().total();
        let mut sink = StrictSink::new();
        let mut rec = PhaseRecorder::new(machine.gauge());
        let (n, stats) = run_cache_oblivious(&eg, seed, strategy, &mut sink, &mut rec);
        (n, machine.io().total() - before, stats)
    }

    fn run(g: &graphgen::Graph, cfg: EmConfig, seed: u64) -> (u64, u64, CacheObliviousStats) {
        run_with(g, cfg, seed, RecursionStrategy::DepthFirst)
    }

    #[test]
    fn counts_match_oracle_on_er_graphs_under_both_drivers() {
        for seed in [3u64, 12] {
            let g = generators::erdos_renyi(120, 900, seed);
            let expected = naive::count_triangles(&g);
            for strategy in BOTH {
                let (got, _, stats) = run_with(&g, EmConfig::new(1 << 9, 32), seed, strategy);
                assert_eq!(got, expected, "seed {seed} ({strategy:?})");
                assert!(stats.subproblems > 1);
                assert_eq!(stats.high_degree_truncations, 0);
            }
        }
    }

    #[test]
    fn counts_match_oracle_on_structured_graphs() {
        for strategy in BOTH {
            let clique = generators::clique(20);
            let (got, _, _) = run_with(&clique, EmConfig::new(256, 32), 1, strategy);
            assert_eq!(got, 1140, "{strategy:?}");

            let star = generators::star(200);
            let (got, _, _) = run_with(&star, EmConfig::new(256, 32), 1, strategy);
            assert_eq!(got, 0, "{strategy:?}");

            let lolli = generators::lollipop(10, 40);
            let (got, _, _) = run_with(&lolli, EmConfig::new(256, 32), 2, strategy);
            assert_eq!(got, 120, "{strategy:?}");
        }
    }

    #[test]
    fn different_seeds_agree_on_the_count() {
        let g = generators::erdos_renyi(100, 800, 5);
        let expected = naive::count_triangles(&g);
        for seed in 0..4u64 {
            let (got, _, _) = run(&g, EmConfig::new(512, 32), seed);
            assert_eq!(got, expected, "seed {seed}");
        }
    }

    #[test]
    fn more_memory_reduces_ios_without_any_code_awareness() {
        // The defining property of cache-obliviousness: the same run on a
        // machine with more internal memory performs fewer block transfers,
        // even though the algorithm never inspects M.
        let g = generators::erdos_renyi(300, 3000, 9);
        let (_, io_small, _) = run(&g, EmConfig::new(256, 32), 7);
        let (_, io_large, _) = run(&g, EmConfig::new(1 << 13, 32), 7);
        assert!(
            io_large * 2 < io_small,
            "expected fewer I/Os with 32x memory (small={io_small}, large={io_large})"
        );
    }

    #[test]
    fn recursion_depth_is_bounded_by_log4_e() {
        let g = generators::erdos_renyi(200, 1600, 3);
        for strategy in BOTH {
            let (_, _, stats) = run_with(&g, EmConfig::new(512, 32), 11, strategy);
            let limit = ((1600f64).ln() / 4f64.ln()).ceil() as usize;
            assert!(stats.max_depth <= limit, "{strategy:?}");
        }
    }

    #[test]
    fn level_synchronous_sweeps_are_bounded_by_depth_not_node_count() {
        let g = generators::erdos_renyi(150, 1200, 8);
        let cfg = EmConfig::new(512, 32);
        let (_, _, level) = run_with(&g, cfg, 5, RecursionStrategy::LevelSynchronous);
        let (_, _, depth_first) = run_with(&g, cfg, 5, RecursionStrategy::DepthFirst);
        assert!(
            level.partition_sweeps as usize <= level.max_depth + 1,
            "level-synchronous must sweep once per level at most ({} sweeps, depth {})",
            level.partition_sweeps,
            level.max_depth
        );
        assert!(
            depth_first.partition_sweeps > 4 * level.partition_sweeps,
            "the depth-first driver pays one sweep per internal node ({} vs {})",
            depth_first.partition_sweeps,
            level.partition_sweeps
        );
    }

    #[test]
    fn heavy_hitter_summary_is_exact_for_high_degree_detection() {
        // A planted hub among noise: the summary must surface the hub, the
        // verification scan must measure it exactly, and a hubless stream
        // must prove emptiness without any candidates.
        let machine = Machine::new(EmConfig::new(1 << 12, 64));
        let mut edges: Vec<Edge> = Vec::new();
        for i in 0..40u32 {
            edges.push(Edge::new(1000, 2000 + i)); // hub of degree 40
        }
        for i in 0..160u32 {
            edges.push(Edge::new(2 * i, 10_000 + i)); // 160 degree-1 pairs
        }
        edges.sort_unstable();
        let e_here = edges.len(); // 200 edges; threshold deg >= 25
        let v = ExtVec::from_slice(&machine, &edges);
        let summary = HeavyHitters::of_stream(&machine, v.iter());
        assert!(
            summary.possible_high(e_here).contains(&1000),
            "the hub must be tracked"
        );
        let (high, truncated) = resolve_high_degree(&machine, &summary, e_here, || v.iter());
        assert_eq!(high, vec![1000]);
        assert!(!truncated);

        // Remove the hub: no candidate survives the error-adjusted bar, so
        // the set resolves empty (and in the common case without any scan).
        let quiet: Vec<Edge> = edges.iter().copied().filter(|e| e.u != 1000).collect();
        let vq = ExtVec::from_slice(&machine, &quiet);
        let sq = HeavyHitters::of_stream(&machine, vq.iter());
        let (high, _) = resolve_high_degree(&machine, &sq, quiet.len(), || vq.iter());
        assert!(high.is_empty());
    }

    #[test]
    fn partition_routing_agrees_with_per_child_compatibility_filters() {
        // The single-pass router must produce, for every child vector,
        // exactly the edges the old eight-filter implementation kept.
        let g = generators::erdos_renyi(80, 400, 4);
        let machine = Machine::new(EmConfig::new(1 << 12, 64));
        let eg = ExtGraph::load(&machine, &g);
        let edges = emalgo::oblivious_sort_by_key(eg.edges(), |e| (e.u, e.v));

        let fam = BitFunctionFamily::new(1, 99);
        let mut coloring = RefinedColoring::identity();
        coloring.push(fam.function(0));

        let children: Vec<ColorVector> = [(1, 1, 1), (1, 1, 2), (1, 2, 1), (1, 2, 2)]
            .into_iter()
            .chain([(2, 1, 1), (2, 1, 2), (2, 2, 1), (2, 2, 2)])
            .collect();
        let coloring_ref = &coloring;
        let buckets = emalgo::scan_partition(&edges, 8, |e: &Edge| {
            let (cu, cv) = (coloring_ref.color(e.u), coloring_ref.color(e.v));
            let mut mask = 0u32;
            for (i, &child) in children.iter().enumerate() {
                if pair_compatible(cu, cv, child) {
                    mask |= 1 << i;
                }
            }
            mask
        });
        for (i, bucket) in buckets.iter().enumerate() {
            let expected =
                emalgo::scan_filter(&edges, |e| compatible(e, coloring_ref, children[i]));
            assert_eq!(bucket.load_all(), expected.load_all(), "child {i}");
            // Sortedness is inherited by every bucket.
            assert!(emalgo::is_sorted_by_key(bucket, |e| (e.u, e.v)));
        }
    }

    #[test]
    fn clique16_sits_exactly_on_the_high_degree_boundary() {
        // K16: E = 120, every vertex has degree 15 and 8·15 = 120 ≥ E, so all
        // 16 vertices are local high-degree — the maximum the invariant
        // allows. The run must stay exact without any truncation.
        for strategy in BOTH {
            let g = generators::clique(16);
            let (got, _, stats) = run_with(&g, EmConfig::new(256, 32), 5, strategy);
            assert_eq!(got, 560, "{strategy:?}"); // C(16, 3)
            assert_eq!(stats.high_degree_truncations, 0, "{strategy:?}");
        }
    }

    #[test]
    fn high_degree_selection_keeps_the_invariant_under_overflow() {
        // Within the invariant: all candidates kept, ascending.
        let ok: Vec<(VertexId, usize)> = (0..16u32).map(|v| (v, 100 - v as usize)).collect();
        let (high, truncated) = select_local_high_degree(ok);
        assert!(!truncated);
        assert_eq!(high, (0..16u32).collect::<Vec<_>>());

        // Beyond it (only reachable if the degree accounting drifts): the 16
        // highest-degree candidates survive, ties broken by id, result sorted.
        let overflow: Vec<(VertexId, usize)> =
            (0..20u32).map(|v| (v, 1000 - 10 * v as usize)).collect();
        let (high, truncated) = select_local_high_degree(overflow);
        assert!(truncated);
        assert_eq!(high, (0..16u32).collect::<Vec<_>>());

        let tied: Vec<(VertexId, usize)> = (0..18u32).rev().map(|v| (v, 7)).collect();
        let (high, truncated) = select_local_high_degree(tied);
        assert!(truncated);
        assert_eq!(high, (0..16u32).collect::<Vec<_>>(), "ties broken by id");
    }

    #[test]
    fn checkpointed_run_is_bit_identical_to_a_plain_run() {
        // Arming checkpoints must not change the emission sequence, the I/O
        // count or the work count — the periodic snapshot is pure
        // observation of the driver state.
        use crate::sink::CollectingSink;
        let g = generators::erdos_renyi(200, 1600, 21);
        let cfg = EmConfig::new(512, 32);

        let run = |spec: Option<&CheckpointSpec>| {
            let machine = Machine::new(cfg);
            let eg = ExtGraph::load(&machine, &g);
            machine.cold_cache();
            let mut sink = CollectingSink::new();
            let mut rec = PhaseRecorder::new(machine.gauge());
            let (n, _) = run_cache_oblivious_recoverable(
                &eg,
                9,
                RecursionStrategy::DepthFirst,
                &mut sink,
                &mut rec,
                spec,
                None,
            );
            let stats = machine.stats();
            (n, sink.into_triangles(), stats.io, stats.work_ops)
        };

        let dir = std::env::temp_dir().join("trienum-ckpt-bitident");
        std::fs::create_dir_all(&dir).unwrap();
        let spec = CheckpointSpec {
            path: dir.join("ckpt.json"),
            interval_io: 40,
        };
        let plain = run(None);
        let armed = run(Some(&spec));
        assert_eq!(plain, armed);
        // The interval was small enough that at least one checkpoint landed.
        let ck = Checkpoint::load(&spec.path).expect("a checkpoint was written");
        assert_eq!(ck.seed, 9);
        assert_eq!(ck.edges, 1600);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_from_a_mid_run_checkpoint_completes_the_exact_multiset() {
        // Crash the run at an arbitrary I/O ordinal, resume from the last
        // checkpoint on a fresh machine, and require the union of committed
        // triangles to be the oracle set, each exactly once.
        use crate::sink::{CollectingSink, DurableSink};
        use emsim::{CrashPoint, FaultPlan};

        let g = generators::erdos_renyi(160, 1400, 33);
        let machine_probe = Machine::new(EmConfig::new(512, 32));
        let eg = ExtGraph::load(&machine_probe, &g);
        machine_probe.cold_cache();
        let preamble = machine_probe.transfers();
        let expected = {
            let mut sink = StrictSink::new();
            let mut rec = PhaseRecorder::new(machine_probe.gauge());
            let (n, _) =
                run_cache_oblivious(&eg, 4, RecursionStrategy::DepthFirst, &mut sink, &mut rec);
            assert!(n > 0);
            (n, sink.seen().clone())
        };
        let total_transfers = machine_probe.transfers();

        let dir = std::env::temp_dir().join("trienum-ckpt-resume");
        std::fs::create_dir_all(&dir).unwrap();
        let spec = CheckpointSpec {
            path: dir.join("ckpt.json"),
            interval_io: 30,
        };

        // CrashAt counts logical transfers from machine creation, so aim the
        // kill switch past the (excluded-from-measurement) load preamble, at
        // the midpoint of the run proper.
        let crash_at = preamble + (total_transfers - preamble) / 2;

        let mut collected = CollectingSink::new();
        let crashed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let machine = Machine::with_faults(
                EmConfig::new(512, 32),
                FaultPlan::new(1).with_crash_at(crash_at),
            );
            let eg = ExtGraph::load(&machine, &g);
            machine.cold_cache();
            let mut durable = DurableSink::new(&mut collected);
            let mut rec = PhaseRecorder::new(machine.gauge());
            let _ = run_cache_oblivious_recoverable(
                &eg,
                4,
                RecursionStrategy::DepthFirst,
                &mut durable,
                &mut rec,
                Some(&spec),
                None,
            );
        }));
        let payload = crashed.expect_err("the fault plan kills this run");
        assert!(payload.downcast_ref::<CrashPoint>().is_some());
        let hwm = collected.len() as u64;
        let ck = Checkpoint::load(&spec.path).expect("a checkpoint survived the crash");
        assert_eq!(
            ck.hwm, hwm,
            "high-water mark must equal the committed count"
        );
        assert!(hwm < expected.0, "the crash must interrupt mid-run");

        // Resume on a fresh, healthy machine.
        let machine = Machine::new(EmConfig::new(512, 32));
        let eg = ExtGraph::load(&machine, &g);
        machine.cold_cache();
        let mut durable = DurableSink::resume_from(&mut collected, hwm);
        let mut rec = PhaseRecorder::new(machine.gauge());
        let (total, _) = run_cache_oblivious_recoverable(
            &eg,
            4,
            RecursionStrategy::DepthFirst,
            &mut durable,
            &mut rec,
            None,
            Some(&ck),
        );
        durable.commit();
        assert_eq!(total, expected.0);
        let got: std::collections::HashSet<Triangle> =
            collected.triangles().iter().copied().collect();
        assert_eq!(
            got.len(),
            collected.len(),
            "no triangle may be delivered twice across the crash boundary"
        );
        assert_eq!(got, expected.1);
        assert_eq!(machine.gauge().in_use(), 0, "no leaked leases after resume");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bit_cache_lease_is_released_after_the_run() {
        for strategy in BOTH {
            let g = generators::erdos_renyi(150, 1200, 2);
            let machine = Machine::new(EmConfig::new(1 << 10, 32));
            let eg = ExtGraph::load(&machine, &g);
            let mut sink = StrictSink::new();
            let mut rec = PhaseRecorder::new(machine.gauge());
            let _ = run_cache_oblivious(&eg, 3, strategy, &mut sink, &mut rec);
            assert_eq!(machine.gauge().in_use(), 0, "{strategy:?}");
            assert!(
                machine.gauge().peak() > 0,
                "memoised bits were accounted ({strategy:?})"
            );
        }
    }
}
