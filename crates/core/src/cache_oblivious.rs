//! The cache-oblivious randomized algorithm (paper Section 3, Theorem 1).
//!
//! The algorithm solves the more general `(c0, c1, c2)`-enumeration problem:
//! given a colouring `ξ` of the vertices, enumerate the triangles
//! `{u, v, w}`, `u < v < w`, with `(ξ(u), ξ(v), ξ(w)) = (c0, c1, c2)`.
//! Plain triangle enumeration is the `(1, 1, 1)` problem under the constant
//! colouring.
//!
//! Each recursive call:
//!
//! 1. enumerates the *proper* triangles through every **local high-degree
//!    vertex** (degree ≥ E/8 within the current subproblem; at most 16 of
//!    them, see [`MAX_LOCAL_HIGH_DEGREE`]) with Lemma 1, removing each such
//!    vertex's edges afterwards;
//! 2. refines the colouring with one fresh random bit per vertex,
//!    `ξ'(v) = 2ξ(v) − b(v)`, `b` drawn from a 4-wise independent family;
//! 3. recurses on the 8 colour vectors
//!    `{2c0−1, 2c0} × {2c1−1, 2c1} × {2c2−1, 2c2}`, each restricted to the
//!    edges compatible with that vector.
//!
//! The recursion bottoms out on empty inputs, on inputs of constant size, or
//! at depth `log₄ E` (where a wedge-join in the style of Dementiev's
//! sort-based algorithm finishes the job, see [`base_case_from_arcs`]) —
//! none of which involves the machine parameters `M` or `B`. The
//! **code below never reads the machine configuration**; every I/O the run is
//! charged comes from LRU misses in the simulator, which is exactly how a
//! cache-oblivious algorithm is supposed to be evaluated.
//!
//! ## Single-pass child partitioning
//!
//! A subproblem is represented by its **incidence list**: both orientations
//! `(u, v)` and `(v, u)` of every edge, sorted by `(source, destination)`.
//! The list is sorted exactly once, at the root; every later operation is a
//! scan that preserves the order, so children inherit sortedness for free.
//! This buys each recursion level:
//!
//! * **degrees by run length** — the local degree of a vertex is the length
//!   of its run in the incidence list, so step 1's high-degree detection is
//!   one counting scan instead of writing and sorting a `2E`-endpoint file;
//!   below the root even that scan disappears, because the parent's
//!   partition scan tracks each child's candidate runs as it emits them
//!   (see [`RunTracker`]);
//! * **all eight children in one scan** — each edge is classified once per
//!   level by its refined colour pair (the per-level bits are memoised in
//!   [`RefinedColoring`]) and routed by [`emalgo::scan_partition`] to every
//!   compatible child bucket in a single pass, instead of eight independent
//!   filter scans that each re-evaluated the whole hash chain per edge.
//!
//! The change removes constant-factor scans and sorts only — the recursion
//! tree, the subproblem contents and the Theorem 1 I/O bound are unchanged
//! (experiment E7 tracks the resulting work ratio; the pre-rewrite
//! implementation sat at ~52× `E^{3/2}`, see EXPERIMENTS.md).

use emalgo::scan_partition;
use emsim::{ExtVec, MemLease};
use graphgen::{Edge, Triangle, VertexId};
use kwise::{FourWise, RefinedColoring};

use crate::input::ExtGraph;
use crate::lemma1::enumerate_through_vertex;
use crate::sink::TriangleSink;
use crate::util::{remove_incident_edges, SortKind};

/// Subproblems of at most this many edges are finished with the base-case
/// algorithm directly. A fixed constant — the cache-oblivious model forbids
/// dependence on `M`/`B`, not on constants.
const BASE_CASE_EDGES: usize = 24;

/// The paper's bound on the number of local high-degree vertices: since each
/// has degree ≥ E/8 and the degrees sum to 2E, there can be at most 16. The
/// bound is enforced (not merely asserted): if a future change to the
/// degree accounting ever produced more candidates, step 1 processes the 16
/// highest-degree ones and leaves the rest to the recursion — which stays
/// correct, because Lemma 1 handles *any* subset of vertices — instead of
/// silently degrading into unbounded quadratic Lemma 1 passes.
const MAX_LOCAL_HIGH_DEGREE: usize = 16;

/// A colour vector `(c0, c1, c2)` of a subproblem.
type ColorVector = (u64, u64, u64);

/// A directed half-edge `(source, destination)`, packed into one word.
/// Every undirected edge of a subproblem appears under both orientations.
type Arc = (u32, u32);

/// In-core tracker of the largest degree runs of one child bucket, fed while
/// the parent's partition scan emits the child's (sorted) incidence list.
///
/// A child's local high-degree vertices all have degree ≥ E_child/8, and at
/// most [`MAX_LOCAL_HIGH_DEGREE`] vertices can clear that bar, so the 16
/// longest runs are guaranteed to contain every qualifying vertex even
/// though E_child is only known once the scan finishes. The child filters
/// the inherited candidates by its actual threshold and skips its own degree
/// scan entirely — this is how the parent's vertex-locality is reused.
#[derive(Default)]
struct RunTracker {
    run: Option<(VertexId, usize)>,
    top: Vec<(VertexId, usize)>,
}

impl RunTracker {
    /// In-core footprint in words (for gauge accounting): the open run plus
    /// the bounded top list.
    const WORDS: u64 = 2 * (MAX_LOCAL_HIGH_DEGREE as u64 + 1) + 2;

    fn feed(&mut self, v: VertexId) {
        match &mut self.run {
            Some((cur, d)) if *cur == v => *d += 1,
            _ => {
                if let Some(closed) = self.run.replace((v, 1)) {
                    self.close(closed);
                }
            }
        }
    }

    fn close(&mut self, entry: (VertexId, usize)) {
        self.top.push(entry);
        keep_top_candidates(&mut self.top);
    }

    fn finish(mut self) -> Vec<(VertexId, usize)> {
        if let Some(closed) = self.run.take() {
            self.close(closed);
        }
        self.top
    }
}

struct CoContext<'a> {
    sink: &'a mut dyn TriangleSink,
    emitted: u64,
    depth_limit: usize,
    next_seed: u64,
    /// Number of recursive calls made (reported for the experiments).
    subproblems: u64,
    /// Maximum recursion depth reached.
    max_depth: usize,
    /// Times the ≤ 16 high-degree invariant had to be enforced by truncation
    /// (always 0 unless the degree accounting is broken).
    high_degree_truncations: u64,
    /// Gauge lease tracking the colouring's memoised bit evaluations.
    bit_cache_lease: MemLease,
}

/// Statistics of a cache-oblivious run (besides the emitted count).
#[derive(Debug, Clone, Copy)]
pub(crate) struct CacheObliviousStats {
    /// Number of recursive subproblems solved.
    pub subproblems: u64,
    /// Deepest recursion level reached.
    pub max_depth: usize,
    /// Times the local high-degree set had to be truncated to 16 entries.
    pub high_degree_truncations: u64,
}

/// Runs the cache-oblivious randomized algorithm on `graph` with the given
/// random seed; returns the number of triangles emitted and recursion
/// statistics.
pub(crate) fn run_cache_oblivious(
    graph: &ExtGraph,
    seed: u64,
    sink: &mut dyn TriangleSink,
) -> (u64, CacheObliviousStats) {
    let machine = graph.machine().clone();
    let e = graph.edge_count();
    if e < 3 {
        return (
            0,
            CacheObliviousStats {
                subproblems: 1,
                max_depth: 0,
                high_degree_truncations: 0,
            },
        );
    }
    // Depth limit log₄ E (a function of the input size only).
    let depth_limit = ((e as f64).ln() / 4f64.ln()).ceil() as usize;

    // Root incidence list: both orientations of every edge, sorted once.
    // Children inherit the sortedness through the order-preserving partition,
    // so no subproblem below the root ever sorts its input again.
    let mut arcs_raw: ExtVec<Arc> = ExtVec::new(&machine);
    for edge in graph.edges().iter() {
        machine.work(1);
        arcs_raw.push((edge.u, edge.v));
        arcs_raw.push((edge.v, edge.u));
    }
    let arcs = emalgo::oblivious_sort_by_key(&arcs_raw, |a| *a);
    drop(arcs_raw);

    let mut ctx = CoContext {
        sink,
        emitted: 0,
        depth_limit,
        next_seed: seed,
        subproblems: 0,
        max_depth: 0,
        high_degree_truncations: 0,
        bit_cache_lease: machine.gauge().lease(0),
    };
    // Memoised colouring: the recursion queries every endpoint's colour at
    // every level, and the memo's in-core footprint is tracked on the gauge
    // through `ctx.bit_cache_lease`.
    let mut coloring = RefinedColoring::memoised();
    solve(&mut ctx, arcs, None, &mut coloring, (1, 1, 1), 0);
    let stats = CacheObliviousStats {
        subproblems: ctx.subproblems,
        max_depth: ctx.max_depth,
        high_degree_truncations: ctx.high_degree_truncations,
    };
    (ctx.emitted, stats)
}

/// Whether the ordered colour pair `(cu, cv)` (colours of an edge's smaller
/// and larger endpoint) appears among the pairs a proper triangle of `target`
/// would use.
fn pair_compatible(cu: u64, cv: u64, target: ColorVector) -> bool {
    let (c0, c1, c2) = target;
    (cu, cv) == (c0, c1) || (cu, cv) == (c1, c2) || (cu, cv) == (c0, c2)
}

/// Whether edge `e` is compatible with colour vector `target` under `coloring`
/// (paper: not *incompatible*, i.e. its ordered colour pair appears among the
/// pairs a proper triangle would use). The production path precomputes the
/// colour pair once per edge and calls [`pair_compatible`] directly; this
/// wrapper is the reference definition the partition-routing test checks
/// against.
#[cfg_attr(not(test), allow(dead_code))]
fn compatible(e: &Edge, coloring: &RefinedColoring, target: ColorVector) -> bool {
    pair_compatible(coloring.color(e.u), coloring.color(e.v), target)
}

/// Whether triangle `t` is proper for `target` under `coloring`.
fn proper(t: &Triangle, coloring: &RefinedColoring, target: ColorVector) -> bool {
    (
        coloring.color(t.a),
        coloring.color(t.b),
        coloring.color(t.c),
    ) == target
}

/// The canonical (lexicographically sorted) edge list of an incidence list:
/// one scan keeping the `source < destination` orientation of every edge.
fn canonical_edges(arcs: &ExtVec<Arc>) -> ExtVec<Edge> {
    let machine = arcs.machine().clone();
    let mut out: ExtVec<Edge> = ExtVec::new(&machine);
    for (a, b) in arcs.iter() {
        machine.work(1);
        if a < b {
            out.push(Edge::new(a, b));
        }
    }
    out
}

/// Removes from an incidence list every arc touching a vertex in `forbidden`
/// (sorted slice). One order-preserving scan.
fn remove_incident_arcs(arcs: &ExtVec<Arc>, forbidden: &[VertexId]) -> ExtVec<Arc> {
    emalgo::scan_filter(arcs, |&(a, b)| {
        forbidden.binary_search(&a).is_err() && forbidden.binary_search(&b).is_err()
    })
}

/// The one place that decides which candidates survive when there are more
/// than [`MAX_LOCAL_HIGH_DEGREE`]: keep the highest degrees, ties broken by
/// smaller vertex id. Shared by [`RunTracker`] and
/// [`select_local_high_degree`] so the selection ordering cannot drift.
fn keep_top_candidates(candidates: &mut Vec<(VertexId, usize)>) {
    if candidates.len() > MAX_LOCAL_HIGH_DEGREE {
        candidates.sort_unstable_by_key(|&(v, d)| (std::cmp::Reverse(d), v));
        candidates.truncate(MAX_LOCAL_HIGH_DEGREE);
    }
}

/// Enforces the ≤ [`MAX_LOCAL_HIGH_DEGREE`] invariant on the high-degree
/// candidates of a subproblem (`(vertex, local degree)` pairs). Returns the
/// vertices to hand to Lemma 1 in ascending id order, plus whether the set
/// had to be truncated. On truncation the highest-degree candidates win
/// (ties broken by id) and the remainder is left to the recursion, which
/// stays exact for any subset — "truncate and recurse" rather than a silent
/// slide into unbounded quadratic Lemma 1 passes.
fn select_local_high_degree(mut candidates: Vec<(VertexId, usize)>) -> (Vec<VertexId>, bool) {
    let truncated = candidates.len() > MAX_LOCAL_HIGH_DEGREE;
    keep_top_candidates(&mut candidates);
    let mut high: Vec<VertexId> = candidates.into_iter().map(|(v, _)| v).collect();
    high.sort_unstable();
    (high, truncated)
}

/// Base case: wedge-join enumeration straight off the incidence list (the
/// same sort–merge idea as Dementiev's baseline, specialised to the arc
/// representation so no canonical edge list is materialised and no input
/// sort is ever needed — the arcs arrive sorted).
///
/// Out-neighbours of `u` under the `smaller → larger` orientation are the
/// run entries `(u, b)` with `b > u`; every pair in a run is a wedge, and a
/// wedge `(v, w, u)` is a triangle iff the arc `(v, w)` exists. Cost: one
/// scan of the arcs, `sort(W)` for the wedge file, one merge scan.
fn base_case_from_arcs(
    arcs: &ExtVec<Arc>,
    mut filter: impl FnMut(Triangle) -> bool,
    sink: &mut dyn TriangleSink,
) -> u64 {
    let machine = arcs.machine().clone();
    let mut wedges: ExtVec<(u32, u32, u32)> = ExtVec::new(&machine);
    {
        let mut lease = machine.gauge().lease(0);
        let mut current: Option<u32> = None;
        let mut out_neighbours: Vec<u32> = Vec::new();
        let flush = |u: u32, outn: &mut Vec<u32>, wedges: &mut ExtVec<(u32, u32, u32)>| {
            for i in 0..outn.len() {
                for j in (i + 1)..outn.len() {
                    machine.work(1);
                    let (v, w) = (outn[i].min(outn[j]), outn[i].max(outn[j]));
                    wedges.push((v, w, u));
                }
            }
            outn.clear();
        };
        for (a, b) in arcs.iter() {
            machine.work(1);
            if current != Some(a) {
                if let Some(u) = current {
                    flush(u, &mut out_neighbours, &mut wedges);
                }
                current = Some(a);
                lease.shrink(lease.words());
            }
            if b > a {
                out_neighbours.push(b);
                lease.grow(1);
            }
        }
        if let Some(u) = current {
            flush(u, &mut out_neighbours, &mut wedges);
        }
    }

    let wedges_sorted = emalgo::oblivious_sort_by_key(&wedges, |&(v, w, _)| (v, w));
    drop(wedges);

    let mut emitted = 0u64;
    let mut edge_iter = arcs.iter().filter(|&(a, b)| a < b).peekable();
    for (v, w, u) in wedges_sorted.iter() {
        machine.work(1);
        let target = (v, w);
        while let Some(&e) = edge_iter.peek() {
            if e < target {
                edge_iter.next();
            } else {
                break;
            }
        }
        if edge_iter.peek() == Some(&target) {
            let t = Triangle::new(u, v, w);
            if filter(t) {
                sink.emit(t);
                emitted += 1;
            }
        }
    }
    emitted
}

fn solve(
    ctx: &mut CoContext<'_>,
    arcs: ExtVec<Arc>,
    inherited: Option<Vec<(VertexId, usize)>>,
    coloring: &mut RefinedColoring,
    target: ColorVector,
    depth: usize,
) {
    ctx.subproblems += 1;
    ctx.max_depth = ctx.max_depth.max(depth);
    let e_here = arcs.len() / 2;
    if e_here < 3 {
        return;
    }
    if e_here <= BASE_CASE_EDGES || depth >= ctx.depth_limit {
        let emitted = {
            let coloring_ref: &RefinedColoring = coloring;
            base_case_from_arcs(&arcs, |t| proper(&t, coloring_ref, target), ctx.sink)
        };
        ctx.emitted += emitted;
        return;
    }

    // ---- Step 1: local high-degree vertices. ----
    // The incidence list is sorted by source, so each vertex's local degree
    // is the length of its run. Below the root the parent's partition scan
    // already tracked the candidate runs (see [`RunTracker`]); only the root
    // pays for a counting scan of its own. The root scan deliberately keeps
    // *every* qualifying run (uncapped, unlike a RunTracker) so that
    // `select_local_high_degree` can still detect a drifted invariant.
    let machine = arcs.machine().clone();
    let candidates: Vec<(VertexId, usize)> = match inherited {
        Some(top) => top.into_iter().filter(|&(_, d)| 8 * d >= e_here).collect(),
        None => {
            let mut found = Vec::new();
            let mut run: Option<(VertexId, usize)> = None;
            for (from, _) in arcs.iter() {
                machine.work(1);
                match run {
                    Some((v, d)) if v == from => run = Some((v, d + 1)),
                    _ => {
                        if let Some((v, d)) = run {
                            if 8 * d >= e_here {
                                found.push((v, d));
                            }
                        }
                        run = Some((from, 1));
                    }
                }
            }
            if let Some((v, d)) = run {
                if 8 * d >= e_here {
                    found.push((v, d));
                }
            }
            found
        }
    };
    let (high, truncated) = select_local_high_degree(candidates);
    ctx.high_degree_truncations += u64::from(truncated);

    let mut current = arcs;
    if !high.is_empty() {
        let mut edges = canonical_edges(&current);
        for &v in &high {
            let emitted = {
                let coloring_ref: &RefinedColoring = coloring;
                enumerate_through_vertex(
                    &edges,
                    v,
                    SortKind::Oblivious,
                    |t| proper(&t, coloring_ref, target),
                    ctx.sink,
                )
            };
            ctx.emitted += emitted;
            // Remove the vertex's edges so no later step sees them again.
            edges = remove_incident_edges(&edges, &[v]);
            if edges.len() < 3 {
                break;
            }
        }
        current = remove_incident_arcs(&current, &high);
        if current.len() < 6 {
            return;
        }
    }

    // ---- Step 2: refine the colouring with one fresh random bit. ----
    let bit = FourWise::new(splitmix(&mut ctx.next_seed));
    coloring.push(bit);

    // ---- Step 3: all eight children in one routing scan. ----
    let (c0, c1, c2) = target;
    let mut children = [(0u64, 0u64, 0u64); 8];
    let mut k = 0;
    for z0 in [2 * c0 - 1, 2 * c0] {
        for z1 in [2 * c1 - 1, 2 * c1] {
            for z2 in [2 * c2 - 1, 2 * c2] {
                children[k] = (z0, z1, z2);
                k += 1;
            }
        }
    }
    let mut trackers: Vec<RunTracker> = (0..8).map(|_| RunTracker::default()).collect();
    let buckets = {
        let _tracker_lease = machine.gauge().lease(8 * RunTracker::WORDS);
        let coloring_ref: &RefinedColoring = coloring;
        let trackers = &mut trackers;
        scan_partition(&current, 8, move |&(a, b): &Arc| {
            // Both orientations of an edge compute the same mask, so the
            // child incidence lists stay consistent (and sorted).
            let (lo, hi) = if a < b { (a, b) } else { (b, a) };
            let cu = coloring_ref.color(lo);
            let cv = coloring_ref.color(hi);
            let mut mask = 0u32;
            for (i, &child) in children.iter().enumerate() {
                if pair_compatible(cu, cv, child) {
                    mask |= 1 << i;
                    trackers[i].feed(a);
                }
            }
            mask
        })
    };
    drop(current);
    ctx.bit_cache_lease.resize(coloring.cached_bits() as u64);

    for ((bucket, &child_target), tracker) in buckets.into_iter().zip(children.iter()).zip(trackers)
    {
        solve(
            ctx,
            bucket,
            Some(tracker.finish()),
            coloring,
            child_target,
            depth + 1,
        );
    }
    coloring.pop();
    ctx.bit_cache_lease.resize(coloring.cached_bits() as u64);
}

/// A small deterministic seed sequence (splitmix64) so one user-supplied seed
/// drives the whole recursion reproducibly.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::StrictSink;
    use emsim::{EmConfig, Machine};
    use graphgen::{generators, naive};
    use kwise::BitFunctionFamily;

    fn run(g: &graphgen::Graph, cfg: EmConfig, seed: u64) -> (u64, u64, CacheObliviousStats) {
        let machine = Machine::new(cfg);
        let eg = ExtGraph::load(&machine, g);
        machine.cold_cache();
        let before = machine.io().total();
        let mut sink = StrictSink::new();
        let (n, stats) = run_cache_oblivious(&eg, seed, &mut sink);
        (n, machine.io().total() - before, stats)
    }

    #[test]
    fn counts_match_oracle_on_er_graphs() {
        for seed in [3u64, 12] {
            let g = generators::erdos_renyi(120, 900, seed);
            let expected = naive::count_triangles(&g);
            let (got, _, stats) = run(&g, EmConfig::new(1 << 9, 32), seed);
            assert_eq!(got, expected, "seed {seed}");
            assert!(stats.subproblems > 1);
            assert_eq!(stats.high_degree_truncations, 0);
        }
    }

    #[test]
    fn counts_match_oracle_on_structured_graphs() {
        let clique = generators::clique(20);
        let (got, _, _) = run(&clique, EmConfig::new(256, 32), 1);
        assert_eq!(got, 1140);

        let star = generators::star(200);
        let (got, _, _) = run(&star, EmConfig::new(256, 32), 1);
        assert_eq!(got, 0);

        let lolli = generators::lollipop(10, 40);
        let (got, _, _) = run(&lolli, EmConfig::new(256, 32), 2);
        assert_eq!(got, 120);
    }

    #[test]
    fn different_seeds_agree_on_the_count() {
        let g = generators::erdos_renyi(100, 800, 5);
        let expected = naive::count_triangles(&g);
        for seed in 0..4u64 {
            let (got, _, _) = run(&g, EmConfig::new(512, 32), seed);
            assert_eq!(got, expected, "seed {seed}");
        }
    }

    #[test]
    fn more_memory_reduces_ios_without_any_code_awareness() {
        // The defining property of cache-obliviousness: the same run on a
        // machine with more internal memory performs fewer block transfers,
        // even though the algorithm never inspects M.
        let g = generators::erdos_renyi(300, 3000, 9);
        let (_, io_small, _) = run(&g, EmConfig::new(256, 32), 7);
        let (_, io_large, _) = run(&g, EmConfig::new(1 << 13, 32), 7);
        assert!(
            io_large * 2 < io_small,
            "expected fewer I/Os with 32x memory (small={io_small}, large={io_large})"
        );
    }

    #[test]
    fn recursion_depth_is_bounded_by_log4_e() {
        let g = generators::erdos_renyi(200, 1600, 3);
        let (_, _, stats) = run(&g, EmConfig::new(512, 32), 11);
        let limit = ((1600f64).ln() / 4f64.ln()).ceil() as usize;
        assert!(stats.max_depth <= limit);
    }

    #[test]
    fn partition_routing_agrees_with_per_child_compatibility_filters() {
        // The single-pass router must produce, for every child vector,
        // exactly the edges the old eight-filter implementation kept.
        let g = generators::erdos_renyi(80, 400, 4);
        let machine = Machine::new(EmConfig::new(1 << 12, 64));
        let eg = ExtGraph::load(&machine, &g);

        let mut arcs_raw: ExtVec<Arc> = ExtVec::new(&machine);
        for e in eg.edges().iter() {
            arcs_raw.push((e.u, e.v));
            arcs_raw.push((e.v, e.u));
        }
        let arcs = emalgo::oblivious_sort_by_key(&arcs_raw, |a| *a);

        let fam = BitFunctionFamily::new(1, 99);
        let mut coloring = RefinedColoring::identity();
        coloring.push(fam.function(0));

        let children: Vec<ColorVector> = [(1, 1, 1), (1, 1, 2), (1, 2, 1), (1, 2, 2)]
            .into_iter()
            .chain([(2, 1, 1), (2, 1, 2), (2, 2, 1), (2, 2, 2)])
            .collect();
        let coloring_ref = &coloring;
        let buckets = scan_partition(&arcs, 8, |&(a, b): &Arc| {
            let (lo, hi) = if a < b { (a, b) } else { (b, a) };
            let (cu, cv) = (coloring_ref.color(lo), coloring_ref.color(hi));
            let mut mask = 0u32;
            for (i, &child) in children.iter().enumerate() {
                if pair_compatible(cu, cv, child) {
                    mask |= 1 << i;
                }
            }
            mask
        });
        for (i, bucket) in buckets.iter().enumerate() {
            let expected = emalgo::scan_filter(&arcs, |&(a, b)| {
                let e = Edge::new(a, b);
                compatible(&e, coloring_ref, children[i])
            });
            assert_eq!(bucket.load_all(), expected.load_all(), "child {i}");
            // Sortedness is inherited by every bucket.
            assert!(emalgo::is_sorted_by_key(bucket, |a| *a));
        }
    }

    #[test]
    fn clique16_sits_exactly_on_the_high_degree_boundary() {
        // K16: E = 120, every vertex has degree 15 and 8·15 = 120 ≥ E, so all
        // 16 vertices are local high-degree — the maximum the invariant
        // allows. The run must stay exact without any truncation.
        let g = generators::clique(16);
        let (got, _, stats) = run(&g, EmConfig::new(256, 32), 5);
        assert_eq!(got, 560); // C(16, 3)
        assert_eq!(stats.high_degree_truncations, 0);
    }

    #[test]
    fn high_degree_selection_keeps_the_invariant_under_overflow() {
        // Within the invariant: all candidates kept, ascending.
        let ok: Vec<(VertexId, usize)> = (0..16u32).map(|v| (v, 100 - v as usize)).collect();
        let (high, truncated) = select_local_high_degree(ok);
        assert!(!truncated);
        assert_eq!(high, (0..16u32).collect::<Vec<_>>());

        // Beyond it (only reachable if the degree accounting drifts): the 16
        // highest-degree candidates survive, ties broken by id, result sorted.
        let overflow: Vec<(VertexId, usize)> =
            (0..20u32).map(|v| (v, 1000 - 10 * v as usize)).collect();
        let (high, truncated) = select_local_high_degree(overflow);
        assert!(truncated);
        assert_eq!(high, (0..16u32).collect::<Vec<_>>());

        let tied: Vec<(VertexId, usize)> = (0..18u32).rev().map(|v| (v, 7)).collect();
        let (high, truncated) = select_local_high_degree(tied);
        assert!(truncated);
        assert_eq!(high, (0..16u32).collect::<Vec<_>>(), "ties broken by id");
    }

    #[test]
    fn bit_cache_lease_is_released_after_the_run() {
        let g = generators::erdos_renyi(150, 1200, 2);
        let machine = Machine::new(EmConfig::new(1 << 10, 32));
        let eg = ExtGraph::load(&machine, &g);
        let mut sink = StrictSink::new();
        let _ = run_cache_oblivious(&eg, 3, &mut sink);
        assert_eq!(machine.gauge().in_use(), 0);
        assert!(machine.gauge().peak() > 0, "memoised bits were accounted");
    }
}
