//! The cache-aware randomized algorithm (paper Section 2, Theorem 4).
//!
//! 1. Let `V_h = {v : deg(v) > √(E·M)}` (there are fewer than `√(E/M)` such
//!    vertices). Enumerate every triangle with at least one vertex in `V_h`
//!    by running Lemma 1 once per high-degree vertex.
//! 2. Colour the remaining vertices with `ξ` drawn from a 4-wise independent
//!    family with `c = √(E/M)` colours, and partition the low-degree edges
//!    `E_l` into the `c²` classes `E_{τ1,τ2}`.
//! 3. For every colour triple `(τ1, τ2, τ3)` enumerate the triangles with a
//!    cone vertex of colour `τ1` and a pivot edge in `E_{τ2,τ3}`, using
//!    Lemma 2 on the edge set `E_{τ1,τ2} ∪ E_{τ1,τ3} ∪ E_{τ2,τ3}`.
//!
//! Expected I/O cost: `O(E^{3/2}/(√M·B))` (Theorem 4); the colour-balance
//! statistic `X_ξ` that drives the analysis is exposed so the experiments can
//! validate Lemma 3 (`E[X_ξ] ≤ E·M`) directly.

use emsim::{EmConfig, IoStats};
use graphgen::{Edge, Triangle, VertexId};
use kwise::{ColorMemo, RandomColoring};

use crate::input::ExtGraph;
use crate::lemma1::enumerate_through_vertex;
use crate::lemma2::{enumerate_multi_cone, enumerate_with_pivots, ChunkPolicy, ConeClasses};
use crate::partition::ColorPartition;
use crate::sink::TriangleSink;
use crate::stats::PhaseRecorder;
use crate::util::{
    degree_table, isqrt_u128, remove_incident_edges, vertices_with_degree, SortKind,
};
use crate::workunit::{ShardCursor, WorkUnitKind};
use crate::Step3Strategy;

use emsim::ExtVec;

/// Result of a cache-aware (randomized or derandomized) run, before being
/// wrapped into the public [`crate::RunReport`].
pub(crate) struct ColoredRunOutcome {
    pub triangles: u64,
    pub colors: u64,
    pub x_statistic: u128,
    pub high_degree_vertices: usize,
    /// Pivot chunks loaded by step 3 (each costs one pass of the cone
    /// streams): the observable the adaptive Lemma 2 sizing shrinks.
    pub step3_chunk_passes: u64,
}

/// Runs the cache-aware randomized algorithm.
pub(crate) fn run_cache_aware_randomized(
    graph: &ExtGraph,
    cfg: EmConfig,
    seed: u64,
    strategy: Step3Strategy,
    sink: &mut dyn TriangleSink,
    recorder: &mut PhaseRecorder,
) -> ColoredRunOutcome {
    run_cache_aware_randomized_sharded(
        graph,
        cfg,
        seed,
        strategy,
        sink,
        recorder,
        &mut ShardCursor::solo(),
    )
}

/// [`run_cache_aware_randomized`] under a shard cursor: the worker executes
/// only the step-1 vertices and step-3 pivot pairs it owns. The colouring
/// depends on `seed` alone — never on the worker — so every worker agrees on
/// the classes and the unit numbering.
pub(crate) fn run_cache_aware_randomized_sharded(
    graph: &ExtGraph,
    cfg: EmConfig,
    seed: u64,
    strategy: Step3Strategy,
    sink: &mut dyn TriangleSink,
    recorder: &mut PhaseRecorder,
    shard: &mut ShardCursor,
) -> ColoredRunOutcome {
    let e = graph.edge_count();
    let c = number_of_colors(e, cfg.mem_words);
    let coloring = RandomColoring::new(c, seed);
    run_colored(
        graph,
        cfg,
        c,
        &|v| coloring.color(v),
        strategy,
        sink,
        recorder,
        shard,
    )
}

/// The number of colours `c = ⌈√(E/M)⌉` (at least 1), computed exactly in
/// integers: the smallest `c` with `c²·M ≥ E`. (`f64::sqrt` on the rational
/// `E/M` mis-rounds near perfect squares once `E` is large; the exact value
/// matters because `c` sizes the `c³` colour-triple loop.)
pub(crate) fn number_of_colors(edges: usize, mem_words: usize) -> u64 {
    let e = edges as u128;
    let m = (mem_words as u128).max(1);
    let mut c = isqrt_u128(e.div_ceil(m)).max(1);
    while c * c * m < e {
        c += 1;
    }
    while c > 1 && (c - 1) * (c - 1) * m >= e {
        c -= 1;
    }
    c as u64
}

/// The high-degree threshold `⌊√(E·M)⌋`, exact in integers (`E·M` exceeds
/// the 2⁵³ precision of `f64` long before it exceeds a word).
pub(crate) fn high_degree_threshold(edges: usize, mem_words: usize) -> u32 {
    let prod = edges as u128 * mem_words as u128;
    isqrt_u128(prod).min(u128::from(u32::MAX)) as u32
}

/// The shared Step-1/Step-2 scaffolding of the cache-aware algorithms:
/// computes the Lemma 1 threshold `⌊√(E·M)⌋`, the degree table, the
/// high-degree vertex set `V_h` (ascending by id) and the low-degree edge
/// set `E_l = E \ E(V_h)`. Used by [`run_colored`], the derandomized greedy
/// selection and [`measure_random_coloring_balance`], so the three can never
/// drift apart on which edges count as low-degree.
pub(crate) fn split_high_low_degree(
    edges: &ExtVec<Edge>,
    mem_words: usize,
) -> (Vec<VertexId>, ExtVec<Edge>) {
    let threshold = high_degree_threshold(edges.len(), mem_words);
    let degrees = degree_table(edges, SortKind::Aware);
    let high = vertices_with_degree(&degrees, |d| d > threshold);
    drop(degrees);
    let el = remove_incident_edges(edges, &high);
    (high, el)
}

/// Shared driver for the randomized (Section 2) and derandomized (Section 4)
/// cache-aware algorithms: everything except how the colouring is chosen.
///
/// Step 3 runs the strategy the caller picked: the production
/// [`Step3Strategy::PivotGrouped`] loop, or the
/// [`Step3Strategy::PerTripleReference`] loop the equivalence tests pin the
/// production path against.
///
/// Work units (sharded runs): each step-1 high-degree vertex is one unit, in
/// ascending vertex order; each *non-empty* step-3 pivot pair `(τ2, τ3)` is
/// one unit, in loop order. Both streams are determined by the colouring
/// (hence the seed) alone, so the numbering is identical on every worker.
/// Step 2 — building the partition — is replicated on every worker: all
/// workers need the class index. With a solo cursor every claim succeeds and
/// this is exactly the sequential driver.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_colored(
    graph: &ExtGraph,
    cfg: EmConfig,
    c: u64,
    color: &dyn Fn(VertexId) -> u64,
    strategy: Step3Strategy,
    sink: &mut dyn TriangleSink,
    recorder: &mut PhaseRecorder,
    shard: &mut ShardCursor,
) -> ColoredRunOutcome {
    let machine = graph.machine().clone();
    let edges = graph.edges();
    let mut triangles = 0u64;

    // ---- Step 1: triangles with a high-degree vertex (Lemma 1 per vertex). ----
    let before: IoStats = machine.io();
    let (high, el) = split_high_low_degree(edges, cfg.mem_words);
    let _high_lease = machine.gauge().lease(high.len() as u64);
    {
        // Emit a triangle through high-degree vertex v only if v is the
        // first high-degree vertex of that triangle, so that triangles with
        // several high-degree vertices are emitted exactly once.
        for &v in &high {
            if !shard.claim(WorkUnitKind::HighDegreeVertex { v }) {
                continue;
            }
            let high_ref = &high;
            triangles += enumerate_through_vertex(
                edges,
                v,
                SortKind::Aware,
                |t: Triangle| {
                    let first_high = [t.a, t.b, t.c]
                        .into_iter()
                        .find(|x| high_ref.binary_search(x).is_ok());
                    first_high == Some(v)
                },
                sink,
            );
        }
    }
    recorder.record("step1_high_degree", before, machine.io());

    // ---- Step 2: colour and partition the low-degree edges. ----
    let before: IoStats = machine.io();
    // Memoise the colouring in an in-core table for the partition sort's key
    // evaluations (for the derandomized colouring each raw evaluation walks
    // a whole chain of degree-3 polynomials). Capacity is M/8 entries — at
    // two words per entry the table is leased at ≤ M/4 for every M, so the
    // memo can never act as hidden extra memory.
    let memo = ColorMemo::new(color, (cfg.mem_words / 8).max(1));
    let _memo_lease = machine
        .gauge()
        .lease(memo.capacity() as u64 * ColorMemo::WORDS_PER_ENTRY);
    let memo_color = |v: VertexId| memo.color(v);
    let partition = ColorPartition::build(&el, c, &memo_color);
    drop(el);
    let _index_lease = machine.gauge().lease(partition.index_words());
    let x_statistic = partition.x_statistic();
    recorder.record("step2_partition", before, machine.io());

    // ---- Step 3: enumerate the colour triples against Lemma 2. ----
    let before: IoStats = machine.io();
    let mut step3_chunk_passes = 0u64;
    match strategy {
        Step3Strategy::PivotGrouped => {
            // Group the `c³` triples by their pivot colour pair `(τ2, τ3)`:
            // the pivot class is handed to Lemma 2 as a zero-copy view and
            // each of its chunks is loaded and indexed once for all `c` cone
            // colours, instead of once per `(τ1, τ2, τ3)`.
            for t2 in 0..c {
                for t3 in 0..c {
                    // Skip-fast: an empty pivot class is rejected on the
                    // in-core offset table before any allocation. The skip
                    // precedes the unit claim — the class index is
                    // replicated, so every worker skips the same pairs and
                    // the unit stream stays aligned.
                    if partition.class_len(t2, t3) == 0 {
                        continue;
                    }
                    if !shard.claim(WorkUnitKind::PivotPair { t2, t3 }) {
                        continue;
                    }
                    let pivots = partition.class_slice(t2, t3);
                    let mut cones: Vec<ConeClasses> = Vec::new();
                    for t1 in 0..c {
                        let mut ranges = Vec::new();
                        if partition.class_len(t1, t2) > 0 {
                            ranges.push(partition.class_slice(t1, t2));
                        }
                        // E_{τ1,τ2} and E_{τ1,τ3} coincide when τ2 = τ3.
                        if t3 != t2 && partition.class_len(t1, t3) > 0 {
                            ranges.push(partition.class_slice(t1, t3));
                        }
                        // Skip-fast: a cone colour with no candidate cone
                        // edges cannot contribute a triangle. (Pivot-internal
                        // triangles survive this guard: their cone colour is
                        // τ2, whose ranges include the non-empty pivot class.)
                        if ranges.is_empty() {
                            continue;
                        }
                        cones.push(ConeClasses { ranges });
                    }
                    // The cone table is O(c) in-core words of view metadata.
                    let _cone_lease = machine.gauge().lease((cones.len() * 4) as u64);
                    let stats = enumerate_multi_cone(
                        pivots,
                        &cones,
                        cfg.mem_words,
                        ChunkPolicy::default(),
                        sink,
                    );
                    triangles += stats.emitted;
                    step3_chunk_passes += stats.chunk_passes;
                }
            }
        }
        Step3Strategy::PerTripleReference => {
            // The reference loop is a test-only equivalence baseline; the
            // sharded scheduler always selects the production strategy, so
            // the loop is not decomposed into units.
            debug_assert!(
                shard.is_solo(),
                "the per-triple reference loop only runs sequentially"
            );
            // The pre-grouping loop: one Lemma 2 invocation per colour
            // triple, with materialised pivot copies, per-triple re-merged
            // edge sets and a per-triangle cone-colour filter.
            for t1 in 0..c {
                for t2 in 0..c {
                    for t3 in 0..c {
                        if partition.class_len(t2, t3) == 0 {
                            continue;
                        }
                        let pivots = partition.extract_class(t2, t3);
                        let edge_set = partition.union_sorted(&[(t1, t2), (t1, t3), (t2, t3)]);
                        triangles += enumerate_with_pivots(
                            &edge_set,
                            &pivots,
                            cfg.mem_words,
                            ChunkPolicy::PUBLISHED_BASELINE,
                            |t: Triangle| memo_color(t.a) == t1,
                            sink,
                        );
                    }
                }
            }
        }
    }
    recorder.record("step3_color_triples", before, machine.io());

    ColoredRunOutcome {
        triangles,
        colors: c,
        x_statistic,
        high_degree_vertices: high.len(),
        step3_chunk_passes,
    }
}

/// Convenience used by tests and experiments: the colour-balance statistic
/// `X_ξ` of a *random* colouring with `c` colours on the low-degree edges of
/// `graph` — the quantity Lemma 3 bounds by `E·M` in expectation.
pub fn measure_random_coloring_balance(graph: &ExtGraph, cfg: EmConfig, seed: u64) -> (u64, u128) {
    let e = graph.edge_count();
    let c = number_of_colors(e, cfg.mem_words);
    let coloring = RandomColoring::new(c, seed);
    let (_high, el) = split_high_low_degree(graph.edges(), cfg.mem_words);
    let partition = ColorPartition::build(&el, c, &|v| coloring.color(v));
    (c, partition.x_statistic())
}

#[allow(dead_code)]
fn _static_assert_edge_is_one_word() {
    // The analysis of step 3 charges one word per edge; keep the invariant
    // visible at compile time.
    const _: () = assert!(<Edge as emsim::Record>::WORDS == 1);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::StrictSink;
    use emsim::Machine;
    use graphgen::{generators, naive};

    fn run(g: &graphgen::Graph, cfg: EmConfig, seed: u64) -> (u64, u64, ColoredRunOutcome) {
        let machine = Machine::new(cfg);
        let eg = ExtGraph::load(&machine, g);
        machine.cold_cache();
        let before = machine.io().total();
        let mut sink = StrictSink::new();
        let mut rec = PhaseRecorder::new(machine.gauge());
        let out = run_cache_aware_randomized(
            &eg,
            cfg,
            seed,
            Step3Strategy::PivotGrouped,
            &mut sink,
            &mut rec,
        );
        (out.triangles, machine.io().total() - before, out)
    }

    #[test]
    fn counts_match_oracle_on_er_graphs() {
        for seed in [1u64, 5, 9] {
            let g = generators::erdos_renyi(150, 1200, seed);
            let expected = naive::count_triangles(&g);
            let (got, _, _) = run(&g, EmConfig::new(1 << 9, 32), seed);
            assert_eq!(got, expected, "seed {seed}");
        }
    }

    #[test]
    fn counts_match_oracle_on_clique_and_star() {
        let clique = generators::clique(24);
        let (got, _, out) = run(&clique, EmConfig::new(256, 32), 3);
        assert_eq!(got, 2024); // C(24,3)
        assert!(out.colors >= 1);

        let star = generators::star(300);
        let (got, _, out) = run(&star, EmConfig::new(256, 32), 3);
        assert_eq!(got, 0);
        // The centre of the star has degree 299 > sqrt(E*M) = sqrt(299*256) ≈ 276.
        assert_eq!(out.high_degree_vertices, 1);
    }

    #[test]
    fn power_law_graph_with_hubs_is_exact() {
        let g = generators::chung_lu_power_law(400, 2500, 2.2, 4);
        let expected = naive::count_triangles(&g);
        let (got, _, _) = run(&g, EmConfig::new(1 << 9, 32), 11);
        assert_eq!(got, expected);
    }

    #[test]
    fn number_of_colors_and_threshold_formulae() {
        assert_eq!(number_of_colors(1 << 20, 1 << 20), 1);
        assert_eq!(number_of_colors(1 << 20, 1 << 16), 4);
        assert_eq!(number_of_colors(100, 1_000_000), 1);
        assert_eq!(high_degree_threshold(1 << 16, 1 << 16), 1 << 16);
    }

    #[test]
    fn formulae_are_exact_at_perfect_square_boundaries() {
        // ⌈√(E/M)⌉ boundaries: E = c²·M is still c colours, one edge more
        // tips to c + 1.
        let m = 1usize << 40;
        assert_eq!(number_of_colors(9 * m, m), 3);
        assert_eq!(number_of_colors(9 * m + 1, m), 4);
        assert_eq!(number_of_colors(4 * m - 1, m), 2);
        assert_eq!(number_of_colors(0, 512), 1);
        // E = (2³²−1)², M = 1: E is not representable in f64 (it rounds to
        // 2⁶⁴, whose square root would give 2³² colours); the exact answer is
        // 2³² − 1.
        let k = (1u64 << 32) - 1;
        assert_eq!(number_of_colors((k * k) as usize, 1), k);
        assert_eq!(number_of_colors((k * k + 1) as usize, 1), k + 1);

        // ⌊√(E·M)⌋ boundaries. E·M = 2⁶² − 1 rounds to 2⁶² in f64 (whose
        // root is 2³¹); the exact floor root is 2³¹ − 1.
        assert_eq!(
            high_degree_threshold(2_147_483_647, 2_147_483_649),
            2_147_483_647
        );
        assert_eq!(high_degree_threshold(1 << 31, 1 << 31), 1 << 31);
        // Saturation at the u32 degree ceiling.
        assert_eq!(high_degree_threshold(1 << 40, 1 << 40), u32::MAX);
    }

    #[test]
    fn split_high_low_degree_is_the_step1_partition() {
        // A hub of degree 300 over ~600 edges: with M = 64 the threshold is
        // ⌊√(600·64)⌋ ≈ 196, so exactly the hub is high-degree.
        let mut g = graphgen::Graph::empty(301);
        for v in 1..=300u32 {
            g.add_edge(0, v);
        }
        for v in 1..300u32 {
            g.add_edge(v, v + 1);
        }
        let cfg = EmConfig::new(64, 16);
        let machine = Machine::new(cfg);
        let eg = ExtGraph::load(&machine, &g);
        let (high, el) = split_high_low_degree(eg.edges(), cfg.mem_words);
        let threshold = high_degree_threshold(eg.edge_count(), cfg.mem_words);
        // The split agrees with the graph's own degree sequence.
        let deg = {
            let canon = eg.edges().load_all();
            let mut d = vec![0u32; eg.vertex_count()];
            for e in &canon {
                d[e.u as usize] += 1;
                d[e.v as usize] += 1;
            }
            d
        };
        let expected_high: Vec<u32> = (0..eg.vertex_count() as u32)
            .filter(|&v| deg[v as usize] > threshold)
            .collect();
        assert_eq!(high, expected_high);
        assert!(!high.is_empty(), "the hub must be detected as high-degree");
        for e in el.iter() {
            assert!(deg[e.u as usize] <= threshold && deg[e.v as usize] <= threshold);
        }
        assert_eq!(
            el.len(),
            eg.edge_count()
                - eg
                    .edges()
                    .iter()
                    .filter(|e| high.binary_search(&e.u).is_ok()
                        || high.binary_search(&e.v).is_ok())
                    .count()
        );
    }

    #[test]
    fn high_degree_cut_is_strict_at_the_exact_sqrt_em_boundary() {
        // The paper defines V_h = {v : deg(v) > √(E·M)} with a *strict*
        // inequality; with the threshold computed exactly (integer isqrt), a
        // vertex of degree exactly ⌊√(E·M)⌋ must stay low-degree, and one
        // more incident edge must tip it over. Pin both sides.
        //
        // Hub of degree 40 + a 61-vertex path: E = 100, M = 16, so
        // E·M = 1600 = 40² exactly and the hub sits *on* the boundary.
        let mut g = graphgen::Graph::empty(102);
        for v in 1..=40u32 {
            g.add_edge(0, v);
        }
        for v in 41..101u32 {
            g.add_edge(v, v + 1);
        }
        let mem = 16usize;
        assert_eq!(high_degree_threshold(100, mem), 40);
        let machine = Machine::new(EmConfig::new(mem, 16));
        let eg = ExtGraph::load(&machine, &g);
        assert_eq!(eg.edge_count(), 100);
        let (high, el) = split_high_low_degree(eg.edges(), mem);
        assert!(
            high.is_empty(),
            "degree == ⌊√(E·M)⌋ exactly must NOT be high-degree (strict >)"
        );
        assert_eq!(el.len(), 100, "no edges may be removed at the boundary");

        // One more spoke: hub degree 41, E = 101, threshold ⌊√1616⌋ = 40.
        g.add_edge(0, 101);
        assert_eq!(high_degree_threshold(101, mem), 40);
        let machine = Machine::new(EmConfig::new(mem, 16));
        let eg = ExtGraph::load(&machine, &g);
        let (high, el) = split_high_low_degree(eg.edges(), mem);
        assert_eq!(
            high.len(),
            1,
            "degree ⌊√(E·M)⌋ + 1 must be cut as high-degree"
        );
        assert_eq!(el.len(), 101 - 41, "all 41 hub edges must be removed");

        // The split is an analysis device, not a correctness requirement —
        // but the boundary input must still enumerate exactly (0 triangles:
        // a star plus a path is triangle-free).
        for strategy in [
            Step3Strategy::PivotGrouped,
            Step3Strategy::PerTripleReference,
        ] {
            let cfg = EmConfig::new(mem, 16);
            let machine = Machine::new(cfg);
            let eg = ExtGraph::load(&machine, &g);
            let mut sink = StrictSink::new();
            let mut rec = PhaseRecorder::new(machine.gauge());
            let out = run_cache_aware_randomized(&eg, cfg, 1, strategy, &mut sink, &mut rec);
            assert_eq!(out.triangles, 0, "{strategy:?}");
        }
    }

    #[test]
    fn io_is_within_constant_of_the_paper_bound_when_memory_is_scarce() {
        // The unit test only guards the constant factor at small scale; the
        // crossover against Hu et al. (the √(E/M) improvement) is exercised
        // at larger E/M by experiment E2 and the integration tests.
        let g = generators::erdos_renyi(600, 12_000, 2);
        let cfg = EmConfig::new(512, 32);
        let (_, ios, _) = run(&g, cfg, 7);
        let paper_bound = cfg.triangle_bound(12_000);
        let ratio = ios as f64 / paper_bound;
        assert!(
            ratio < 60.0,
            "cache-aware used {ios} I/Os = {ratio:.1}x the E^1.5/(sqrt(M)B) bound"
        );
    }

    #[test]
    fn all_one_color_coloring_enumerates_pivot_internal_triangles_exactly_once() {
        // Regression for the skip-fast cone guard: with every vertex coloured
        // 0 (but c = 3 declared colours), only the (0,0) pivot class is
        // non-empty, cone colours 1 and 2 must be skipped, and the
        // pivot-internal triangles of class (0,0) must be emitted exactly
        // once — both by the pivot-grouped loop and the reference loop.
        let g = generators::erdos_renyi(120, 900, 8);
        let expected = naive::count_triangles(&g);
        let cfg = EmConfig::new(256, 32);
        for strategy in [
            Step3Strategy::PivotGrouped,
            Step3Strategy::PerTripleReference,
        ] {
            let machine = Machine::new(cfg);
            let eg = ExtGraph::load(&machine, &g);
            let mut sink = StrictSink::new(); // panics on duplicate emission
            let mut rec = PhaseRecorder::new(machine.gauge());
            let out = run_colored(
                &eg,
                cfg,
                3,
                &|_| 0,
                strategy,
                &mut sink,
                &mut rec,
                &mut ShardCursor::solo(),
            );
            assert_eq!(out.triangles, expected, "{strategy:?}");
            assert_eq!(sink.len() as u64, expected, "{strategy:?}");
        }
    }

    #[test]
    fn pivot_grouped_and_reference_step3_agree_under_memory_pressure() {
        for seed in [1u64, 4] {
            let g = generators::chung_lu_power_law(300, 2000, 2.1, seed);
            let cfg = EmConfig::new(128, 16); // tiny memory: many colours
            let collect = |strategy: Step3Strategy| {
                let machine = Machine::new(cfg);
                let eg = ExtGraph::load(&machine, &g);
                let mut sink = crate::sink::CollectingSink::new();
                let mut rec = PhaseRecorder::new(machine.gauge());
                let out = run_cache_aware_randomized(&eg, cfg, seed, strategy, &mut sink, &mut rec);
                let mut ts = sink.into_triangles();
                ts.sort_unstable();
                (out.triangles, ts)
            };
            let (n_new, t_new) = collect(Step3Strategy::PivotGrouped);
            let (n_old, t_old) = collect(Step3Strategy::PerTripleReference);
            assert_eq!(n_new, n_old, "seed {seed}");
            assert_eq!(t_new, t_old, "seed {seed}");
            assert_eq!(n_new, naive::count_triangles(&g), "seed {seed}");
        }
    }

    #[test]
    fn run_peak_memory_stays_within_budget_even_at_tiny_m() {
        // The colour memo, partition index, merge heads and Lemma 2 chunk
        // leases must jointly respect the budget at small M too (the memo
        // capacity scales with M — a fixed floor would swallow the whole
        // budget here).
        let g = generators::erdos_renyi(300, 2000, 5);
        let cfg = EmConfig::new(128, 16);
        let machine = Machine::new(cfg);
        let eg = ExtGraph::load(&machine, &g);
        machine.gauge().reset_peak();
        let mut sink = StrictSink::new();
        let mut rec = PhaseRecorder::new(machine.gauge());
        let out = run_cache_aware_randomized(
            &eg,
            cfg,
            2,
            Step3Strategy::PivotGrouped,
            &mut sink,
            &mut rec,
        );
        assert_eq!(out.triangles, naive::count_triangles(&g));
        assert!(
            machine.gauge().peak() <= 2 * cfg.mem_words as u64,
            "peak in-core usage {} exceeds 2M = {}",
            machine.gauge().peak(),
            2 * cfg.mem_words
        );
    }

    #[test]
    fn pivot_grouped_step3_does_less_io_than_the_reference() {
        let g = generators::erdos_renyi(600, 12_000, 2);
        let cfg = EmConfig::new(512, 32);
        let io_of = |strategy: Step3Strategy| {
            let machine = Machine::new(cfg);
            let eg = ExtGraph::load(&machine, &g);
            machine.cold_cache();
            let before = machine.io().total();
            let mut sink = StrictSink::new();
            let mut rec = PhaseRecorder::new(machine.gauge());
            run_cache_aware_randomized(&eg, cfg, 7, strategy, &mut sink, &mut rec);
            machine.io().total() - before
        };
        let grouped = io_of(Step3Strategy::PivotGrouped);
        let reference = io_of(Step3Strategy::PerTripleReference);
        assert!(
            (grouped as f64) < 0.8 * reference as f64,
            "pivot grouping should cut step-3 I/O well below the per-triple \
             loop (grouped={grouped}, reference={reference})"
        );
    }

    #[test]
    fn random_coloring_balance_close_to_lemma3_bound() {
        let g = generators::erdos_renyi(500, 8000, 6);
        let cfg = EmConfig::new(512, 32);
        let machine = Machine::new(cfg);
        let eg = ExtGraph::load(&machine, &g);
        let mut total = 0f64;
        let runs = 5;
        for seed in 0..runs {
            let (_, x) = measure_random_coloring_balance(&eg, cfg, seed);
            total += x as f64;
        }
        let avg = total / runs as f64;
        let bound = 8000.0 * 512.0; // E·M
        assert!(
            avg <= 3.0 * bound,
            "average X_xi {avg} should be within a small factor of E*M = {bound}"
        );
    }
}
