//! Loading a graph into simulated external memory in the paper's canonical
//! representation.

use emsim::{ExtVec, Machine};
use graphgen::{Edge, Graph, Triangle, VertexId};

/// A graph resident in simulated external memory, in the canonical form the
/// paper assumes (Section 1.3):
///
/// * vertices are totally ordered by degree, ties broken consistently — here
///   the vertices are *renumbered* so that the integer order is that order;
/// * every edge `{v1, v2}` is stored as `(v1, v2)` with `v1 < v2`;
/// * the edge tuples are sorted lexicographically, so each vertex's
///   higher-ordered neighbours are stored consecutively.
///
/// The paper notes that converting an arbitrary representation into this form
/// costs `sort(E)` I/Os; as in the paper, that preprocessing is not charged
/// to the enumeration algorithms (only the `E/B` cost of materialising the
/// edge list on the simulated disk is incurred here).
pub struct ExtGraph {
    machine: Machine,
    edges: ExtVec<Edge>,
    vertices: usize,
    back_map: Vec<VertexId>,
}

impl ExtGraph {
    /// Copies `graph` onto `machine`'s disk in canonical form.
    pub fn load(machine: &Machine, graph: &Graph) -> Self {
        let (ordered, back_map) = graph.degree_ordered();
        let mut edges: ExtVec<Edge> = ExtVec::new(machine);
        for e in ordered.edges() {
            edges.push(*e);
        }
        Self {
            machine: machine.clone(),
            edges,
            vertices: ordered.vertex_count(),
            back_map,
        }
    }

    /// The machine the graph lives on.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// The canonical edge list (sorted lexicographically, `u < v`, ids in
    /// degree order).
    pub fn edges(&self) -> &ExtVec<Edge> {
        &self.edges
    }

    /// Number of edges `E`.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Number of vertices `V` (including isolated vertices).
    pub fn vertex_count(&self) -> usize {
        self.vertices
    }

    /// Translates a triangle expressed in the canonical (degree-ordered)
    /// vertex ids back into the caller's original vertex ids.
    pub fn translate(&self, t: Triangle) -> Triangle {
        Triangle::new(
            self.back_map[t.a as usize],
            self.back_map[t.b as usize],
            self.back_map[t.c as usize],
        )
    }

    /// The original id of canonical vertex `v`.
    pub fn original_id(&self, v: VertexId) -> VertexId {
        self.back_map[v as usize]
    }
}

impl std::fmt::Debug for ExtGraph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ExtGraph(V={}, E={})", self.vertices, self.edges.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emsim::EmConfig;
    use graphgen::generators;

    #[test]
    fn loaded_graph_is_sorted_and_degree_ordered() {
        let g = generators::erdos_renyi(200, 800, 3);
        let machine = Machine::new(EmConfig::new(1 << 12, 64));
        let eg = ExtGraph::load(&machine, &g);
        assert_eq!(eg.edge_count(), 800);
        assert_eq!(eg.vertex_count(), 200);
        let loaded = eg.edges().load_all();
        assert!(
            loaded.windows(2).all(|w| w[0] < w[1]),
            "edges sorted and distinct"
        );
        assert!(loaded.iter().all(|e| e.u < e.v), "edges canonical");
    }

    #[test]
    fn translation_restores_original_ids() {
        // A star: the centre gets relabelled to the highest id, so translation
        // must map it back to 0.
        let g = generators::star(10);
        let machine = Machine::new(EmConfig::default());
        let eg = ExtGraph::load(&machine, &g);
        let centre_canonical = (eg.vertex_count() - 1) as u32;
        assert_eq!(eg.original_id(centre_canonical), 0);
        let t = eg.translate(Triangle::new(centre_canonical, 0, 1));
        assert!(t.a == 0 || t.b == 0 || t.c == 0);
    }

    #[test]
    fn loading_charges_write_side_ios_only() {
        let g = generators::erdos_renyi(500, 4000, 1);
        let machine = Machine::new(EmConfig::new(1 << 10, 64));
        let _eg = ExtGraph::load(&machine, &g);
        machine.flush();
        let io = machine.io();
        assert_eq!(io.reads, 0);
        // 4000 one-word edges over 64-word blocks = 63 blocks.
        assert_eq!(io.writes, 4000u64.div_ceil(64));
    }
}
