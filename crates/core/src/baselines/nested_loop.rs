//! The pipelined block-nested-loop three-way join baseline.
//!
//! Triangle enumeration is the natural join of three copies of the edge
//! relation; two block-nested-loop joins evaluated in a pipeline cost
//! `O((E/M)² · E/B) = O(E³/(M²·B))` I/Os (paper §1.1). The implementation
//! keeps one memory-sized chunk of each of the two outer relations resident,
//! indexed by their larger endpoints, and streams the edge list once per
//! chunk pair to find the closing (pivot) edges.

use std::collections::HashMap;

use emsim::EmConfig;
use graphgen::{Triangle, VertexId};

use crate::input::ExtGraph;
use crate::sink::TriangleSink;

/// Fraction of the memory budget for each of the two resident chunks and
/// their indexes.
const CHUNK_DIVISOR: usize = 8;

/// Runs the block-nested-loop baseline, returning the number of triangles.
pub(crate) fn run_block_nested_loop(
    graph: &ExtGraph,
    cfg: EmConfig,
    sink: &mut dyn TriangleSink,
) -> u64 {
    let machine = graph.machine().clone();
    let edges = graph.edges();
    let e = edges.len();
    if e < 3 {
        return 0;
    }
    let chunk = (cfg.mem_words / CHUNK_DIVISOR).max(1);
    let mut emitted = 0u64;

    let mut ri_start = 0usize;
    while ri_start < e {
        let ri_end = (ri_start + chunk).min(e);
        // Index of R-chunk edges by their larger endpoint: x → cone candidates v1 < x.
        let ri: Vec<_> = edges.load_range(ri_start, ri_end);
        let _ri_lease = machine.gauge().lease((ri.len() * 3) as u64);
        // emlint: allow(uncharged-std, reason = "models the in-core hash join of §1.1; footprint covered by _ri_lease, probe work charged via machine.work")
        let mut ri_index: HashMap<VertexId, Vec<VertexId>> = HashMap::with_capacity(ri.len());
        for edge in &ri {
            ri_index.entry(edge.v).or_default().push(edge.u);
            machine.work(1);
        }

        let mut sj_start = 0usize;
        while sj_start < e {
            let sj_end = (sj_start + chunk).min(e);
            let sj: Vec<_> = edges.load_range(sj_start, sj_end);
            let _sj_lease = machine.gauge().lease((sj.len() * 3) as u64);
            // emlint: allow(uncharged-std, reason = "models the in-core hash join of §1.1; footprint covered by _sj_lease, probe work charged via machine.work")
            let mut sj_index: HashMap<VertexId, Vec<VertexId>> = HashMap::with_capacity(sj.len());
            for edge in &sj {
                sj_index.entry(edge.v).or_default().push(edge.u);
                machine.work(1);
            }

            // Stream the full edge list looking for closing (pivot) edges
            // {x, y}: the cone v1 must satisfy {v1,x} ∈ R-chunk, {v1,y} ∈
            // S-chunk and v1 < x < y, which makes the emission unique over
            // all chunk pairs.
            for pivot in edges.iter() {
                machine.work(1);
                let (x, y) = (pivot.u, pivot.v);
                let (Some(rs), Some(ss)) = (ri_index.get(&x), sj_index.get(&y)) else {
                    continue;
                };
                if rs.len() <= ss.len() {
                    // emlint: allow(uncharged-std, reason = "probe set over the smaller leased adjacency list; per-probe work charged in the loop below")
                    let sset: std::collections::HashSet<_> = ss.iter().collect();
                    for &v1 in rs {
                        machine.work(1);
                        if v1 < x && sset.contains(&v1) {
                            sink.emit(Triangle::new(v1, x, y));
                            emitted += 1;
                        }
                    }
                } else {
                    // emlint: allow(uncharged-std, reason = "probe set over the smaller leased adjacency list; per-probe work charged in the loop below")
                    let rset: std::collections::HashSet<_> = rs.iter().collect();
                    for &v1 in ss {
                        machine.work(1);
                        if v1 < x && rset.contains(&v1) {
                            sink.emit(Triangle::new(v1, x, y));
                            emitted += 1;
                        }
                    }
                }
            }
            sj_start = sj_end;
        }
        ri_start = ri_end;
    }
    emitted
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::StrictSink;
    use emsim::Machine;
    use graphgen::{generators, naive};

    fn run(g: &graphgen::Graph, cfg: EmConfig) -> (u64, u64) {
        let machine = Machine::new(cfg);
        let eg = ExtGraph::load(&machine, g);
        machine.cold_cache();
        let before = machine.io().total();
        let mut sink = StrictSink::new();
        let n = run_block_nested_loop(&eg, cfg, &mut sink);
        (n, machine.io().total() - before)
    }

    #[test]
    fn matches_oracle_small_graphs() {
        for seed in [1u64, 4] {
            let g = generators::erdos_renyi(60, 400, seed);
            let (n, _) = run(&g, EmConfig::new(256, 32));
            assert_eq!(n, naive::count_triangles(&g), "seed {seed}");
        }
        let (n, _) = run(&generators::clique(12), EmConfig::new(256, 32));
        assert_eq!(n, 220);
    }

    #[test]
    fn io_scales_with_inverse_square_of_memory() {
        let g = generators::erdos_renyi(150, 2500, 2);
        let (_, small) = run(&g, EmConfig::new(256, 32));
        let (_, large) = run(&g, EmConfig::new(1024, 32));
        // (E/M)² scaling: 4x memory → ~16x fewer chunk-pair scans.
        assert!(
            small as f64 > 6.0 * large as f64,
            "expected strong superlinear benefit from memory (small={small}, large={large})"
        );
    }
}
