//! The Hu–Tao–Chung (SIGMOD 2013) algorithm, used as the principal baseline.
//!
//! The paper's Lemma 2 *is* step 2 of Hu et al.'s algorithm; applying it with
//! the pivot set equal to the whole edge set enumerates every triangle in
//! `O(E/B + E²/(M·B))` I/Os — the bound the paper improves by a factor
//! `min(√(E/M), √M)`.

use emsim::EmConfig;

use crate::input::ExtGraph;
use crate::lemma2::{enumerate_with_pivots, ChunkPolicy};
use crate::sink::TriangleSink;

/// Runs the Hu–Tao–Chung baseline on `graph` and returns the number of
/// triangles emitted.
///
/// The baseline deliberately runs Lemma 2 under
/// [`ChunkPolicy::PUBLISHED_BASELINE`] — fixed `αM` iterations, full edge
/// rescans — because its iteration structure is part of the SIGMOD 2013
/// algorithm the paper's `min(√(E/M), √M)` improvement factor is measured
/// against. The adaptive sizing and endpoint-range pruning are improvements
/// of *this repository's* implementation of the paper's algorithms, not of
/// the baseline being compared to.
pub(crate) fn run_hu_tao_chung(
    graph: &ExtGraph,
    cfg: EmConfig,
    sink: &mut dyn TriangleSink,
) -> u64 {
    enumerate_with_pivots(
        graph.edges(),
        graph.edges(),
        cfg.mem_words,
        ChunkPolicy::PUBLISHED_BASELINE,
        |_| true,
        sink,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::StrictSink;
    use emsim::Machine;
    use graphgen::{generators, naive};

    #[test]
    fn matches_oracle() {
        let g = generators::erdos_renyi(120, 900, 17);
        let machine = Machine::new(EmConfig::new(512, 32));
        let eg = ExtGraph::load(&machine, &g);
        let mut sink = StrictSink::new();
        let n = run_hu_tao_chung(&eg, machine.config(), &mut sink);
        assert_eq!(n, naive::count_triangles(&g));
    }

    #[test]
    fn io_scales_inversely_with_memory() {
        // The E²/(MB) term: quadrupling M should cut the I/Os roughly 4x
        // (up to the E/B additive term).
        let g = generators::erdos_renyi(400, 8000, 23);
        let run = |mem: usize| -> u64 {
            let machine = Machine::new(EmConfig::new(mem, 32));
            let eg = ExtGraph::load(&machine, &g);
            machine.cold_cache();
            let before = machine.io().total();
            let mut sink = StrictSink::new();
            run_hu_tao_chung(&eg, machine.config(), &mut sink);
            machine.io().total() - before
        };
        let small = run(256);
        let large = run(1024);
        assert!(
            small as f64 > 2.5 * large as f64,
            "4x memory should cut Hu et al. I/Os well over 2.5x (small={small}, large={large})"
        );
    }
}
