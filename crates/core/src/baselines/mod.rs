//! Baseline algorithms the paper compares against (Section 1.1).
//!
//! * [`nested_loop`] — the pipelined block-nested-loop three-way join,
//!   `O(E³/(M²·B))` I/Os.
//! * [`dementiev`] — the sort-based listing algorithm of Dementiev's thesis,
//!   `O((E^{3/2}/B)·log_{M/B}(E/B))` I/Os; also the base case of the paper's
//!   cache-oblivious recursion.
//! * [`hu_tao_chung`] — the SIGMOD 2013 algorithm of Hu, Tao and Chung,
//!   `O(E²/(M·B) + t/B)` I/Os (here used as an enumeration algorithm, so the
//!   `t/B` listing term does not apply).

pub(crate) mod dementiev;
pub(crate) mod hu_tao_chung;
pub(crate) mod nested_loop;
