//! Dementiev's sort-based triangle algorithm.
//!
//! The classic external node-iterator: orient every edge from its
//! lower-ordered to its higher-ordered endpoint, generate every *wedge*
//! (a path `u – v – w` with `u` preceding both `v` and `w`), sort the wedges
//! by their missing edge `{v, w}`, and merge them against the sorted edge
//! list; wedges whose missing edge exists are triangles.
//!
//! The wedge file has `Σ_u C(deg⁺(u), 2) = O(E^{3/2})` entries, so the
//! total cost is `O(sort(E^{3/2}))` I/Os — the bound the paper quotes for
//! Dementiev's algorithm. The same routine (with the cache-oblivious sort and
//! a colour filter) serves as the base case of the cache-oblivious recursion.

use emsim::ExtVec;
use graphgen::{Edge, Triangle};

use crate::sink::TriangleSink;
use crate::util::{sort_edges_by, SortKind};

/// Enumerates every triangle of `edges` (canonical edge list) that passes
/// `filter`, using only sorts and scans. Returns the number emitted.
pub(crate) fn sort_based_enumeration(
    edges: &ExtVec<Edge>,
    kind: SortKind,
    mut filter: impl FnMut(Triangle) -> bool,
    sink: &mut dyn TriangleSink,
) -> u64 {
    let machine = edges.machine().clone();
    if edges.len() < 3 {
        return 0;
    }

    // The orientation "smaller id → larger id" is the degree orientation,
    // because the canonical graphs renumber vertices in degree order. Most
    // callers (the canonical edge list of a loaded graph, the cache-oblivious
    // base case) already hand over a lexicographically sorted list, so check
    // with one scan before paying for a sort.
    let sorted_owned;
    let sorted = if emalgo::is_sorted_by_key(edges, |e| (e.u, e.v)) {
        edges
    } else {
        sorted_owned = sort_edges_by(edges, kind, |e| (e.u, e.v));
        &sorted_owned
    };

    // ---- Wedge generation: one scan grouped by the smaller endpoint. ----
    let mut wedges: ExtVec<(u32, u32, u32)> = ExtVec::new(&machine);
    {
        let mut lease = machine.gauge().lease(0);
        let mut current: Option<u32> = None;
        let mut out_neighbours: Vec<u32> = Vec::new();
        let flush = |u: u32, outn: &mut Vec<u32>, wedges: &mut ExtVec<(u32, u32, u32)>| {
            for i in 0..outn.len() {
                for j in (i + 1)..outn.len() {
                    machine.work(1);
                    let (v, w) = (outn[i].min(outn[j]), outn[i].max(outn[j]));
                    wedges.push((v, w, u));
                }
            }
            outn.clear();
        };
        for e in sorted.iter() {
            machine.work(1);
            if current != Some(e.u) {
                if let Some(u) = current {
                    flush(u, &mut out_neighbours, &mut wedges);
                }
                current = Some(e.u);
                lease.shrink(lease.words());
            }
            out_neighbours.push(e.v);
            lease.grow(1);
        }
        if let Some(u) = current {
            flush(u, &mut out_neighbours, &mut wedges);
        }
    }

    // ---- Sort wedges by missing edge and merge against the edge list. ----
    let wedges_sorted = match kind {
        SortKind::Aware => emalgo::external_sort_by_key(&wedges, |&(v, w, _)| (v, w)),
        SortKind::Oblivious => emalgo::oblivious_sort_by_key(&wedges, |&(v, w, _)| (v, w)),
    };
    drop(wedges);

    let mut emitted = 0u64;
    let mut edge_iter = sorted.iter().peekable();
    for (v, w, u) in wedges_sorted.iter() {
        machine.work(1);
        let target = Edge::new(v, w);
        while let Some(&e) = edge_iter.peek() {
            if e < target {
                edge_iter.next();
            } else {
                break;
            }
        }
        if edge_iter.peek() == Some(&target) {
            let t = Triangle::new(u, v, w);
            if filter(t) {
                sink.emit(t);
                emitted += 1;
            }
        }
    }
    emitted
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::{CollectingSink, StrictSink};
    use emsim::{EmConfig, Machine};
    use graphgen::{generators, naive, Graph};

    fn canonical_ext(g: &Graph, machine: &Machine) -> ExtVec<Edge> {
        let mut edges: Vec<Edge> = g.edges().to_vec();
        edges.sort_unstable();
        ExtVec::from_slice(machine, &edges)
    }

    #[test]
    fn matches_oracle_for_both_sort_kinds() {
        let g = generators::erdos_renyi(90, 700, 13);
        let expected = naive::count_triangles(&g);
        for kind in [SortKind::Aware, SortKind::Oblivious] {
            let machine = Machine::new(EmConfig::new(1 << 10, 64));
            let edges = canonical_ext(&g, &machine);
            let mut sink = StrictSink::new();
            let n = sort_based_enumeration(&edges, kind, |_| true, &mut sink);
            assert_eq!(n, expected);
        }
    }

    #[test]
    fn unsorted_input_is_sorted_before_enumeration() {
        // The sorted fast path must not make unsorted inputs incorrect.
        let g = generators::erdos_renyi(70, 500, 3);
        let expected = naive::count_triangles(&g);
        let machine = Machine::new(EmConfig::new(1 << 10, 64));
        let mut edges: Vec<Edge> = g.edges().to_vec();
        edges.reverse();
        let ext = ExtVec::from_slice(&machine, &edges);
        let mut sink = StrictSink::new();
        let n = sort_based_enumeration(&ext, SortKind::Aware, |_| true, &mut sink);
        assert_eq!(n, expected);
    }

    #[test]
    fn presorted_input_skips_the_sort() {
        let machine = Machine::new(EmConfig::new(512, 32));
        let edges = canonical_ext(&generators::erdos_renyi(80, 600, 9), &machine);
        machine.cold_cache();
        let w0 = machine.stats().work_ops;
        let mut sink = StrictSink::new();
        sort_based_enumeration(&edges, SortKind::Oblivious, |_| true, &mut sink);
        let sorted_work = machine.stats().work_ops - w0;

        let mut reversed: Vec<Edge> = edges.load_all();
        reversed.reverse();
        let ext = ExtVec::from_slice(&machine, &reversed);
        machine.cold_cache();
        let w0 = machine.stats().work_ops;
        let mut sink = StrictSink::new();
        sort_based_enumeration(&ext, SortKind::Oblivious, |_| true, &mut sink);
        let unsorted_work = machine.stats().work_ops - w0;
        assert!(
            sorted_work < unsorted_work,
            "presorted input must do strictly less work ({sorted_work} vs {unsorted_work})"
        );
    }

    #[test]
    fn clique_and_triangle_free_edge_cases() {
        let machine = Machine::new(EmConfig::new(1 << 10, 64));
        let clique = canonical_ext(&generators::clique(10), &machine);
        let mut sink = CollectingSink::new();
        assert_eq!(
            sort_based_enumeration(&clique, SortKind::Aware, |_| true, &mut sink),
            120
        );

        let bip = canonical_ext(&generators::complete_bipartite(12, 12), &machine);
        let mut sink = CollectingSink::new();
        assert_eq!(
            sort_based_enumeration(&bip, SortKind::Aware, |_| true, &mut sink),
            0
        );

        let tiny = canonical_ext(&generators::path(3), &machine);
        let mut sink = CollectingSink::new();
        assert_eq!(
            sort_based_enumeration(&tiny, SortKind::Aware, |_| true, &mut sink),
            0
        );
    }

    #[test]
    fn filter_restricts_emissions() {
        let machine = Machine::new(EmConfig::new(1 << 10, 64));
        let edges = canonical_ext(&generators::clique(8), &machine);
        let mut sink = CollectingSink::new();
        let n = sort_based_enumeration(&edges, SortKind::Aware, |t| t.a == 0, &mut sink);
        assert_eq!(n, 21); // C(7,2) triangles have cone vertex 0
    }

    #[test]
    fn io_grows_superlinearly_in_edges_as_expected() {
        // The wedge volume grows like E^{3/2} on cliques, so doubling the
        // clique size should much more than double the I/Os.
        let cost = |n: usize| -> u64 {
            let machine = Machine::new(EmConfig::new(512, 32));
            let edges = canonical_ext(&generators::clique(n), &machine);
            machine.cold_cache();
            let before = machine.io().total();
            let mut sink = CollectingSink::new();
            sort_based_enumeration(&edges, SortKind::Aware, |_| true, &mut sink);
            machine.io().total() - before
        };
        let small = cost(16);
        let large = cost(32);
        assert!(
            large > 4 * small,
            "expected superlinear growth: {small} -> {large}"
        );
    }
}
