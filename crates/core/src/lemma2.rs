//! Lemma 2 (Hu–Tao–Chung, SIGMOD 2013): enumerating all triangles whose
//! pivot edge lies in a subset `E' ⊆ E`, in `O(E/B + E'·E/(M·B))` I/Os.
//!
//! The subroutine proceeds in iterations. Each iteration loads a chunk of
//! new pivot edges into internal memory, together with an index of their
//! endpoints (`Γ_mem`); it then scans the relevant edge set once, and for
//! every vertex `v` computes `Γ_v = {u | (v,u) ∈ E, u > v, u ∈ Γ_mem}` —
//! possible in one scan because the canonical edge list stores each vertex's
//! higher-ordered neighbours consecutively. Every memory-resident pivot edge
//! `{u, w}` with `u, w ∈ Γ_v` closes the triangle `{v, u, w}` (cone `v`,
//! pivot `{u, w}`), which is emitted while all three edges are in memory.
//!
//! ## Chunk sizing ([`ChunkPolicy`])
//!
//! The published subroutine loads a *fixed* `αM` pivot edges per iteration
//! (here `α = 1/8`, [`CHUNK_DIVISOR`]), a constant chosen so that the chunk,
//! its endpoint index and the per-vertex `Γ_v` buffer fit in memory even in
//! the worst case of five words per pivot edge (one edge word plus two
//! deduplicated-endpoint words plus up to two words of `Γ_v` headroom). Most
//! chunks cost far less: pivot classes confine both endpoints to two colour
//! classes, so the endpoint set saturates as the chunk grows.
//!
//! [`ChunkPolicy::Adaptive`] (the production policy) therefore sizes each
//! chunk by the **measured** gauge cost instead of the worst case: pivot
//! edges are appended in `M/16`-edge increments, the deduplicated
//! endpoint set is maintained by sorted merges, and the chunk stops growing
//! when the measured lease — `edges + endpoints` words, plus `endpoints`
//! words reserved for the peak `Γ_v` buffer (pre-allocated at exactly that
//! reserve, so no hidden capacity doubling) — would exceed the chunk budget
//! of `M` words. Typical inputs get 2–3 passes over the edge set per `M`
//! words of pivot class instead of 8; the worst case degenerates to a
//! fixed `M/5 ≥ M/8` divisor. In-core peak while scanning is ≤ `M` words
//! (the loader's transient probe buffers reach `M + 5·M/16` for a moment
//! between increments), within the `1.5·M` envelope the gauge tests
//! assert. [`ChunkPolicy::FixedDivisor`] keeps the published behaviour —
//! it is what the Hu–Tao–Chung baseline runs (its iteration structure is
//! part of the algorithm being compared against) and what the equivalence
//! tests pin the adaptive policy bit-identical to.
//!
//! ## Endpoint-range pruning
//!
//! Every triangle `{v, u, w}` (`v < u < w`) closed against a chunk has its
//! pivot's *smaller* endpoint `u` inside the chunk, so `v < u ≤ U` where `U`
//! is the chunk's largest smaller-endpoint ([`PivotChunk::max_pivot_u`]).
//! Cone edges with smaller endpoint `≥ U` are therefore sterile for this
//! chunk. Because class views are sorted by `(u, v)`, the adaptive path
//! narrows every cone view to the prefix `u < U` by binary search
//! ([`emsim::ExtSlice::partition_point`], `O(log)` probes) before streaming
//! it — charging only the narrowed scan to the machine instead of whole
//! class views. Chunks are consecutive ranges of a `(u, v)`-sorted pivot
//! class, so their `U` grows from the class's smallest `u`-band upward and
//! the early chunks skip most of every cone view.
//!
//! Two entry points share the machinery:
//!
//! * [`enumerate_with_pivots`] — the literal lemma (one edge set, one pivot
//!   set, an arbitrary triangle filter). Applied with `E' = E` and the fixed
//!   policy it is the Hu–Tao–Chung baseline the paper improves upon.
//! * [`enumerate_multi_cone`] — the pivot-grouped form used by step 3 of the
//!   cache-aware algorithms: the pivot chunk and its indexes are built
//!   **once** per chunk and then every cone colour's (one or two) class
//!   views are streamed against it, instead of re-loading the chunk and
//!   re-merging edge sets once per colour triple. Cone dispatch is by
//!   construction (each cone scan only ever sees edges whose smaller
//!   endpoint has that cone colour), so no per-triangle colour filter runs.
//!
//! The in-memory chunk indexes are pure sorted-vec + binary-search
//! structures — no hashing anywhere in the per-vertex `Γ_v` loop.

use emsim::{ExtSlice, ExtVec, Machine, MemLease};
use graphgen::{Edge, Triangle, VertexId};

use crate::sink::TriangleSink;

/// Fraction of the memory budget devoted to one chunk of pivot edges under
/// the published fixed sizing (`α = 1/8`): the worst-case five words per
/// pivot edge then stay within `5M/8` (see the accounting in the unit
/// tests).
const CHUNK_DIVISOR: usize = 8;

/// How Lemma 2 sizes its pivot chunks (and whether it prunes cone scans).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub(crate) enum ChunkPolicy {
    /// Production policy: size each chunk by its measured gauge cost
    /// (edges + deduplicated endpoints + `Γ_v` reserve ≤ `M`) and narrow
    /// every cone scan to the endpoint range the chunk can close triangles
    /// with. See the module docs.
    #[default]
    Adaptive,
    /// Load exactly `M/divisor` pivot edges per chunk and stream full edge
    /// sets against it — the published Hu–Tao–Chung iteration structure.
    FixedDivisor(usize),
}

impl ChunkPolicy {
    /// The iteration structure of the SIGMOD 2013 baseline as published:
    /// fixed `αM` chunks, no pruning. The baseline must keep running this —
    /// its constants are part of the algorithm the paper's improvement
    /// factor is measured against.
    pub(crate) const PUBLISHED_BASELINE: ChunkPolicy = ChunkPolicy::FixedDivisor(CHUNK_DIVISOR);

    /// Whether this policy narrows cone scans by the chunk endpoint range.
    fn prunes(&self) -> bool {
        matches!(self, ChunkPolicy::Adaptive)
    }
}

/// Counters reported by a Lemma 2 invocation (surfaced through the run
/// reports as `step3_chunk_passes` so experiments and tests can observe the
/// adaptive sizing directly).
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct Lemma2Stats {
    /// Triangles emitted.
    pub emitted: u64,
    /// Pivot chunks loaded (each one costs a pass of the relevant edge
    /// streams against it).
    pub chunk_passes: u64,
}

/// The (one or two) sorted colour-class views holding every potential cone
/// edge of one cone colour — the input [`enumerate_multi_cone`] streams
/// against each pivot chunk. The views must be sorted by `(u, v)` and
/// pairwise disjoint (colour classes are).
pub(crate) struct ConeClasses<'a> {
    /// The class views `E_{τ1,τ2}` and `E_{τ1,τ3}` (deduplicated when
    /// `τ2 = τ3`, empties omitted by the caller).
    pub ranges: Vec<ExtSlice<'a, Edge>>,
}

/// One in-memory chunk of pivot edges with its probe indexes, built once
/// and scanned against by every cone stream:
///
/// * `edges` — the chunk itself, sorted by `(u, v)`; the adjacency of an
///   endpoint `u` is the run `edges[lo..hi]` located by binary search, so no
///   separate adjacency map is materialised.
/// * `endpoints` — `Γ_mem`, the sorted, deduplicated endpoint set, with
///   membership by binary search.
struct PivotChunk {
    edges: Vec<Edge>,
    endpoints: Vec<VertexId>,
}

/// Merges two sorted, deduplicated vertex lists into one (the endpoint-set
/// maintenance of the adaptive loader), charging one unit of work per
/// element touched.
fn merge_dedup(machine: &Machine, a: &[VertexId], b: &[VertexId]) -> Vec<VertexId> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() || j < b.len() {
        machine.work(1);
        let next = match (a.get(i), b.get(j)) {
            (Some(&x), Some(&y)) if x <= y => {
                i += 1;
                if x == y {
                    j += 1;
                }
                x
            }
            (Some(_), Some(&y)) => {
                j += 1;
                y
            }
            (Some(&x), None) => {
                i += 1;
                x
            }
            (None, Some(&y)) => {
                j += 1;
                y
            }
            (None, None) => unreachable!(),
        };
        out.push(next);
    }
    out
}

/// Sorted, deduplicated endpoints of a sorted edge slice.
fn endpoints_of(machine: &Machine, edges: &[Edge]) -> Vec<VertexId> {
    let mut eps: Vec<VertexId> = Vec::with_capacity(edges.len() * 2);
    for e in edges {
        eps.push(e.u);
        eps.push(e.v);
        machine.work(1);
    }
    machine.work(eps.len() as u64 * (usize::BITS - eps.len().leading_zeros()) as u64);
    // emlint: charge(work, eps.len() as u64 * (usize::BITS - eps.len().leading_zeros()) as u64)
    eps.sort_unstable();
    eps.dedup();
    eps
}

impl PivotChunk {
    /// Loads the next chunk of `pivots` starting at `start` under `policy`
    /// with memory budget `mem_words`, returning the chunk, its gauge lease
    /// (chunk words plus endpoint words) and the exclusive end index of the
    /// consumed pivot range. `start` must be in range (the chunk always
    /// takes at least one edge).
    fn load(
        machine: &Machine,
        pivots: &ExtSlice<'_, Edge>,
        start: usize,
        mem_words: usize,
        policy: ChunkPolicy,
    ) -> (Self, MemLease, usize) {
        match policy {
            ChunkPolicy::FixedDivisor(divisor) => {
                let end = (start + (mem_words / divisor.max(1)).max(1)).min(pivots.len());
                let (chunk, lease) = Self::load_fixed(machine, pivots, start, end);
                (chunk, lease, end)
            }
            ChunkPolicy::Adaptive => Self::load_adaptive(machine, pivots, start, mem_words),
        }
    }

    /// Loads pivot edges `[start, end)` of `pivots` and builds the indexes —
    /// the published fixed-size iteration.
    fn load_fixed(
        machine: &Machine,
        pivots: &ExtSlice<'_, Edge>,
        start: usize,
        end: usize,
    ) -> (Self, MemLease) {
        // Lease the chunk *before* materialising it so the words are on the
        // gauge while the buffer is live (flow-soundness, lint rule R5).
        let mut lease = machine.gauge().lease((end - start) as u64);
        let mut edges: Vec<Edge> = pivots.slice(start, end).load();
        machine.work(edges.len() as u64);
        if !edges.is_sorted() {
            // Callers normally hand over sorted ranges; the lemma itself
            // only requires a set, so establish the order locally.
            machine.work(edges.len() as u64 * (usize::BITS - edges.len().leading_zeros()) as u64);
            // emlint: charge(work, edges.len() as u64 * (usize::BITS - edges.len().leading_zeros()) as u64)
            edges.sort_unstable();
        }
        let endpoints = endpoints_of(machine, &edges);
        lease.grow(endpoints.len() as u64);
        (Self { edges, endpoints }, lease)
    }

    /// Loads as many pivot edges from `start` on as the measured gauge cost
    /// allows: the chunk grows in `M/16`-edge increments while
    /// `edges + 2·endpoints ≤ M` — i.e. the chunk words plus the endpoint
    /// index plus an `endpoints`-word reserve for the peak `Γ_v` buffer
    /// (`Γ_v ⊆ Γ_mem`) stay within the budget. Endpoint-light chunks (the
    /// typical colour-class case) pack several times more pivots per pass
    /// than the fixed `M/8`; the all-distinct worst case still packs `M/5`.
    ///
    /// The transient probe buffers are gauge-accounted too; the `M/16`
    /// increment bounds the probe at `M + 5·M/16 < 1.4·M` words in flight.
    fn load_adaptive(
        machine: &Machine,
        pivots: &ExtSlice<'_, Edge>,
        start: usize,
        mem_words: usize,
    ) -> (Self, MemLease, usize) {
        let budget = mem_words.max(1);
        let step = (mem_words / 16).max(1);

        let mut edges: Vec<Edge> = Vec::new();
        let mut endpoints: Vec<VertexId> = Vec::new();
        let mut lease = machine.gauge().lease(0);
        let mut end = start;

        while end < pivots.len() {
            let take = step.min(pivots.len() - end);
            let mut inc: Vec<Edge> = pivots.slice(end, end + take).load();
            machine.work(take as u64);
            if !inc.is_sorted() {
                machine.work(inc.len() as u64 * (usize::BITS - inc.len().leading_zeros()) as u64);
                // emlint: charge(work, inc.len() as u64 * (usize::BITS - inc.len().leading_zeros()) as u64)
                inc.sort_unstable();
            }
            let inc_eps = endpoints_of(machine, &inc);
            // Probe footprint: committed chunk + increment + its endpoints
            // + the merged endpoint candidate, all simultaneously in core.
            lease.resize((edges.len() + endpoints.len() + inc.len() + inc_eps.len()) as u64);
            let merged = merge_dedup(machine, &endpoints, &inc_eps);
            lease.grow(merged.len() as u64);
            drop(inc_eps);

            let cost = edges.len() + inc.len() + 2 * merged.len();
            if !edges.is_empty() && cost > budget {
                // Committing this increment would overrun the budget; the
                // chunk is as large as the measured lease allows.
                lease.resize((edges.len() + endpoints.len()) as u64);
                break;
            }
            edges.append(&mut inc);
            endpoints = merged;
            end += take;
            lease.resize((edges.len() + endpoints.len()) as u64);
            if cost > budget {
                // A single oversized first increment: accept it (the chunk
                // must make progress) but stop growing.
                break;
            }
        }

        if !edges.is_sorted() {
            // Increments are sorted individually; an unsorted pivot *set*
            // (allowed by the lemma) needs one final local sort.
            machine.work(edges.len() as u64 * (usize::BITS - edges.len().leading_zeros()) as u64);
            // emlint: charge(work, edges.len() as u64 * (usize::BITS - edges.len().leading_zeros()) as u64)
            edges.sort_unstable();
        }
        (Self { edges, endpoints }, lease, end)
    }

    /// Whether `v` is an endpoint of some pivot edge in the chunk (`Γ_mem`).
    fn contains(&self, v: VertexId) -> bool {
        self.endpoints.binary_search(&v).is_ok()
    }

    /// The largest *smaller* endpoint of any pivot edge in the chunk: every
    /// triangle closed against this chunk has its cone vertex strictly below
    /// this bound, which is what the endpoint-range pruning narrows cone
    /// scans with. The chunk is never empty (the loaders take ≥ 1 edge).
    fn max_pivot_u(&self) -> VertexId {
        self.edges.last().expect("chunks are non-empty").u
    }

    /// The chunk pivot edges whose smaller endpoint is `u`, as the sorted
    /// run of their larger endpoints.
    fn neighbors_of(&self, u: VertexId) -> impl Iterator<Item = VertexId> + '_ {
        let lo = self.edges.partition_point(|e| e.u < u);
        let hi = self.edges.partition_point(|e| e.u <= u);
        self.edges[lo..hi].iter().map(|e| e.v)
    }
}

/// Closes every triangle `{v} ∪ {u, w}` with `{u, w}` a chunk pivot and
/// `u, w ∈ Γ_v`, forwarding those passing `filter` to `sink`. `gamma_v` is
/// sorted ascending (the scan produces it in `(u, v)` order), so the inner
/// membership probe is a binary search.
fn close_group(
    machine: &Machine,
    chunk: &PivotChunk,
    v: VertexId,
    gamma_v: &[VertexId],
    filter: &mut dyn FnMut(Triangle) -> bool,
    sink: &mut dyn TriangleSink,
) -> u64 {
    if gamma_v.len() < 2 {
        return 0;
    }
    let mut emitted = 0u64;
    for &u in gamma_v {
        for w in chunk.neighbors_of(u) {
            machine.work(1);
            if w != v && gamma_v.binary_search(&w).is_ok() {
                // All three edges are memory-resident at this point: {u,w}
                // is in the pivot chunk, and {v,u}, {v,w} were just read
                // while building Γ_v.
                let t = Triangle::new(v, u, w);
                if filter(t) {
                    sink.emit(t);
                    emitted += 1;
                }
            }
        }
    }
    emitted
}

/// Scans one sorted edge stream against a pivot chunk: groups the stream by
/// its smaller endpoint `v`, collects `Γ_v`, and closes the groups'
/// triangles. The `Γ_v` buffer is gauge-accounted at its *retained capacity*
/// (a cleared `Vec` keeps its allocation, so leasing only the live length
/// would under-report the resident buffer). It is allocated at exactly
/// `|Γ_mem|` entries up front — the tight upper bound on any group's
/// `Γ_v ⊆ Γ_mem`, and precisely the `endpoints`-word reserve the chunk
/// loaders budget for — so it never reallocates and the capacity never
/// doubles past the reserve.
fn scan_against_chunk(
    machine: &Machine,
    chunk: &PivotChunk,
    edges: impl Iterator<Item = Edge>,
    filter: &mut dyn FnMut(Triangle) -> bool,
    sink: &mut dyn TriangleSink,
) -> u64 {
    let mut emitted = 0u64;
    let mut gamma_v: Vec<VertexId> = Vec::with_capacity(chunk.endpoints.len());
    let mut gamma_lease = machine.gauge().lease(gamma_v.capacity() as u64);
    let mut current_v: Option<VertexId> = None;

    for e in edges {
        machine.work(1);
        debug_assert_eq!(
            gamma_lease.words(),
            gamma_v.capacity() as u64,
            "the Γ_v lease must cover the buffer's retained allocation"
        );
        if current_v != Some(e.u) {
            if let Some(v) = current_v {
                emitted += close_group(machine, chunk, v, &gamma_v, filter, sink);
            }
            // `clear` keeps the capacity; the lease keeps covering it.
            gamma_v.clear();
            gamma_lease.resize(gamma_v.capacity() as u64);
            current_v = Some(e.u);
        }
        if chunk.contains(e.v) {
            gamma_v.push(e.v);
            gamma_lease.resize(gamma_v.capacity() as u64);
        }
    }
    if let Some(v) = current_v {
        emitted += close_group(machine, chunk, v, &gamma_v, filter, sink);
    }
    emitted
}

/// Enumerates every triangle of `edge_set` whose pivot edge belongs to
/// `pivots`, filtered by `filter`, and returns the number emitted.
///
/// Requirements (all established by the callers):
/// * `edge_set` is canonical and sorted lexicographically;
/// * `pivots ⊆ edge_set` (as a set);
/// * `mem_words` is the internal-memory budget `M` in words.
pub(crate) fn enumerate_with_pivots(
    edge_set: &ExtVec<Edge>,
    pivots: &ExtVec<Edge>,
    mem_words: usize,
    policy: ChunkPolicy,
    mut filter: impl FnMut(Triangle) -> bool,
    sink: &mut dyn TriangleSink,
) -> u64 {
    let machine: Machine = edge_set.machine().clone();
    let pview = pivots.as_slice();
    let mut emitted = 0u64;

    let mut start = 0usize;
    while start < pivots.len() {
        let (chunk, _lease, end) = PivotChunk::load(&machine, &pview, start, mem_words, policy);
        let scan = if policy.prunes() {
            // Endpoint-range pruning: no triangle closed against this chunk
            // has a cone vertex at or above the chunk's largest smaller
            // pivot endpoint, so the (u, v)-sorted edge set is narrowed to
            // the prefix below it by binary search.
            let bound = chunk.max_pivot_u();
            let view = edge_set.as_slice();
            let cut = view.partition_point(|e| e.u < bound);
            view.slice(0, cut)
        } else {
            edge_set.as_slice()
        };
        emitted += scan_against_chunk(&machine, &chunk, scan.iter(), &mut filter, sink);
        start = end;
    }
    emitted
}

/// The pivot-grouped form of Lemma 2 used by step 3 of the cache-aware
/// algorithms: enumerates, for every cone input, every triangle whose pivot
/// edge lies in `pivots` and whose cone edges lie in that input's class
/// views, and returns the emission and chunk-pass counters.
///
/// Each pivot chunk is loaded and indexed **once** (sized by `policy`), then
/// all cone inputs are streamed against it — narrowed to the chunk's
/// prunable endpoint range when the policy prunes, and merged on the fly by
/// the streaming k-way merge; nothing is materialised. Because a cone
/// input's views hold exactly the candidate cone edges of one cone colour,
/// every emitted triangle's cone vertex has that colour by construction and
/// no filter is evaluated.
///
/// Requirements: `pivots` and every view in `cones` are sorted by `(u, v)`;
/// the views of one cone input are pairwise disjoint; `mem_words` is the
/// memory budget `M` in words.
pub(crate) fn enumerate_multi_cone(
    pivots: ExtSlice<'_, Edge>,
    cones: &[ConeClasses<'_>],
    mem_words: usize,
    policy: ChunkPolicy,
    sink: &mut dyn TriangleSink,
) -> Lemma2Stats {
    let machine: Machine = pivots.machine().clone();
    let mut stats = Lemma2Stats::default();
    let mut keep_all = |_: Triangle| true;

    let mut start = 0usize;
    while start < pivots.len() {
        let (chunk, _lease, end) = PivotChunk::load(&machine, &pivots, start, mem_words, policy);
        stats.chunk_passes += 1;
        let bound = policy.prunes().then(|| chunk.max_pivot_u());
        for cone in cones {
            let cursors = cone
                .ranges
                .iter()
                .map(|r| match bound {
                    // Narrow each sorted view to the sub-range that can
                    // touch the chunk (see the module docs) — the part at or
                    // above the bound is never read, let alone streamed.
                    Some(b) => {
                        let cut = r.partition_point(|e| e.u < b);
                        r.slice(0, cut).iter()
                    }
                    None => r.iter(),
                })
                .collect();
            let merged = emalgo::kway_merge(&machine, cursors, |e: &Edge| (e.u, e.v));
            stats.emitted += scan_against_chunk(&machine, &chunk, merged, &mut keep_all, sink);
        }
        start = end;
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::{CollectingSink, StrictSink};
    use emsim::{EmConfig, Machine};
    use graphgen::{generators, naive, Graph};
    use proptest::prelude::*;

    fn canonical_ext(g: &Graph, machine: &Machine) -> ExtVec<Edge> {
        let mut edges: Vec<Edge> = g.edges().to_vec();
        edges.sort_unstable();
        ExtVec::from_slice(machine, &edges)
    }

    const BOTH_POLICIES: [ChunkPolicy; 2] =
        [ChunkPolicy::Adaptive, ChunkPolicy::PUBLISHED_BASELINE];

    #[test]
    fn with_all_edges_as_pivots_enumerates_every_triangle_exactly_once() {
        for policy in BOTH_POLICIES {
            for seed in [1u64, 2, 3] {
                let g = generators::erdos_renyi(80, 600, seed);
                let machine = Machine::new(EmConfig::new(1 << 10, 64));
                let edges = canonical_ext(&g, &machine);
                let mut sink = StrictSink::new();
                let n = enumerate_with_pivots(&edges, &edges, 1 << 10, policy, |_| true, &mut sink);
                assert_eq!(n, naive::count_triangles(&g), "seed {seed} {policy:?}");
                assert_eq!(sink.len() as u64, n);
            }
        }
    }

    #[test]
    fn pivot_subset_restricts_to_matching_triangles() {
        for policy in BOTH_POLICIES {
            let g = generators::clique(8);
            let machine = Machine::new(EmConfig::new(1 << 10, 64));
            let edges = canonical_ext(&g, &machine);
            // Use only pivot edges incident to vertex 7 (the largest): the
            // pivot of a triangle is the edge between its two largest
            // vertices, so we must get exactly the triangles containing
            // vertex 7: C(7,2) = 21.
            let pivots_vec: Vec<Edge> = g.edges().iter().copied().filter(|e| e.v == 7).collect();
            let pivots = ExtVec::from_slice(&machine, &pivots_vec);
            let mut sink = CollectingSink::new();
            let n = enumerate_with_pivots(&edges, &pivots, 1 << 10, policy, |_| true, &mut sink);
            assert_eq!(n, 21, "{policy:?}");
            assert!(sink.triangles().iter().all(|t| t.c == 7));
        }
    }

    #[test]
    fn tiny_memory_still_correct_via_many_chunks() {
        for policy in BOTH_POLICIES {
            let g = generators::erdos_renyi(60, 500, 11);
            let machine = Machine::new(EmConfig::new(64, 16)); // M = 64 words!
            let edges = canonical_ext(&g, &machine);
            let mut sink = StrictSink::new();
            let n = enumerate_with_pivots(&edges, &edges, 64, policy, |_| true, &mut sink);
            assert_eq!(n, naive::count_triangles(&g), "{policy:?}");
        }
    }

    #[test]
    fn filter_is_respected() {
        for policy in BOTH_POLICIES {
            let g = generators::clique(6);
            let machine = Machine::new(EmConfig::new(512, 64));
            let edges = canonical_ext(&g, &machine);
            let mut sink = CollectingSink::new();
            let n = enumerate_with_pivots(&edges, &edges, 512, policy, |t| t.a == 0, &mut sink);
            // Triangles whose smallest vertex is 0: C(5,2) = 10.
            assert_eq!(n, 10, "{policy:?}");
        }
    }

    #[test]
    fn unsorted_pivot_sets_are_indexed_correctly() {
        // The lemma only needs the pivot *set*; a caller handing over an
        // unsorted array must still get every triangle — under both chunk
        // policies (the pruning bound is per-chunk, so it survives a pivot
        // array whose chunks are not globally ordered).
        for policy in BOTH_POLICIES {
            let g = generators::erdos_renyi(50, 350, 9);
            let machine = Machine::new(EmConfig::new(1 << 10, 64));
            let edges = canonical_ext(&g, &machine);
            let mut shuffled: Vec<Edge> = g.edges().to_vec();
            shuffled.sort_unstable();
            shuffled.reverse();
            let pivots = ExtVec::from_slice(&machine, &shuffled);
            let mut sink = StrictSink::new();
            let n = enumerate_with_pivots(&edges, &pivots, 1 << 10, policy, |_| true, &mut sink);
            assert_eq!(n, naive::count_triangles(&g), "{policy:?}");
        }
    }

    #[test]
    fn io_scales_with_number_of_chunks() {
        // Doubling memory should roughly halve the number of chunk passes
        // over the edge set: the E'·E/(MB) term of Lemma 2.
        for policy in BOTH_POLICIES {
            let g = generators::erdos_renyi(400, 6000, 4);
            let run = |mem: usize| -> u64 {
                let machine = Machine::new(EmConfig::new(mem, 64));
                let edges = canonical_ext(&g, &machine);
                machine.cold_cache();
                let before = machine.io().total();
                let mut sink = CollectingSink::new();
                enumerate_with_pivots(&edges, &edges, mem, policy, |_| true, &mut sink);
                machine.io().total() - before
            };
            let small = run(1 << 9);
            let large = run(1 << 13);
            assert!(
                small as f64 > 3.0 * large as f64,
                "16x memory should cut Lemma 2 I/Os by well over 3x \
                 (small={small}, large={large}, {policy:?})"
            );
        }
    }

    #[test]
    fn memory_gauge_respects_budget() {
        for policy in BOTH_POLICIES {
            let g = generators::erdos_renyi(200, 3000, 8);
            let mem = 1 << 10;
            let machine = Machine::new(EmConfig::new(mem, 64));
            let edges = canonical_ext(&g, &machine);
            let mut sink = CollectingSink::new();
            enumerate_with_pivots(&edges, &edges, mem, policy, |_| true, &mut sink);
            // The invariant that the Γ_v lease tracks the buffer's retained
            // capacity (not just its live length) is debug-asserted inside
            // the scan on every edge this test streams; the peak below
            // therefore includes the cleared-but-retained allocation.
            assert!(
                machine.gauge().peak() <= (mem + mem / 2) as u64,
                "peak in-core usage {} exceeds 1.5·M = {} ({policy:?})",
                machine.gauge().peak(),
                mem + mem / 2
            );
            assert_eq!(
                machine.gauge().in_use(),
                0,
                "all leases (chunk, probe, Γ_v) must be released ({policy:?})"
            );
        }
    }

    #[test]
    fn triangle_free_graphs_emit_nothing() {
        for policy in BOTH_POLICIES {
            let g = generators::complete_bipartite(20, 20);
            let machine = Machine::new(EmConfig::new(512, 64));
            let edges = canonical_ext(&g, &machine);
            let mut sink = CollectingSink::new();
            assert_eq!(
                enumerate_with_pivots(&edges, &edges, 512, policy, |_| true, &mut sink),
                0,
                "{policy:?}"
            );
            assert!(sink.is_empty());
        }
    }

    #[test]
    fn multi_cone_with_whole_edge_set_matches_the_plain_lemma() {
        // One cone input holding the whole edge set and pivots = everything
        // must reproduce the Hu–Tao–Chung behaviour exactly.
        for policy in BOTH_POLICIES {
            for seed in [4u64, 6] {
                let g = generators::erdos_renyi(70, 520, seed);
                let machine = Machine::new(EmConfig::new(512, 32));
                let edges = canonical_ext(&g, &machine);
                let mut sink = StrictSink::new();
                let cones = [ConeClasses {
                    ranges: vec![edges.as_slice()],
                }];
                let stats = enumerate_multi_cone(edges.as_slice(), &cones, 512, policy, &mut sink);
                assert_eq!(
                    stats.emitted,
                    naive::count_triangles(&g),
                    "seed {seed} {policy:?}"
                );
                assert!(stats.chunk_passes >= 1);
            }
        }
    }

    #[test]
    fn multi_cone_merges_split_views_and_respects_budget() {
        // Split the edge set into two interleaved sorted halves handed over
        // as one cone's two views: the on-the-fly merge must reconstruct
        // the full cone-edge stream, within the memory budget.
        for policy in BOTH_POLICIES {
            let g = generators::erdos_renyi(90, 700, 12);
            let mem = 512usize;
            let machine = Machine::new(EmConfig::new(mem, 32));
            let edges = canonical_ext(&g, &machine);
            let all: Vec<Edge> = edges.load_all();
            let half_a: Vec<Edge> = all.iter().copied().step_by(2).collect();
            let half_b: Vec<Edge> = all.iter().copied().skip(1).step_by(2).collect();
            let a = ExtVec::from_slice(&machine, &half_a);
            let b = ExtVec::from_slice(&machine, &half_b);
            machine.gauge().reset_peak();
            let mut sink = StrictSink::new();
            let cones = [ConeClasses {
                ranges: vec![a.as_slice(), b.as_slice()],
            }];
            let stats = enumerate_multi_cone(edges.as_slice(), &cones, mem, policy, &mut sink);
            assert_eq!(stats.emitted, naive::count_triangles(&g), "{policy:?}");
            assert!(
                machine.gauge().peak() <= (mem + mem / 2) as u64,
                "peak in-core usage {} exceeds 1.5·M = {} ({policy:?})",
                machine.gauge().peak(),
                mem + mem / 2
            );
        }
    }

    #[test]
    fn multi_cone_loads_each_pivot_chunk_once_for_all_cones() {
        // The point of pivot grouping: with k cone inputs the pivot chunk is
        // read once, not k times. Compare pivot-side read volume against
        // running the plain lemma k times.
        let g = generators::erdos_renyi(150, 2500, 3);
        let mem = 256usize;
        let machine = Machine::new(EmConfig::new(mem, 32));
        let edges = canonical_ext(&g, &machine);
        let k = 6usize;

        machine.cold_cache();
        let before = machine.io().total();
        let cones: Vec<ConeClasses> = (0..k)
            .map(|_| ConeClasses {
                ranges: vec![edges.as_slice()],
            })
            .collect();
        let mut sink = CollectingSink::new();
        let grouped = enumerate_multi_cone(
            edges.as_slice(),
            &cones,
            mem,
            ChunkPolicy::PUBLISHED_BASELINE,
            &mut sink,
        );
        let grouped_io = machine.io().total() - before;

        machine.cold_cache();
        let before = machine.io().total();
        let mut sink2 = CollectingSink::new();
        let mut repeated = 0;
        for _ in 0..k {
            repeated += enumerate_with_pivots(
                &edges,
                &edges,
                mem,
                ChunkPolicy::PUBLISHED_BASELINE,
                |_| true,
                &mut sink2,
            );
        }
        let repeated_io = machine.io().total() - before;

        assert_eq!(grouped.emitted, repeated);
        assert!(
            grouped_io < repeated_io,
            "pivot grouping must not cost more I/O ({grouped_io} vs {repeated_io})"
        );
    }

    #[test]
    fn adaptive_chunking_cuts_passes_on_endpoint_light_families() {
        // The tentpole claim: on a dense (endpoint-deduplicating) pivot
        // class the measured chunk cost is far below the worst case, so the
        // adaptive policy packs several fixed-divisor chunks into each pass.
        // K64's 2016 edges touch only 64 vertices: the fixed policy loads
        // M/8 = 64 edges per chunk, the adaptive one packs ~(M - 128)
        // edges, cutting passes by more than 3x — with identical output.
        let g = generators::clique(64);
        let mem = 512usize;
        let run = |policy: ChunkPolicy| -> (Lemma2Stats, Vec<graphgen::Triangle>, u64) {
            let machine = Machine::new(EmConfig::new(mem, 32));
            let edges = canonical_ext(&g, &machine);
            machine.cold_cache();
            let before = machine.io().total();
            let cones = [ConeClasses {
                ranges: vec![edges.as_slice()],
            }];
            let mut sink = CollectingSink::new();
            let stats = enumerate_multi_cone(edges.as_slice(), &cones, mem, policy, &mut sink);
            (stats, sink.into_triangles(), machine.io().total() - before)
        };
        let (fixed, mut t_fixed, io_fixed) = run(ChunkPolicy::PUBLISHED_BASELINE);
        let (adaptive, mut t_adaptive, io_adaptive) = run(ChunkPolicy::Adaptive);
        assert_eq!(adaptive.emitted, naive::count_triangles(&g));
        assert_eq!(adaptive.emitted, fixed.emitted);
        t_fixed.sort_unstable();
        t_adaptive.sort_unstable();
        assert_eq!(t_adaptive, t_fixed, "output must be bit-identical");
        assert!(
            adaptive.chunk_passes * 3 <= fixed.chunk_passes,
            "adaptive sizing should cut chunk passes at least 3x on K64 \
             (adaptive={}, fixed={})",
            adaptive.chunk_passes,
            fixed.chunk_passes
        );
        assert!(
            io_adaptive < io_fixed,
            "fewer passes must translate into less I/O ({io_adaptive} vs {io_fixed})"
        );
    }

    #[test]
    fn endpoint_range_pruning_skips_sterile_view_tails() {
        // A graph whose cone views extend far beyond the early chunks'
        // pivot bands: the adaptive path must narrow the per-chunk cone
        // scans instead of streaming every view in full. Verified two ways:
        // the narrowed scan reads strictly less than the full-view policy at
        // the same chunk size, and the output is still exactly right.
        let g = generators::erdos_renyi(300, 5000, 21);
        let mem = 256usize;
        let machine = Machine::new(EmConfig::new(mem, 32));
        let edges = canonical_ext(&g, &machine);
        let cones = [ConeClasses {
            ranges: vec![edges.as_slice()],
        }];

        machine.cold_cache();
        let before = machine.io().total();
        let mut sink = StrictSink::new();
        let pruned = enumerate_multi_cone(
            edges.as_slice(),
            &cones,
            mem,
            ChunkPolicy::Adaptive,
            &mut sink,
        );
        let pruned_io = machine.io().total() - before;
        assert_eq!(pruned.emitted, naive::count_triangles(&g));

        // Re-run with the *same* adaptive chunking but pruning disabled by
        // handing the scan pre-narrowed... not expressible; instead compare
        // against the fixed policy normalised per pass: pruning makes the
        // average per-pass scan cost strictly smaller than a full-view pass.
        machine.cold_cache();
        let before = machine.io().total();
        let mut sink2 = StrictSink::new();
        let fixed = enumerate_multi_cone(
            edges.as_slice(),
            &cones,
            mem,
            ChunkPolicy::PUBLISHED_BASELINE,
            &mut sink2,
        );
        let fixed_io = machine.io().total() - before;
        assert_eq!(fixed.emitted, pruned.emitted);
        let pruned_per_pass = pruned_io as f64 / pruned.chunk_passes as f64;
        let fixed_per_pass = fixed_io as f64 / fixed.chunk_passes as f64;
        assert!(
            pruned_per_pass < 0.9 * fixed_per_pass,
            "pruned passes should be >10% cheaper than full-view passes \
             (pruned {pruned_per_pass:.1} vs full {fixed_per_pass:.1} I/Os per pass)"
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn adaptive_and_fixed_divisor_policies_are_bit_identical(
            n in 20usize..90,
            m in 40usize..500,
            seed in 0u64..1_000_000,
            mem_exp in 6u32..11,
        ) {
            // The pinning property of the tentpole: adaptive sizing and
            // endpoint-range pruning change *which* blocks are read and how
            // pivots are batched, never what is emitted — same triangle
            // multiset, same count, at every memory size, for the plain and
            // the multi-cone entry points.
            let g = generators::erdos_renyi(n, m, seed);
            let mem = 1usize << mem_exp;
            let run = |policy: ChunkPolicy| {
                let machine = Machine::new(EmConfig::new(mem, 32));
                let edges = canonical_ext(&g, &machine);
                let mut sink = CollectingSink::new();
                let plain =
                    enumerate_with_pivots(&edges, &edges, mem, policy, |_| true, &mut sink);
                let cones = [ConeClasses { ranges: vec![edges.as_slice()] }];
                let mut msink = CollectingSink::new();
                let multi =
                    enumerate_multi_cone(edges.as_slice(), &cones, mem, policy, &mut msink);
                let mut t = sink.into_triangles();
                t.sort_unstable();
                let mut tm = msink.into_triangles();
                tm.sort_unstable();
                (plain, t, multi.emitted, tm)
            };
            let (pa, ta, ma, tma) = run(ChunkPolicy::Adaptive);
            let (pf, tf, mf, tmf) = run(ChunkPolicy::PUBLISHED_BASELINE);
            prop_assert_eq!(pa, pf);
            prop_assert_eq!(ta, tf, "plain-lemma emission multiset diverged");
            prop_assert_eq!(ma, mf);
            prop_assert_eq!(tma, tmf, "multi-cone emission multiset diverged");
            prop_assert_eq!(pa, naive::count_triangles(&g));
        }
    }
}
