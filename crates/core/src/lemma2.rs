//! Lemma 2 (Hu–Tao–Chung, SIGMOD 2013): enumerating all triangles whose
//! pivot edge lies in a subset `E' ⊆ E`, in `O(E/B + E'·E/(M·B))` I/Os.
//!
//! The subroutine proceeds in iterations. Each iteration loads `αM` new
//! pivot edges into internal memory, together with an index of their
//! endpoints (`Γ_mem`); it then scans the relevant edge set once, and for
//! every vertex `v` computes `Γ_v = {u | (v,u) ∈ E, u > v, u ∈ Γ_mem}` —
//! possible in one scan because the canonical edge list stores each vertex's
//! higher-ordered neighbours consecutively. Every memory-resident pivot edge
//! `{u, w}` with `u, w ∈ Γ_v` closes the triangle `{v, u, w}` (cone `v`,
//! pivot `{u, w}`), which is emitted while all three edges are in memory.
//!
//! Two entry points share the machinery:
//!
//! * [`enumerate_with_pivots`] — the literal lemma (one edge set, one pivot
//!   set, an arbitrary triangle filter). Applied with `E' = E` it is the
//!   Hu–Tao–Chung baseline the paper improves upon.
//! * [`enumerate_multi_cone`] — the pivot-grouped form used by step 3 of the
//!   cache-aware algorithms: the pivot chunk and its indexes are built
//!   **once** per chunk and then every cone colour's (one or two) class
//!   views are streamed against it, instead of re-loading the chunk and
//!   re-merging edge sets once per colour triple. Cone dispatch is by
//!   construction (each cone scan only ever sees edges whose smaller
//!   endpoint has that cone colour), so no per-triangle colour filter runs.
//!
//! The in-memory chunk indexes are pure sorted-vec + binary-search
//! structures — no hashing anywhere in the per-vertex `Γ_v` loop.

use emsim::{ExtSlice, ExtVec, Machine, MemLease};
use graphgen::{Edge, Triangle, VertexId};

use crate::sink::TriangleSink;

/// Fraction of the memory budget devoted to one chunk of pivot edges. The
/// chunk itself, its endpoint set and the per-vertex `Γ_v` buffer together
/// stay within the budget (see the accounting in the unit tests).
const CHUNK_DIVISOR: usize = 8;

/// The (one or two) sorted colour-class views holding every potential cone
/// edge of one cone colour — the input [`enumerate_multi_cone`] streams
/// against each pivot chunk. The views must be sorted by `(u, v)` and
/// pairwise disjoint (colour classes are).
pub(crate) struct ConeClasses<'a> {
    /// The class views `E_{τ1,τ2}` and `E_{τ1,τ3}` (deduplicated when
    /// `τ2 = τ3`, empties omitted by the caller).
    pub ranges: Vec<ExtSlice<'a, Edge>>,
}

/// One in-memory chunk of ≤ `αM` pivot edges with its probe indexes, built
/// once and scanned against by every cone stream:
///
/// * `edges` — the chunk itself, sorted by `(u, v)`; the adjacency of an
///   endpoint `u` is the run `edges[lo..hi]` located by binary search, so no
///   separate adjacency map is materialised.
/// * `endpoints` — `Γ_mem`, the sorted, deduplicated endpoint set, with
///   membership by binary search.
struct PivotChunk {
    edges: Vec<Edge>,
    endpoints: Vec<VertexId>,
}

impl PivotChunk {
    /// Loads pivot edges `[start, end)` of `pivots` and builds the indexes,
    /// returning the chunk together with its gauge lease (chunk words plus
    /// endpoint words).
    fn load(
        machine: &Machine,
        pivots: &ExtSlice<'_, Edge>,
        start: usize,
        end: usize,
    ) -> (Self, MemLease) {
        let mut edges: Vec<Edge> = pivots.slice(start, end).load();
        machine.work(edges.len() as u64);
        if !edges.is_sorted() {
            // Callers normally hand over sorted ranges; the lemma itself
            // only requires a set, so establish the order locally.
            machine.work(edges.len() as u64 * (usize::BITS - edges.len().leading_zeros()) as u64);
            edges.sort_unstable();
        }
        let mut endpoints: Vec<VertexId> = Vec::with_capacity(edges.len() * 2);
        for e in &edges {
            endpoints.push(e.u);
            endpoints.push(e.v);
            machine.work(1);
        }
        machine
            .work(endpoints.len() as u64 * (usize::BITS - endpoints.len().leading_zeros()) as u64);
        endpoints.sort_unstable();
        endpoints.dedup();
        let lease = machine
            .gauge()
            .lease((edges.len() + endpoints.len()) as u64);
        (Self { edges, endpoints }, lease)
    }

    /// Whether `v` is an endpoint of some pivot edge in the chunk (`Γ_mem`).
    fn contains(&self, v: VertexId) -> bool {
        self.endpoints.binary_search(&v).is_ok()
    }

    /// The chunk pivot edges whose smaller endpoint is `u`, as the sorted
    /// run of their larger endpoints.
    fn neighbors_of(&self, u: VertexId) -> impl Iterator<Item = VertexId> + '_ {
        let lo = self.edges.partition_point(|e| e.u < u);
        let hi = self.edges.partition_point(|e| e.u <= u);
        self.edges[lo..hi].iter().map(|e| e.v)
    }
}

/// Closes every triangle `{v} ∪ {u, w}` with `{u, w}` a chunk pivot and
/// `u, w ∈ Γ_v`, forwarding those passing `filter` to `sink`. `gamma_v` is
/// sorted ascending (the scan produces it in `(u, v)` order), so the inner
/// membership probe is a binary search.
fn close_group(
    machine: &Machine,
    chunk: &PivotChunk,
    v: VertexId,
    gamma_v: &[VertexId],
    filter: &mut dyn FnMut(Triangle) -> bool,
    sink: &mut dyn TriangleSink,
) -> u64 {
    if gamma_v.len() < 2 {
        return 0;
    }
    let mut emitted = 0u64;
    for &u in gamma_v {
        for w in chunk.neighbors_of(u) {
            machine.work(1);
            if w != v && gamma_v.binary_search(&w).is_ok() {
                // All three edges are memory-resident at this point: {u,w}
                // is in the pivot chunk, and {v,u}, {v,w} were just read
                // while building Γ_v.
                let t = Triangle::new(v, u, w);
                if filter(t) {
                    sink.emit(t);
                    emitted += 1;
                }
            }
        }
    }
    emitted
}

/// Scans one sorted edge stream against a pivot chunk: groups the stream by
/// its smaller endpoint `v`, collects `Γ_v`, and closes the groups'
/// triangles. The transient `Γ_v` buffer is gauge-accounted; it never
/// exceeds `|Γ_mem|`, so it stays within the chunk's memory budget.
fn scan_against_chunk(
    machine: &Machine,
    chunk: &PivotChunk,
    edges: impl Iterator<Item = Edge>,
    filter: &mut dyn FnMut(Triangle) -> bool,
    sink: &mut dyn TriangleSink,
) -> u64 {
    let mut emitted = 0u64;
    let mut gamma_lease = machine.gauge().lease(0);
    let mut current_v: Option<VertexId> = None;
    let mut gamma_v: Vec<VertexId> = Vec::new();

    for e in edges {
        machine.work(1);
        if current_v != Some(e.u) {
            if let Some(v) = current_v {
                emitted += close_group(machine, chunk, v, &gamma_v, filter, sink);
            }
            gamma_v.clear();
            gamma_lease.shrink(gamma_lease.words());
            current_v = Some(e.u);
        }
        if chunk.contains(e.v) {
            gamma_v.push(e.v);
            gamma_lease.grow(1);
        }
    }
    if let Some(v) = current_v {
        emitted += close_group(machine, chunk, v, &gamma_v, filter, sink);
    }
    emitted
}

/// Enumerates every triangle of `edge_set` whose pivot edge belongs to
/// `pivots`, filtered by `filter`, and returns the number emitted.
///
/// Requirements (all established by the callers):
/// * `edge_set` is canonical and sorted lexicographically;
/// * `pivots ⊆ edge_set` (as a set);
/// * `mem_words` is the internal-memory budget `M` in words.
pub(crate) fn enumerate_with_pivots(
    edge_set: &ExtVec<Edge>,
    pivots: &ExtVec<Edge>,
    mem_words: usize,
    mut filter: impl FnMut(Triangle) -> bool,
    sink: &mut dyn TriangleSink,
) -> u64 {
    let machine: Machine = edge_set.machine().clone();
    let chunk_edges = (mem_words / CHUNK_DIVISOR).max(1);
    let pview = pivots.as_slice();
    let mut emitted = 0u64;

    let mut start = 0usize;
    while start < pivots.len() {
        let end = (start + chunk_edges).min(pivots.len());
        let (chunk, _lease) = PivotChunk::load(&machine, &pview, start, end);
        emitted += scan_against_chunk(&machine, &chunk, edge_set.iter(), &mut filter, sink);
        start = end;
    }
    emitted
}

/// The pivot-grouped form of Lemma 2 used by step 3 of the cache-aware
/// algorithms: enumerates, for every cone input, every triangle whose pivot
/// edge lies in `pivots` and whose cone edges lie in that input's class
/// views, and returns the number emitted.
///
/// Each pivot chunk is loaded and indexed **once**, then all cone inputs are
/// streamed against it (their views merged on the fly by the streaming
/// k-way merge — nothing is materialised). Because a cone input's views
/// hold exactly the candidate cone edges of one cone colour, every emitted
/// triangle's cone vertex has that colour by construction and no filter is
/// evaluated.
///
/// Requirements: `pivots` and every view in `cones` are sorted by `(u, v)`;
/// the views of one cone input are pairwise disjoint; `mem_words` is the
/// memory budget `M` in words.
pub(crate) fn enumerate_multi_cone(
    pivots: ExtSlice<'_, Edge>,
    cones: &[ConeClasses<'_>],
    mem_words: usize,
    sink: &mut dyn TriangleSink,
) -> u64 {
    let machine: Machine = pivots.machine().clone();
    let chunk_edges = (mem_words / CHUNK_DIVISOR).max(1);
    let mut emitted = 0u64;
    let mut keep_all = |_: Triangle| true;

    let mut start = 0usize;
    while start < pivots.len() {
        let end = (start + chunk_edges).min(pivots.len());
        let (chunk, _lease) = PivotChunk::load(&machine, &pivots, start, end);
        for cone in cones {
            let merged = emalgo::kway_merge(
                &machine,
                cone.ranges.iter().map(|r| r.iter()).collect(),
                |e: &Edge| (e.u, e.v),
            );
            emitted += scan_against_chunk(&machine, &chunk, merged, &mut keep_all, sink);
        }
        start = end;
    }
    emitted
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::{CollectingSink, StrictSink};
    use emsim::{EmConfig, Machine};
    use graphgen::{generators, naive, Graph};

    fn canonical_ext(g: &Graph, machine: &Machine) -> ExtVec<Edge> {
        let mut edges: Vec<Edge> = g.edges().to_vec();
        edges.sort_unstable();
        ExtVec::from_slice(machine, &edges)
    }

    #[test]
    fn with_all_edges_as_pivots_enumerates_every_triangle_exactly_once() {
        for seed in [1u64, 2, 3] {
            let g = generators::erdos_renyi(80, 600, seed);
            let machine = Machine::new(EmConfig::new(1 << 10, 64));
            let edges = canonical_ext(&g, &machine);
            let mut sink = StrictSink::new();
            let n = enumerate_with_pivots(&edges, &edges, 1 << 10, |_| true, &mut sink);
            assert_eq!(n, naive::count_triangles(&g), "seed {seed}");
            assert_eq!(sink.len() as u64, n);
        }
    }

    #[test]
    fn pivot_subset_restricts_to_matching_triangles() {
        let g = generators::clique(8);
        let machine = Machine::new(EmConfig::new(1 << 10, 64));
        let edges = canonical_ext(&g, &machine);
        // Use only pivot edges incident to vertex 7 (the largest): the pivot
        // of a triangle is the edge between its two largest vertices, so we
        // must get exactly the triangles containing vertex 7: C(7,2) = 21.
        let pivots_vec: Vec<Edge> = g.edges().iter().copied().filter(|e| e.v == 7).collect();
        let pivots = ExtVec::from_slice(&machine, &pivots_vec);
        let mut sink = CollectingSink::new();
        let n = enumerate_with_pivots(&edges, &pivots, 1 << 10, |_| true, &mut sink);
        assert_eq!(n, 21);
        assert!(sink.triangles().iter().all(|t| t.c == 7));
    }

    #[test]
    fn tiny_memory_still_correct_via_many_chunks() {
        let g = generators::erdos_renyi(60, 500, 11);
        let machine = Machine::new(EmConfig::new(64, 16)); // M = 64 words!
        let edges = canonical_ext(&g, &machine);
        let mut sink = StrictSink::new();
        let n = enumerate_with_pivots(&edges, &edges, 64, |_| true, &mut sink);
        assert_eq!(n, naive::count_triangles(&g));
    }

    #[test]
    fn filter_is_respected() {
        let g = generators::clique(6);
        let machine = Machine::new(EmConfig::new(512, 64));
        let edges = canonical_ext(&g, &machine);
        let mut sink = CollectingSink::new();
        let n = enumerate_with_pivots(&edges, &edges, 512, |t| t.a == 0, &mut sink);
        // Triangles whose smallest vertex is 0: C(5,2) = 10.
        assert_eq!(n, 10);
    }

    #[test]
    fn unsorted_pivot_sets_are_indexed_correctly() {
        // The lemma only needs the pivot *set*; a caller handing over an
        // unsorted array must still get every triangle.
        let g = generators::erdos_renyi(50, 350, 9);
        let machine = Machine::new(EmConfig::new(1 << 10, 64));
        let edges = canonical_ext(&g, &machine);
        let mut shuffled: Vec<Edge> = g.edges().to_vec();
        shuffled.sort_unstable();
        shuffled.reverse();
        let pivots = ExtVec::from_slice(&machine, &shuffled);
        let mut sink = StrictSink::new();
        let n = enumerate_with_pivots(&edges, &pivots, 1 << 10, |_| true, &mut sink);
        assert_eq!(n, naive::count_triangles(&g));
    }

    #[test]
    fn io_scales_with_number_of_chunks() {
        // Doubling memory should roughly halve the number of chunk passes
        // over the edge set: the E'·E/(MB) term of Lemma 2.
        let g = generators::erdos_renyi(400, 6000, 4);
        let run = |mem: usize| -> u64 {
            let machine = Machine::new(EmConfig::new(mem, 64));
            let edges = canonical_ext(&g, &machine);
            machine.cold_cache();
            let before = machine.io().total();
            let mut sink = CollectingSink::new();
            enumerate_with_pivots(&edges, &edges, mem, |_| true, &mut sink);
            machine.io().total() - before
        };
        let small = run(1 << 9);
        let large = run(1 << 13);
        assert!(
            small as f64 > 3.0 * large as f64,
            "16x memory should cut Lemma 2 I/Os by well over 3x (small={small}, large={large})"
        );
    }

    #[test]
    fn memory_gauge_respects_budget() {
        let g = generators::erdos_renyi(200, 3000, 8);
        let mem = 1 << 10;
        let machine = Machine::new(EmConfig::new(mem, 64));
        let edges = canonical_ext(&g, &machine);
        let mut sink = CollectingSink::new();
        enumerate_with_pivots(&edges, &edges, mem, |_| true, &mut sink);
        assert!(
            machine.gauge().peak() <= (mem + mem / 2) as u64,
            "peak in-core usage {} exceeds 1.5·M = {}",
            machine.gauge().peak(),
            mem + mem / 2
        );
    }

    #[test]
    fn triangle_free_graphs_emit_nothing() {
        let g = generators::complete_bipartite(20, 20);
        let machine = Machine::new(EmConfig::new(512, 64));
        let edges = canonical_ext(&g, &machine);
        let mut sink = CollectingSink::new();
        assert_eq!(
            enumerate_with_pivots(&edges, &edges, 512, |_| true, &mut sink),
            0
        );
        assert!(sink.is_empty());
    }

    #[test]
    fn multi_cone_with_whole_edge_set_matches_the_plain_lemma() {
        // One cone input holding the whole edge set and pivots = everything
        // must reproduce the Hu–Tao–Chung behaviour exactly.
        for seed in [4u64, 6] {
            let g = generators::erdos_renyi(70, 520, seed);
            let machine = Machine::new(EmConfig::new(512, 32));
            let edges = canonical_ext(&g, &machine);
            let mut sink = StrictSink::new();
            let cones = [ConeClasses {
                ranges: vec![edges.as_slice()],
            }];
            let n = enumerate_multi_cone(edges.as_slice(), &cones, 512, &mut sink);
            assert_eq!(n, naive::count_triangles(&g), "seed {seed}");
        }
    }

    #[test]
    fn multi_cone_merges_split_views_and_respects_budget() {
        // Split the edge set into two interleaved sorted halves handed over
        // as one cone's two views: the on-the-fly merge must reconstruct
        // the full cone-edge stream, within the memory budget.
        let g = generators::erdos_renyi(90, 700, 12);
        let mem = 512usize;
        let machine = Machine::new(EmConfig::new(mem, 32));
        let edges = canonical_ext(&g, &machine);
        let all: Vec<Edge> = edges.load_all();
        let half_a: Vec<Edge> = all.iter().copied().step_by(2).collect();
        let half_b: Vec<Edge> = all.iter().copied().skip(1).step_by(2).collect();
        let a = ExtVec::from_slice(&machine, &half_a);
        let b = ExtVec::from_slice(&machine, &half_b);
        machine.gauge().reset_peak();
        let mut sink = StrictSink::new();
        let cones = [ConeClasses {
            ranges: vec![a.as_slice(), b.as_slice()],
        }];
        let n = enumerate_multi_cone(edges.as_slice(), &cones, mem, &mut sink);
        assert_eq!(n, naive::count_triangles(&g));
        assert!(
            machine.gauge().peak() <= (mem + mem / 2) as u64,
            "peak in-core usage {} exceeds 1.5·M = {}",
            machine.gauge().peak(),
            mem + mem / 2
        );
    }

    #[test]
    fn multi_cone_loads_each_pivot_chunk_once_for_all_cones() {
        // The point of pivot grouping: with k cone inputs the pivot chunk is
        // read once, not k times. Compare pivot-side read volume against
        // running the plain lemma k times.
        let g = generators::erdos_renyi(150, 2500, 3);
        let mem = 256usize;
        let machine = Machine::new(EmConfig::new(mem, 32));
        let edges = canonical_ext(&g, &machine);
        let k = 6usize;

        machine.cold_cache();
        let before = machine.io().total();
        let cones: Vec<ConeClasses> = (0..k)
            .map(|_| ConeClasses {
                ranges: vec![edges.as_slice()],
            })
            .collect();
        let mut sink = CollectingSink::new();
        let grouped = enumerate_multi_cone(edges.as_slice(), &cones, mem, &mut sink);
        let grouped_io = machine.io().total() - before;

        machine.cold_cache();
        let before = machine.io().total();
        let mut sink2 = CollectingSink::new();
        let mut repeated = 0;
        for _ in 0..k {
            repeated += enumerate_with_pivots(&edges, &edges, mem, |_| true, &mut sink2);
        }
        let repeated_io = machine.io().total() - before;

        assert_eq!(grouped, repeated);
        assert!(
            grouped_io < repeated_io,
            "pivot grouping must not cost more I/O ({grouped_io} vs {repeated_io})"
        );
    }
}
