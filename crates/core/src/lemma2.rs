//! Lemma 2 (Hu–Tao–Chung, SIGMOD 2013): enumerating all triangles whose
//! pivot edge lies in a subset `E' ⊆ E`, in `O(E/B + E'·E/(M·B))` I/Os.
//!
//! The subroutine proceeds in iterations. Each iteration loads `αM` new
//! pivot edges into internal memory, together with an index of their
//! endpoints (`Γ_mem`); it then scans the whole edge set once, and for every
//! vertex `v` computes `Γ_v = {u | (v,u) ∈ E, u > v, u ∈ Γ_mem}` — possible
//! in one scan because the canonical edge list stores each vertex's
//! higher-ordered neighbours consecutively. Every memory-resident pivot edge
//! `{u, w}` with `u, w ∈ Γ_v` closes the triangle `{v, u, w}` (cone `v`,
//! pivot `{u, w}`), which is emitted while all three edges are in memory.
//!
//! This is both a building block of the paper's algorithms (step 3 of the
//! cache-aware algorithms applies it per colour triple) and — applied with
//! `E' = E` — the Hu–Tao–Chung baseline that the paper improves upon.

use std::collections::{HashMap, HashSet};

use emsim::{ExtVec, Machine};
use graphgen::{Edge, Triangle, VertexId};

use crate::sink::TriangleSink;

/// Fraction of the memory budget devoted to one chunk of pivot edges. The
/// chunk itself, its endpoint set, its adjacency index and the per-vertex
/// `Γ_v` buffer together stay within the budget (see the accounting in the
/// unit tests).
const CHUNK_DIVISOR: usize = 8;

/// Enumerates every triangle of `edge_set` whose pivot edge belongs to
/// `pivots`, filtered by `filter`, and returns the number emitted.
///
/// Requirements (all established by the callers):
/// * `edge_set` is canonical and sorted lexicographically;
/// * `pivots ⊆ edge_set` (as a set);
/// * `mem_words` is the internal-memory budget `M` in words.
pub(crate) fn enumerate_with_pivots(
    edge_set: &ExtVec<Edge>,
    pivots: &ExtVec<Edge>,
    mem_words: usize,
    mut filter: impl FnMut(Triangle) -> bool,
    sink: &mut dyn TriangleSink,
) -> u64 {
    let machine: Machine = edge_set.machine().clone();
    let chunk_edges = (mem_words / CHUNK_DIVISOR).max(1);
    let mut emitted = 0u64;

    let mut start = 0usize;
    while start < pivots.len() {
        let end = (start + chunk_edges).min(pivots.len());

        // ---- Load the chunk and build its in-memory indexes. ----
        let chunk: Vec<Edge> = pivots.load_range(start, end);
        // Words: chunk (1/edge) + Γ_mem (≤2/edge) + adjacency (≤2/edge).
        let lease_words = (chunk.len() * 5) as u64;
        let _lease = machine.gauge().lease(lease_words);

        let mut gamma_mem: HashSet<VertexId> = HashSet::with_capacity(chunk.len() * 2);
        let mut chunk_adj: HashMap<VertexId, Vec<VertexId>> = HashMap::with_capacity(chunk.len());
        for e in &chunk {
            gamma_mem.insert(e.u);
            gamma_mem.insert(e.v);
            chunk_adj.entry(e.u).or_default().push(e.v);
            machine.work(1);
        }

        // ---- One scan of the edge set, grouped by the smaller endpoint. ----
        // Γ_v never exceeds |Γ_mem| ≤ 2·chunk, so the transient buffer is
        // within the same memory budget; account for it explicitly.
        let mut gamma_lease = machine.gauge().lease(0);
        let mut current_v: Option<VertexId> = None;
        let mut gamma_v: Vec<VertexId> = Vec::new();

        let process_group = |v: VertexId,
                             gamma_v: &mut Vec<VertexId>,
                             emitted: &mut u64,
                             filter: &mut dyn FnMut(Triangle) -> bool,
                             sink: &mut dyn TriangleSink| {
            if gamma_v.len() < 2 {
                gamma_v.clear();
                return;
            }
            let gamma_set: HashSet<VertexId> = gamma_v.iter().copied().collect();
            for &u in gamma_v.iter() {
                if let Some(ws) = chunk_adj.get(&u) {
                    for &w in ws {
                        machine.work(1);
                        if w != v && gamma_set.contains(&w) {
                            // All three edges are memory-resident at this
                            // point: {u,w} is in the pivot chunk, and {v,u},
                            // {v,w} were just read while building Γ_v.
                            let t = Triangle::new(v, u, w);
                            if filter(t) {
                                sink.emit(t);
                                *emitted += 1;
                            }
                        }
                    }
                }
            }
            gamma_v.clear();
        };

        for e in edge_set.iter() {
            machine.work(1);
            if current_v != Some(e.u) {
                if let Some(v) = current_v {
                    process_group(v, &mut gamma_v, &mut emitted, &mut filter, sink);
                }
                current_v = Some(e.u);
                gamma_lease.shrink(gamma_lease.words());
            }
            if gamma_mem.contains(&e.v) {
                gamma_v.push(e.v);
                gamma_lease.grow(1);
            }
        }
        if let Some(v) = current_v {
            process_group(v, &mut gamma_v, &mut emitted, &mut filter, sink);
        }

        start = end;
    }
    emitted
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::{CollectingSink, StrictSink};
    use emsim::{EmConfig, Machine};
    use graphgen::{generators, naive, Graph};

    fn canonical_ext(g: &Graph, machine: &Machine) -> ExtVec<Edge> {
        let mut edges: Vec<Edge> = g.edges().to_vec();
        edges.sort_unstable();
        ExtVec::from_slice(machine, &edges)
    }

    #[test]
    fn with_all_edges_as_pivots_enumerates_every_triangle_exactly_once() {
        for seed in [1u64, 2, 3] {
            let g = generators::erdos_renyi(80, 600, seed);
            let machine = Machine::new(EmConfig::new(1 << 10, 64));
            let edges = canonical_ext(&g, &machine);
            let mut sink = StrictSink::new();
            let n = enumerate_with_pivots(&edges, &edges, 1 << 10, |_| true, &mut sink);
            assert_eq!(n, naive::count_triangles(&g), "seed {seed}");
            assert_eq!(sink.len() as u64, n);
        }
    }

    #[test]
    fn pivot_subset_restricts_to_matching_triangles() {
        let g = generators::clique(8);
        let machine = Machine::new(EmConfig::new(1 << 10, 64));
        let edges = canonical_ext(&g, &machine);
        // Use only pivot edges incident to vertex 7 (the largest): the pivot
        // of a triangle is the edge between its two largest vertices, so we
        // must get exactly the triangles containing vertex 7: C(7,2) = 21.
        let pivots_vec: Vec<Edge> = g.edges().iter().copied().filter(|e| e.v == 7).collect();
        let pivots = ExtVec::from_slice(&machine, &pivots_vec);
        let mut sink = CollectingSink::new();
        let n = enumerate_with_pivots(&edges, &pivots, 1 << 10, |_| true, &mut sink);
        assert_eq!(n, 21);
        assert!(sink.triangles().iter().all(|t| t.c == 7));
    }

    #[test]
    fn tiny_memory_still_correct_via_many_chunks() {
        let g = generators::erdos_renyi(60, 500, 11);
        let machine = Machine::new(EmConfig::new(64, 16)); // M = 64 words!
        let edges = canonical_ext(&g, &machine);
        let mut sink = StrictSink::new();
        let n = enumerate_with_pivots(&edges, &edges, 64, |_| true, &mut sink);
        assert_eq!(n, naive::count_triangles(&g));
    }

    #[test]
    fn filter_is_respected() {
        let g = generators::clique(6);
        let machine = Machine::new(EmConfig::new(512, 64));
        let edges = canonical_ext(&g, &machine);
        let mut sink = CollectingSink::new();
        let n = enumerate_with_pivots(&edges, &edges, 512, |t| t.a == 0, &mut sink);
        // Triangles whose smallest vertex is 0: C(5,2) = 10.
        assert_eq!(n, 10);
    }

    #[test]
    fn io_scales_with_number_of_chunks() {
        // Doubling memory should roughly halve the number of chunk passes
        // over the edge set: the E'·E/(MB) term of Lemma 2.
        let g = generators::erdos_renyi(400, 6000, 4);
        let run = |mem: usize| -> u64 {
            let machine = Machine::new(EmConfig::new(mem, 64));
            let edges = canonical_ext(&g, &machine);
            machine.cold_cache();
            let before = machine.io().total();
            let mut sink = CollectingSink::new();
            enumerate_with_pivots(&edges, &edges, mem, |_| true, &mut sink);
            machine.io().total() - before
        };
        let small = run(1 << 9);
        let large = run(1 << 13);
        assert!(
            small as f64 > 3.0 * large as f64,
            "16x memory should cut Lemma 2 I/Os by well over 3x (small={small}, large={large})"
        );
    }

    #[test]
    fn memory_gauge_respects_budget() {
        let g = generators::erdos_renyi(200, 3000, 8);
        let mem = 1 << 10;
        let machine = Machine::new(EmConfig::new(mem, 64));
        let edges = canonical_ext(&g, &machine);
        let mut sink = CollectingSink::new();
        enumerate_with_pivots(&edges, &edges, mem, |_| true, &mut sink);
        assert!(
            machine.gauge().peak() <= (mem + mem / 2) as u64,
            "peak in-core usage {} exceeds 1.5·M = {}",
            machine.gauge().peak(),
            mem + mem / 2
        );
    }

    #[test]
    fn triangle_free_graphs_emit_nothing() {
        let g = generators::complete_bipartite(20, 20);
        let machine = Machine::new(EmConfig::new(512, 64));
        let edges = canonical_ext(&g, &machine);
        let mut sink = CollectingSink::new();
        assert_eq!(
            enumerate_with_pivots(&edges, &edges, 512, |_| true, &mut sink),
            0
        );
        assert!(sink.is_empty());
    }
}
