//! Theorem 3: the output-sensitive I/O lower bound for triangle enumeration.
//!
//! Any algorithm that enumerates `t` distinct triangles — in the model where
//! an edge occupies at least one memory word, so at most `M` edges fit in
//! memory and a block moves at most `B` of them — performs
//!
//! ```text
//! Ω( t / (√M · B)  +  t^{2/3} / B )
//! ```
//!
//! I/Os, *even in the best case*. The first term comes from the fact that a
//! memory of `2M` words can witness at most `O(M^{3/2})` distinct triangles
//! between block transfers (the epoch/simulation argument in the paper); the
//! second from the `Ω(t^{2/3})` edges that must be read at all. Since a
//! clique on `√E` vertices has `t = Θ(E^{3/2})` triangles, the upper bound of
//! Theorems 1/2/4 is tight.
//!
//! This module provides the bound as an explicit, inspectable formula so the
//! experiments can report measured-I/O-to-lower-bound ratios, plus the
//! combinatorial helpers the argument uses.

use emsim::EmConfig;

/// The two terms of the Theorem 3 lower bound, separately, for enumerating
/// `t` triangles on a machine with the given configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LowerBound {
    /// `t / (√M · B)` — the memory-witnessing term.
    pub witness_term: f64,
    /// `t^{2/3} / B` — the minimum-input term.
    pub input_term: f64,
}

impl LowerBound {
    /// Computes the bound for `t` triangles under `cfg`.
    pub fn for_triangles(cfg: EmConfig, t: u64) -> Self {
        let t = t as f64;
        LowerBound {
            witness_term: t / ((cfg.mem_words as f64).sqrt() * cfg.block_words as f64),
            input_term: t.powf(2.0 / 3.0) / cfg.block_words as f64,
        }
    }

    /// The bound itself: the maximum of the two terms (they are summed in the
    /// paper's statement; max and sum differ by at most a factor 2, and max
    /// is the sharper form for ratio reporting).
    pub fn value(&self) -> f64 {
        self.witness_term.max(self.input_term)
    }

    /// The sum form `t/(√M·B) + t^{2/3}/B`, as literally stated in Theorem 3.
    pub fn sum(&self) -> f64 {
        self.witness_term + self.input_term
    }
}

/// The maximum number of distinct triangles witnessable by `m` memory-resident
/// edges: `O(m^{3/2})` — in exact form, a set of `m` edges spans at most
/// `(√(2m))³/6 ≈ 0.47·m^{3/2}` triangles (attained by a clique). Used in the
/// epoch argument of Theorem 3.
pub fn max_triangles_with_edges(m: u64) -> u64 {
    // Kruskal–Katona style bound: m edges span at most (2m)^{3/2}/6 triangles
    // (equality in the limit for cliques).
    ((2.0 * m as f64).powf(1.5) / 6.0).max(0.0).floor() as u64
}

/// Number of triangles of the clique on `n` vertices: `C(n, 3)`. The clique
/// on `√E` vertices is the paper's witness that `t = Ω(E^{3/2})` is attained.
pub fn clique_triangles(n: u64) -> u64 {
    if n < 3 {
        0
    } else {
        n * (n - 1) * (n - 2) / 6
    }
}

/// The minimum number of edges needed to span `t` triangles, up to constants:
/// `Ω(t^{2/3})` (inverse of [`max_triangles_with_edges`]).
pub fn min_edges_for_triangles(t: u64) -> u64 {
    if t == 0 {
        return 0;
    }
    // Smallest clique with at least t triangles: C(k,3) ≥ t; its edge count
    // k(k-1)/2 is (up to constants) the minimum possible.
    let mut k = (6.0 * t as f64).cbrt().floor().max(3.0) as u64;
    while clique_triangles(k) < t {
        k += 1;
    }
    k * (k - 1) / 2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clique_triangle_counts() {
        assert_eq!(clique_triangles(0), 0);
        assert_eq!(clique_triangles(2), 0);
        assert_eq!(clique_triangles(3), 1);
        assert_eq!(clique_triangles(10), 120);
        assert_eq!(clique_triangles(100), 161_700);
    }

    #[test]
    fn witnessing_bound_matches_clique() {
        // A clique on k vertices has k(k-1)/2 edges and C(k,3) triangles; the
        // bound must be attained exactly there.
        for k in [10u64, 50, 200] {
            let m = k * (k - 1) / 2;
            let t = clique_triangles(k);
            let witnessed = max_triangles_with_edges(m);
            assert!(witnessed >= t, "k={k}: {witnessed} < {t}");
            assert!(
                witnessed <= t + k * k,
                "k={k}: bound too loose ({witnessed} vs {t})"
            );
        }
    }

    #[test]
    fn min_edges_is_inverse_of_max_triangles() {
        for t in [1u64, 100, 10_000, 1_000_000] {
            let m = min_edges_for_triangles(t);
            assert!(
                max_triangles_with_edges(m + 3) >= t,
                "m={m} edges should span t={t} triangles"
            );
        }
        assert_eq!(min_edges_for_triangles(0), 0);
    }

    #[test]
    fn bound_terms_scale_as_stated() {
        let cfg = EmConfig::new(1 << 14, 128);
        let lb1 = LowerBound::for_triangles(cfg, 1_000_000);
        let lb2 = LowerBound::for_triangles(cfg, 8_000_000);
        // witness term is linear in t, input term is t^{2/3}.
        assert!((lb2.witness_term / lb1.witness_term - 8.0).abs() < 1e-9);
        assert!((lb2.input_term / lb1.input_term - 4.0).abs() < 1e-9);
        assert!(lb1.value() <= lb1.sum());
        assert!(lb1.sum() <= 2.0 * lb1.value());
    }

    #[test]
    fn more_memory_weakens_only_the_witness_term() {
        let small = EmConfig::new(1 << 10, 128);
        let large = EmConfig::new(1 << 16, 128);
        let t = 5_000_000;
        let a = LowerBound::for_triangles(small, t);
        let b = LowerBound::for_triangles(large, t);
        assert!(a.witness_term > b.witness_term);
        assert_eq!(a.input_term, b.input_term);
    }

    #[test]
    fn matches_emconfig_helper() {
        let cfg = EmConfig::new(1 << 12, 64);
        let t = 123_456;
        let lb = LowerBound::for_triangles(cfg, t);
        assert!((lb.sum() - cfg.lower_bound(t)).abs() < 1e-6);
    }
}
