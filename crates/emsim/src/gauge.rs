//! Tracking of in-core working-buffer usage by cache-aware algorithms.
//!
//! The paper's cache-aware algorithms explicitly load data into internal
//! memory (for example, Lemma 2 keeps `αM` pivot edges plus an index over
//! their endpoints in memory). In a simulator those buffers are ordinary Rust
//! `Vec`s, so nothing would stop an implementation from cheating and keeping
//! the whole input in core. The [`MemGauge`] closes that loophole: every
//! in-core buffer an algorithm materialises is registered with the gauge via
//! an RAII [`MemLease`], and a run report exposes the peak usage, which the
//! test-suite asserts to be within the configured memory budget `M` (up to
//! the small constant slack the paper itself allows).

use std::cell::RefCell;
use std::rc::Rc;

#[derive(Debug, Default)]
struct GaugeInner {
    in_use: u64,
    peak: u64,
}

/// Shared gauge of in-core working-memory usage, in words.
#[derive(Debug, Default, Clone)]
pub struct MemGauge {
    inner: Rc<RefCell<GaugeInner>>,
}

impl MemGauge {
    /// Creates a gauge with zero usage.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers an in-core buffer of `words` words and returns an RAII lease
    /// that releases the words when dropped.
    pub fn lease(&self, words: u64) -> MemLease {
        {
            let mut g = self.inner.borrow_mut();
            g.in_use += words;
            g.peak = g.peak.max(g.in_use);
        }
        MemLease {
            gauge: self.clone(),
            words,
        }
    }

    /// Current registered usage, in words.
    pub fn in_use(&self) -> u64 {
        self.inner.borrow().in_use
    }

    /// Peak registered usage, in words.
    pub fn peak(&self) -> u64 {
        self.inner.borrow().peak
    }

    /// Resets the peak to the current usage (used between experiment phases).
    pub fn reset_peak(&self) {
        let mut g = self.inner.borrow_mut();
        g.peak = g.in_use;
    }
}

/// RAII lease over in-core working memory; see [`MemGauge::lease`].
#[derive(Debug)]
pub struct MemLease {
    gauge: MemGauge,
    words: u64,
}

impl MemLease {
    /// Number of words held by this lease.
    pub fn words(&self) -> u64 {
        self.words
    }

    /// Grows the lease by `extra` words (e.g. when a buffer is extended).
    pub fn grow(&mut self, extra: u64) {
        let mut g = self.gauge.inner.borrow_mut();
        g.in_use += extra;
        g.peak = g.peak.max(g.in_use);
        self.words += extra;
    }

    /// Shrinks the lease by `fewer` words, saturating at zero.
    pub fn shrink(&mut self, fewer: u64) {
        let fewer = fewer.min(self.words);
        self.gauge.inner.borrow_mut().in_use -= fewer;
        self.words -= fewer;
    }

    /// Grows or shrinks the lease to exactly `words` — convenient for
    /// tracking a buffer whose size is re-measured periodically (e.g. the
    /// memoised colour bits of the cache-oblivious recursion).
    pub fn resize(&mut self, words: u64) {
        if words > self.words {
            self.grow(words - self.words);
        } else {
            self.shrink(self.words - words);
        }
    }
}

impl Drop for MemLease {
    fn drop(&mut self) {
        self.gauge.inner.borrow_mut().in_use -= self.words;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lease_lifecycle_updates_usage_and_peak() {
        let g = MemGauge::new();
        assert_eq!(g.in_use(), 0);
        {
            let _a = g.lease(100);
            assert_eq!(g.in_use(), 100);
            {
                let _b = g.lease(50);
                assert_eq!(g.in_use(), 150);
                assert_eq!(g.peak(), 150);
            }
            assert_eq!(g.in_use(), 100);
        }
        assert_eq!(g.in_use(), 0);
        assert_eq!(g.peak(), 150);
    }

    #[test]
    fn grow_and_shrink() {
        let g = MemGauge::new();
        let mut l = g.lease(10);
        l.grow(5);
        assert_eq!(g.in_use(), 15);
        l.shrink(12);
        assert_eq!(g.in_use(), 3);
        l.shrink(100); // saturates
        assert_eq!(g.in_use(), 0);
        drop(l);
        assert_eq!(g.in_use(), 0);
        assert_eq!(g.peak(), 15);
    }

    #[test]
    fn resize_moves_to_exact_target_in_both_directions() {
        let g = MemGauge::new();
        let mut l = g.lease(10);
        l.resize(25);
        assert_eq!(g.in_use(), 25);
        assert_eq!(l.words(), 25);
        l.resize(4);
        assert_eq!(g.in_use(), 4);
        l.resize(4);
        assert_eq!(g.in_use(), 4);
        assert_eq!(g.peak(), 25);
    }

    #[test]
    fn reset_peak_keeps_current_usage() {
        let g = MemGauge::new();
        let _l = g.lease(40);
        {
            let _big = g.lease(1000);
        }
        assert_eq!(g.peak(), 1040);
        g.reset_peak();
        assert_eq!(g.peak(), 40);
    }
}
