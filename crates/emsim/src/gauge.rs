//! Tracking of in-core working-buffer usage by cache-aware algorithms.
//!
//! The paper's cache-aware algorithms explicitly load data into internal
//! memory (for example, Lemma 2 keeps `αM` pivot edges plus an index over
//! their endpoints in memory). In a simulator those buffers are ordinary Rust
//! `Vec`s, so nothing would stop an implementation from cheating and keeping
//! the whole input in core. The [`MemGauge`] closes that loophole: every
//! in-core buffer an algorithm materialises is registered with the gauge via
//! an RAII [`MemLease`], and a run report exposes the peak usage, which the
//! test-suite asserts to be within the configured memory budget `M` (up to
//! the small constant slack the paper itself allows).
//!
//! ## The `gauge-audit` feature
//!
//! With the `gauge-audit` feature enabled the gauge additionally keeps a
//! **live-lease registry**: every lease records a creation-site tag (the
//! `#[track_caller]` location of the [`MemGauge::lease`] call, or an explicit
//! name given to [`MemGauge::lease_tagged`]) and stays registered until it is
//! dropped. The registry powers three checks that turn silent accounting bugs
//! into panics:
//!
//! * **Leaked leases** — dropping the last gauge handle while leases are
//!   still registered (possible only if a lease was `mem::forget`-ten or
//!   parked in a leaked allocation) panics with the offending creation
//!   sites. [`MemGauge::assert_quiescent`] exposes the same check at
//!   explicit points, e.g. the end of an algorithm run.
//! * **Release underflow** — releasing more words than are registered
//!   (impossible through the public API today, but exactly the bug a future
//!   refactor of lease bookkeeping would introduce) panics instead of
//!   wrapping `in_use` around to ~2⁶⁴.
//! * **Live-lease inspection** — [`MemGauge::live_leases`] returns the
//!   `(tag, words)` pairs currently registered, so a failing budget test can
//!   name the buffers that are resident instead of reporting a bare number.
//!
//! Without the feature the registry compiles away entirely; the underflow
//! check degrades to a `debug_assert!` plus saturating arithmetic, so release
//! builds can never wrap the gauge around.

use std::cell::RefCell;
use std::rc::{Rc, Weak};

#[cfg(feature = "gauge-audit")]
use std::collections::BTreeMap;

/// Creation-site tag of a lease: either an explicit name from
/// [`MemGauge::lease_tagged`] or the `file:line` of the [`MemGauge::lease`]
/// call.
#[cfg(feature = "gauge-audit")]
#[derive(Debug, Clone)]
struct LiveLease {
    tag: String,
    words: u64,
}

#[derive(Debug, Default)]
struct GaugeInner {
    in_use: u64,
    peak: u64,
    /// Peak since the last [`MemGauge::snapshot_phase`] (or gauge creation);
    /// the run-wide `peak` is never reset by phase snapshots.
    phase_peak: u64,
    #[cfg(feature = "gauge-audit")]
    next_lease_id: u64,
    #[cfg(feature = "gauge-audit")]
    live: BTreeMap<u64, LiveLease>,
}

/// Gauge state captured at a phase boundary by [`MemGauge::snapshot_phase`]:
/// the peak usage attributable to the phase just ended, plus what was still
/// resident when the phase ended. The experiment harness serialises these
/// into the per-phase peak tables of the `BENCH_E*.json` records.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseSnapshot {
    /// Name of the phase that just ended.
    pub name: String,
    /// Peak registered words between the previous snapshot (or gauge
    /// creation) and this one.
    pub peak_words: u64,
    /// Words still registered when the snapshot was taken — buffers that
    /// outlive the phase, e.g. a summary carried into the next phase.
    pub live_words: u64,
    /// Leases still registered at snapshot time as `(tag, words)` pairs.
    /// Populated only under the `gauge-audit` feature; empty otherwise.
    pub live_leases: Vec<(String, u64)>,
}

impl GaugeInner {
    /// Releases `words` from `in_use`, catching underflow: a release larger
    /// than the registered total means double-release or corrupted lease
    /// bookkeeping. Panics under `gauge-audit`, debug-asserts otherwise, and
    /// saturates in release builds so the gauge never wraps.
    fn release(&mut self, words: u64) {
        if let Some(rest) = self.in_use.checked_sub(words) {
            self.in_use = rest;
        } else {
            #[cfg(feature = "gauge-audit")]
            panic!(
                "gauge-audit: releasing {words} words underflows the gauge \
                 (in_use = {}); live leases: {:?}",
                self.in_use, self.live
            );
            #[cfg(not(feature = "gauge-audit"))]
            {
                debug_assert!(
                    false,
                    "releasing {words} words underflows the gauge (in_use = {})",
                    self.in_use
                );
                self.in_use = 0;
            }
        }
    }
}

#[cfg(feature = "gauge-audit")]
impl Drop for GaugeInner {
    fn drop(&mut self) {
        // Leases hold a gauge handle, so reaching this drop with registered
        // leases means a lease was leaked (`mem::forget`, `Box::leak`, a
        // reference cycle) and its words can never be released. Don't panic
        // while already unwinding: the original failure is the better error.
        if !self.live.is_empty() && !std::thread::panicking() {
            let sites: Vec<String> = self
                .live
                .values()
                .map(|l| format!("{} ({} words)", l.tag, l.words))
                .collect();
            panic!(
                "gauge-audit: gauge dropped with {} leaked lease(s): {}",
                self.live.len(),
                sites.join(", ")
            );
        }
    }
}

/// Shared gauge of in-core working-memory usage, in words.
#[derive(Debug, Default, Clone)]
pub struct MemGauge {
    inner: Rc<RefCell<GaugeInner>>,
}

impl MemGauge {
    /// Creates a gauge with zero usage.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers an in-core buffer of `words` words and returns an RAII lease
    /// that releases the words when dropped. Under `gauge-audit` the lease is
    /// tagged with the caller's `file:line`.
    #[track_caller]
    pub fn lease(&self, words: u64) -> MemLease {
        let caller = std::panic::Location::caller();
        self.lease_at(words, || format!("{}:{}", caller.file(), caller.line()))
    }

    /// Like [`MemGauge::lease`], but with an explicit creation-site tag
    /// (e.g. `"lemma2: pivot chunk"`) that `gauge-audit` diagnostics report
    /// instead of the call location.
    pub fn lease_tagged(&self, words: u64, tag: &str) -> MemLease {
        self.lease_at(words, || tag.to_string())
    }

    fn lease_at(&self, words: u64, tag: impl FnOnce() -> String) -> MemLease {
        let _ = &tag;
        #[cfg(feature = "gauge-audit")]
        let id;
        {
            let mut g = self.inner.borrow_mut();
            g.in_use += words;
            g.peak = g.peak.max(g.in_use);
            g.phase_peak = g.phase_peak.max(g.in_use);
            #[cfg(feature = "gauge-audit")]
            {
                id = g.next_lease_id;
                g.next_lease_id += 1;
                g.live.insert(id, LiveLease { tag: tag(), words });
            }
        }
        // Leases hold the gauge weakly: a leaked lease (`mem::forget`,
        // `Box::leak`) must not keep the gauge alive, or the leak check at
        // gauge drop could never fire.
        MemLease {
            gauge: Rc::downgrade(&self.inner),
            words,
            #[cfg(feature = "gauge-audit")]
            id,
        }
    }

    /// Current registered usage, in words.
    pub fn in_use(&self) -> u64 {
        self.inner.borrow().in_use
    }

    /// Peak registered usage, in words.
    pub fn peak(&self) -> u64 {
        self.inner.borrow().peak
    }

    /// Resets the peak to the current usage (used between experiment phases).
    pub fn reset_peak(&self) {
        let mut g = self.inner.borrow_mut();
        g.peak = g.in_use;
        g.phase_peak = g.in_use;
    }

    /// Closes the current accounting phase: returns a [`PhaseSnapshot`] with
    /// the peak usage since the previous snapshot (or gauge creation) and the
    /// still-registered leases, then restarts the phase window at the current
    /// usage. The run-wide [`MemGauge::peak`] is unaffected.
    pub fn snapshot_phase(&self, name: &str) -> PhaseSnapshot {
        let mut g = self.inner.borrow_mut();
        let snap = PhaseSnapshot {
            name: name.to_string(),
            peak_words: g.phase_peak.max(g.in_use),
            live_words: g.in_use,
            #[cfg(feature = "gauge-audit")]
            live_leases: g.live.values().map(|l| (l.tag.clone(), l.words)).collect(),
            #[cfg(not(feature = "gauge-audit"))]
            live_leases: Vec::new(),
        };
        g.phase_peak = g.in_use;
        snap
    }

    /// The `(creation-site tag, words)` of every lease currently registered,
    /// in creation order.
    #[cfg(feature = "gauge-audit")]
    pub fn live_leases(&self) -> Vec<(String, u64)> {
        self.inner
            .borrow()
            .live
            .values()
            .map(|l| (l.tag.clone(), l.words))
            .collect()
    }

    /// Asserts that no lease is live and no words are registered — the state
    /// every algorithm must return the gauge to. Panics with the registered
    /// creation sites otherwise.
    #[cfg(feature = "gauge-audit")]
    pub fn assert_quiescent(&self) {
        let g = self.inner.borrow();
        assert!(
            g.live.is_empty() && g.in_use == 0,
            "gauge-audit: gauge not quiescent — in_use = {}, live leases: {:?}",
            g.in_use,
            g.live
        );
    }
}

/// RAII lease over in-core working memory; see [`MemGauge::lease`].
#[derive(Debug)]
pub struct MemLease {
    gauge: Weak<RefCell<GaugeInner>>,
    words: u64,
    #[cfg(feature = "gauge-audit")]
    id: u64,
}

impl MemLease {
    /// Number of words held by this lease.
    pub fn words(&self) -> u64 {
        self.words
    }

    /// Grows the lease by `extra` words (e.g. when a buffer is extended).
    pub fn grow(&mut self, extra: u64) {
        if let Some(inner) = self.gauge.upgrade() {
            let mut g = inner.borrow_mut();
            g.in_use += extra;
            g.peak = g.peak.max(g.in_use);
            g.phase_peak = g.phase_peak.max(g.in_use);
        }
        self.words += extra;
        self.sync_registry();
    }

    /// Shrinks the lease by `fewer` words, saturating at zero.
    pub fn shrink(&mut self, fewer: u64) {
        let fewer = fewer.min(self.words);
        if let Some(inner) = self.gauge.upgrade() {
            inner.borrow_mut().release(fewer);
        }
        self.words -= fewer;
        self.sync_registry();
    }

    /// Grows or shrinks the lease to exactly `words` — convenient for
    /// tracking a buffer whose size is re-measured periodically (e.g. the
    /// memoised colour bits of the cache-oblivious recursion).
    pub fn resize(&mut self, words: u64) {
        if words > self.words {
            self.grow(words - self.words);
        } else {
            self.shrink(self.words - words);
        }
    }

    #[cfg(feature = "gauge-audit")]
    fn sync_registry(&self) {
        if let Some(inner) = self.gauge.upgrade() {
            if let Some(l) = inner.borrow_mut().live.get_mut(&self.id) {
                l.words = self.words;
            }
        }
    }

    #[cfg(not(feature = "gauge-audit"))]
    fn sync_registry(&self) {}
}

impl Drop for MemLease {
    fn drop(&mut self) {
        if let Some(inner) = self.gauge.upgrade() {
            let mut g = inner.borrow_mut();
            g.release(self.words);
            #[cfg(feature = "gauge-audit")]
            g.live.remove(&self.id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lease_lifecycle_updates_usage_and_peak() {
        let g = MemGauge::new();
        assert_eq!(g.in_use(), 0);
        {
            let _a = g.lease(100);
            assert_eq!(g.in_use(), 100);
            {
                let _b = g.lease(50);
                assert_eq!(g.in_use(), 150);
                assert_eq!(g.peak(), 150);
            }
            assert_eq!(g.in_use(), 100);
        }
        assert_eq!(g.in_use(), 0);
        assert_eq!(g.peak(), 150);
    }

    #[test]
    fn grow_and_shrink() {
        let g = MemGauge::new();
        let mut l = g.lease(10);
        l.grow(5);
        assert_eq!(g.in_use(), 15);
        l.shrink(12);
        assert_eq!(g.in_use(), 3);
        l.shrink(100); // saturates
        assert_eq!(g.in_use(), 0);
        drop(l);
        assert_eq!(g.in_use(), 0);
        assert_eq!(g.peak(), 15);
    }

    #[test]
    fn resize_moves_to_exact_target_in_both_directions() {
        let g = MemGauge::new();
        let mut l = g.lease(10);
        l.resize(25);
        assert_eq!(g.in_use(), 25);
        assert_eq!(l.words(), 25);
        l.resize(4);
        assert_eq!(g.in_use(), 4);
        l.resize(4);
        assert_eq!(g.in_use(), 4);
        assert_eq!(g.peak(), 25);
    }

    #[test]
    fn reset_peak_keeps_current_usage() {
        let g = MemGauge::new();
        let _l = g.lease(40);
        {
            let _big = g.lease(1000);
        }
        assert_eq!(g.peak(), 1040);
        g.reset_peak();
        assert_eq!(g.peak(), 40);
    }

    #[test]
    fn phase_snapshots_window_the_peak_without_touching_the_run_peak() {
        let g = MemGauge::new();
        let keep = g.lease(40);
        {
            let _spike = g.lease(1000);
        }
        let p1 = g.snapshot_phase("build");
        assert_eq!(p1.name, "build");
        assert_eq!(p1.peak_words, 1040);
        assert_eq!(p1.live_words, 40);

        // The next phase's window starts at the current usage, so a smaller
        // spike is visible instead of being shadowed by the first phase.
        {
            let _small = g.lease(10);
        }
        let p2 = g.snapshot_phase("enumerate");
        assert_eq!(p2.peak_words, 50);
        assert_eq!(p2.live_words, 40);

        // A phase that allocates nothing still reports the carried words.
        let p3 = g.snapshot_phase("drain");
        assert_eq!(p3.peak_words, 40);

        assert_eq!(g.peak(), 1040, "run-wide peak must survive snapshots");
        drop(keep);
    }

    #[cfg(feature = "gauge-audit")]
    #[test]
    fn phase_snapshots_name_the_surviving_leases() {
        let g = MemGauge::new();
        let _held = g.lease_tagged(25, "carried summary");
        {
            let _tmp = g.lease_tagged(100, "scratch");
        }
        let p = g.snapshot_phase("build");
        assert_eq!(p.live_leases, vec![("carried summary".to_string(), 25)]);
    }

    #[test]
    fn tagged_leases_account_like_plain_ones() {
        let g = MemGauge::new();
        let mut l = g.lease_tagged(30, "test: scratch buffer");
        assert_eq!(g.in_use(), 30);
        l.resize(12);
        assert_eq!(g.in_use(), 12);
        drop(l);
        assert_eq!(g.in_use(), 0);
        assert_eq!(g.peak(), 30);
    }

    // A release larger than the registered total cannot be produced through
    // the public lease API (shrink clamps, drop releases exactly the held
    // words); corrupt `in_use` directly to stand in for the future
    // refactoring bug the hardening exists for.
    #[test]
    #[cfg(any(debug_assertions, feature = "gauge-audit"))]
    #[should_panic(expected = "underflow")]
    fn release_underflow_panics_instead_of_wrapping() {
        let g = MemGauge::new();
        let l = g.lease(10);
        g.inner.borrow_mut().in_use = 5;
        drop(l); // releases 10 from an in_use of 5
    }

    #[test]
    fn release_underflow_saturates_when_unchecked() {
        // The release-build contract: even if the panic paths above are
        // compiled out, `release` must never wrap `in_use` around.
        // Not struct-literal syntax: GaugeInner implements Drop under
        // gauge-audit, which forbids functional-update construction.
        #[allow(clippy::field_reassign_with_default)]
        let mut inner = {
            let mut inner = GaugeInner::default();
            inner.in_use = 5;
            inner
        };
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            inner.release(10);
        }));
        if result.is_ok() {
            assert_eq!(inner.in_use, 0, "underflowing release must saturate");
        }
    }

    #[cfg(feature = "gauge-audit")]
    mod audit {
        use super::*;

        #[test]
        fn registry_tracks_tags_and_resized_words() {
            let g = MemGauge::new();
            let _a = g.lease_tagged(100, "chunk");
            let mut b = g.lease_tagged(50, "probe");
            b.grow(25);
            let live = g.live_leases();
            assert_eq!(live.len(), 2);
            assert_eq!(live[0], ("chunk".to_string(), 100));
            assert_eq!(live[1], ("probe".to_string(), 75));
        }

        #[test]
        fn untagged_leases_carry_their_creation_site() {
            let g = MemGauge::new();
            let _l = g.lease(7);
            let live = g.live_leases();
            assert_eq!(live.len(), 1);
            assert!(
                live[0].0.contains("gauge.rs"),
                "expected a file:line tag, got {:?}",
                live[0].0
            );
        }

        #[test]
        fn quiescent_after_all_leases_drop() {
            let g = MemGauge::new();
            {
                let _a = g.lease_tagged(10, "a");
                let _b = g.lease_tagged(20, "b");
            }
            g.assert_quiescent();
            assert!(g.live_leases().is_empty());
        }

        #[test]
        #[should_panic(expected = "not quiescent")]
        fn assert_quiescent_names_live_leases() {
            let g = MemGauge::new();
            let _held = g.lease_tagged(10, "still-held buffer");
            g.assert_quiescent();
        }

        #[test]
        #[should_panic(expected = "leaked lease")]
        fn forgotten_lease_is_reported_at_gauge_drop() {
            let g = MemGauge::new();
            std::mem::forget(g.lease_tagged(10, "forgotten buffer"));
            drop(g); // last user-held handle; the forgotten lease leaks its own
        }
    }
}
