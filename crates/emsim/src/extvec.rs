//! Typed arrays stored on the simulated disk.

use std::marker::PhantomData;

use crate::machine::Machine;
use crate::record::Record;
use crate::storage::StorageError;

/// A growable, typed array living in simulated external memory.
///
/// Every element access goes through the machine's LRU block cache, so
/// sequential scans cost `⌈n·w/B⌉` I/Os, random probes cost up to one I/O per
/// element, and data that fits in the cache is free to re-access — exactly
/// the cost model the paper's analyses use.
///
/// The array owns one disk *segment*; dropping the `ExtVec` frees the segment
/// (the model's disk is unbounded, but the simulator tracks live and peak
/// disk usage so the paper's `O(E)` space claims can be validated).
pub struct ExtVec<T: Record> {
    machine: Machine,
    segment: u32,
    len: usize,
    freed: bool,
    _marker: PhantomData<T>,
}

impl<T: Record> ExtVec<T> {
    /// Creates an empty array on `machine`'s disk.
    pub fn new(machine: &Machine) -> Self {
        Self {
            machine: machine.clone(),
            segment: machine.new_segment(),
            len: 0,
            freed: false,
            _marker: PhantomData,
        }
    }

    /// Creates an array holding the elements of `items`, writing them out
    /// sequentially (and therefore charging `⌈|items|·w/B⌉` write-side I/Os
    /// as the blocks are eventually evicted or flushed).
    pub fn from_slice(machine: &Machine, items: &[T]) -> Self {
        let mut v = Self::new(machine);
        for it in items {
            v.push(*it);
        }
        v
    }

    /// The machine this array lives on.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the array is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of disk words occupied.
    pub fn words(&self) -> usize {
        self.len * T::WORDS
    }

    /// Appends an element.
    ///
    /// # Panics
    ///
    /// Panics on permanent storage faults (retry exhaustion, disk-full);
    /// see [`ExtVec::try_push`] for the fallible variant.
    #[track_caller]
    pub fn push(&mut self, value: T) {
        let mut buf = [0u64; 4];
        debug_assert!(T::WORDS <= buf.len());
        value.encode(&mut buf[..T::WORDS]);
        let base = self.len * T::WORDS;
        for (k, w) in buf[..T::WORDS].iter().enumerate() {
            self.machine.write_word(self.segment, base + k, *w);
        }
        self.len += 1;
    }

    /// Fallible variant of [`ExtVec::push`]: permanent storage faults
    /// (torn-write retry exhaustion, [`StorageError::NoSpace`]) surface as
    /// errors instead of panics. On error the element is not appended (a
    /// partially torn append is truncated away).
    pub fn try_push(&mut self, value: T) -> Result<(), StorageError> {
        let mut buf = [0u64; 4];
        debug_assert!(T::WORDS <= buf.len());
        value.encode(&mut buf[..T::WORDS]);
        let base = self.len * T::WORDS;
        for (k, w) in buf[..T::WORDS].iter().enumerate() {
            if let Err(e) = self.machine.try_write_word(self.segment, base + k, *w) {
                // Roll back any words of the torn element already written.
                self.machine.truncate_segment(self.segment, base);
                return Err(e);
            }
        }
        self.len += 1;
        Ok(())
    }

    /// Reads the element at `idx`.
    ///
    /// # Panics
    ///
    /// Panics at the caller's location if `idx >= len()`, naming the method,
    /// the index and the length; also panics on permanent storage faults
    /// (see [`ExtVec::try_get`]).
    #[track_caller]
    pub fn get(&self, idx: usize) -> T {
        assert!(
            idx < self.len,
            "ExtVec::get: index {idx} out of bounds (len {})",
            self.len
        );
        let mut buf = [0u64; 4];
        let base = idx * T::WORDS;
        for (k, slot) in buf[..T::WORDS].iter_mut().enumerate() {
            *slot = self.machine.read_word(self.segment, base + k);
        }
        T::decode(&buf[..T::WORDS])
    }

    /// Fallible variant of [`ExtVec::get`]: permanent storage faults (read
    /// retry exhaustion) surface as errors instead of panics. Bounds
    /// violations still panic — they are caller bugs, not storage faults.
    #[track_caller]
    pub fn try_get(&self, idx: usize) -> Result<T, StorageError> {
        assert!(
            idx < self.len,
            "ExtVec::try_get: index {idx} out of bounds (len {})",
            self.len
        );
        let mut buf = [0u64; 4];
        let base = idx * T::WORDS;
        for (k, slot) in buf[..T::WORDS].iter_mut().enumerate() {
            *slot = self.machine.try_read_word(self.segment, base + k)?;
        }
        Ok(T::decode(&buf[..T::WORDS]))
    }

    /// Overwrites the element at `idx`.
    ///
    /// # Panics
    ///
    /// Panics at the caller's location if `idx >= len()`, naming the method,
    /// the index and the length; also panics on permanent storage faults
    /// (see [`ExtVec::try_set`]).
    #[track_caller]
    pub fn set(&mut self, idx: usize, value: T) {
        assert!(
            idx < self.len,
            "ExtVec::set: index {idx} out of bounds (len {})",
            self.len
        );
        let mut buf = [0u64; 4];
        value.encode(&mut buf[..T::WORDS]);
        let base = idx * T::WORDS;
        for (k, w) in buf[..T::WORDS].iter().enumerate() {
            self.machine.write_word(self.segment, base + k, *w);
        }
    }

    /// Fallible variant of [`ExtVec::set`]: permanent storage faults surface
    /// as errors instead of panics. Bounds violations still panic.
    #[track_caller]
    pub fn try_set(&mut self, idx: usize, value: T) -> Result<(), StorageError> {
        assert!(
            idx < self.len,
            "ExtVec::try_set: index {idx} out of bounds (len {})",
            self.len
        );
        let mut buf = [0u64; 4];
        value.encode(&mut buf[..T::WORDS]);
        let base = idx * T::WORDS;
        for (k, w) in buf[..T::WORDS].iter().enumerate() {
            self.machine.try_write_word(self.segment, base + k, *w)?;
        }
        Ok(())
    }

    /// Swaps the elements at `i` and `j` (a convenience for in-place
    /// partitioning steps).
    pub fn swap(&mut self, i: usize, j: usize) {
        if i == j {
            return;
        }
        let a = self.get(i);
        let b = self.get(j);
        self.set(i, b);
        self.set(j, a);
    }

    /// Shortens the array to `new_len` elements (no-op if already shorter).
    pub fn truncate(&mut self, new_len: usize) {
        if new_len < self.len {
            self.machine
                .truncate_segment(self.segment, new_len * T::WORDS);
            self.len = new_len;
        }
    }

    /// Removes all elements.
    pub fn clear(&mut self) {
        self.truncate(0);
    }

    /// A sequential reader over the whole array.
    pub fn iter(&self) -> ScanReader<'_, T> {
        self.range(0, self.len)
    }

    /// A sequential reader over elements `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics at the caller's location if `start > end` or `end > len()`,
    /// naming the method, the requested range and the length.
    #[track_caller]
    pub fn range(&self, start: usize, end: usize) -> ScanReader<'_, T> {
        assert!(
            start <= end && end <= self.len,
            "ExtVec::range: invalid range {start}..{end} (len {})",
            self.len
        );
        ScanReader {
            vec: self,
            pos: start,
            end,
        }
    }

    /// Materialises elements `[start, end)` into an in-core `Vec`, charging
    /// the read I/Os. The caller is responsible for registering the returned
    /// buffer with the machine's [`crate::MemGauge`] if it is kept around.
    ///
    /// # Panics
    ///
    /// Panics at the caller's location if `start > end` or `end > len()`,
    /// naming the method, the requested range and the length.
    #[track_caller]
    pub fn load_range(&self, start: usize, end: usize) -> Vec<T> {
        assert!(
            start <= end && end <= self.len,
            "ExtVec::load_range: invalid range {start}..{end} (len {})",
            self.len
        );
        self.range(start, end).collect()
    }

    /// Fallible variant of [`ExtVec::load_range`]: permanent storage faults
    /// surface as errors instead of panics (the partially materialised
    /// buffer is dropped). Bounds violations still panic.
    #[track_caller]
    pub fn try_load_range(&self, start: usize, end: usize) -> Result<Vec<T>, StorageError> {
        assert!(
            start <= end && end <= self.len,
            "ExtVec::try_load_range: invalid range {start}..{end} (len {})",
            self.len
        );
        let mut reader = self.range(start, end);
        // emlint: allow(unleased, reason = "mirrors load_range: the caller owns the gauge obligation for kept buffers")
        let mut out = Vec::with_capacity(end - start);
        while let Some(v) = reader.try_next()? {
            out.push(v);
        }
        Ok(out)
    }

    /// Materialises the entire array into an in-core `Vec` (see
    /// [`ExtVec::load_range`]).
    pub fn load_all(&self) -> Vec<T> {
        self.load_range(0, self.len)
    }

    /// Appends every element produced by `iter`.
    pub fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        for v in iter {
            self.push(v);
        }
    }

    /// Appends every element of `other` (scanning it).
    pub fn extend_from(&mut self, other: &ExtVec<T>) {
        for v in other.iter() {
            self.push(v);
        }
    }

    /// A zero-copy view of elements `[start, end)` — no blocks are touched
    /// until the view is read.
    ///
    /// # Panics
    ///
    /// Panics at the caller's location if `start > end` or `end > len()`,
    /// naming the method, the requested range and the length.
    #[track_caller]
    pub fn slice(&self, start: usize, end: usize) -> ExtSlice<'_, T> {
        assert!(
            start <= end && end <= self.len,
            "ExtVec::slice: invalid slice {start}..{end} (len {})",
            self.len
        );
        ExtSlice {
            vec: self,
            start,
            end,
        }
    }

    /// The whole array as a zero-copy view.
    pub fn as_slice(&self) -> ExtSlice<'_, T> {
        self.slice(0, self.len)
    }
}

/// A borrowed, zero-copy range view over an [`ExtVec`].
///
/// Creating a view costs nothing — no copy, no I/O, no gauge footprint; it is
/// just `(array, start, end)`. Reading through [`ExtSlice::iter`] charges the
/// usual sequential-scan I/Os, and [`ExtSlice::get`] the usual random-probe
/// cost. Views are how algorithms hand around already-sorted runs (e.g. the
/// colour classes of a partition) without re-materialising them.
#[derive(Clone, Copy)]
pub struct ExtSlice<'a, T: Record> {
    vec: &'a ExtVec<T>,
    start: usize,
    end: usize,
}

impl<'a, T: Record> ExtSlice<'a, T> {
    /// Number of elements in the view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Number of disk words covered by the view.
    pub fn words(&self) -> usize {
        self.len() * T::WORDS
    }

    /// The machine the underlying array lives on.
    pub fn machine(&self) -> &'a Machine {
        self.vec.machine()
    }

    /// Reads the element at `idx` (relative to the view's start).
    ///
    /// # Panics
    ///
    /// Panics at the caller's location if `idx >= len()`, naming the method,
    /// the index and the view length.
    #[track_caller]
    pub fn get(&self, idx: usize) -> T {
        assert!(
            idx < self.len(),
            "ExtSlice::get: index {idx} out of bounds (len {})",
            self.len()
        );
        self.vec.get(self.start + idx)
    }

    /// Fallible variant of [`ExtSlice::get`]: permanent storage faults
    /// surface as errors instead of panics. Bounds violations still panic.
    #[track_caller]
    pub fn try_get(&self, idx: usize) -> Result<T, StorageError> {
        assert!(
            idx < self.len(),
            "ExtSlice::try_get: index {idx} out of bounds (len {})",
            self.len()
        );
        self.vec.try_get(self.start + idx)
    }

    /// A sequential reader over the whole view.
    pub fn iter(&self) -> ScanReader<'a, T> {
        self.vec.range(self.start, self.end)
    }

    /// A sub-view of elements `[from, to)` relative to the view's start.
    ///
    /// # Panics
    ///
    /// Panics at the caller's location if `from > to` or `to > len()`,
    /// naming the method, the requested range and the view length.
    #[track_caller]
    pub fn slice(&self, from: usize, to: usize) -> ExtSlice<'a, T> {
        assert!(
            from <= to && to <= self.len(),
            "ExtSlice::slice: invalid sub-slice {from}..{to} (len {})",
            self.len()
        );
        ExtSlice {
            vec: self.vec,
            start: self.start + from,
            end: self.start + to,
        }
    }

    /// Materialises the view into an in-core `Vec`, charging the read I/Os
    /// (see [`ExtVec::load_range`] for the gauge obligation).
    pub fn load(&self) -> Vec<T> {
        self.vec.load_range(self.start, self.end)
    }

    /// Fallible variant of [`ExtSlice::load`]: permanent storage faults
    /// surface as errors instead of panics.
    pub fn try_load(&self) -> Result<Vec<T>, StorageError> {
        self.vec.try_load_range(self.start, self.end)
    }

    /// The index of the partition point of `pred` (the first element for
    /// which `pred` is false), assuming the view is partitioned — i.e. every
    /// element satisfying `pred` precedes every element that does not.
    ///
    /// Binary search: `O(log n)` random probes through the block cache (each
    /// probe charges one unit of work and at most one read I/O), against the
    /// `O(n/B)` cost of locating the boundary by a scan. This is how callers
    /// narrow an already-sorted view to the sub-range that can participate in
    /// a computation — e.g. Lemma 2's endpoint-range pruning of cone-class
    /// views — without streaming the part that cannot.
    pub fn partition_point(&self, mut pred: impl FnMut(&T) -> bool) -> usize {
        let (mut lo, mut hi) = (0usize, self.len());
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            self.machine().work(1);
            if pred(&self.get(mid)) {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }
}

impl<T: Record + std::fmt::Debug> std::fmt::Debug for ExtSlice<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ExtSlice({}..{} of {:?})",
            self.start, self.end, self.vec
        )
    }
}

impl<T: Record> Drop for ExtVec<T> {
    fn drop(&mut self) {
        if !self.freed {
            self.machine.free_segment(self.segment);
            self.freed = true;
        }
    }
}

impl<T: Record + std::fmt::Debug> std::fmt::Debug for ExtVec<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ExtVec(len={}, segment={})", self.len, self.segment)
    }
}

/// A sequential, buffer-free reader over an [`ExtVec`] range.
///
/// Because consecutive elements share blocks, iterating costs `⌈n·w/B⌉` read
/// I/Os on a cold cache and nothing on a warm one.
pub struct ScanReader<'a, T: Record> {
    vec: &'a ExtVec<T>,
    pos: usize,
    end: usize,
}

impl<T: Record> ScanReader<'_, T> {
    /// Fallible variant of [`Iterator::next`]: permanent storage faults
    /// surface as errors instead of panics, and the reader does not advance
    /// past the failing element.
    pub fn try_next(&mut self) -> Result<Option<T>, StorageError> {
        if self.pos >= self.end {
            return Ok(None);
        }
        let v = self.vec.try_get(self.pos)?;
        self.pos += 1;
        Ok(Some(v))
    }
}

impl<T: Record> Iterator for ScanReader<'_, T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        if self.pos >= self.end {
            return None;
        }
        let v = self.vec.get(self.pos);
        self.pos += 1;
        Some(v)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.end - self.pos;
        (rem, Some(rem))
    }
}

impl<T: Record> ExactSizeIterator for ScanReader<'_, T> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EmConfig;

    fn machine() -> Machine {
        Machine::new(EmConfig::new(512, 64))
    }

    #[test]
    fn push_get_set_roundtrip() {
        let m = machine();
        let mut v: ExtVec<(u32, u32)> = ExtVec::new(&m);
        for i in 0..100u32 {
            v.push((i, i * 2));
        }
        assert_eq!(v.len(), 100);
        assert_eq!(v.get(7), (7, 14));
        v.set(7, (99, 1));
        assert_eq!(v.get(7), (99, 1));
        assert_eq!(v.iter().count(), 100);
    }

    #[test]
    fn from_slice_and_load_all() {
        let m = machine();
        let data: Vec<u64> = (0..300).collect();
        let v = ExtVec::from_slice(&m, &data);
        assert_eq!(v.load_all(), data);
        assert_eq!(v.load_range(10, 20), (10u64..20).collect::<Vec<_>>());
    }

    #[test]
    fn two_word_records_cost_two_words_each() {
        let m = machine();
        let mut v: ExtVec<(u32, u32, u32)> = ExtVec::new(&m);
        for i in 0..32u32 {
            v.push((i, i, i));
        }
        assert_eq!(v.words(), 64);
        assert_eq!(m.stats().disk_words, 64);
        assert_eq!(v.get(31), (31, 31, 31));
    }

    #[test]
    fn truncate_and_clear_release_disk_words() {
        let m = machine();
        let mut v = ExtVec::from_slice(&m, &(0..128u64).collect::<Vec<_>>());
        v.truncate(64);
        assert_eq!(v.len(), 64);
        assert_eq!(m.stats().disk_words, 64);
        v.clear();
        assert!(v.is_empty());
        assert_eq!(m.stats().disk_words, 0);
        assert_eq!(m.stats().peak_disk_words, 128);
    }

    #[test]
    fn drop_frees_segment() {
        let m = machine();
        {
            let _v = ExtVec::from_slice(&m, &(0..1000u64).collect::<Vec<_>>());
            assert_eq!(m.stats().disk_words, 1000);
        }
        assert_eq!(m.stats().disk_words, 0);
    }

    #[test]
    fn swap_exchanges_elements() {
        let m = machine();
        let mut v = ExtVec::from_slice(&m, &[1u64, 2, 3]);
        v.swap(0, 2);
        assert_eq!(v.load_all(), vec![3, 2, 1]);
    }

    #[test]
    fn scan_reader_is_exact_size() {
        let m = machine();
        let v = ExtVec::from_slice(&m, &(0..10u64).collect::<Vec<_>>());
        let it = v.range(2, 9);
        assert_eq!(it.len(), 7);
    }

    #[test]
    fn sequential_scan_io_close_to_n_over_b() {
        let m = Machine::new(EmConfig::new(256, 64)); // 4 frames
        let n = 64 * 100usize;
        let v = ExtVec::from_slice(&m, &(0..n as u64).collect::<Vec<_>>());
        m.cold_cache();
        let before = m.io();
        let sum: u64 = v.iter().sum();
        assert_eq!(sum, (n as u64 - 1) * n as u64 / 2);
        let reads = m.io().reads - before.reads;
        assert_eq!(
            reads, 100,
            "scan of 100 blocks must read exactly 100 blocks"
        );
    }

    #[test]
    fn random_access_thrashes_small_cache() {
        let m = Machine::new(EmConfig::new(128, 64)); // 2 frames
        let n = 64 * 32usize;
        let v = ExtVec::from_slice(&m, &(0..n as u64).collect::<Vec<_>>());
        m.cold_cache();
        let before = m.io();
        // Strided access touching a different block every time.
        let mut acc = 0u64;
        for i in 0..32 {
            acc += v.get(i * 64);
        }
        assert!(acc > 0);
        assert_eq!(m.io().reads - before.reads, 32);
    }

    #[test]
    fn interleaved_appends_to_many_segments_stay_write_only() {
        // The access pattern of a k-way distribution scan: one input stream
        // read sequentially while k output arrays grow in round-robin. As
        // long as every open segment keeps its tail block cached (frames >
        // k + 1), the appends must never trigger read-modify-write I/Os.
        let m = Machine::new(EmConfig::new(64 * 12, 64)); // 12 frames
        let input = ExtVec::from_slice(&m, &(0..64u64 * 20).collect::<Vec<_>>());
        m.cold_cache();
        let before = m.io();
        let mut outs: Vec<ExtVec<u64>> = (0..8).map(|_| ExtVec::new(&m)).collect();
        for x in input.iter() {
            outs[(x % 8) as usize].push(x);
        }
        let reads = m.io().reads - before.reads;
        assert_eq!(reads, 20, "only the input scan may read blocks");
        for (i, o) in outs.iter().enumerate() {
            assert_eq!(o.len(), 160, "bucket {i}");
        }
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_get_panics() {
        let m = machine();
        let v = ExtVec::from_slice(&m, &[1u64]);
        let _ = v.get(1);
    }

    #[test]
    fn slices_are_zero_copy_views() {
        let m = machine();
        let v = ExtVec::from_slice(&m, &(0..100u64).collect::<Vec<_>>());
        m.cold_cache();
        let before = m.io();
        let s = v.slice(10, 60);
        assert_eq!(s.len(), 50);
        assert!(!s.is_empty());
        assert_eq!(s.words(), 50);
        // Creating a view moves no blocks.
        assert_eq!(m.io().total(), before.total());
        assert_eq!(s.get(0), 10);
        assert_eq!(s.iter().last(), Some(59));
        assert_eq!(s.load(), (10u64..60).collect::<Vec<_>>());
        // Sub-slicing is relative to the view.
        let sub = s.slice(5, 8);
        assert_eq!(sub.load(), vec![15, 16, 17]);
        let whole = v.as_slice();
        assert_eq!(whole.len(), v.len());
        let empty = v.slice(7, 7);
        assert!(empty.is_empty());
        assert_eq!(empty.iter().next(), None);
    }

    #[test]
    fn partition_point_locates_boundaries_with_log_probes() {
        let m = Machine::new(EmConfig::new(256, 64));
        let v = ExtVec::from_slice(&m, &(0..640u64).collect::<Vec<_>>());
        let s = v.as_slice();
        assert_eq!(s.partition_point(|_| false), 0);
        assert_eq!(s.partition_point(|&x| x < 123), 123);
        assert_eq!(s.partition_point(|_| true), 640);
        // Sub-views search relative to their own start.
        let sub = v.slice(100, 200);
        assert_eq!(sub.partition_point(|&x| x < 150), 50);
        let empty = v.slice(7, 7);
        assert_eq!(empty.partition_point(|&x| x < 3), 0);
        // The probe count is logarithmic, not linear: searching 640 elements
        // (10 blocks) must touch at most ⌈log2 640⌉ = 10 blocks, far fewer on
        // a warm cache — never a full scan.
        m.cold_cache();
        let before = m.io();
        let _ = s.partition_point(|&x| x < 321);
        assert!(
            m.io().reads - before.reads <= 10,
            "binary search must not degenerate into a scan"
        );
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_slice_panics() {
        let m = machine();
        let v = ExtVec::from_slice(&m, &[1u64, 2]);
        let _ = v.slice(1, 3);
    }

    #[test]
    #[should_panic(expected = "ExtVec::get: index 1 out of bounds (len 1)")]
    fn bounds_panics_name_method_index_and_len() {
        let m = machine();
        let v = ExtVec::from_slice(&m, &[1u64]);
        let _ = v.get(1);
    }

    #[test]
    #[should_panic(expected = "ExtVec::load_range: invalid range 3..9 (len 4)")]
    fn load_range_panics_name_the_requested_range() {
        let m = machine();
        let v = ExtVec::from_slice(&m, &[1u64, 2, 3, 4]);
        let _ = v.load_range(3, 9);
    }

    #[test]
    fn try_push_surfaces_no_space_and_rolls_back() {
        let m = Machine::new(EmConfig::new(512, 64).with_disk_capacity(10));
        let mut v: ExtVec<u64> = ExtVec::new(&m);
        for i in 0..10u64 {
            assert_eq!(v.try_push(i), Ok(()));
        }
        let err = v.try_push(10).unwrap_err();
        assert_eq!(
            err,
            crate::StorageError::NoSpace {
                capacity_words: 10,
                requested_words: 11
            }
        );
        assert_eq!(v.len(), 10, "the failed append must not grow the array");
        assert_eq!(m.stats().disk_words, 10);
        // Overwrites of existing words still work at capacity.
        assert_eq!(v.try_set(0, 99), Ok(()));
        assert_eq!(v.get(0), 99);
    }

    #[test]
    fn try_push_rolls_back_partially_torn_multiword_records() {
        // Capacity 5 words, 2-word records: the third push tears after its
        // first word and must be truncated away entirely.
        let m = Machine::new(EmConfig::new(512, 64).with_disk_capacity(5));
        let mut v: ExtVec<(u32, u32, u32)> = ExtVec::new(&m);
        assert!(v.try_push((1, 1, 1)).is_ok());
        assert!(v.try_push((2, 2, 2)).is_ok());
        assert!(v.try_push((3, 3, 3)).is_err());
        assert_eq!(v.len(), 2);
        assert_eq!(m.stats().disk_words, 4, "the torn word was rolled back");
        assert_eq!(v.load_all(), vec![(1, 1, 1), (2, 2, 2)]);
    }

    #[test]
    fn try_get_propagates_permanent_read_faults_without_panicking() {
        // A 100% read-fault schedule exhausts every retry on the first
        // uncached read.
        let plan = crate::FaultPlan::new(4).with_read_faults(1000);
        let m = Machine::with_faults(EmConfig::new(128, 64), plan);
        let mut v: ExtVec<u64> = ExtVec::new(&m);
        for i in 0..64 * 4u64 {
            v.push(i);
        }
        m.cold_cache();
        let err = v.try_get(0).unwrap_err();
        assert!(matches!(err, crate::StorageError::ReadFailed { .. }));
        // The infallible reader and scan reader agree via try_next.
        let mut r = v.iter();
        assert!(r.try_next().is_err());
    }

    #[test]
    fn try_load_matches_load_on_healthy_storage() {
        let m = machine();
        let v = ExtVec::from_slice(&m, &(0..50u64).collect::<Vec<_>>());
        assert_eq!(v.try_load_range(5, 15).unwrap(), v.load_range(5, 15));
        let s = v.slice(10, 20);
        assert_eq!(s.try_load().unwrap(), s.load());
        assert_eq!(s.try_get(3), Ok(13));
        let mut r = v.range(0, 3);
        assert_eq!(r.try_next(), Ok(Some(0)));
        assert_eq!(r.try_next(), Ok(Some(1)));
        assert_eq!(r.try_next(), Ok(Some(2)));
        assert_eq!(r.try_next(), Ok(None));
    }
}
