//! Storage backends beneath the simulated disk: the error taxonomy, the
//! retry policy, the infallible in-memory default, and the real file-backed
//! block device.
//!
//! The storage layer has two orthogonal seams:
//!
//! 1. **The charge gate** ([`Storage`]). Every *charged* block transfer of
//!    the [`crate::Machine`] — a cache-miss read, a read-modify-write fill,
//!    a dirty eviction, a flush — is routed through a [`Storage`] backend
//!    before the I/O counters are bumped. The backend decides whether the
//!    transfer succeeds, and at what retry cost:
//!
//!    * [`MemStorage`] (the default) always succeeds at zero cost, so the
//!      accounting of fault-free runs is byte-identical to a machine without
//!      a storage layer at all — the fault machinery is pay-for-what-you-use.
//!    * [`crate::FaultyStorage`] injects deterministic, seeded faults:
//!      transient read errors and torn writes (absorbed by a bounded
//!      [`RetryPolicy`] and charged to the `retry_io` / `retry_work`
//!      counters of [`crate::RunStats`]), plus a `CrashAt` kill switch that
//!      aborts the run mid-transfer. Its fault schedule wraps an arbitrary
//!      inner [`Storage`] ([`crate::FaultyStorage::wrapping`]), so faults
//!      compose with any charge gate underneath.
//!
//! 2. **The data plane** ([`BlockDevice`]). The charge gate carries no
//!    payload; block *data* lives either in host RAM (the pure simulator) or
//!    on a real [`DiskStorage`] file fronted by a [`crate::BufferPool`]
//!    (machines built with [`crate::BackendKind::Disk`]). The two seams are
//!    independent: faults wrap either backend, and the disk backend executes
//!    one real block read/write at exactly the points the simulator charges
//!    one — which is what the E11 parity experiment verifies.
//!
//! Permanent failures — retry exhaustion and disk-full — surface as typed
//! [`StorageError`]s through the `try_*` accessors of [`crate::ExtVec`];
//! the infallible accessors panic with the error's message.

use std::collections::HashMap;
use std::fmt;
use std::fs::File;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Direction of a block transfer, as seen by a [`Storage`] backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransferDir {
    /// Disk-to-memory: a cache miss or a read-modify-write fill.
    Read,
    /// Memory-to-disk: a dirty eviction or an explicit flush.
    Write,
}

/// Typed errors the storage layer can surface.
///
/// `Crashed` never reaches callers as a value: the machine converts it into
/// a panic carrying a [`crate::CrashPoint`] payload, because a crash is by
/// definition not handleable by the running algorithm — only by a harness
/// that catches the unwind and resumes from a checkpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorageError {
    /// A read kept failing after every allowed attempt.
    ReadFailed {
        /// Ordinal of the failing transfer (0-based count of charged transfers).
        io: u64,
        /// Number of attempts made, i.e. the policy's `max_attempts`.
        attempts: u32,
    },
    /// A write kept tearing mid-block after every allowed attempt.
    TornWrite {
        /// Ordinal of the failing transfer.
        io: u64,
        /// Number of attempts made.
        attempts: u32,
    },
    /// The disk is full: an append would exceed the configured capacity.
    NoSpace {
        /// The configured capacity, in words.
        capacity_words: u64,
        /// The disk usage the append would have required, in words.
        requested_words: u64,
    },
    /// The `CrashAt` kill switch fired at this transfer ordinal.
    Crashed {
        /// Ordinal of the transfer at which the crash fired.
        io: u64,
    },
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::ReadFailed { io, attempts } => {
                write!(
                    f,
                    "read failed permanently at I/O #{io} after {attempts} attempts"
                )
            }
            StorageError::TornWrite { io, attempts } => {
                write!(
                    f,
                    "write torn permanently at I/O #{io} after {attempts} attempts"
                )
            }
            StorageError::NoSpace {
                capacity_words,
                requested_words,
            } => write!(
                f,
                "disk full: append needs {requested_words} words, capacity is {capacity_words}"
            ),
            StorageError::Crashed { io } => write!(f, "storage crashed at I/O #{io}"),
        }
    }
}

impl std::error::Error for StorageError {}

/// Bounded-retry policy with simulated exponential backoff.
///
/// A transfer is attempted up to `max_attempts` times; each failed attempt
/// charges one extra I/O in the transfer's direction (accounted under
/// `retry_io`) and an exponentially growing backoff of
/// `backoff_work << k` work units for the `k`-th failure (accounted under
/// `retry_work`). If all attempts fail the fault is permanent and surfaces
/// as a [`StorageError`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum number of attempts per transfer (at least 1).
    pub max_attempts: u32,
    /// Work units charged for the first backoff; doubles per further failure.
    pub backoff_work: u64,
}

impl RetryPolicy {
    /// Creates a policy.
    ///
    /// # Panics
    ///
    /// Panics if `max_attempts` is zero.
    pub fn new(max_attempts: u32, backoff_work: u64) -> Self {
        assert!(max_attempts >= 1, "a transfer needs at least one attempt");
        Self {
            max_attempts,
            backoff_work,
        }
    }

    /// Total simulated backoff work for `failures` consecutive failed
    /// attempts: `Σ_{k<failures} backoff_work · 2^k`.
    pub fn backoff_cost(&self, failures: u32) -> u64 {
        let mut total = 0u64;
        for k in 0..failures {
            total = total.saturating_add(self.backoff_work.saturating_mul(1u64 << k.min(62)));
        }
        total
    }
}

impl Default for RetryPolicy {
    /// Four attempts, first backoff 8 work units.
    fn default() -> Self {
        Self::new(4, 8)
    }
}

/// Retry cost absorbed by one ultimately-successful transfer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetryCost {
    /// Failed attempts before the transfer succeeded.
    pub failed_attempts: u32,
    /// Simulated backoff work charged for those failures.
    pub backoff_work: u64,
}

/// A storage backend: decides, per charged block transfer, whether the
/// transfer succeeds and at what retry cost.
///
/// The machine calls [`Storage::transfer`] exactly once per *logical*
/// transfer, with a running 0-based ordinal; the backend's decision must be
/// a pure function of `(its own seed, ordinal, direction)` so that fault
/// schedules are reproducible run over run.
pub trait Storage {
    /// Attempts the transfer with ordinal `io` in direction `dir`.
    ///
    /// `Ok` carries the retry cost absorbed (zero for a clean transfer);
    /// `Err` is a permanent fault the caller must surface or convert into a
    /// crash.
    fn transfer(&mut self, dir: TransferDir, io: u64) -> Result<RetryCost, StorageError>;

    /// The fault events recorded so far (empty for infallible backends).
    fn trace(&self) -> &[crate::FaultEvent] {
        &[]
    }
}

/// The default infallible in-memory backend: every transfer succeeds at zero
/// retry cost, so fault-free machines account identically to the pre-fault
/// simulator.
#[derive(Debug, Default, Clone, Copy)]
pub struct MemStorage;

impl Storage for MemStorage {
    fn transfer(&mut self, _dir: TransferDir, _io: u64) -> Result<RetryCost, StorageError> {
        Ok(RetryCost::default())
    }
}

/// Real-I/O counters of a [`BlockDevice`]: the *measured* side of the E11
/// sim-vs-disk correlation experiment, kept apart from the simulated
/// [`crate::IoStats`] so the spec (charged transfers) and the witness
/// (executed transfers) can be compared.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct DiskCounters {
    /// Blocks actually read from the device.
    pub block_reads: u64,
    /// Blocks actually written to the device.
    pub block_writes: u64,
    /// `sync` (fsync) barriers issued.
    pub syncs: u64,
}

impl DiskCounters {
    /// Total executed block transfers (reads + writes, syncs excluded).
    pub fn total(&self) -> u64 {
        self.block_reads + self.block_writes
    }
}

/// A data-carrying block store: the device a [`crate::BufferPool`] fills
/// missed frames from and writes evicted dirty frames to.
///
/// Keys are the machine's opaque `(segment, block)` block keys; a block is
/// always transferred whole (`block_words` words). Implementations panic on
/// unrecoverable real I/O errors — a failing *simulated* transfer is the
/// [`Storage`] gate's job, a failing host filesystem is not recoverable by
/// the algorithm under test.
pub trait BlockDevice {
    /// Words per block (every `read_block`/`write_block` buffer is this long).
    fn block_words(&self) -> usize;
    /// Whether `key` has ever been written to the device (and not freed).
    fn contains(&self, key: u64) -> bool;
    /// Reads block `key` into `buf`. Panics if the block is absent.
    fn read_block(&mut self, key: u64, buf: &mut [u64]);
    /// Writes block `key` from `data`, allocating a slot on first write.
    fn write_block(&mut self, key: u64, data: &[u64]);
    /// Releases the slot of `key` (freeing a dead segment's blocks).
    fn free_block(&mut self, key: u64);
    /// Durability barrier (`fsync` on a real device).
    fn sync(&mut self);
    /// The real-I/O counters so far.
    fn counters(&self) -> DiskCounters;
}

/// Process-unique suffix for backing-file names: several machines (one per
/// PEM worker) create their files in the same temp directory concurrently.
static DISK_FILE_SEQ: AtomicU64 = AtomicU64::new(0);

#[cfg(unix)]
fn read_block_at(file: &File, buf: &mut [u8], offset: u64) -> io::Result<()> {
    use std::os::unix::fs::FileExt;
    file.read_exact_at(buf, offset)
}

#[cfg(unix)]
fn write_block_at(file: &File, buf: &[u8], offset: u64) -> io::Result<()> {
    use std::os::unix::fs::FileExt;
    file.write_all_at(buf, offset)
}

#[cfg(not(unix))]
fn read_block_at(mut file: &File, buf: &mut [u8], offset: u64) -> io::Result<()> {
    use std::io::{Read, Seek, SeekFrom};
    file.seek(SeekFrom::Start(offset))?;
    file.read_exact(buf)
}

#[cfg(not(unix))]
fn write_block_at(mut file: &File, buf: &[u8], offset: u64) -> io::Result<()> {
    use std::io::{Seek, SeekFrom, Write};
    file.seek(SeekFrom::Start(offset))?;
    file.write_all(buf)
}

/// The file-backed block device: blocks live in one real `std::fs::File` at
/// block-aligned offsets (pread/pwrite-style positional I/O — no append
/// cursor), `sync` is `fsync`, and the file is unlinked on drop.
///
/// The layout is a slot table: the first write of a block key claims the
/// lowest free `block_words · 8`-byte slot (slots of freed blocks are
/// recycled), so the file never grows past the peak live block count. Words
/// are stored little-endian, independent of the host.
///
/// `DiskStorage` holds no cache of its own — residency and eviction policy
/// belong to the [`crate::BufferPool`] in front of it — and it counts every
/// executed transfer in [`DiskCounters`], the measured side of E11.
pub struct DiskStorage {
    file: File,
    path: PathBuf,
    block_words: usize,
    /// block key → slot index in the file.
    // emlint: allow(uncharged-std, reason = "host-side slot table of the real device, below the charge boundary; one entry per live block, not algorithm memory")
    slots: HashMap<u64, u64>,
    free_slots: Vec<u64>,
    next_slot: u64,
    /// Reused little-endian staging buffer (one block of bytes).
    byte_buf: Vec<u8>,
    counters: DiskCounters,
}

impl DiskStorage {
    /// Creates a backing file in the system temp directory. The file name is
    /// process- and instance-unique, so per-worker machines never collide.
    pub fn create(block_words: usize) -> io::Result<Self> {
        Self::create_in(&std::env::temp_dir(), block_words)
    }

    /// Creates a backing file inside `dir` (which must exist).
    pub fn create_in(dir: &Path, block_words: usize) -> io::Result<Self> {
        assert!(block_words > 0, "a block holds at least one word");
        let seq = DISK_FILE_SEQ.fetch_add(1, Ordering::Relaxed);
        let path = dir.join(format!("emsim-disk-{}-{seq}.blocks", std::process::id()));
        let file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create_new(true)
            .open(&path)?;
        Ok(Self {
            file,
            path,
            block_words,
            // emlint: allow(uncharged-std, reason = "slot table of the real device, grown one entry per live block, below the charge boundary")
            slots: HashMap::new(),
            // emlint: allow(unleased, reason = "device bookkeeping (free-slot list) plus one reused B-word staging buffer, below the charge boundary")
            free_slots: Vec::new(),
            next_slot: 0,
            byte_buf: vec![0u8; block_words * 8],
            counters: DiskCounters::default(),
        })
    }

    /// The backing file's path (until drop unlinks it).
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn slot_offset(&self, slot: u64) -> u64 {
        slot * (self.block_words as u64) * 8
    }
}

impl BlockDevice for DiskStorage {
    fn block_words(&self) -> usize {
        self.block_words
    }

    fn contains(&self, key: u64) -> bool {
        self.slots.contains_key(&key)
    }

    fn read_block(&mut self, key: u64, buf: &mut [u64]) {
        assert_eq!(buf.len(), self.block_words, "whole-block transfers only");
        let slot = *self
            .slots
            .get(&key)
            .unwrap_or_else(|| panic!("block {key:#x} was never written to the disk backend"));
        let offset = self.slot_offset(slot);
        read_block_at(&self.file, &mut self.byte_buf, offset).unwrap_or_else(|e| {
            panic!(
                "disk backend read failed at {} (block {key:#x}): {e}",
                self.path.display()
            )
        });
        for (i, word) in buf.iter_mut().enumerate() {
            let mut bytes = [0u8; 8];
            bytes.copy_from_slice(&self.byte_buf[i * 8..i * 8 + 8]);
            *word = u64::from_le_bytes(bytes);
        }
        self.counters.block_reads += 1;
    }

    fn write_block(&mut self, key: u64, data: &[u64]) {
        assert_eq!(data.len(), self.block_words, "whole-block transfers only");
        let next = &mut self.next_slot;
        let free = &mut self.free_slots;
        let slot = *self.slots.entry(key).or_insert_with(|| {
            free.pop().unwrap_or_else(|| {
                let s = *next;
                *next += 1;
                s
            })
        });
        for (i, word) in data.iter().enumerate() {
            self.byte_buf[i * 8..i * 8 + 8].copy_from_slice(&word.to_le_bytes());
        }
        let offset = self.slot_offset(slot);
        write_block_at(&self.file, &self.byte_buf, offset).unwrap_or_else(|e| {
            panic!(
                "disk backend write failed at {} (block {key:#x}): {e}",
                self.path.display()
            )
        });
        self.counters.block_writes += 1;
    }

    fn free_block(&mut self, key: u64) {
        if let Some(slot) = self.slots.remove(&key) {
            self.free_slots.push(slot);
        }
    }

    fn sync(&mut self) {
        self.file.sync_all().unwrap_or_else(|e| {
            panic!("disk backend fsync failed at {}: {e}", self.path.display())
        });
        self.counters.syncs += 1;
    }

    fn counters(&self) -> DiskCounters {
        self.counters
    }
}

impl fmt::Debug for DiskStorage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DiskStorage")
            .field("path", &self.path)
            .field("block_words", &self.block_words)
            .field("live_blocks", &self.slots.len())
            .field("counters", &self.counters)
            .finish()
    }
}

impl Drop for DiskStorage {
    fn drop(&mut self) {
        // Best-effort cleanup: the temp file is scoped to this device's
        // lifetime. Ignoring the error is deliberate (the file may already
        // be gone if the temp dir was purged).
        let _ = std::fs::remove_file(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_storage_is_free_and_infallible() {
        let mut s = MemStorage;
        for io in 0..1000 {
            assert_eq!(s.transfer(TransferDir::Read, io), Ok(RetryCost::default()));
            assert_eq!(s.transfer(TransferDir::Write, io), Ok(RetryCost::default()));
        }
        assert!(s.trace().is_empty());
    }

    #[test]
    fn backoff_cost_is_exponential() {
        let p = RetryPolicy::new(5, 8);
        assert_eq!(p.backoff_cost(0), 0);
        assert_eq!(p.backoff_cost(1), 8);
        assert_eq!(p.backoff_cost(2), 8 + 16);
        assert_eq!(p.backoff_cost(3), 8 + 16 + 32);
    }

    #[test]
    #[should_panic]
    fn zero_attempts_rejected() {
        let _ = RetryPolicy::new(0, 1);
    }

    #[test]
    fn errors_display_their_parameters() {
        let e = StorageError::ReadFailed { io: 7, attempts: 4 };
        assert!(format!("{e}").contains("#7"));
        let e = StorageError::NoSpace {
            capacity_words: 100,
            requested_words: 101,
        };
        let s = format!("{e}");
        assert!(s.contains("101") && s.contains("100"));
        let e = StorageError::Crashed { io: 3 };
        assert!(format!("{e}").contains("#3"));
        let e = StorageError::TornWrite { io: 9, attempts: 2 };
        assert!(format!("{e}").contains("torn"));
    }

    #[test]
    fn disk_storage_round_trips_blocks() {
        let mut dev = DiskStorage::create(8).expect("temp file");
        assert!(!dev.contains(3));
        let data: Vec<u64> = (0..8).map(|i| i * 7 + 1).collect();
        dev.write_block(3, &data);
        assert!(dev.contains(3));
        let mut back = vec![0u64; 8];
        dev.read_block(3, &mut back);
        assert_eq!(back, data);
        dev.sync();
        let c = dev.counters();
        assert_eq!((c.block_reads, c.block_writes, c.syncs), (1, 1, 1));
        assert_eq!(c.total(), 2);
    }

    #[test]
    fn disk_storage_recycles_freed_slots() {
        let mut dev = DiskStorage::create(4).expect("temp file");
        dev.write_block(1, &[1; 4]);
        dev.write_block(2, &[2; 4]);
        let len_two = std::fs::metadata(dev.path()).unwrap().len();
        dev.free_block(1);
        assert!(!dev.contains(1));
        // The freed slot is reused: the file does not grow.
        dev.write_block(9, &[9; 4]);
        assert_eq!(std::fs::metadata(dev.path()).unwrap().len(), len_two);
        let mut back = vec![0u64; 4];
        dev.read_block(9, &mut back);
        assert_eq!(back, [9; 4]);
        // Overwrites reuse the existing slot too.
        dev.write_block(2, &[7; 4]);
        assert_eq!(std::fs::metadata(dev.path()).unwrap().len(), len_two);
        dev.read_block(2, &mut back);
        assert_eq!(back, [7; 4]);
    }

    #[test]
    fn disk_storage_unlinks_its_file_on_drop() {
        let dev = DiskStorage::create(4).expect("temp file");
        let path = dev.path().to_path_buf();
        assert!(path.exists());
        drop(dev);
        assert!(!path.exists(), "the backing file is temp-scoped");
    }

    #[test]
    #[should_panic(expected = "never written")]
    fn reading_an_unwritten_block_panics() {
        let mut dev = DiskStorage::create(4).expect("temp file");
        let mut buf = vec![0u64; 4];
        dev.read_block(42, &mut buf);
    }
}
