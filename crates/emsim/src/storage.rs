//! Storage backends beneath the simulated disk: the error taxonomy, the
//! retry policy, and the infallible in-memory default.
//!
//! Every *charged* block transfer of the [`crate::Machine`] — a cache-miss
//! read, a read-modify-write fill, a dirty eviction, a flush — is routed
//! through a [`Storage`] backend before the I/O counters are bumped. The
//! backend decides whether the transfer succeeds, and at what retry cost:
//!
//! * [`MemStorage`] (the default) always succeeds at zero cost, so the
//!   accounting of fault-free runs is byte-identical to a machine without a
//!   storage layer at all — the fault machinery is pay-for-what-you-use.
//! * [`crate::FaultyStorage`] injects deterministic, seeded faults: transient
//!   read errors and torn writes (absorbed by a bounded [`RetryPolicy`] and
//!   charged to the `retry_io` / `retry_work` counters of
//!   [`crate::RunStats`]), plus a `CrashAt` kill switch that aborts the run
//!   mid-transfer.
//!
//! Permanent failures — retry exhaustion and disk-full — surface as typed
//! [`StorageError`]s through the `try_*` accessors of [`crate::ExtVec`];
//! the infallible accessors panic with the error's message.

use std::fmt;

/// Direction of a block transfer, as seen by a [`Storage`] backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransferDir {
    /// Disk-to-memory: a cache miss or a read-modify-write fill.
    Read,
    /// Memory-to-disk: a dirty eviction or an explicit flush.
    Write,
}

/// Typed errors the storage layer can surface.
///
/// `Crashed` never reaches callers as a value: the machine converts it into
/// a panic carrying a [`crate::CrashPoint`] payload, because a crash is by
/// definition not handleable by the running algorithm — only by a harness
/// that catches the unwind and resumes from a checkpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorageError {
    /// A read kept failing after every allowed attempt.
    ReadFailed {
        /// Ordinal of the failing transfer (0-based count of charged transfers).
        io: u64,
        /// Number of attempts made, i.e. the policy's `max_attempts`.
        attempts: u32,
    },
    /// A write kept tearing mid-block after every allowed attempt.
    TornWrite {
        /// Ordinal of the failing transfer.
        io: u64,
        /// Number of attempts made.
        attempts: u32,
    },
    /// The disk is full: an append would exceed the configured capacity.
    NoSpace {
        /// The configured capacity, in words.
        capacity_words: u64,
        /// The disk usage the append would have required, in words.
        requested_words: u64,
    },
    /// The `CrashAt` kill switch fired at this transfer ordinal.
    Crashed {
        /// Ordinal of the transfer at which the crash fired.
        io: u64,
    },
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::ReadFailed { io, attempts } => {
                write!(
                    f,
                    "read failed permanently at I/O #{io} after {attempts} attempts"
                )
            }
            StorageError::TornWrite { io, attempts } => {
                write!(
                    f,
                    "write torn permanently at I/O #{io} after {attempts} attempts"
                )
            }
            StorageError::NoSpace {
                capacity_words,
                requested_words,
            } => write!(
                f,
                "disk full: append needs {requested_words} words, capacity is {capacity_words}"
            ),
            StorageError::Crashed { io } => write!(f, "storage crashed at I/O #{io}"),
        }
    }
}

impl std::error::Error for StorageError {}

/// Bounded-retry policy with simulated exponential backoff.
///
/// A transfer is attempted up to `max_attempts` times; each failed attempt
/// charges one extra I/O in the transfer's direction (accounted under
/// `retry_io`) and an exponentially growing backoff of
/// `backoff_work << k` work units for the `k`-th failure (accounted under
/// `retry_work`). If all attempts fail the fault is permanent and surfaces
/// as a [`StorageError`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum number of attempts per transfer (at least 1).
    pub max_attempts: u32,
    /// Work units charged for the first backoff; doubles per further failure.
    pub backoff_work: u64,
}

impl RetryPolicy {
    /// Creates a policy.
    ///
    /// # Panics
    ///
    /// Panics if `max_attempts` is zero.
    pub fn new(max_attempts: u32, backoff_work: u64) -> Self {
        assert!(max_attempts >= 1, "a transfer needs at least one attempt");
        Self {
            max_attempts,
            backoff_work,
        }
    }

    /// Total simulated backoff work for `failures` consecutive failed
    /// attempts: `Σ_{k<failures} backoff_work · 2^k`.
    pub fn backoff_cost(&self, failures: u32) -> u64 {
        let mut total = 0u64;
        for k in 0..failures {
            total = total.saturating_add(self.backoff_work.saturating_mul(1u64 << k.min(62)));
        }
        total
    }
}

impl Default for RetryPolicy {
    /// Four attempts, first backoff 8 work units.
    fn default() -> Self {
        Self::new(4, 8)
    }
}

/// Retry cost absorbed by one ultimately-successful transfer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetryCost {
    /// Failed attempts before the transfer succeeded.
    pub failed_attempts: u32,
    /// Simulated backoff work charged for those failures.
    pub backoff_work: u64,
}

/// A storage backend: decides, per charged block transfer, whether the
/// transfer succeeds and at what retry cost.
///
/// The machine calls [`Storage::transfer`] exactly once per *logical*
/// transfer, with a running 0-based ordinal; the backend's decision must be
/// a pure function of `(its own seed, ordinal, direction)` so that fault
/// schedules are reproducible run over run.
pub trait Storage {
    /// Attempts the transfer with ordinal `io` in direction `dir`.
    ///
    /// `Ok` carries the retry cost absorbed (zero for a clean transfer);
    /// `Err` is a permanent fault the caller must surface or convert into a
    /// crash.
    fn transfer(&mut self, dir: TransferDir, io: u64) -> Result<RetryCost, StorageError>;

    /// The fault events recorded so far (empty for infallible backends).
    fn trace(&self) -> &[crate::FaultEvent] {
        &[]
    }
}

/// The default infallible in-memory backend: every transfer succeeds at zero
/// retry cost, so fault-free machines account identically to the pre-fault
/// simulator.
#[derive(Debug, Default, Clone, Copy)]
pub struct MemStorage;

impl Storage for MemStorage {
    fn transfer(&mut self, _dir: TransferDir, _io: u64) -> Result<RetryCost, StorageError> {
        Ok(RetryCost::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_storage_is_free_and_infallible() {
        let mut s = MemStorage;
        for io in 0..1000 {
            assert_eq!(s.transfer(TransferDir::Read, io), Ok(RetryCost::default()));
            assert_eq!(s.transfer(TransferDir::Write, io), Ok(RetryCost::default()));
        }
        assert!(s.trace().is_empty());
    }

    #[test]
    fn backoff_cost_is_exponential() {
        let p = RetryPolicy::new(5, 8);
        assert_eq!(p.backoff_cost(0), 0);
        assert_eq!(p.backoff_cost(1), 8);
        assert_eq!(p.backoff_cost(2), 8 + 16);
        assert_eq!(p.backoff_cost(3), 8 + 16 + 32);
    }

    #[test]
    #[should_panic]
    fn zero_attempts_rejected() {
        let _ = RetryPolicy::new(0, 1);
    }

    #[test]
    fn errors_display_their_parameters() {
        let e = StorageError::ReadFailed { io: 7, attempts: 4 };
        assert!(format!("{e}").contains("#7"));
        let e = StorageError::NoSpace {
            capacity_words: 100,
            requested_words: 101,
        };
        let s = format!("{e}");
        assert!(s.contains("101") && s.contains("100"));
        let e = StorageError::Crashed { io: 3 };
        assert!(format!("{e}").contains("#3"));
        let e = StorageError::TornWrite { io: 9, attempts: 2 };
        assert!(format!("{e}").contains("torn"));
    }
}
