//! I/O, space and work accounting.

/// Counters of block transfers performed by the simulated machine.
///
/// In the external-memory model the cost of an algorithm is exactly
/// `reads + writes`. We keep the two directions separate because the paper's
/// *enumeration* (as opposed to *listing*) setting is precisely about not
/// paying writes for the output, so it is useful to see that the write volume
/// of the enumeration algorithms stays `O(E)`-ish rather than `Ω(t)`.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct IoStats {
    /// Number of blocks transferred from disk to memory (cache misses).
    pub reads: u64,
    /// Number of blocks transferred from memory to disk (dirty evictions and flushes).
    pub writes: u64,
}

impl IoStats {
    /// Total number of block transfers.
    pub fn total(&self) -> u64 {
        self.reads + self.writes
    }

    /// Component-wise difference `self - earlier`; used to attribute I/Os to
    /// phases of an algorithm.
    pub fn since(&self, earlier: IoStats) -> IoStats {
        IoStats {
            reads: self.reads - earlier.reads,
            writes: self.writes - earlier.writes,
        }
    }

    /// Component-wise sum of a set of counters — the `sum_io` of a
    /// multi-worker (PEM) run, where each worker ran on its own [`crate::Machine`]
    /// and accumulated an independent `IoStats`.
    pub fn merge<I: IntoIterator<Item = IoStats>>(parts: I) -> IoStats {
        parts
            .into_iter()
            .fold(IoStats::default(), |acc, part| acc + part)
    }
}

/// Aggregated accounting of a parallel (PEM) run over `P` workers, each with
/// its own [`crate::Machine`] and therefore its own [`IoStats`].
///
/// In the parallel external-memory model the cost of a computation is the
/// **maximum** per-worker I/O (`max_io`) — all workers transfer blocks
/// concurrently, so the wall-clock-relevant quantity is the slowest worker —
/// while `sum_io` measures the total volume moved (and, compared against a
/// sequential run, the replication overhead). `balance` relates the two:
/// `max_io / (sum_io / P)`, i.e. `1.0` for a perfectly balanced run and `P`
/// for a run where one worker did everything.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerReport {
    /// One entry per worker, indexed by worker id (`0..P`).
    pub per_worker: Vec<IoStats>,
    /// `max_w per_worker[w].total()` — the PEM cost of the run.
    pub max_io: u64,
    /// `Σ_w per_worker[w].total()` — total transfer volume across workers.
    pub sum_io: u64,
    /// `max_io / (sum_io / P)`; `1.0` is ideal, `P` is fully serial.
    /// `0.0` when the run moved no blocks at all.
    pub balance: f64,
}

impl WorkerReport {
    /// Aggregates per-worker counters (indexed by worker id).
    ///
    /// # Panics
    /// Panics if `per_worker` is empty — a run has at least one worker.
    pub fn from_per_worker(per_worker: Vec<IoStats>) -> WorkerReport {
        assert!(!per_worker.is_empty(), "a run has at least one worker");
        let max_io = per_worker.iter().map(IoStats::total).max().unwrap_or(0);
        let sum_io = IoStats::merge(per_worker.iter().copied()).total();
        let workers = per_worker.len() as u64;
        let balance = if sum_io == 0 {
            0.0
        } else {
            // Both operands are block counts well below 2^53; the division is
            // exact enough for a balance gauge.
            #[allow(clippy::cast_precision_loss)]
            {
                (max_io * workers) as f64 / sum_io as f64
            }
        };
        WorkerReport {
            per_worker,
            max_io,
            sum_io,
            balance,
        }
    }

    /// Number of workers `P` of the run.
    pub fn workers(&self) -> usize {
        self.per_worker.len()
    }
}

impl std::ops::Add for IoStats {
    type Output = IoStats;
    fn add(self, rhs: IoStats) -> IoStats {
        IoStats {
            reads: self.reads + rhs.reads,
            writes: self.writes + rhs.writes,
        }
    }
}

impl std::ops::AddAssign for IoStats {
    fn add_assign(&mut self, rhs: IoStats) {
        self.reads += rhs.reads;
        self.writes += rhs.writes;
    }
}

impl std::fmt::Display for IoStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} I/Os ({} reads, {} writes)",
            self.total(),
            self.reads,
            self.writes
        )
    }
}

/// A full snapshot of the machine's accounting state.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct RunStats {
    /// Block-transfer counters.
    pub io: IoStats,
    /// Number of words currently allocated on the simulated disk.
    pub disk_words: u64,
    /// Peak number of words simultaneously allocated on the simulated disk
    /// (validates the paper's `O(E)` words-on-disk claims).
    pub peak_disk_words: u64,
    /// Current in-core working-buffer usage registered with the [`crate::MemGauge`], in words.
    pub mem_words_in_use: u64,
    /// Peak in-core working-buffer usage, in words.
    pub peak_mem_words: u64,
    /// Coarse RAM-operation counter incremented by algorithms
    /// (validates the `O(E^{3/2})` work-optimality remark).
    pub work_ops: u64,
    /// The subset of [`RunStats::io`] charged for *retried* transfers — the
    /// extra block transfers absorbed by the storage layer's bounded-retry
    /// loop. Zero on the infallible default backend.
    pub retry_io: u64,
    /// The subset of [`RunStats::work_ops`] charged as simulated retry
    /// backoff. Zero on the infallible default backend.
    pub retry_work: u64,
}

impl RunStats {
    /// Component-wise difference, for attributing costs to phases.
    pub fn since(&self, earlier: &RunStats) -> RunStats {
        RunStats {
            io: self.io.since(earlier.io),
            disk_words: self.disk_words,
            peak_disk_words: self.peak_disk_words,
            mem_words_in_use: self.mem_words_in_use,
            peak_mem_words: self.peak_mem_words,
            work_ops: self.work_ops - earlier.work_ops,
            retry_io: self.retry_io - earlier.retry_io,
            retry_work: self.retry_work - earlier.retry_work,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_difference() {
        let a = IoStats {
            reads: 10,
            writes: 4,
        };
        let b = IoStats {
            reads: 25,
            writes: 9,
        };
        assert_eq!(a.total(), 14);
        assert_eq!(
            b.since(a),
            IoStats {
                reads: 15,
                writes: 5
            }
        );
        assert_eq!((a + b).total(), 48);
        let mut c = a;
        c += b;
        assert_eq!(c.total(), 48);
    }

    #[test]
    fn display_is_human_readable() {
        let a = IoStats {
            reads: 3,
            writes: 2,
        };
        assert_eq!(format!("{a}"), "5 I/Os (3 reads, 2 writes)");
    }

    #[test]
    fn merge_is_a_component_wise_sum() {
        let parts = [
            IoStats {
                reads: 10,
                writes: 4,
            },
            IoStats {
                reads: 5,
                writes: 1,
            },
            IoStats::default(),
        ];
        assert_eq!(
            IoStats::merge(parts),
            IoStats {
                reads: 15,
                writes: 5
            }
        );
        assert_eq!(IoStats::merge([]), IoStats::default());
    }

    #[test]
    fn worker_report_aggregates_max_sum_and_balance() {
        let report = WorkerReport::from_per_worker(vec![
            IoStats {
                reads: 10,
                writes: 0,
            },
            IoStats {
                reads: 20,
                writes: 0,
            },
            IoStats {
                reads: 15,
                writes: 0,
            },
            IoStats {
                reads: 15,
                writes: 0,
            },
        ]);
        assert_eq!(report.workers(), 4);
        assert_eq!(report.max_io, 20);
        assert_eq!(report.sum_io, 60);
        // 20 / (60 / 4) = 1.333…
        assert!((report.balance - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn worker_report_balance_of_an_ideal_and_an_idle_run() {
        let even = WorkerReport::from_per_worker(vec![
            IoStats {
                reads: 7,
                writes: 3,
            };
            4
        ]);
        assert!((even.balance - 1.0).abs() < 1e-12);
        let idle = WorkerReport::from_per_worker(vec![IoStats::default(); 2]);
        assert_eq!(idle.max_io, 0);
        assert_eq!(idle.sum_io, 0);
        assert_eq!(idle.balance, 0.0);
    }

    #[test]
    fn run_stats_since_subtracts_work() {
        let early = RunStats {
            work_ops: 100,
            ..Default::default()
        };
        let late = RunStats {
            work_ops: 350,
            ..Default::default()
        };
        assert_eq!(late.since(&early).work_ops, 250);
    }
}
