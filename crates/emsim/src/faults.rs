//! Deterministic, seeded fault injection for the storage layer.
//!
//! A [`FaultPlan`] describes *which* faults to inject — per-mille rates for
//! transient read errors and torn writes, an optional `CrashAt` kill switch —
//! and a [`FaultyStorage`] executes the plan. Every decision is a pure
//! function of `(plan seed, transfer ordinal, direction, attempt number)`,
//! so the same plan over the same run yields an identical fault trace,
//! identical retry counts, and an identical crash point: chaos tests are
//! exactly reproducible.

use crate::storage::{RetryCost, RetryPolicy, Storage, StorageError, TransferDir};

/// What kind of fault fired at one transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A read returned garbage and was retried (and eventually succeeded).
    TransientRead,
    /// A write tore mid-block and was retried (and eventually succeeded).
    TornWrite,
    /// Retries were exhausted: the fault became permanent.
    Permanent,
    /// The `CrashAt` kill switch fired.
    Crash,
}

impl FaultKind {
    /// Stable lower-case label, used by the fault-trace JSON records.
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::TransientRead => "transient_read",
            FaultKind::TornWrite => "torn_write",
            FaultKind::Permanent => "permanent",
            FaultKind::Crash => "crash",
        }
    }
}

/// One recorded fault event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Ordinal (0-based count of charged transfers) at which the fault fired.
    pub io: u64,
    /// What happened.
    pub kind: FaultKind,
    /// How many attempts failed (0 for a crash).
    pub failed_attempts: u32,
}

/// A deterministic, seeded fault plan.
///
/// The default plan (any seed, zero rates, no crash point) injects nothing;
/// use the builder methods to turn individual fault classes on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed of the fault schedule.
    pub seed: u64,
    /// Per-mille probability that one read attempt fails transiently.
    pub read_fault_per_mille: u32,
    /// Per-mille probability that one write attempt tears.
    pub torn_write_per_mille: u32,
    /// Kill switch: crash when the transfer ordinal reaches this value.
    pub crash_at: Option<u64>,
    /// Retry policy bounding how many failed attempts are absorbed.
    pub retry: RetryPolicy,
}

impl FaultPlan {
    /// A plan with the given seed and nothing enabled.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            read_fault_per_mille: 0,
            torn_write_per_mille: 0,
            crash_at: None,
            retry: RetryPolicy::default(),
        }
    }

    /// Enables transient read faults at `per_mille` ‰ per attempt.
    #[must_use]
    pub fn with_read_faults(mut self, per_mille: u32) -> Self {
        assert!(per_mille <= 1000, "a probability cannot exceed 1000‰");
        self.read_fault_per_mille = per_mille;
        self
    }

    /// Enables torn writes at `per_mille` ‰ per attempt.
    #[must_use]
    pub fn with_torn_writes(mut self, per_mille: u32) -> Self {
        assert!(per_mille <= 1000, "a probability cannot exceed 1000‰");
        self.torn_write_per_mille = per_mille;
        self
    }

    /// Arms the kill switch: the machine panics (with a [`CrashPoint`]
    /// payload) when the charged-transfer count reaches `io`.
    #[must_use]
    pub fn with_crash_at(mut self, io: u64) -> Self {
        self.crash_at = Some(io);
        self
    }

    /// Overrides the retry policy.
    #[must_use]
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }
}

/// The panic payload carried by a simulated crash.
///
/// A crash is not an error value an algorithm could handle — it is the
/// simulation of the process dying mid-run — so [`crate::Machine`] raises it
/// as `std::panic::panic_any(CrashPoint { .. })`. A chaos harness catches the
/// unwind with `std::panic::catch_unwind`, downcasts to `CrashPoint`, and
/// resumes from the last checkpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashPoint {
    /// Ordinal of the transfer at which the crash fired.
    pub io: u64,
}

/// A [`Storage`] backend injecting the faults of a [`FaultPlan`] and
/// recording every injected fault in a trace.
///
/// The fault schedule *wraps* an arbitrary inner [`Storage`] gate: a
/// transfer that survives the schedule is forwarded to the inner gate, and
/// the two layers' retry costs add up. [`FaultyStorage::new`] wraps the
/// infallible in-memory gate (the common case); [`FaultyStorage::wrapping`]
/// composes the schedule over any other gate, so faults apply identically
/// over the in-memory and the real-disk data planes.
pub struct FaultyStorage {
    plan: FaultPlan,
    inner: Box<dyn Storage>,
    trace: Vec<FaultEvent>,
}

impl FaultyStorage {
    /// Creates a backend executing `plan` over the infallible in-memory
    /// gate.
    pub fn new(plan: FaultPlan) -> Self {
        Self::wrapping(plan, Box::new(crate::storage::MemStorage))
    }

    /// Creates a backend executing `plan` over an arbitrary inner gate:
    /// transfers that survive the fault schedule are forwarded to `inner`,
    /// and retry costs from both layers are summed.
    pub fn wrapping(plan: FaultPlan, inner: Box<dyn Storage>) -> Self {
        Self {
            plan,
            inner,
            // emlint: allow(unleased, reason = "fault-trace bookkeeping, one entry per injected fault, not a data buffer")
            trace: Vec::new(),
        }
    }

    /// The plan being executed.
    pub fn plan(&self) -> FaultPlan {
        self.plan
    }

    /// Deterministic per-attempt roll in `[0, 1000)` for transfer `io`,
    /// direction `dir`, attempt `attempt`.
    fn roll(&self, io: u64, dir: TransferDir, attempt: u32) -> u32 {
        let dir_tag: u64 = match dir {
            TransferDir::Read => 0x52,
            TransferDir::Write => 0x57,
        };
        let mut x = self
            .plan
            .seed
            .wrapping_add(io.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(dir_tag.wrapping_mul(0xBF58_476D_1CE4_E5B9))
            .wrapping_add(u64::from(attempt).wrapping_mul(0x94D0_49BB_1331_11EB));
        // splitmix64 finaliser: decorrelates consecutive ordinals.
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
        u32::try_from(x % 1000).expect("x % 1000 fits in u32")
    }
}

impl Storage for FaultyStorage {
    fn transfer(&mut self, dir: TransferDir, io: u64) -> Result<RetryCost, StorageError> {
        if let Some(crash_at) = self.plan.crash_at {
            if io >= crash_at {
                self.trace.push(FaultEvent {
                    io,
                    kind: FaultKind::Crash,
                    failed_attempts: 0,
                });
                return Err(StorageError::Crashed { io });
            }
        }
        let rate = match dir {
            TransferDir::Read => self.plan.read_fault_per_mille,
            TransferDir::Write => self.plan.torn_write_per_mille,
        };
        if rate == 0 {
            return self.inner.transfer(dir, io);
        }
        let max = self.plan.retry.max_attempts;
        let mut failures = 0u32;
        while failures < max && self.roll(io, dir, failures) < rate {
            failures += 1;
        }
        if failures == max {
            self.trace.push(FaultEvent {
                io,
                kind: FaultKind::Permanent,
                failed_attempts: failures,
            });
            return Err(match dir {
                TransferDir::Read => StorageError::ReadFailed { io, attempts: max },
                TransferDir::Write => StorageError::TornWrite { io, attempts: max },
            });
        }
        if failures > 0 {
            self.trace.push(FaultEvent {
                io,
                kind: match dir {
                    TransferDir::Read => FaultKind::TransientRead,
                    TransferDir::Write => FaultKind::TornWrite,
                },
                failed_attempts: failures,
            });
        }
        // The transfer survived the schedule: forward it to the inner gate,
        // summing both layers' retry costs.
        let inner_cost = self.inner.transfer(dir, io)?;
        Ok(RetryCost {
            failed_attempts: failures + inner_cost.failed_attempts,
            backoff_work: self.plan.retry.backoff_cost(failures) + inner_cost.backoff_work,
        })
    }

    fn trace(&self) -> &[FaultEvent] {
        &self.trace
    }
}

impl std::fmt::Debug for FaultyStorage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultyStorage")
            .field("plan", &self.plan)
            .field("trace_len", &self.trace.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_schedule(plan: FaultPlan, transfers: u64) -> (Vec<FaultEvent>, u64, u64) {
        let mut s = FaultyStorage::new(plan);
        let (mut retries, mut backoff) = (0u64, 0u64);
        for io in 0..transfers {
            let dir = if io % 2 == 0 {
                TransferDir::Read
            } else {
                TransferDir::Write
            };
            if let Ok(cost) = s.transfer(dir, io) {
                retries += u64::from(cost.failed_attempts);
                backoff += cost.backoff_work;
            }
        }
        (s.trace().to_vec(), retries, backoff)
    }

    #[test]
    fn zero_rate_plan_injects_nothing() {
        let (trace, retries, backoff) = run_schedule(FaultPlan::new(42), 5_000);
        assert!(trace.is_empty());
        assert_eq!(retries, 0);
        assert_eq!(backoff, 0);
    }

    #[test]
    fn fault_schedule_is_deterministic() {
        let plan = FaultPlan::new(7).with_read_faults(120).with_torn_writes(80);
        let a = run_schedule(plan, 10_000);
        let b = run_schedule(plan, 10_000);
        assert_eq!(a, b, "same seed, same run → same trace and costs");
        assert!(
            !a.0.is_empty(),
            "a 12%/8% schedule over 10k transfers fires"
        );
    }

    #[test]
    fn different_seeds_give_different_schedules() {
        let a = run_schedule(FaultPlan::new(1).with_read_faults(100), 10_000);
        let b = run_schedule(FaultPlan::new(2).with_read_faults(100), 10_000);
        assert_ne!(a.0, b.0);
    }

    #[test]
    fn crash_fires_exactly_at_the_armed_ordinal() {
        let mut s = FaultyStorage::new(FaultPlan::new(0).with_crash_at(3));
        for io in 0..3 {
            assert!(s.transfer(TransferDir::Read, io).is_ok());
        }
        assert_eq!(
            s.transfer(TransferDir::Write, 3),
            Err(StorageError::Crashed { io: 3 })
        );
        assert_eq!(s.trace().last().unwrap().kind, FaultKind::Crash);
    }

    #[test]
    fn retry_exhaustion_becomes_a_permanent_error() {
        // With a 100% failure rate every attempt fails, so the very first
        // transfer must exhaust its retries and surface permanently.
        let plan = FaultPlan::new(9)
            .with_read_faults(1000)
            .with_retry(RetryPolicy::new(3, 4));
        let mut s = FaultyStorage::new(plan);
        assert_eq!(
            s.transfer(TransferDir::Read, 0),
            Err(StorageError::ReadFailed { io: 0, attempts: 3 })
        );
        assert_eq!(s.trace()[0].kind, FaultKind::Permanent);
        // Writes are unaffected: the plan tears no writes.
        assert!(s.transfer(TransferDir::Write, 1).is_ok());
    }

    #[test]
    fn transient_faults_carry_exponential_backoff() {
        let plan = FaultPlan::new(3)
            .with_read_faults(500)
            .with_retry(RetryPolicy::new(8, 2));
        let mut s = FaultyStorage::new(plan);
        let mut seen_multi = false;
        for io in 0..2_000 {
            if let Ok(cost) = s.transfer(TransferDir::Read, io) {
                assert_eq!(
                    cost.backoff_work,
                    plan.retry.backoff_cost(cost.failed_attempts)
                );
                if cost.failed_attempts >= 2 {
                    seen_multi = true;
                }
            }
        }
        assert!(seen_multi, "a 50% rate must produce multi-failure streaks");
    }

    /// An inner gate that charges a fixed retry cost on every transfer, so
    /// the wrap test can see both layers' costs being summed.
    struct Surcharge;

    impl Storage for Surcharge {
        fn transfer(&mut self, _dir: TransferDir, _io: u64) -> Result<RetryCost, StorageError> {
            Ok(RetryCost {
                failed_attempts: 1,
                backoff_work: 5,
            })
        }
    }

    #[test]
    fn wrapping_an_inner_gate_sums_both_layers_costs() {
        let plan = FaultPlan::new(7).with_read_faults(500);
        let mut plain = FaultyStorage::new(plan);
        let mut wrapped = FaultyStorage::wrapping(plan, Box::new(Surcharge));
        for io in 0..500 {
            match (
                plain.transfer(TransferDir::Read, io),
                wrapped.transfer(TransferDir::Read, io),
            ) {
                (Ok(p), Ok(w)) => {
                    assert_eq!(w.failed_attempts, p.failed_attempts + 1);
                    assert_eq!(w.backoff_work, p.backoff_work + 5);
                }
                (p, w) => assert_eq!(p, w, "permanent verdicts are identical"),
            }
        }
        assert_eq!(
            plain.trace(),
            wrapped.trace(),
            "the schedule is independent of the inner gate"
        );
    }

    #[test]
    fn zero_rate_transfers_still_flow_through_the_inner_gate() {
        let mut s = FaultyStorage::wrapping(FaultPlan::new(0), Box::new(Surcharge));
        let cost = s.transfer(TransferDir::Write, 0).unwrap();
        assert_eq!(cost.failed_attempts, 1);
        assert_eq!(cost.backoff_work, 5);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(FaultKind::TransientRead.label(), "transient_read");
        assert_eq!(FaultKind::TornWrite.label(), "torn_write");
        assert_eq!(FaultKind::Permanent.label(), "permanent");
        assert_eq!(FaultKind::Crash.label(), "crash");
    }
}
