//! Fixed-width encoding of elements into machine words.
//!
//! The external-memory model is word-oriented: the paper assumes every vertex
//! and every edge occupies one memory word (its lower-bound argument relies
//! on this "indivisibility"-style assumption). The [`Record`] trait captures
//! exactly that: a record knows how many words it occupies and how to encode
//! itself into / decode itself from `u64` words on the simulated disk.

// Every truncating or sign-changing cast in the `decode` impls below is the
// exact inverse of the corresponding `encode` packing (masked or shifted
// sub-words of values that were themselves encoded from the target type), so
// the crate's pedantic cast lints are relaxed for this codec module only.
#![allow(
    clippy::cast_possible_truncation,
    clippy::cast_possible_wrap,
    clippy::cast_sign_loss
)]

/// A fixed-width element that can be stored in an [`crate::ExtVec`].
pub trait Record: Copy {
    /// Number of machine words this record occupies on disk.
    const WORDS: usize;

    /// Encodes the record into exactly [`Record::WORDS`] words.
    fn encode(&self, out: &mut [u64]);

    /// Decodes a record from exactly [`Record::WORDS`] words.
    fn decode(words: &[u64]) -> Self;
}

impl Record for u64 {
    const WORDS: usize = 1;

    fn encode(&self, out: &mut [u64]) {
        out[0] = *self;
    }

    fn decode(words: &[u64]) -> Self {
        words[0]
    }
}

impl Record for u32 {
    const WORDS: usize = 1;

    fn encode(&self, out: &mut [u64]) {
        out[0] = u64::from(*self);
    }

    fn decode(words: &[u64]) -> Self {
        words[0] as u32
    }
}

impl Record for i64 {
    const WORDS: usize = 1;

    fn encode(&self, out: &mut [u64]) {
        out[0] = *self as u64;
    }

    fn decode(words: &[u64]) -> Self {
        words[0] as i64
    }
}

/// A pair of `u32`s packed into a single word — the natural representation of
/// an edge `(u, v)`, matching the paper's "one word per edge" assumption.
impl Record for (u32, u32) {
    const WORDS: usize = 1;

    fn encode(&self, out: &mut [u64]) {
        out[0] = (u64::from(self.0) << 32) | u64::from(self.1);
    }

    fn decode(words: &[u64]) -> Self {
        (
            ((words[0] >> 32) & 0xffff_ffff) as u32,
            (words[0] & 0xffff_ffff) as u32,
        )
    }
}

/// A pair of words; used for (key, payload) intermediate files such as the
/// wedge lists of the sort-based baseline.
impl Record for (u64, u64) {
    const WORDS: usize = 2;

    fn encode(&self, out: &mut [u64]) {
        out[0] = self.0;
        out[1] = self.1;
    }

    fn decode(words: &[u64]) -> Self {
        (words[0], words[1])
    }
}

/// A triple of `u32`s (e.g. a wedge `(v, w, u)` awaiting its closing edge),
/// packed into two words.
impl Record for (u32, u32, u32) {
    const WORDS: usize = 2;

    fn encode(&self, out: &mut [u64]) {
        out[0] = (u64::from(self.0) << 32) | u64::from(self.1);
        out[1] = u64::from(self.2);
    }

    fn decode(words: &[u64]) -> Self {
        (
            ((words[0] >> 32) & 0xffff_ffff) as u32,
            (words[0] & 0xffff_ffff) as u32,
            words[1] as u32,
        )
    }
}

/// A quadruple of `u32`s packed into two words — e.g. a leaf-tagged wedge
/// `(leaf, v, w, u)` of the cache-oblivious batched base case. The packing
/// puts `(a, b)` in the first word and `(c, d)` in the second, so integer
/// order on the words agrees with lexicographic order on the tuple (the
/// external sorts rely on this, exactly as for the pair encoding).
impl Record for (u32, u32, u32, u32) {
    const WORDS: usize = 2;

    fn encode(&self, out: &mut [u64]) {
        out[0] = (u64::from(self.0) << 32) | u64::from(self.1);
        out[1] = (u64::from(self.2) << 32) | u64::from(self.3);
    }

    fn decode(words: &[u64]) -> Self {
        (
            ((words[0] >> 32) & 0xffff_ffff) as u32,
            (words[0] & 0xffff_ffff) as u32,
            ((words[1] >> 32) & 0xffff_ffff) as u32,
            (words[1] & 0xffff_ffff) as u32,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Record + PartialEq + std::fmt::Debug>(v: T) {
        let mut buf = vec![0u64; T::WORDS];
        v.encode(&mut buf);
        assert_eq!(T::decode(&buf), v);
    }

    #[test]
    fn roundtrips() {
        roundtrip(0u64);
        roundtrip(u64::MAX);
        roundtrip(12345u32);
        roundtrip(-77i64);
        roundtrip((7u32, 9u32));
        roundtrip((u32::MAX, 0u32));
        roundtrip((1u64, u64::MAX));
        roundtrip((1u32, 2u32, 3u32));
        roundtrip((u32::MAX, u32::MAX, u32::MAX));
        roundtrip((1u32, 2u32, 3u32, 4u32));
        roundtrip((u32::MAX, 0u32, u32::MAX, 0u32));
    }

    #[test]
    fn quad_packing_orders_lexicographically() {
        let mut a = [0u64; 2];
        let mut b = [0u64; 2];
        (1u32, 2u32, 900u32, 900u32).encode(&mut a);
        (1u32, 3u32, 0u32, 0u32).encode(&mut b);
        assert!(a < b);
        (1u32, 3u32, 0u32, 1u32).encode(&mut a);
        assert!(b < a);
    }

    #[test]
    fn edge_packing_orders_by_word_value() {
        // Lexicographic order on (u, v) must agree with integer order on the
        // packed word — the external sorts rely on this.
        let mut a = [0u64];
        let mut b = [0u64];
        (1u32, 500u32).encode(&mut a);
        (2u32, 3u32).encode(&mut b);
        assert!(a[0] < b[0]);
        (2u32, 2u32).encode(&mut a);
        assert!(a[0] < b[0]);
    }
}
