//! The simulated external-memory machine.

use std::cell::RefCell;
use std::path::PathBuf;
use std::rc::Rc;

use crate::cache::{block_key, LruCache};
use crate::config::EmConfig;
use crate::faults::{CrashPoint, FaultEvent, FaultPlan, FaultyStorage};
use crate::gauge::MemGauge;
use crate::pool::BufferPool;
use crate::stats::{IoStats, RunStats};
use crate::storage::{
    BlockDevice, DiskCounters, DiskStorage, MemStorage, Storage, StorageError, TransferDir,
};

/// Which data plane a machine runs on: where block *payloads* live.
///
/// Orthogonal to the charge gate (the [`Storage`] backend deciding
/// per-transfer success and faults): a machine combines one of each, so
/// fault plans compose with either plane.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// The pure simulator: payloads live in host vecs, the LRU cache tracks
    /// residency, nothing touches a file.
    #[default]
    InMemory,
    /// Genuinely out-of-core: payloads live in a real temp file through
    /// [`DiskStorage`], fronted by a [`BufferPool`] of `M/B` frames whose
    /// replacement policy mirrors the simulator's LRU cache decision for
    /// decision — charged transfer counts are identical on both planes, and
    /// the device sees exactly one real read per charged read and one real
    /// write per charged write.
    Disk,
}

struct Segment {
    /// Payload words — only populated on the in-memory plane (on disk the
    /// payloads live in the buffer pool and the backing file).
    words: Vec<u64>,
    /// Logical length in words, maintained on both planes.
    len: usize,
    live: bool,
}

/// Where block payloads live. The charge accounting never looks inside:
/// both variants drive the same LRU policy and the same charge points.
/// (Boxed: the disk plane is ~300 bytes of pool + device state, and the
/// common in-memory variant should not pay for it.)
enum DataPlane {
    Mem,
    Disk(Box<DiskPlane>),
}

struct DiskPlane {
    pool: BufferPool,
    dev: DiskStorage,
}

/// The charge-accounting lane: the counters plus the [`Storage`] gate every
/// charged transfer routes through. Split from [`MachineInner`] so the disk
/// plane can charge transfers while holding borrows into the data plane.
struct ChargeLane {
    io: IoStats,
    work: u64,
    storage: Box<dyn Storage>,
    /// 0-based count of *logical* charged transfers (retries excluded):
    /// the ordinal stream fed to the storage backend, and the coordinate
    /// system of `CrashAt` kill switches.
    transfers: u64,
    retry_io: u64,
    retry_work: u64,
}

impl ChargeLane {
    /// Routes one charged block transfer through the storage backend, then
    /// bumps the direction counter plus any absorbed retry cost.
    ///
    /// A `Crashed` verdict becomes a panic carrying a [`CrashPoint`] — the
    /// simulation of the process dying mid-transfer. Other permanent faults
    /// (retry exhaustion, disk-full) return as errors without charging the
    /// doomed transfer: the run is being abandoned, not accounted.
    fn charge(&mut self, dir: TransferDir) -> Result<(), StorageError> {
        let ordinal = self.transfers;
        self.transfers += 1;
        let cost = match self.storage.transfer(dir, ordinal) {
            Ok(cost) => cost,
            Err(StorageError::Crashed { io }) => std::panic::panic_any(CrashPoint { io }),
            Err(permanent) => return Err(permanent),
        };
        let extra = u64::from(cost.failed_attempts);
        match dir {
            TransferDir::Read => self.io.reads += 1 + extra,
            TransferDir::Write => self.io.writes += 1 + extra,
        }
        if cost.failed_attempts > 0 {
            self.retry_io += extra;
            self.work += cost.backoff_work;
            self.retry_work += cost.backoff_work;
        }
        Ok(())
    }
}

struct MachineInner {
    config: EmConfig,
    segments: Vec<Segment>,
    free_segments: Vec<u32>,
    /// Residency/dirty tracking for the in-memory plane (the disk plane's
    /// buffer pool tracks its own, with the identical policy).
    cache: LruCache,
    data: DataPlane,
    lane: ChargeLane,
    disk_words: u64,
    peak_disk_words: u64,
}

/// A cheap, clonable handle to a simulated external-memory machine.
///
/// The machine owns the disk (a set of independently growable *segments*, one
/// per [`crate::ExtVec`]), the LRU block cache standing in for the internal
/// memory, the I/O counters and a [`MemGauge`] for in-core working buffers.
///
/// Cloning a `Machine` clones the handle, not the machine: all clones share
/// the same disk, cache and counters. The simulator is single-threaded by
/// design (the I/O model is sequential), so a `Rc<RefCell<…>>` is the
/// appropriate sharing primitive.
///
/// Parallel (PEM) runs do not clone a machine across threads — a handle is
/// deliberately `!Send`. Instead, each worker thread constructs its *own*
/// machine from the shared, `Copy` [`EmConfig`]: [`Machine::new`] allocates
/// only an empty cache and zeroed counters, so per-worker machines are cheap
/// to spawn, and each worker gets an independent [`IoStats`] and
/// [`MemGauge`] (gauge-audit included). On the disk plane each worker machine
/// likewise owns its own backing file and buffer pool (temp-dir scoped,
/// unlinked on drop). The per-worker counters are aggregated afterwards with
/// [`crate::IoStats::merge`] / [`crate::WorkerReport`].
#[derive(Clone)]
pub struct Machine {
    inner: Rc<RefCell<MachineInner>>,
    gauge: MemGauge,
    config: EmConfig,
}

impl Machine {
    /// Creates a machine with the given memory/block configuration, a cold
    /// cache, and the infallible [`MemStorage`] backend.
    pub fn new(config: EmConfig) -> Self {
        Self::with_parts(config, Box::new(MemStorage), BackendKind::InMemory)
    }

    /// Creates a machine whose storage executes the given fault plan: reads
    /// and writes fail per the plan's seeded schedule, retries are charged
    /// to the `retry_io`/`retry_work` counters, and the `CrashAt` kill
    /// switch (if armed) panics with a [`CrashPoint`] payload mid-run.
    pub fn with_faults(config: EmConfig, plan: FaultPlan) -> Self {
        Self::with_parts(
            config,
            Box::new(FaultyStorage::new(plan)),
            BackendKind::InMemory,
        )
    }

    /// Creates a fault-free machine on the chosen data plane.
    ///
    /// # Panics
    ///
    /// Panics if the disk plane's backing file cannot be created.
    pub fn with_backend(config: EmConfig, backend: BackendKind) -> Self {
        Self::with_parts(config, Box::new(MemStorage), backend)
    }

    /// Creates a machine combining a fault plan (the charge gate) with a
    /// data plane — e.g. transient faults injected over the real disk
    /// backend.
    pub fn with_faults_and_backend(
        config: EmConfig,
        plan: FaultPlan,
        backend: BackendKind,
    ) -> Self {
        Self::with_parts(config, Box::new(FaultyStorage::new(plan)), backend)
    }

    /// Creates a machine with an arbitrary charge gate and data plane.
    pub fn with_storage_backend(
        config: EmConfig,
        storage: Box<dyn Storage>,
        backend: BackendKind,
    ) -> Self {
        Self::with_parts(config, storage, backend)
    }

    fn with_parts(config: EmConfig, storage: Box<dyn Storage>, backend: BackendKind) -> Self {
        let data = match backend {
            BackendKind::InMemory => DataPlane::Mem,
            BackendKind::Disk => {
                let dev = DiskStorage::create(config.block_words)
                    .unwrap_or_else(|e| panic!("failed to create the disk backend file: {e}"));
                DataPlane::Disk(Box::new(DiskPlane {
                    pool: BufferPool::new(config.frames(), config.block_words),
                    dev,
                }))
            }
        };
        Self {
            inner: Rc::new(RefCell::new(MachineInner {
                config,
                segments: Vec::new(),
                free_segments: Vec::new(),
                cache: LruCache::new(config.frames()),
                data,
                lane: ChargeLane {
                    io: IoStats::default(),
                    work: 0,
                    storage,
                    transfers: 0,
                    retry_io: 0,
                    retry_work: 0,
                },
                disk_words: 0,
                peak_disk_words: 0,
            })),
            gauge: MemGauge::new(),
            config,
        }
    }

    /// The machine's configuration.
    pub fn config(&self) -> EmConfig {
        self.config
    }

    /// Which data plane this machine runs on.
    pub fn backend(&self) -> BackendKind {
        match self.inner.borrow().data {
            DataPlane::Mem => BackendKind::InMemory,
            DataPlane::Disk(_) => BackendKind::Disk,
        }
    }

    /// The real-I/O counters of the disk backend (`None` on the in-memory
    /// plane): executed block reads/writes and fsyncs, as opposed to the
    /// *charged* transfers in [`Machine::io`]. On a fault-free disk machine
    /// the two agree exactly — real reads equal charged reads, real writes
    /// equal charged writes — which is what E11 verifies.
    pub fn disk_counters(&self) -> Option<DiskCounters> {
        match &self.inner.borrow().data {
            DataPlane::Mem => None,
            DataPlane::Disk(plane) => Some(plane.dev.counters()),
        }
    }

    /// The disk plane's backing-file path (`None` on the in-memory plane).
    /// The file is unlinked when the last machine handle drops.
    pub fn disk_file(&self) -> Option<PathBuf> {
        match &self.inner.borrow().data {
            DataPlane::Mem => None,
            DataPlane::Disk(plane) => Some(plane.dev.path().to_path_buf()),
        }
    }

    /// Durability barrier on the disk plane (`fsync` of the backing file);
    /// a no-op in memory. Not a charged transfer. Note this persists what
    /// the *device* has seen — call [`Machine::flush`] first to push dirty
    /// pool frames (as charged writes) if you want a full barrier.
    pub fn sync(&self) {
        if let DataPlane::Disk(plane) = &mut self.inner.borrow_mut().data {
            plane.dev.sync();
        }
    }

    /// The gauge tracking in-core working-buffer usage.
    pub fn gauge(&self) -> &MemGauge {
        &self.gauge
    }

    /// Adds `n` units to the coarse RAM-operation counter.
    pub fn work(&self, n: u64) {
        self.inner.borrow_mut().lane.work += n;
    }

    /// Snapshot of every counter.
    pub fn stats(&self) -> RunStats {
        let inner = self.inner.borrow();
        RunStats {
            io: inner.lane.io,
            disk_words: inner.disk_words,
            peak_disk_words: inner.peak_disk_words,
            mem_words_in_use: self.gauge.in_use(),
            peak_mem_words: self.gauge.peak(),
            work_ops: inner.lane.work,
            retry_io: inner.lane.retry_io,
            retry_work: inner.lane.retry_work,
        }
    }

    /// Just the I/O counters.
    pub fn io(&self) -> IoStats {
        self.inner.borrow().lane.io
    }

    /// The number of logical charged transfers so far — the coordinate
    /// system of [`FaultPlan::with_crash_at`]. Equals `io().total()` when no
    /// retries have been absorbed (retries charge extra I/Os but share the
    /// ordinal of the transfer they retried).
    pub fn transfers(&self) -> u64 {
        self.inner.borrow().lane.transfers
    }

    /// The fault events the storage backend recorded so far (always empty on
    /// the infallible default backend).
    pub fn fault_trace(&self) -> Vec<FaultEvent> {
        self.inner.borrow().lane.storage.trace().to_vec()
    }

    /// Evicts the entire cache (charging write I/Os for dirty blocks), so
    /// that a subsequent measurement starts cold. On the disk plane every
    /// dirty frame is also really written to the backing file, so the charge
    /// and the device write stay one-to-one. Returns the number of
    /// write-backs charged.
    pub fn cold_cache(&self) -> u64 {
        let mut guard = self.inner.borrow_mut();
        let inner = &mut *guard;
        match &mut inner.data {
            DataPlane::Mem => {
                let writes = inner.cache.clear();
                for _ in 0..writes {
                    if let Err(e) = inner.lane.charge(TransferDir::Write) {
                        panic!("unrecoverable storage fault while emptying the cache: {e}");
                    }
                }
                writes
            }
            DataPlane::Disk(plane) => {
                let DiskPlane { pool, dev } = &mut **plane;
                let dirty = pool.dirty_keys();
                for &key in &dirty {
                    if let Err(e) = inner.lane.charge(TransferDir::Write) {
                        panic!("unrecoverable storage fault while emptying the cache: {e}");
                    }
                    dev.write_block(key, pool.frame(key));
                    pool.mark_clean(key);
                }
                pool.clear();
                dirty.len() as u64
            }
        }
    }

    /// Flushes dirty cached blocks to disk (charging write I/Os) without
    /// evicting them.
    pub fn flush(&self) -> u64 {
        let mut guard = self.inner.borrow_mut();
        let inner = &mut *guard;
        match &mut inner.data {
            DataPlane::Mem => {
                let writes = inner.cache.flush();
                for _ in 0..writes {
                    if let Err(e) = inner.lane.charge(TransferDir::Write) {
                        panic!("unrecoverable storage fault while flushing the cache: {e}");
                    }
                }
                writes
            }
            DataPlane::Disk(plane) => {
                let DiskPlane { pool, dev } = &mut **plane;
                let dirty = pool.dirty_keys();
                for &key in &dirty {
                    if let Err(e) = inner.lane.charge(TransferDir::Write) {
                        panic!("unrecoverable storage fault while flushing the cache: {e}");
                    }
                    dev.write_block(key, pool.frame(key));
                    pool.mark_clean(key);
                }
                dirty.len() as u64
            }
        }
    }

    /// Number of block frames in the simulated internal memory (`M / B`).
    pub fn frames(&self) -> usize {
        self.config.frames()
    }

    // ------------------------------------------------------------------
    // Segment management (used by ExtVec).
    // ------------------------------------------------------------------

    pub(crate) fn new_segment(&self) -> u32 {
        let mut inner = self.inner.borrow_mut();
        if let Some(id) = inner.free_segments.pop() {
            inner.segments[id as usize] = Segment {
                words: Vec::new(),
                len: 0,
                live: true,
            };
            id
        } else {
            inner.segments.push(Segment {
                words: Vec::new(),
                len: 0,
                live: true,
            });
            u32::try_from(inner.segments.len() - 1).expect("segment count exceeds u32")
        }
    }

    pub(crate) fn free_segment(&self, seg: u32) {
        let mut guard = self.inner.borrow_mut();
        let inner = &mut *guard;
        let block_words = inner.config.block_words as u64;
        let seg_words;
        {
            let s = &mut inner.segments[seg as usize];
            if !s.live {
                return;
            }
            s.live = false;
            seg_words = s.len as u64;
            s.len = 0;
            s.words = Vec::new();
        }
        inner.disk_words -= seg_words;
        // Forget the dead blocks so their eviction is never charged (and, on
        // disk, release their file slots for recycling).
        let nblocks = seg_words.div_ceil(block_words);
        match &mut inner.data {
            DataPlane::Mem => {
                for b in 0..nblocks {
                    inner.cache.discard(block_key(seg, b));
                }
            }
            DataPlane::Disk(plane) => {
                let DiskPlane { pool, dev } = &mut **plane;
                for b in 0..nblocks {
                    let key = block_key(seg, b);
                    pool.discard(key);
                    dev.free_block(key);
                }
            }
        }
        inner.free_segments.push(seg);
    }

    /// Reads the word at `idx` of segment `seg`, charging a read I/O if the
    /// containing block is not cached. Panics on permanent storage faults;
    /// see [`Machine::try_read_word`] for the fallible variant.
    #[track_caller]
    pub(crate) fn read_word(&self, seg: u32, idx: usize) -> u64 {
        match self.try_read_word(seg, idx) {
            Ok(word) => word,
            Err(e) => panic!("unrecoverable storage fault on read: {e}"),
        }
    }

    /// Fallible variant of [`Machine::read_word`]: permanent storage faults
    /// (retry exhaustion) surface as errors instead of panics. A `CrashAt`
    /// kill switch still panics — a crash is not handleable.
    pub(crate) fn try_read_word(&self, seg: u32, idx: usize) -> Result<u64, StorageError> {
        let mut guard = self.inner.borrow_mut();
        let inner = &mut *guard;
        let block_words = inner.config.block_words;
        let block = (idx / block_words) as u64;
        let key = block_key(seg, block);
        match &mut inner.data {
            DataPlane::Mem => {
                let touch = inner.cache.touch(key, false);
                if touch.miss {
                    if let Err(e) = inner.lane.charge(TransferDir::Read) {
                        // The block never arrived: evict the speculative cache
                        // entry so a later retry faces (and is charged for) a
                        // real miss.
                        inner.cache.discard(key);
                        return Err(e);
                    }
                }
                if touch.writeback {
                    inner.lane.charge(TransferDir::Write)?;
                }
                Ok(inner.segments[seg as usize].words[idx])
            }
            DataPlane::Disk(plane) => {
                let DiskPlane { pool, dev } = &mut **plane;
                let seg_len = inner.segments[seg as usize].len;
                assert!(
                    idx < seg_len,
                    "read past end of segment: idx {idx}, len {seg_len}"
                );
                let touch = pool.access(key, false, false, dev);
                if touch.miss {
                    if let Err(e) = inner.lane.charge(TransferDir::Read) {
                        // Same recovery as in memory: drop the just-admitted
                        // frame so a retry faces a real miss again (the block
                        // is still intact on the device).
                        pool.discard(key);
                        return Err(e);
                    }
                }
                if touch.writeback {
                    inner.lane.charge(TransferDir::Write)?;
                }
                Ok(pool.word(key, idx % block_words))
            }
        }
    }

    /// Writes `value` at `idx` of segment `seg` (which must be `≤ len`,
    /// appending when equal), charging I/Os for cache misses and dirty
    /// evictions. Panics on permanent storage faults (including disk-full);
    /// see [`Machine::try_write_word`] for the fallible variant.
    #[track_caller]
    pub(crate) fn write_word(&self, seg: u32, idx: usize, value: u64) {
        if let Err(e) = self.try_write_word(seg, idx, value) {
            panic!("unrecoverable storage fault on write: {e}");
        }
    }

    /// Fallible variant of [`Machine::write_word`]: permanent storage faults
    /// (torn-write retry exhaustion, disk-full) surface as errors instead of
    /// panics. A `CrashAt` kill switch still panics.
    pub(crate) fn try_write_word(
        &self,
        seg: u32,
        idx: usize,
        value: u64,
    ) -> Result<(), StorageError> {
        let mut guard = self.inner.borrow_mut();
        let inner = &mut *guard;
        let seg_len = inner.segments[seg as usize].len;
        if idx > seg_len {
            panic!("write past end of segment: idx {idx}, len {seg_len}");
        }
        if let Some(capacity_words) = inner.config.disk_capacity_words {
            if idx == seg_len && inner.disk_words + 1 > capacity_words {
                return Err(StorageError::NoSpace {
                    capacity_words,
                    requested_words: inner.disk_words + 1,
                });
            }
        }
        let block_words = inner.config.block_words;
        let block = (idx / block_words) as u64;
        let key = block_key(seg, block);
        // Appending a word to a fresh block does not require reading the
        // block from disk first (the model writes whole blocks); but writing
        // into the middle of an uncached block does (read-modify-write).
        let block_start = usize::try_from(block).expect("block index exceeds usize") * block_words;
        let fresh_append = idx == seg_len && idx == block_start;
        match &mut inner.data {
            DataPlane::Mem => {
                let touch = inner.cache.touch(key, true);
                if touch.miss && !fresh_append {
                    if let Err(e) = inner.lane.charge(TransferDir::Read) {
                        // Read-modify-write fill failed: evict the speculative
                        // entry so a retry faces a real miss again.
                        inner.cache.discard(key);
                        return Err(e);
                    }
                }
                if touch.writeback {
                    inner.lane.charge(TransferDir::Write)?;
                }
                let segment = &mut inner.segments[seg as usize];
                if idx < seg_len {
                    segment.words[idx] = value;
                } else {
                    segment.words.push(value);
                }
            }
            DataPlane::Disk(plane) => {
                let DiskPlane { pool, dev } = &mut **plane;
                // A fresh append materialises a zeroed frame with no device
                // read, mirroring the simulator's uncharged fresh miss.
                let touch = pool.access(key, true, fresh_append, dev);
                if touch.miss && !fresh_append {
                    if let Err(e) = inner.lane.charge(TransferDir::Read) {
                        pool.discard(key);
                        return Err(e);
                    }
                }
                if touch.writeback {
                    inner.lane.charge(TransferDir::Write)?;
                }
                pool.set_word(key, idx - block_start, value);
            }
        }
        if idx == seg_len {
            inner.segments[seg as usize].len += 1;
            inner.disk_words += 1;
            if inner.disk_words > inner.peak_disk_words {
                inner.peak_disk_words = inner.disk_words;
            }
        }
        Ok(())
    }

    pub(crate) fn truncate_segment(&self, seg: u32, new_words: usize) {
        let mut inner = self.inner.borrow_mut();
        let old = inner.segments[seg as usize].len;
        if new_words < old {
            let s = &mut inner.segments[seg as usize];
            s.len = new_words;
            s.words.truncate(new_words);
            inner.disk_words -= (old - new_words) as u64;
        }
    }
}

impl std::fmt::Debug for Machine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        f.debug_struct("Machine")
            .field("config", &self.config)
            .field("backend", &self.backend())
            .field("stats", &s)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_only_writes_do_not_charge_reads() {
        let m = Machine::new(EmConfig::new(1024, 64));
        let seg = m.new_segment();
        for i in 0..640usize {
            m.write_word(seg, i, i as u64);
        }
        let io = m.io();
        assert_eq!(io.reads, 0, "pure appends never read blocks");
        // 640 words = 10 blocks; with 16 frames nothing is evicted yet.
        assert_eq!(io.writes, 0);
        m.flush();
        assert_eq!(m.io().writes, 10);
    }

    #[test]
    fn overwrites_of_cold_blocks_are_read_modify_write() {
        let m = Machine::new(EmConfig::new(128, 64)); // 2 frames only
        let seg = m.new_segment();
        for i in 0..64 * 4usize {
            m.write_word(seg, i, 0);
        }
        // The first blocks have been evicted (dirty) by now.
        let before = m.io();
        m.write_word(seg, 0, 7);
        let after = m.io();
        assert_eq!(after.reads - before.reads, 1);
        assert_eq!(m.read_word(seg, 0), 7);
    }

    #[test]
    fn eviction_of_dirty_blocks_counts_writes() {
        let m = Machine::new(EmConfig::new(128, 64)); // 2 frames
        let seg = m.new_segment();
        for i in 0..64 * 8usize {
            m.write_word(seg, i, i as u64);
        }
        // 8 blocks written with 2 frames: at least 6 dirty evictions.
        assert!(m.io().writes >= 6);
    }

    #[test]
    fn freeing_a_segment_releases_disk_words_without_io() {
        let m = Machine::new(EmConfig::new(1024, 64));
        let seg = m.new_segment();
        for i in 0..1000usize {
            m.write_word(seg, i, 1);
        }
        let io_before = m.io();
        assert_eq!(m.stats().disk_words, 1000);
        m.free_segment(seg);
        assert_eq!(m.stats().disk_words, 0);
        assert_eq!(m.stats().peak_disk_words, 1000);
        assert_eq!(m.io(), io_before, "freeing dead data is not an I/O");
        // Segment ids are recycled.
        let seg2 = m.new_segment();
        assert_eq!(seg2, seg);
    }

    #[test]
    fn work_counter_accumulates() {
        let m = Machine::new(EmConfig::default());
        m.work(10);
        m.work(5);
        assert_eq!(m.stats().work_ops, 15);
    }

    #[test]
    #[should_panic]
    fn write_past_end_panics() {
        let m = Machine::new(EmConfig::default());
        let seg = m.new_segment();
        m.write_word(seg, 5, 1);
    }

    fn thrash(m: &Machine) {
        let seg = m.new_segment();
        for i in 0..64 * 16usize {
            m.write_word(seg, i, i as u64);
        }
        m.cold_cache();
        for i in 0..64 * 16usize {
            let _ = m.read_word(seg, i);
        }
    }

    #[test]
    fn fault_free_machines_report_no_retries() {
        let m = Machine::new(EmConfig::new(256, 64));
        thrash(&m);
        let s = m.stats();
        assert_eq!(s.retry_io, 0);
        assert_eq!(s.retry_work, 0);
        assert!(m.fault_trace().is_empty());
        assert_eq!(
            m.transfers(),
            s.io.total(),
            "without retries, every charged I/O is one logical transfer"
        );
    }

    #[test]
    fn transient_faults_charge_retry_counters_deterministically() {
        let plan = crate::FaultPlan::new(77)
            .with_read_faults(150)
            .with_torn_writes(100);
        let run = || {
            let m = Machine::with_faults(EmConfig::new(256, 64), plan);
            thrash(&m);
            (m.stats(), m.fault_trace())
        };
        let (a_stats, a_trace) = run();
        let (b_stats, b_trace) = run();
        assert_eq!(a_stats, b_stats, "same plan, same run → same accounting");
        assert_eq!(a_trace, b_trace, "same plan, same run → same fault trace");
        assert!(a_stats.retry_io > 0, "a 15%/10% schedule must fire");
        assert!(a_stats.retry_work > 0, "backoff must be charged as work");
        assert!(
            a_stats.io.total() > m_baseline_io(),
            "retried transfers cost extra I/Os"
        );
        assert!(a_stats.io.total() - m_baseline_io() == a_stats.retry_io);
    }

    fn m_baseline_io() -> u64 {
        let m = Machine::new(EmConfig::new(256, 64));
        thrash(&m);
        m.stats().io.total()
    }

    #[test]
    fn crash_at_panics_with_a_typed_payload() {
        let plan = crate::FaultPlan::new(0).with_crash_at(10);
        let m = Machine::with_faults(EmConfig::new(256, 64), plan);
        let m2 = m.clone();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || thrash(&m2)));
        let payload = result.expect_err("the kill switch must fire");
        let crash = payload
            .downcast_ref::<crate::CrashPoint>()
            .expect("crash panics carry a CrashPoint");
        assert_eq!(crash.io, 10);
        assert_eq!(m.transfers(), 11, "the crash fired on the 11th transfer");
        assert_eq!(
            m.fault_trace().last().unwrap().kind,
            crate::FaultKind::Crash
        );
    }

    #[test]
    fn per_worker_machines_from_a_shared_config_account_independently() {
        // The PEM spawning pattern: one Copy config, one machine per worker
        // thread, independent counters and gauges.
        let cfg = EmConfig::new(256, 64);
        let counted: Vec<crate::IoStats> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0u64..3)
                .map(|w| {
                    scope.spawn(move || {
                        let m = Machine::new(cfg);
                        let mut v: crate::ExtVec<u64> = crate::ExtVec::new(&m);
                        // Worker w writes (w + 1) blocks' worth of words.
                        for i in 0..(w + 1) * 64 {
                            v.push(i);
                        }
                        m.cold_cache();
                        m.stats().io
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(counted[0].writes, 1);
        assert_eq!(counted[1].writes, 2);
        assert_eq!(counted[2].writes, 3);
        let report = crate::WorkerReport::from_per_worker(counted);
        assert_eq!(report.max_io, 3);
        assert_eq!(report.sum_io, 6);
        assert!((report.balance - 1.5).abs() < 1e-12);
    }

    #[test]
    fn machine_survives_to_be_inspected_after_a_crash() {
        // After catching the unwind, the machine handle still answers:
        // counters, trace, and further I/O all work (the "disk" survived).
        let plan = crate::FaultPlan::new(0).with_crash_at(5);
        let m = Machine::with_faults(EmConfig::new(256, 64), plan);
        let m2 = m.clone();
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || thrash(&m2)));
        assert!(m.stats().io.total() <= 5);
        assert!(!m.fault_trace().is_empty());
    }

    // ------------------------------------------------------------------
    // Disk-plane parity tests.
    // ------------------------------------------------------------------

    /// A workload covering every charge path: fresh appends, dirty
    /// evictions, cold reads, read-modify-write overwrites, truncation and
    /// re-growth, and segment free/recycle.
    fn exercise(m: &Machine) -> Vec<u64> {
        let seg = m.new_segment();
        for i in 0..64 * 8usize {
            m.write_word(seg, i, i as u64);
        }
        m.cold_cache();
        // Read-modify-write overwrites of cold blocks.
        for i in (0..64 * 8usize).step_by(97) {
            m.write_word(seg, i, (i as u64) * 3 + 1);
        }
        // Truncate to mid-block and grow back.
        m.truncate_segment(seg, 100);
        for i in 100..300usize {
            m.write_word(seg, i, 7_000 + i as u64);
        }
        // A short-lived scratch segment, freed again.
        let scratch = m.new_segment();
        for i in 0..130usize {
            m.write_word(scratch, i, 1);
        }
        m.free_segment(scratch);
        m.cold_cache();
        (0..300usize).map(|i| m.read_word(seg, i)).collect()
    }

    #[test]
    fn disk_plane_matches_memory_accounting_and_payloads() {
        let cfg = EmConfig::new(256, 64); // 4 frames: plenty of eviction
        let mem = Machine::new(cfg);
        let mem_words = exercise(&mem);
        let disk = Machine::with_backend(cfg, BackendKind::Disk);
        assert_eq!(disk.backend(), BackendKind::Disk);
        let disk_words = exercise(&disk);
        assert_eq!(mem_words, disk_words, "bit-identical payloads");
        assert_eq!(mem.stats(), disk.stats(), "identical charged accounting");
        assert_eq!(mem.transfers(), disk.transfers());
    }

    #[test]
    fn disk_plane_real_ops_equal_charged_ops() {
        let disk = Machine::with_backend(EmConfig::new(256, 64), BackendKind::Disk);
        exercise(&disk);
        let io = disk.io();
        let real = disk.disk_counters().expect("disk plane has counters");
        assert_eq!(real.block_reads, io.reads, "one real read per charged read");
        assert_eq!(
            real.block_writes, io.writes,
            "one real write per charged write"
        );
        disk.sync();
        assert_eq!(disk.disk_counters().unwrap().syncs, 1);
    }

    #[test]
    fn disk_plane_backing_file_is_unlinked_on_drop() {
        let path = {
            let m = Machine::with_backend(EmConfig::new(256, 64), BackendKind::Disk);
            let seg = m.new_segment();
            for i in 0..200usize {
                m.write_word(seg, i, i as u64);
            }
            m.flush();
            let path = m.disk_file().expect("disk plane has a backing file");
            assert!(path.exists(), "backing file exists while the machine lives");
            path
        };
        assert!(
            !path.exists(),
            "backing file unlinked when the machine drops"
        );
    }

    #[test]
    fn faults_over_the_disk_plane_match_memory_exactly() {
        let plan = crate::FaultPlan::new(4242)
            .with_read_faults(120)
            .with_torn_writes(80);
        let mem = Machine::with_faults(EmConfig::new(256, 64), plan);
        let mem_words = exercise(&mem);
        let disk =
            Machine::with_faults_and_backend(EmConfig::new(256, 64), plan, BackendKind::Disk);
        let disk_words = exercise(&disk);
        assert_eq!(mem_words, disk_words);
        assert_eq!(mem.stats(), disk.stats(), "same faults, same accounting");
        assert_eq!(mem.fault_trace(), disk.fault_trace(), "same fault schedule");
        assert!(mem.stats().retry_io > 0, "the schedule must actually fire");
    }

    #[test]
    fn crash_on_the_disk_plane_still_unlinks_the_file() {
        let plan = crate::FaultPlan::new(0).with_crash_at(6);
        let m = Machine::with_faults_and_backend(EmConfig::new(256, 64), plan, BackendKind::Disk);
        let path = m.disk_file().unwrap();
        let m2 = m.clone();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || thrash(&m2)));
        assert!(result.is_err(), "the kill switch must fire");
        assert!(
            path.exists(),
            "file survives the caught crash for inspection"
        );
        drop(m);
        assert!(!path.exists(), "file unlinked once every handle is gone");
    }
}
