//! The simulated external-memory machine.

use std::cell::RefCell;
use std::rc::Rc;

use crate::cache::{block_key, LruCache};
use crate::config::EmConfig;
use crate::gauge::MemGauge;
use crate::stats::{IoStats, RunStats};

struct Segment {
    words: Vec<u64>,
    live: bool,
}

struct MachineInner {
    config: EmConfig,
    segments: Vec<Segment>,
    free_segments: Vec<u32>,
    cache: LruCache,
    io: IoStats,
    disk_words: u64,
    peak_disk_words: u64,
    work: u64,
}

/// A cheap, clonable handle to a simulated external-memory machine.
///
/// The machine owns the disk (a set of independently growable *segments*, one
/// per [`crate::ExtVec`]), the LRU block cache standing in for the internal
/// memory, the I/O counters and a [`MemGauge`] for in-core working buffers.
///
/// Cloning a `Machine` clones the handle, not the machine: all clones share
/// the same disk, cache and counters. The simulator is single-threaded by
/// design (the I/O model is sequential), so a `Rc<RefCell<…>>` is the
/// appropriate sharing primitive.
#[derive(Clone)]
pub struct Machine {
    inner: Rc<RefCell<MachineInner>>,
    gauge: MemGauge,
    config: EmConfig,
}

impl Machine {
    /// Creates a machine with the given memory/block configuration and a cold
    /// cache.
    pub fn new(config: EmConfig) -> Self {
        Self {
            inner: Rc::new(RefCell::new(MachineInner {
                config,
                segments: Vec::new(),
                free_segments: Vec::new(),
                cache: LruCache::new(config.frames()),
                io: IoStats::default(),
                disk_words: 0,
                peak_disk_words: 0,
                work: 0,
            })),
            gauge: MemGauge::new(),
            config,
        }
    }

    /// The machine's configuration.
    pub fn config(&self) -> EmConfig {
        self.config
    }

    /// The gauge tracking in-core working-buffer usage.
    pub fn gauge(&self) -> &MemGauge {
        &self.gauge
    }

    /// Adds `n` units to the coarse RAM-operation counter.
    pub fn work(&self, n: u64) {
        self.inner.borrow_mut().work += n;
    }

    /// Snapshot of every counter.
    pub fn stats(&self) -> RunStats {
        let inner = self.inner.borrow();
        RunStats {
            io: inner.io,
            disk_words: inner.disk_words,
            peak_disk_words: inner.peak_disk_words,
            mem_words_in_use: self.gauge.in_use(),
            peak_mem_words: self.gauge.peak(),
            work_ops: inner.work,
        }
    }

    /// Just the I/O counters.
    pub fn io(&self) -> IoStats {
        self.inner.borrow().io
    }

    /// Evicts the entire cache (charging write I/Os for dirty blocks), so
    /// that a subsequent measurement starts cold. Returns the number of
    /// write-backs charged.
    pub fn cold_cache(&self) -> u64 {
        let mut inner = self.inner.borrow_mut();
        let writes = inner.cache.clear();
        inner.io.writes += writes;
        writes
    }

    /// Flushes dirty cached blocks to disk (charging write I/Os) without
    /// evicting them.
    pub fn flush(&self) -> u64 {
        let mut inner = self.inner.borrow_mut();
        let writes = inner.cache.flush();
        inner.io.writes += writes;
        writes
    }

    /// Number of block frames in the simulated internal memory (`M / B`).
    pub fn frames(&self) -> usize {
        self.config.frames()
    }

    // ------------------------------------------------------------------
    // Segment management (used by ExtVec).
    // ------------------------------------------------------------------

    pub(crate) fn new_segment(&self) -> u32 {
        let mut inner = self.inner.borrow_mut();
        if let Some(id) = inner.free_segments.pop() {
            inner.segments[id as usize] = Segment {
                words: Vec::new(),
                live: true,
            };
            id
        } else {
            inner.segments.push(Segment {
                words: Vec::new(),
                live: true,
            });
            u32::try_from(inner.segments.len() - 1).expect("segment count exceeds u32")
        }
    }

    pub(crate) fn free_segment(&self, seg: u32) {
        let mut inner = self.inner.borrow_mut();
        let block_words = inner.config.block_words as u64;
        let seg_words;
        {
            let s = &mut inner.segments[seg as usize];
            if !s.live {
                return;
            }
            s.live = false;
            seg_words = s.words.len() as u64;
            s.words = Vec::new();
        }
        inner.disk_words -= seg_words;
        // Forget the dead blocks so their eviction is never charged.
        let nblocks = seg_words.div_ceil(block_words);
        for b in 0..nblocks {
            inner.cache.discard(block_key(seg, b));
        }
        inner.free_segments.push(seg);
    }

    /// Reads the word at `idx` of segment `seg`, charging a read I/O if the
    /// containing block is not cached.
    pub(crate) fn read_word(&self, seg: u32, idx: usize) -> u64 {
        let mut inner = self.inner.borrow_mut();
        let block = (idx / inner.config.block_words) as u64;
        let touch = inner.cache.touch(block_key(seg, block), false);
        if touch.miss {
            inner.io.reads += 1;
        }
        if touch.writeback {
            inner.io.writes += 1;
        }
        inner.segments[seg as usize].words[idx]
    }

    /// Writes `value` at `idx` of segment `seg` (which must be `≤ len`,
    /// appending when equal), charging I/Os for cache misses and dirty
    /// evictions.
    pub(crate) fn write_word(&self, seg: u32, idx: usize, value: u64) {
        let mut inner = self.inner.borrow_mut();
        let block = (idx / inner.config.block_words) as u64;
        let touch = inner.cache.touch(block_key(seg, block), true);
        // Appending a word to a fresh block does not require reading the
        // block from disk first (the model writes whole blocks); but writing
        // into the middle of an uncached block does (read-modify-write).
        if touch.miss {
            let segment = &inner.segments[seg as usize];
            let block_start = usize::try_from(block).expect("block index exceeds usize")
                * inner.config.block_words;
            let fresh_append = idx == segment.words.len() && idx == block_start;
            if !fresh_append {
                inner.io.reads += 1;
            }
        }
        if touch.writeback {
            inner.io.writes += 1;
        }
        let appended;
        {
            let segment = &mut inner.segments[seg as usize];
            match idx.cmp(&segment.words.len()) {
                std::cmp::Ordering::Less => {
                    segment.words[idx] = value;
                    appended = false;
                }
                std::cmp::Ordering::Equal => {
                    segment.words.push(value);
                    appended = true;
                }
                std::cmp::Ordering::Greater => {
                    panic!(
                        "write past end of segment: idx {idx}, len {}",
                        segment.words.len()
                    )
                }
            }
        }
        if appended {
            inner.disk_words += 1;
            if inner.disk_words > inner.peak_disk_words {
                inner.peak_disk_words = inner.disk_words;
            }
        }
    }

    pub(crate) fn truncate_segment(&self, seg: u32, new_words: usize) {
        let mut inner = self.inner.borrow_mut();
        let old = inner.segments[seg as usize].words.len();
        if new_words < old {
            inner.segments[seg as usize].words.truncate(new_words);
            inner.disk_words -= (old - new_words) as u64;
        }
    }
}

impl std::fmt::Debug for Machine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        f.debug_struct("Machine")
            .field("config", &self.config)
            .field("stats", &s)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_only_writes_do_not_charge_reads() {
        let m = Machine::new(EmConfig::new(1024, 64));
        let seg = m.new_segment();
        for i in 0..640usize {
            m.write_word(seg, i, i as u64);
        }
        let io = m.io();
        assert_eq!(io.reads, 0, "pure appends never read blocks");
        // 640 words = 10 blocks; with 16 frames nothing is evicted yet.
        assert_eq!(io.writes, 0);
        m.flush();
        assert_eq!(m.io().writes, 10);
    }

    #[test]
    fn overwrites_of_cold_blocks_are_read_modify_write() {
        let m = Machine::new(EmConfig::new(128, 64)); // 2 frames only
        let seg = m.new_segment();
        for i in 0..64 * 4usize {
            m.write_word(seg, i, 0);
        }
        // The first blocks have been evicted (dirty) by now.
        let before = m.io();
        m.write_word(seg, 0, 7);
        let after = m.io();
        assert_eq!(after.reads - before.reads, 1);
        assert_eq!(m.read_word(seg, 0), 7);
    }

    #[test]
    fn eviction_of_dirty_blocks_counts_writes() {
        let m = Machine::new(EmConfig::new(128, 64)); // 2 frames
        let seg = m.new_segment();
        for i in 0..64 * 8usize {
            m.write_word(seg, i, i as u64);
        }
        // 8 blocks written with 2 frames: at least 6 dirty evictions.
        assert!(m.io().writes >= 6);
    }

    #[test]
    fn freeing_a_segment_releases_disk_words_without_io() {
        let m = Machine::new(EmConfig::new(1024, 64));
        let seg = m.new_segment();
        for i in 0..1000usize {
            m.write_word(seg, i, 1);
        }
        let io_before = m.io();
        assert_eq!(m.stats().disk_words, 1000);
        m.free_segment(seg);
        assert_eq!(m.stats().disk_words, 0);
        assert_eq!(m.stats().peak_disk_words, 1000);
        assert_eq!(m.io(), io_before, "freeing dead data is not an I/O");
        // Segment ids are recycled.
        let seg2 = m.new_segment();
        assert_eq!(seg2, seg);
    }

    #[test]
    fn work_counter_accumulates() {
        let m = Machine::new(EmConfig::default());
        m.work(10);
        m.work(5);
        assert_eq!(m.stats().work_ops, 15);
    }

    #[test]
    #[should_panic]
    fn write_past_end_panics() {
        let m = Machine::new(EmConfig::default());
        let seg = m.new_segment();
        m.write_word(seg, 5, 1);
    }
}
