//! The simulated external-memory machine.

use std::cell::RefCell;
use std::rc::Rc;

use crate::cache::{block_key, LruCache};
use crate::config::EmConfig;
use crate::faults::{CrashPoint, FaultEvent, FaultPlan, FaultyStorage};
use crate::gauge::MemGauge;
use crate::stats::{IoStats, RunStats};
use crate::storage::{MemStorage, Storage, StorageError, TransferDir};

struct Segment {
    words: Vec<u64>,
    live: bool,
}

struct MachineInner {
    config: EmConfig,
    segments: Vec<Segment>,
    free_segments: Vec<u32>,
    cache: LruCache,
    io: IoStats,
    disk_words: u64,
    peak_disk_words: u64,
    work: u64,
    storage: Box<dyn Storage>,
    /// 0-based count of *logical* charged transfers (retries excluded):
    /// the ordinal stream fed to the storage backend, and the coordinate
    /// system of `CrashAt` kill switches.
    transfers: u64,
    retry_io: u64,
    retry_work: u64,
}

impl MachineInner {
    /// Routes one charged block transfer through the storage backend, then
    /// bumps the direction counter plus any absorbed retry cost.
    ///
    /// A `Crashed` verdict becomes a panic carrying a [`CrashPoint`] — the
    /// simulation of the process dying mid-transfer. Other permanent faults
    /// (retry exhaustion, disk-full) return as errors without charging the
    /// doomed transfer: the run is being abandoned, not accounted.
    fn charge(&mut self, dir: TransferDir) -> Result<(), StorageError> {
        let ordinal = self.transfers;
        self.transfers += 1;
        let cost = match self.storage.transfer(dir, ordinal) {
            Ok(cost) => cost,
            Err(StorageError::Crashed { io }) => std::panic::panic_any(CrashPoint { io }),
            Err(permanent) => return Err(permanent),
        };
        let extra = u64::from(cost.failed_attempts);
        match dir {
            TransferDir::Read => self.io.reads += 1 + extra,
            TransferDir::Write => self.io.writes += 1 + extra,
        }
        if cost.failed_attempts > 0 {
            self.retry_io += extra;
            self.work += cost.backoff_work;
            self.retry_work += cost.backoff_work;
        }
        Ok(())
    }
}

/// A cheap, clonable handle to a simulated external-memory machine.
///
/// The machine owns the disk (a set of independently growable *segments*, one
/// per [`crate::ExtVec`]), the LRU block cache standing in for the internal
/// memory, the I/O counters and a [`MemGauge`] for in-core working buffers.
///
/// Cloning a `Machine` clones the handle, not the machine: all clones share
/// the same disk, cache and counters. The simulator is single-threaded by
/// design (the I/O model is sequential), so a `Rc<RefCell<…>>` is the
/// appropriate sharing primitive.
///
/// Parallel (PEM) runs do not clone a machine across threads — a handle is
/// deliberately `!Send`. Instead, each worker thread constructs its *own*
/// machine from the shared, `Copy` [`EmConfig`]: [`Machine::new`] allocates
/// only an empty cache and zeroed counters, so per-worker machines are cheap
/// to spawn, and each worker gets an independent [`IoStats`] and
/// [`MemGauge`] (gauge-audit included). The per-worker counters are
/// aggregated afterwards with [`crate::IoStats::merge`] /
/// [`crate::WorkerReport`].
#[derive(Clone)]
pub struct Machine {
    inner: Rc<RefCell<MachineInner>>,
    gauge: MemGauge,
    config: EmConfig,
}

impl Machine {
    /// Creates a machine with the given memory/block configuration, a cold
    /// cache, and the infallible [`MemStorage`] backend.
    pub fn new(config: EmConfig) -> Self {
        Self::with_storage(config, Box::new(MemStorage))
    }

    /// Creates a machine whose storage executes the given fault plan: reads
    /// and writes fail per the plan's seeded schedule, retries are charged
    /// to the `retry_io`/`retry_work` counters, and the `CrashAt` kill
    /// switch (if armed) panics with a [`CrashPoint`] payload mid-run.
    pub fn with_faults(config: EmConfig, plan: FaultPlan) -> Self {
        Self::with_storage(config, Box::new(FaultyStorage::new(plan)))
    }

    fn with_storage(config: EmConfig, storage: Box<dyn Storage>) -> Self {
        Self {
            inner: Rc::new(RefCell::new(MachineInner {
                config,
                segments: Vec::new(),
                free_segments: Vec::new(),
                cache: LruCache::new(config.frames()),
                io: IoStats::default(),
                disk_words: 0,
                peak_disk_words: 0,
                work: 0,
                storage,
                transfers: 0,
                retry_io: 0,
                retry_work: 0,
            })),
            gauge: MemGauge::new(),
            config,
        }
    }

    /// The machine's configuration.
    pub fn config(&self) -> EmConfig {
        self.config
    }

    /// The gauge tracking in-core working-buffer usage.
    pub fn gauge(&self) -> &MemGauge {
        &self.gauge
    }

    /// Adds `n` units to the coarse RAM-operation counter.
    pub fn work(&self, n: u64) {
        self.inner.borrow_mut().work += n;
    }

    /// Snapshot of every counter.
    pub fn stats(&self) -> RunStats {
        let inner = self.inner.borrow();
        RunStats {
            io: inner.io,
            disk_words: inner.disk_words,
            peak_disk_words: inner.peak_disk_words,
            mem_words_in_use: self.gauge.in_use(),
            peak_mem_words: self.gauge.peak(),
            work_ops: inner.work,
            retry_io: inner.retry_io,
            retry_work: inner.retry_work,
        }
    }

    /// Just the I/O counters.
    pub fn io(&self) -> IoStats {
        self.inner.borrow().io
    }

    /// The number of logical charged transfers so far — the coordinate
    /// system of [`FaultPlan::with_crash_at`]. Equals `io().total()` when no
    /// retries have been absorbed (retries charge extra I/Os but share the
    /// ordinal of the transfer they retried).
    pub fn transfers(&self) -> u64 {
        self.inner.borrow().transfers
    }

    /// The fault events the storage backend recorded so far (always empty on
    /// the infallible default backend).
    pub fn fault_trace(&self) -> Vec<FaultEvent> {
        self.inner.borrow().storage.trace().to_vec()
    }

    /// Evicts the entire cache (charging write I/Os for dirty blocks), so
    /// that a subsequent measurement starts cold. Returns the number of
    /// write-backs charged.
    pub fn cold_cache(&self) -> u64 {
        let mut inner = self.inner.borrow_mut();
        let writes = inner.cache.clear();
        for _ in 0..writes {
            if let Err(e) = inner.charge(TransferDir::Write) {
                panic!("unrecoverable storage fault while emptying the cache: {e}");
            }
        }
        writes
    }

    /// Flushes dirty cached blocks to disk (charging write I/Os) without
    /// evicting them.
    pub fn flush(&self) -> u64 {
        let mut inner = self.inner.borrow_mut();
        let writes = inner.cache.flush();
        for _ in 0..writes {
            if let Err(e) = inner.charge(TransferDir::Write) {
                panic!("unrecoverable storage fault while flushing the cache: {e}");
            }
        }
        writes
    }

    /// Number of block frames in the simulated internal memory (`M / B`).
    pub fn frames(&self) -> usize {
        self.config.frames()
    }

    // ------------------------------------------------------------------
    // Segment management (used by ExtVec).
    // ------------------------------------------------------------------

    pub(crate) fn new_segment(&self) -> u32 {
        let mut inner = self.inner.borrow_mut();
        if let Some(id) = inner.free_segments.pop() {
            inner.segments[id as usize] = Segment {
                words: Vec::new(),
                live: true,
            };
            id
        } else {
            inner.segments.push(Segment {
                words: Vec::new(),
                live: true,
            });
            u32::try_from(inner.segments.len() - 1).expect("segment count exceeds u32")
        }
    }

    pub(crate) fn free_segment(&self, seg: u32) {
        let mut inner = self.inner.borrow_mut();
        let block_words = inner.config.block_words as u64;
        let seg_words;
        {
            let s = &mut inner.segments[seg as usize];
            if !s.live {
                return;
            }
            s.live = false;
            seg_words = s.words.len() as u64;
            s.words = Vec::new();
        }
        inner.disk_words -= seg_words;
        // Forget the dead blocks so their eviction is never charged.
        let nblocks = seg_words.div_ceil(block_words);
        for b in 0..nblocks {
            inner.cache.discard(block_key(seg, b));
        }
        inner.free_segments.push(seg);
    }

    /// Reads the word at `idx` of segment `seg`, charging a read I/O if the
    /// containing block is not cached. Panics on permanent storage faults;
    /// see [`Machine::try_read_word`] for the fallible variant.
    #[track_caller]
    pub(crate) fn read_word(&self, seg: u32, idx: usize) -> u64 {
        match self.try_read_word(seg, idx) {
            Ok(word) => word,
            Err(e) => panic!("unrecoverable storage fault on read: {e}"),
        }
    }

    /// Fallible variant of [`Machine::read_word`]: permanent storage faults
    /// (retry exhaustion) surface as errors instead of panics. A `CrashAt`
    /// kill switch still panics — a crash is not handleable.
    pub(crate) fn try_read_word(&self, seg: u32, idx: usize) -> Result<u64, StorageError> {
        let mut inner = self.inner.borrow_mut();
        let block = (idx / inner.config.block_words) as u64;
        let touch = inner.cache.touch(block_key(seg, block), false);
        if touch.miss {
            if let Err(e) = inner.charge(TransferDir::Read) {
                // The block never arrived: evict the speculative cache entry
                // so a later retry faces (and is charged for) a real miss.
                inner.cache.discard(block_key(seg, block));
                return Err(e);
            }
        }
        if touch.writeback {
            inner.charge(TransferDir::Write)?;
        }
        Ok(inner.segments[seg as usize].words[idx])
    }

    /// Writes `value` at `idx` of segment `seg` (which must be `≤ len`,
    /// appending when equal), charging I/Os for cache misses and dirty
    /// evictions. Panics on permanent storage faults (including disk-full);
    /// see [`Machine::try_write_word`] for the fallible variant.
    #[track_caller]
    pub(crate) fn write_word(&self, seg: u32, idx: usize, value: u64) {
        if let Err(e) = self.try_write_word(seg, idx, value) {
            panic!("unrecoverable storage fault on write: {e}");
        }
    }

    /// Fallible variant of [`Machine::write_word`]: permanent storage faults
    /// (torn-write retry exhaustion, disk-full) surface as errors instead of
    /// panics. A `CrashAt` kill switch still panics.
    pub(crate) fn try_write_word(
        &self,
        seg: u32,
        idx: usize,
        value: u64,
    ) -> Result<(), StorageError> {
        let mut inner = self.inner.borrow_mut();
        if let Some(capacity_words) = inner.config.disk_capacity_words {
            let appending = idx == inner.segments[seg as usize].words.len();
            if appending && inner.disk_words + 1 > capacity_words {
                return Err(StorageError::NoSpace {
                    capacity_words,
                    requested_words: inner.disk_words + 1,
                });
            }
        }
        let block = (idx / inner.config.block_words) as u64;
        let touch = inner.cache.touch(block_key(seg, block), true);
        // Appending a word to a fresh block does not require reading the
        // block from disk first (the model writes whole blocks); but writing
        // into the middle of an uncached block does (read-modify-write).
        if touch.miss {
            let segment = &inner.segments[seg as usize];
            let block_start = usize::try_from(block).expect("block index exceeds usize")
                * inner.config.block_words;
            let fresh_append = idx == segment.words.len() && idx == block_start;
            if !fresh_append {
                if let Err(e) = inner.charge(TransferDir::Read) {
                    // Read-modify-write fill failed: evict the speculative
                    // entry so a retry faces a real miss again.
                    inner.cache.discard(block_key(seg, block));
                    return Err(e);
                }
            }
        }
        if touch.writeback {
            inner.charge(TransferDir::Write)?;
        }
        let appended;
        {
            let segment = &mut inner.segments[seg as usize];
            match idx.cmp(&segment.words.len()) {
                std::cmp::Ordering::Less => {
                    segment.words[idx] = value;
                    appended = false;
                }
                std::cmp::Ordering::Equal => {
                    segment.words.push(value);
                    appended = true;
                }
                std::cmp::Ordering::Greater => {
                    panic!(
                        "write past end of segment: idx {idx}, len {}",
                        segment.words.len()
                    )
                }
            }
        }
        if appended {
            inner.disk_words += 1;
            if inner.disk_words > inner.peak_disk_words {
                inner.peak_disk_words = inner.disk_words;
            }
        }
        Ok(())
    }

    pub(crate) fn truncate_segment(&self, seg: u32, new_words: usize) {
        let mut inner = self.inner.borrow_mut();
        let old = inner.segments[seg as usize].words.len();
        if new_words < old {
            inner.segments[seg as usize].words.truncate(new_words);
            inner.disk_words -= (old - new_words) as u64;
        }
    }
}

impl std::fmt::Debug for Machine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        f.debug_struct("Machine")
            .field("config", &self.config)
            .field("stats", &s)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_only_writes_do_not_charge_reads() {
        let m = Machine::new(EmConfig::new(1024, 64));
        let seg = m.new_segment();
        for i in 0..640usize {
            m.write_word(seg, i, i as u64);
        }
        let io = m.io();
        assert_eq!(io.reads, 0, "pure appends never read blocks");
        // 640 words = 10 blocks; with 16 frames nothing is evicted yet.
        assert_eq!(io.writes, 0);
        m.flush();
        assert_eq!(m.io().writes, 10);
    }

    #[test]
    fn overwrites_of_cold_blocks_are_read_modify_write() {
        let m = Machine::new(EmConfig::new(128, 64)); // 2 frames only
        let seg = m.new_segment();
        for i in 0..64 * 4usize {
            m.write_word(seg, i, 0);
        }
        // The first blocks have been evicted (dirty) by now.
        let before = m.io();
        m.write_word(seg, 0, 7);
        let after = m.io();
        assert_eq!(after.reads - before.reads, 1);
        assert_eq!(m.read_word(seg, 0), 7);
    }

    #[test]
    fn eviction_of_dirty_blocks_counts_writes() {
        let m = Machine::new(EmConfig::new(128, 64)); // 2 frames
        let seg = m.new_segment();
        for i in 0..64 * 8usize {
            m.write_word(seg, i, i as u64);
        }
        // 8 blocks written with 2 frames: at least 6 dirty evictions.
        assert!(m.io().writes >= 6);
    }

    #[test]
    fn freeing_a_segment_releases_disk_words_without_io() {
        let m = Machine::new(EmConfig::new(1024, 64));
        let seg = m.new_segment();
        for i in 0..1000usize {
            m.write_word(seg, i, 1);
        }
        let io_before = m.io();
        assert_eq!(m.stats().disk_words, 1000);
        m.free_segment(seg);
        assert_eq!(m.stats().disk_words, 0);
        assert_eq!(m.stats().peak_disk_words, 1000);
        assert_eq!(m.io(), io_before, "freeing dead data is not an I/O");
        // Segment ids are recycled.
        let seg2 = m.new_segment();
        assert_eq!(seg2, seg);
    }

    #[test]
    fn work_counter_accumulates() {
        let m = Machine::new(EmConfig::default());
        m.work(10);
        m.work(5);
        assert_eq!(m.stats().work_ops, 15);
    }

    #[test]
    #[should_panic]
    fn write_past_end_panics() {
        let m = Machine::new(EmConfig::default());
        let seg = m.new_segment();
        m.write_word(seg, 5, 1);
    }

    fn thrash(m: &Machine) {
        let seg = m.new_segment();
        for i in 0..64 * 16usize {
            m.write_word(seg, i, i as u64);
        }
        m.cold_cache();
        for i in 0..64 * 16usize {
            let _ = m.read_word(seg, i);
        }
    }

    #[test]
    fn fault_free_machines_report_no_retries() {
        let m = Machine::new(EmConfig::new(256, 64));
        thrash(&m);
        let s = m.stats();
        assert_eq!(s.retry_io, 0);
        assert_eq!(s.retry_work, 0);
        assert!(m.fault_trace().is_empty());
        assert_eq!(
            m.transfers(),
            s.io.total(),
            "without retries, every charged I/O is one logical transfer"
        );
    }

    #[test]
    fn transient_faults_charge_retry_counters_deterministically() {
        let plan = crate::FaultPlan::new(77)
            .with_read_faults(150)
            .with_torn_writes(100);
        let run = || {
            let m = Machine::with_faults(EmConfig::new(256, 64), plan);
            thrash(&m);
            (m.stats(), m.fault_trace())
        };
        let (a_stats, a_trace) = run();
        let (b_stats, b_trace) = run();
        assert_eq!(a_stats, b_stats, "same plan, same run → same accounting");
        assert_eq!(a_trace, b_trace, "same plan, same run → same fault trace");
        assert!(a_stats.retry_io > 0, "a 15%/10% schedule must fire");
        assert!(a_stats.retry_work > 0, "backoff must be charged as work");
        assert!(
            a_stats.io.total() > m_baseline_io(),
            "retried transfers cost extra I/Os"
        );
        assert!(a_stats.io.total() - m_baseline_io() == a_stats.retry_io);
    }

    fn m_baseline_io() -> u64 {
        let m = Machine::new(EmConfig::new(256, 64));
        thrash(&m);
        m.stats().io.total()
    }

    #[test]
    fn crash_at_panics_with_a_typed_payload() {
        let plan = crate::FaultPlan::new(0).with_crash_at(10);
        let m = Machine::with_faults(EmConfig::new(256, 64), plan);
        let m2 = m.clone();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || thrash(&m2)));
        let payload = result.expect_err("the kill switch must fire");
        let crash = payload
            .downcast_ref::<crate::CrashPoint>()
            .expect("crash panics carry a CrashPoint");
        assert_eq!(crash.io, 10);
        assert_eq!(m.transfers(), 11, "the crash fired on the 11th transfer");
        assert_eq!(
            m.fault_trace().last().unwrap().kind,
            crate::FaultKind::Crash
        );
    }

    #[test]
    fn per_worker_machines_from_a_shared_config_account_independently() {
        // The PEM spawning pattern: one Copy config, one machine per worker
        // thread, independent counters and gauges.
        let cfg = EmConfig::new(256, 64);
        let counted: Vec<crate::IoStats> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0u64..3)
                .map(|w| {
                    scope.spawn(move || {
                        let m = Machine::new(cfg);
                        let mut v: crate::ExtVec<u64> = crate::ExtVec::new(&m);
                        // Worker w writes (w + 1) blocks' worth of words.
                        for i in 0..(w + 1) * 64 {
                            v.push(i);
                        }
                        m.cold_cache();
                        m.stats().io
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(counted[0].writes, 1);
        assert_eq!(counted[1].writes, 2);
        assert_eq!(counted[2].writes, 3);
        let report = crate::WorkerReport::from_per_worker(counted);
        assert_eq!(report.max_io, 3);
        assert_eq!(report.sum_io, 6);
        assert!((report.balance - 1.5).abs() < 1e-12);
    }

    #[test]
    fn machine_survives_to_be_inspected_after_a_crash() {
        // After catching the unwind, the machine handle still answers:
        // counters, trace, and further I/O all work (the "disk" survived).
        let plan = crate::FaultPlan::new(0).with_crash_at(5);
        let m = Machine::with_faults(EmConfig::new(256, 64), plan);
        let m2 = m.clone();
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || thrash(&m2)));
        assert!(m.stats().io.total() <= 5);
        assert!(!m.fault_trace().is_empty());
    }
}
