//! # emsim — an external-memory (I/O) model simulator
//!
//! This crate implements the machine model that Pagh & Silvestri's
//! *"The Input/Output Complexity of Triangle Enumeration"* (PODS 2014) — and
//! external-memory algorithmics in general, following Aggarwal & Vitter —
//! analyses algorithms in:
//!
//! * an **internal memory** of `M` words,
//! * an **external memory** (disk) of unbounded size,
//! * data moves between the two in **blocks of `B` consecutive words**, and
//! * the **I/O complexity** of an algorithm is the number of block transfers
//!   it performs.
//!
//! The simulator is deliberately *not* a wall-clock benchmark harness: it is a
//! discrete model in which every block transfer is counted exactly, so the
//! I/O bounds proved in the paper can be validated directly, free of OS page
//! caches, prefetchers, or device variance.
//!
//! ## Architecture
//!
//! * [`Machine`] — a cheap, clonable handle to the simulated machine. It owns
//!   the disk segments, the LRU block cache, the [`IoStats`] counters, the
//!   [`MemGauge`] tracking in-core working-buffer usage of cache-aware
//!   algorithms, and a coarse work (RAM-operation) counter.
//! * [`ExtVec<T>`] — a typed, growable array stored on the simulated disk.
//!   Every element access is routed through the LRU cache and charged at
//!   block granularity.
//! * [`ScanReader`] / element pushes on [`ExtVec`] — sequential access
//!   patterns, which under the LRU cache cost `⌈n·w/B⌉` I/Os as the model
//!   prescribes for scanning.
//! * [`Record`] — fixed-width encoding of elements into machine words
//!   (the paper assumes each vertex and each edge occupies one word).
//!
//! ## Fidelity notes
//!
//! The cache is an **LRU** approximation of the ideal (optimal replacement)
//! cache. Frigo et al. (cited as [11] in the paper) show LRU with a
//! constant-factor larger memory is within a constant factor of optimal for
//! any regular cache-oblivious algorithm, which is exactly the regime the
//! paper's Theorem 1 invokes, so measuring LRU misses is the standard way to
//! evaluate cache-oblivious algorithms empirically.
//!
//! Cache-aware algorithms additionally keep explicit in-core buffers (for
//! example the `αM` pivot edges of the paper's Lemma 2). Those buffers are
//! tracked by [`MemGauge`]; every algorithm in the `trienum` crate asserts
//! that its peak gauge usage stays within the configured memory budget, so a
//! run verifies both the I/O count *and* the memory discipline.
//!
//! ## Storage backends and the error taxonomy
//!
//! Underneath the block cache, every *charged* transfer is routed through a
//! [`Storage`] backend (the *charge gate*). Two gates exist:
//!
//! * the infallible in-memory default ([`storage::MemStorage`], what
//!   [`Machine::new`] installs) — always succeeds at zero cost, so
//!   fault-free runs account byte-identically to a simulator with no
//!   storage layer at all;
//! * [`FaultyStorage`] ([`Machine::with_faults`]) — injects the
//!   deterministic, seeded faults of a [`FaultPlan`]: transient read
//!   errors, torn writes, and a `CrashAt(io)` kill switch, recording every
//!   injected fault in a queryable trace ([`Machine::fault_trace`]). It
//!   *wraps* an arbitrary inner gate ([`FaultyStorage::wrapping`]), so
//!   faults compose with either data plane.
//!
//! Orthogonal to the charge gate sits the **data plane**
//! ([`BackendKind`]): where block *payloads* live. [`BackendKind::InMemory`]
//! keeps them in host vecs (the pure simulator). [`BackendKind::Disk`]
//! ([`Machine::with_backend`]) stores them in a real temp file through
//! [`DiskStorage`], fronted by an explicit [`BufferPool`] of `M/B` frames
//! whose replacement policy mirrors the simulator's LRU cache decision for
//! decision — so the charged transfer counts are identical on both planes
//! (the E11 `DISK_PARITY` gate) while the disk backend performs exactly one
//! real block read per charged read and one real write per charged write.
//!
//! Fault outcomes split into three severities:
//!
//! * **transient** — absorbed by the bounded [`RetryPolicy`]; each failed
//!   attempt charges one extra I/O (tracked in [`RunStats::retry_io`]) and
//!   exponential backoff work (tracked in [`RunStats::retry_work`]);
//! * **permanent** — retry exhaustion ([`StorageError::ReadFailed`],
//!   [`StorageError::TornWrite`]) or a full disk
//!   ([`StorageError::NoSpace`], armed via
//!   [`EmConfig::with_disk_capacity`]); surfaced as `Result`s by the
//!   `try_*` accessors of [`ExtVec`] / [`ExtSlice`] / [`ScanReader`], and
//!   as descriptive panics by the infallible accessors;
//! * **crash** — the kill switch; raised as a panic carrying a
//!   [`CrashPoint`] payload, to be caught by a chaos harness that resumes
//!   the computation from its last checkpoint.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// The simulator is the accounting ground truth for every experiment, so its
// arithmetic must not silently truncate, wrap or lose precision: CI runs
// clippy with -D warnings, which turns these pedantic cast lints into errors.
#![warn(
    clippy::cast_lossless,
    clippy::cast_possible_truncation,
    clippy::cast_possible_wrap,
    clippy::cast_precision_loss,
    clippy::cast_sign_loss,
    clippy::checked_conversions
)]

mod cache;
mod config;
mod extvec;
mod faults;
mod gauge;
mod machine;
pub mod pool;
mod record;
mod stats;
pub mod storage;

pub use config::EmConfig;
pub use extvec::{ExtSlice, ExtVec, ScanReader};
pub use faults::{CrashPoint, FaultEvent, FaultKind, FaultPlan, FaultyStorage};
pub use gauge::{MemGauge, MemLease, PhaseSnapshot};
pub use machine::{BackendKind, Machine};
pub use pool::{BufferPool, PoolTouch};
pub use record::Record;
pub use stats::{IoStats, RunStats, WorkerReport};
pub use storage::{
    BlockDevice, DiskCounters, DiskStorage, RetryPolicy, Storage, StorageError, TransferDir,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn end_to_end_scan_costs_match_model() {
        // Writing then reading n words sequentially must cost about
        // 2 * ceil(n / B) block transfers (plus at most the cache size in
        // warm-up effects).
        let cfg = EmConfig::new(1 << 10, 64);
        let machine = Machine::new(cfg);
        let n = 10_000usize;
        let mut v: ExtVec<u64> = ExtVec::new(&machine);
        for i in 0..n {
            v.push(i as u64);
        }
        let expected_blocks = n.div_ceil(64) as u64;
        // Force all dirty blocks out: the write volume is exactly one I/O per
        // block of the array (appends never read).
        machine.cold_cache();
        let after_write = machine.stats().io;
        assert_eq!(after_write.reads, 0);
        assert_eq!(after_write.writes, expected_blocks);

        let mut sum = 0u64;
        for x in v.iter() {
            sum += x;
        }
        assert_eq!(sum, (n as u64 - 1) * n as u64 / 2);
        let after_read = machine.stats().io;
        assert_eq!(after_read.reads, expected_blocks);
        assert_eq!(after_read.writes, expected_blocks);
    }
}
