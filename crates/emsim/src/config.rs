//! Configuration of the simulated external-memory machine.

/// Parameters of the external-memory machine: the internal-memory capacity
/// `M` and the block size `B`, both in machine words.
///
/// The paper's standing assumptions are `E ≥ M` (the input does not fit in
/// memory — otherwise the problem is trivial in the I/O model) and the *tall
/// cache* assumption `M = Ω(B²)`. [`EmConfig::is_tall_cache`] reports whether
/// the latter holds for a given configuration; the experiment harness only
/// uses tall-cache configurations, mirroring the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EmConfig {
    /// Internal memory size `M`, in words.
    pub mem_words: usize,
    /// Block size `B`, in words.
    pub block_words: usize,
    /// Optional cap on total disk usage, in words. `None` (the default)
    /// models the unbounded disk of the I/O model; `Some(cap)` makes appends
    /// beyond `cap` fail with [`crate::StorageError::NoSpace`], which the
    /// fallible `try_*` accessors of [`crate::ExtVec`] surface as `Result`s.
    pub disk_capacity_words: Option<u64>,
}

impl EmConfig {
    /// Creates a new configuration.
    ///
    /// # Panics
    ///
    /// Panics if `block_words` is zero or `mem_words < block_words`
    /// (the internal memory must hold at least one block).
    pub fn new(mem_words: usize, block_words: usize) -> Self {
        assert!(block_words > 0, "block size must be positive");
        assert!(
            mem_words >= block_words,
            "internal memory must hold at least one block (M={mem_words}, B={block_words})"
        );
        Self {
            mem_words,
            block_words,
            disk_capacity_words: None,
        }
    }

    /// Returns the same configuration with disk capacity capped at
    /// `capacity_words` words; appends beyond the cap fail with
    /// [`crate::StorageError::NoSpace`].
    #[must_use]
    pub fn with_disk_capacity(mut self, capacity_words: u64) -> Self {
        self.disk_capacity_words = Some(capacity_words);
        self
    }

    /// The number of block frames the internal memory can hold (`M / B`).
    pub fn frames(&self) -> usize {
        (self.mem_words / self.block_words).max(1)
    }

    /// Whether the tall-cache assumption `M ≥ B²` holds.
    pub fn is_tall_cache(&self) -> bool {
        self.mem_words >= self.block_words * self.block_words
    }

    /// The I/O cost of scanning `n` words: `⌈n / B⌉`.
    pub fn scan_cost(&self, n_words: usize) -> u64 {
        (n_words.div_ceil(self.block_words)) as u64
    }

    /// The textbook `sort(n)` bound in this configuration:
    /// `(n/B) · (1 + ⌈log_{M/B}(n/B)⌉)`, in block transfers.
    ///
    /// Used by tests and the experiment harness as the analytical reference
    /// curve for sorting-based phases.
    // The analytic curves below go through f64 deliberately: experiment
    // sizes stay far below 2^52 words, so the mantissa is exact for the
    // inputs, and the results are reference estimates, not account balances.
    #[allow(
        clippy::cast_precision_loss,
        clippy::cast_possible_truncation,
        clippy::cast_sign_loss
    )]
    pub fn sort_cost(&self, n_words: usize) -> u64 {
        if n_words == 0 {
            return 0;
        }
        let blocks = n_words.div_ceil(self.block_words) as f64;
        let fanout = (self.frames().max(2)) as f64;
        let passes = 1.0 + (blocks.ln() / fanout.ln()).max(0.0).ceil();
        (blocks * passes).ceil() as u64
    }

    /// Analytic I/O bound of the paper's main result (Theorems 1, 2, 4):
    /// `E^{3/2} / (√M · B)` for an input of `e` edges, in block transfers.
    #[allow(clippy::cast_precision_loss)] // see sort_cost
    pub fn triangle_bound(&self, e: usize) -> f64 {
        let e = e as f64;
        e.powf(1.5) / ((self.mem_words as f64).sqrt() * self.block_words as f64)
    }

    /// Analytic I/O bound of Hu–Tao–Chung (SIGMOD 2013): `E² / (M·B)`.
    #[allow(clippy::cast_precision_loss)] // see sort_cost
    pub fn hu_tao_chung_bound(&self, e: usize) -> f64 {
        let e = e as f64;
        e * e / (self.mem_words as f64 * self.block_words as f64)
    }

    /// Analytic lower bound of Theorem 3 for enumerating `t` triangles:
    /// `t / (√M·B) + t^{2/3} / B`.
    #[allow(clippy::cast_precision_loss)] // see sort_cost
    pub fn lower_bound(&self, t: u64) -> f64 {
        let t = t as f64;
        t / ((self.mem_words as f64).sqrt() * self.block_words as f64)
            + t.powf(2.0 / 3.0) / self.block_words as f64
    }
}

impl Default for EmConfig {
    /// A small laptop-scale default: `M = 2^16` words, `B = 256` words.
    fn default() -> Self {
        Self::new(1 << 16, 256)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_and_tall_cache() {
        let c = EmConfig::new(1 << 16, 256);
        assert_eq!(c.frames(), 256);
        assert!(c.is_tall_cache());
        let c2 = EmConfig::new(1 << 10, 256);
        assert_eq!(c2.frames(), 4);
        assert!(!c2.is_tall_cache());
    }

    #[test]
    fn scan_cost_rounds_up() {
        let c = EmConfig::new(1024, 64);
        assert_eq!(c.scan_cost(0), 0);
        assert_eq!(c.scan_cost(1), 1);
        assert_eq!(c.scan_cost(64), 1);
        assert_eq!(c.scan_cost(65), 2);
    }

    #[test]
    fn sort_cost_monotone() {
        let c = EmConfig::default();
        assert!(c.sort_cost(1 << 20) > c.sort_cost(1 << 16));
        assert_eq!(c.sort_cost(0), 0);
    }

    #[test]
    fn analytic_bounds_positive_and_ordered() {
        let c = EmConfig::new(1 << 14, 128);
        let e = 1 << 20;
        // For E >> M the paper's bound beats Hu et al. by sqrt(E/M).
        assert!(c.triangle_bound(e) < c.hu_tao_chung_bound(e));
        assert!(c.lower_bound(1_000_000) > 0.0);
    }

    #[test]
    #[should_panic]
    fn zero_block_rejected() {
        let _ = EmConfig::new(1024, 0);
    }

    #[test]
    #[should_panic]
    fn memory_smaller_than_block_rejected() {
        let _ = EmConfig::new(16, 64);
    }
}
