//! The LRU block cache that models the internal memory.
//!
//! The cache does **not** hold block payloads: the backing store in the
//! simulator is ordinary host RAM, so there is nothing to copy. What the
//! cache tracks is *which* blocks are resident and *which are dirty*, so that
//! cache misses and dirty evictions can be charged as read and write I/Os —
//! precisely the quantities the external-memory model counts.
//!
//! The disk backend's [`crate::BufferPool`] mirrors this cache's replacement
//! policy decision for decision (same strict LRU, same `capacity.max(1)`,
//! same miss/victim/write-back sequence), which is what makes charged
//! transfer counts identical across the two data planes. Change the policy
//! here and you must change the pool identically — the
//! `policy_matches_the_simulator_lru_cache` test in `pool.rs` and the E11
//! `DISK_PARITY` gate will both catch a drift.

use std::collections::HashMap;

/// Key identifying a block: `(segment id, block index within the segment)`.
pub(crate) type BlockKey = u64;

pub(crate) fn block_key(segment: u32, block: u64) -> BlockKey {
    (u64::from(segment) << 40) | block
}

const NIL: u32 = u32::MAX;

#[derive(Clone, Copy)]
struct Node {
    key: BlockKey,
    dirty: bool,
    prev: u32,
    next: u32,
}

/// Outcome of touching a block through the cache.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Touch {
    /// The access missed and a block had to be fetched (1 read I/O).
    pub miss: bool,
    /// A dirty block had to be written back to make room (1 write I/O).
    pub writeback: bool,
}

/// A fixed-capacity LRU set of block keys with dirty tracking.
pub(crate) struct LruCache {
    capacity: usize,
    map: HashMap<BlockKey, u32>,
    nodes: Vec<Node>,
    free: Vec<u32>,
    head: u32, // most recently used
    tail: u32, // least recently used
    // Fast path: the most recently touched key and its node index.
    last_key: BlockKey,
    last_node: u32,
}

impl LruCache {
    pub(crate) fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            capacity,
            map: HashMap::with_capacity(capacity * 2),
            nodes: Vec::with_capacity(capacity),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            last_key: u64::MAX,
            last_node: NIL,
        }
    }

    #[cfg(test)]
    pub(crate) fn capacity(&self) -> usize {
        self.capacity
    }

    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.map.len()
    }

    /// Touch `key`, marking it dirty if `write`. Returns whether this was a
    /// miss and whether a dirty block was evicted to make room.
    pub(crate) fn touch(&mut self, key: BlockKey, write: bool) -> Touch {
        // Fast path: repeated access to the same block (the common case for
        // sequential scans) skips the hash lookup entirely.
        if key == self.last_key && self.last_node != NIL {
            let idx = self.last_node;
            if write {
                self.nodes[idx as usize].dirty = true;
            }
            if self.head != idx {
                self.unlink(idx);
                self.push_front(idx);
            }
            return Touch::default();
        }

        if let Some(&idx) = self.map.get(&key) {
            if write {
                self.nodes[idx as usize].dirty = true;
            }
            self.unlink(idx);
            self.push_front(idx);
            self.last_key = key;
            self.last_node = idx;
            return Touch::default();
        }

        // Miss: evict if full, then insert.
        let mut touch = Touch {
            miss: true,
            writeback: false,
        };
        if self.map.len() >= self.capacity {
            let victim = self.tail;
            debug_assert_ne!(victim, NIL);
            let vnode = self.nodes[victim as usize];
            if vnode.dirty {
                touch.writeback = true;
            }
            self.unlink(victim);
            self.map.remove(&vnode.key);
            self.free.push(victim);
            if self.last_node == victim {
                self.last_node = NIL;
                self.last_key = u64::MAX;
            }
        }
        let idx = if let Some(i) = self.free.pop() {
            self.nodes[i as usize] = Node {
                key,
                dirty: write,
                prev: NIL,
                next: NIL,
            };
            i
        } else {
            self.nodes.push(Node {
                key,
                dirty: write,
                prev: NIL,
                next: NIL,
            });
            u32::try_from(self.nodes.len() - 1).expect("frame count exceeds u32")
        };
        self.map.insert(key, idx);
        self.push_front(idx);
        self.last_key = key;
        self.last_node = idx;
        touch
    }

    /// Drop a block from the cache without charging I/O. Used when the
    /// segment owning the block is freed (its contents are dead, so writing
    /// them back would be meaningless work the model does not require).
    pub(crate) fn discard(&mut self, key: BlockKey) {
        if let Some(idx) = self.map.remove(&key) {
            self.unlink(idx);
            self.free.push(idx);
            if self.last_node == idx {
                self.last_node = NIL;
                self.last_key = u64::MAX;
            }
        }
    }

    /// Write back every dirty resident block, returning how many writes that
    /// cost, and mark them clean. (Blocks stay resident.)
    pub(crate) fn flush(&mut self) -> u64 {
        let resident: Vec<u32> = self.map.values().copied().collect();
        let mut writes = 0;
        for idx in resident {
            let node = &mut self.nodes[idx as usize];
            if node.dirty {
                node.dirty = false;
                writes += 1;
            }
        }
        writes
    }

    /// Evict everything (counting dirty write-backs) — used when a run wants
    /// to start from a cold cache.
    pub(crate) fn clear(&mut self) -> u64 {
        let writes = self
            .map
            .values()
            .filter(|&&idx| self.nodes[idx as usize].dirty)
            .count() as u64;
        self.map.clear();
        self.nodes.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
        self.last_key = u64::MAX;
        self.last_node = NIL;
        writes
    }

    fn unlink(&mut self, idx: u32) {
        let (prev, next) = {
            let n = &self.nodes[idx as usize];
            (n.prev, n.next)
        };
        if prev != NIL {
            self.nodes[prev as usize].next = next;
        } else if self.head == idx {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next as usize].prev = prev;
        } else if self.tail == idx {
            self.tail = prev;
        }
        self.nodes[idx as usize].prev = NIL;
        self.nodes[idx as usize].next = NIL;
    }

    fn push_front(&mut self, idx: u32) {
        self.nodes[idx as usize].prev = NIL;
        self.nodes[idx as usize].next = self.head;
        if self.head != NIL {
            self.nodes[self.head as usize].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hits_and_misses() {
        let mut c = LruCache::new(2);
        assert!(c.touch(block_key(0, 0), false).miss);
        assert!(c.touch(block_key(0, 1), false).miss);
        assert!(!c.touch(block_key(0, 0), false).miss);
        // Capacity 2: touching a third block evicts the LRU (block 1).
        let t = c.touch(block_key(0, 2), false);
        assert!(t.miss);
        assert!(!t.writeback);
        assert!(c.touch(block_key(0, 1), false).miss);
    }

    #[test]
    fn dirty_eviction_counts_writeback() {
        let mut c = LruCache::new(1);
        c.touch(block_key(0, 0), true);
        let t = c.touch(block_key(0, 1), false);
        assert!(t.miss && t.writeback);
        // A clean block evicts silently.
        let t2 = c.touch(block_key(0, 2), false);
        assert!(t2.miss && !t2.writeback);
    }

    #[test]
    fn lru_order_is_respected() {
        let mut c = LruCache::new(3);
        for b in 0..3 {
            c.touch(block_key(0, b), false);
        }
        // Touch 0 to refresh it; inserting 3 must evict 1 (the oldest).
        c.touch(block_key(0, 0), false);
        c.touch(block_key(0, 3), false);
        assert!(!c.touch(block_key(0, 0), false).miss);
        assert!(!c.touch(block_key(0, 2), false).miss);
        assert!(c.touch(block_key(0, 1), false).miss);
    }

    #[test]
    fn discard_forgets_without_io() {
        let mut c = LruCache::new(2);
        c.touch(block_key(1, 0), true);
        c.discard(block_key(1, 0));
        assert_eq!(c.len(), 1.min(c.capacity()) - 1);
        // Re-touching it is a miss again but no writeback ever happened.
        assert!(c.touch(block_key(1, 0), false).miss);
    }

    #[test]
    fn flush_writes_each_dirty_block_once() {
        let mut c = LruCache::new(4);
        c.touch(block_key(0, 0), true);
        c.touch(block_key(0, 1), true);
        c.touch(block_key(0, 2), false);
        assert_eq!(c.flush(), 2);
        assert_eq!(c.flush(), 0);
    }

    #[test]
    fn clear_reports_dirty_blocks() {
        let mut c = LruCache::new(4);
        c.touch(block_key(0, 0), true);
        c.touch(block_key(0, 1), false);
        assert_eq!(c.clear(), 1);
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn same_block_fast_path_marks_dirty() {
        let mut c = LruCache::new(2);
        c.touch(block_key(0, 7), false);
        // Fast-path write must still mark the block dirty.
        c.touch(block_key(0, 7), true);
        let t = c.touch(block_key(0, 8), false);
        assert!(t.miss);
        let t = c.touch(block_key(0, 9), false);
        // Eviction of block 7 must be a writeback.
        assert!(t.miss && t.writeback);
    }
}
