//! The explicit block buffer pool fronting a real [`BlockDevice`].
//!
//! In the pure simulator the [`crate::cache::LruCache`] tracks *which*
//! blocks are resident — there is no payload to hold, because the data lives
//! in host RAM. On the disk backend ([`crate::BackendKind::Disk`]) the data
//! lives in a real file, so residency comes with an actual frame of `B`
//! words: the `BufferPool` owns `M/B` such frames, fills a missed frame from
//! the device, writes a dirty frame back on eviction (exactly once), and
//! supports *pinned* frames — a pinned frame is never chosen as an eviction
//! victim, the mechanism callers holding a live block view (e.g. a
//! materialised [`crate::ExtSlice`] window) use to keep it addressable.
//!
//! **Policy parity is the whole point.** The pool's replacement policy is
//! strict LRU, written to make *identical* decisions to the simulator's
//! `LruCache` on any pin-free access sequence (the machine never pins): same
//! misses, same victims, same dirty write-backs. That is what makes the
//! E11 `DISK_PARITY` gate — identical charged transfer counts on both
//! backends — hold by construction, with a property test in this module and
//! the CI gate as the witnesses. If you change the eviction policy here,
//! change `LruCache` identically (and vice versa).

use std::collections::HashMap;

use crate::storage::BlockDevice;

const NIL: u32 = u32::MAX;

struct Frame {
    key: u64,
    data: Vec<u64>,
    dirty: bool,
    pins: u32,
    prev: u32,
    next: u32,
}

/// Outcome of one [`BufferPool::access`]: what the pool had to do, so the
/// machine can charge the matching simulated transfers.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PoolTouch {
    /// The access missed: a frame was admitted (and, unless the block was
    /// fresh, filled from the device with one real read).
    pub miss: bool,
    /// A dirty victim frame was written back to the device to make room
    /// (one real write).
    pub writeback: bool,
}

/// A fixed-capacity pool of block frames with strict-LRU eviction, dirty
/// write-back, and pinning. See the module docs for the policy-parity
/// contract with the simulator's LRU cache.
pub struct BufferPool {
    capacity: usize,
    block_words: usize,
    frames: Vec<Frame>,
    // emlint: allow(uncharged-std, reason = "frame index of the buffer pool, host bookkeeping below the charge boundary; one entry per resident block, capped at M/B")
    map: HashMap<u64, u32>,
    free: Vec<u32>,
    head: u32, // most recently used
    tail: u32, // least recently used
    pinned_frames: usize,
}

impl BufferPool {
    /// A pool of `capacity` frames (at least one) of `block_words` words.
    pub fn new(capacity: usize, block_words: usize) -> Self {
        assert!(block_words > 0, "a frame holds at least one word");
        let capacity = capacity.max(1);
        Self {
            capacity,
            block_words,
            // emlint: allow(unleased, reason = "the pool's M/B frames ARE the modelled internal memory, below the charge boundary; sized by capacity, not by input")
            frames: Vec::with_capacity(capacity),
            // emlint: allow(uncharged-std, reason = "frame index sized by the fixed frame count, host bookkeeping below the charge boundary")
            map: HashMap::with_capacity(capacity * 2),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            pinned_frames: 0,
        }
    }

    /// Number of frames (the `M/B` of the machine that built the pool).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of resident blocks.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no block is resident.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Whether `key` is resident.
    pub fn resident(&self, key: u64) -> bool {
        self.map.contains_key(&key)
    }

    /// Number of currently pinned frames.
    pub fn pinned(&self) -> usize {
        self.pinned_frames
    }

    /// Touches block `key`, admitting it on a miss (evicting the
    /// least-recently-used *unpinned* frame if the pool is full, writing it
    /// to `dev` first when dirty). A missed frame is filled from `dev`
    /// unless `fresh` is set (a fresh append materialises a zeroed frame
    /// with no device read — mirroring the simulator, which charges no read
    /// for appends to a fresh block). `write` marks the frame dirty.
    ///
    /// # Panics
    ///
    /// Panics if every frame is pinned and an eviction is needed, or if a
    /// non-fresh miss names a block the device has never seen (a resident
    /// block is either in the pool or on the device — anything else is a
    /// caller bug).
    pub fn access(
        &mut self,
        key: u64,
        write: bool,
        fresh: bool,
        dev: &mut dyn BlockDevice,
    ) -> PoolTouch {
        if let Some(&idx) = self.map.get(&key) {
            if write {
                self.frames[idx as usize].dirty = true;
            }
            if self.head != idx {
                self.unlink(idx);
                self.push_front(idx);
            }
            return PoolTouch::default();
        }

        let mut touch = PoolTouch {
            miss: true,
            writeback: false,
        };
        // Evict (writing back a dirty victim) if the pool is full.
        let mut recycled: Option<u32> = None;
        if self.map.len() >= self.capacity {
            let mut victim = self.tail;
            while victim != NIL && self.frames[victim as usize].pins > 0 {
                victim = self.frames[victim as usize].prev;
            }
            assert!(
                victim != NIL,
                "buffer pool exhausted: all {} frames are pinned",
                self.capacity
            );
            let vkey = self.frames[victim as usize].key;
            if self.frames[victim as usize].dirty {
                touch.writeback = true;
                // Split the borrow: move the data out, write it, move it back
                // so the allocation is reused by the admitted frame.
                let data = std::mem::take(&mut self.frames[victim as usize].data);
                dev.write_block(vkey, &data);
                self.frames[victim as usize].data = data;
            }
            self.unlink(victim);
            self.map.remove(&vkey);
            recycled = Some(victim);
        }

        let idx = if let Some(i) = recycled.or_else(|| self.free.pop()) {
            let frame = &mut self.frames[i as usize];
            frame.key = key;
            frame.dirty = write;
            frame.pins = 0;
            frame.data.clear();
            frame.data.resize(self.block_words, 0);
            i
        } else {
            // emlint: allow(unleased, reason = "one B-word frame of the pool's fixed M/B-frame budget, below the charge boundary")
            self.frames.push(Frame {
                key,
                data: vec![0u64; self.block_words],
                dirty: write,
                pins: 0,
                prev: NIL,
                next: NIL,
            });
            u32::try_from(self.frames.len() - 1).expect("frame count exceeds u32")
        };
        if !fresh {
            assert!(
                dev.contains(key),
                "block {key:#x} is neither resident nor on the device"
            );
            dev.read_block(key, &mut self.frames[idx as usize].data);
        }
        self.map.insert(key, idx);
        self.push_front(idx);
        touch
    }

    /// Drops a just-admitted (or any resident, unpinned) frame without a
    /// write-back: the machine calls this when the simulated read charge for
    /// a miss fails permanently, so a retry faces a real miss again.
    pub fn discard(&mut self, key: u64) {
        if let Some(idx) = self.map.remove(&key) {
            assert_eq!(
                self.frames[idx as usize].pins, 0,
                "discarding pinned block {key:#x}"
            );
            self.unlink(idx);
            self.free.push(idx);
        }
    }

    /// Pins `key`'s frame: it will never be chosen as an eviction victim
    /// until unpinned. Pins nest.
    ///
    /// # Panics
    ///
    /// Panics if `key` is not resident.
    pub fn pin(&mut self, key: u64) {
        let idx = self.map[&key];
        let frame = &mut self.frames[idx as usize];
        if frame.pins == 0 {
            self.pinned_frames += 1;
        }
        frame.pins += 1;
    }

    /// Releases one pin of `key`'s frame.
    ///
    /// # Panics
    ///
    /// Panics if `key` is not resident or not pinned.
    pub fn unpin(&mut self, key: u64) {
        let idx = self.map[&key];
        let frame = &mut self.frames[idx as usize];
        assert!(frame.pins > 0, "unpinning unpinned block {key:#x}");
        frame.pins -= 1;
        if frame.pins == 0 {
            self.pinned_frames -= 1;
        }
    }

    /// The word at `offset` of resident block `key`.
    pub fn word(&self, key: u64, offset: usize) -> u64 {
        let idx = self.map[&key];
        self.frames[idx as usize].data[offset]
    }

    /// Stores `value` at `offset` of resident block `key`, marking it dirty.
    pub fn set_word(&mut self, key: u64, offset: usize, value: u64) {
        let idx = self.map[&key];
        let frame = &mut self.frames[idx as usize];
        frame.data[offset] = value;
        frame.dirty = true;
    }

    /// A view of resident block `key`'s frame.
    pub fn frame(&self, key: u64) -> &[u64] {
        let idx = self.map[&key];
        &self.frames[idx as usize].data
    }

    /// The dirty resident block keys, least-recently-used first (a
    /// deterministic order, so charge/write interleavings are reproducible).
    pub fn dirty_keys(&self) -> Vec<u64> {
        // emlint: allow(unleased, reason = "at most M/B keys of flush bookkeeping, below the charge boundary")
        let mut keys = Vec::new();
        let mut idx = self.tail;
        while idx != NIL {
            let frame = &self.frames[idx as usize];
            if frame.dirty {
                keys.push(frame.key);
            }
            idx = frame.prev;
        }
        keys
    }

    /// Marks resident block `key` clean (after its data reached the device).
    pub fn mark_clean(&mut self, key: u64) {
        let idx = self.map[&key];
        self.frames[idx as usize].dirty = false;
    }

    /// Writes every dirty frame to `dev` and marks it clean (frames stay
    /// resident). Returns the number of blocks written.
    pub fn flush_to(&mut self, dev: &mut dyn BlockDevice) -> u64 {
        let dirty = self.dirty_keys();
        for &key in &dirty {
            let idx = self.map[&key];
            dev.write_block(key, &self.frames[idx as usize].data);
            self.frames[idx as usize].dirty = false;
        }
        dirty.len() as u64
    }

    /// Drops every frame *without* write-backs — the caller flushes first
    /// (the machine's `cold_cache` charges those writes one by one).
    ///
    /// # Panics
    ///
    /// Panics if any frame is pinned.
    pub fn clear(&mut self) {
        assert_eq!(
            self.pinned_frames, 0,
            "clearing a buffer pool with pinned frames"
        );
        self.map.clear();
        self.frames.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
    }

    fn unlink(&mut self, idx: u32) {
        let (prev, next) = {
            let f = &self.frames[idx as usize];
            (f.prev, f.next)
        };
        if prev != NIL {
            self.frames[prev as usize].next = next;
        } else if self.head == idx {
            self.head = next;
        }
        if next != NIL {
            self.frames[next as usize].prev = prev;
        } else if self.tail == idx {
            self.tail = prev;
        }
        self.frames[idx as usize].prev = NIL;
        self.frames[idx as usize].next = NIL;
    }

    fn push_front(&mut self, idx: u32) {
        self.frames[idx as usize].prev = NIL;
        self.frames[idx as usize].next = self.head;
        if self.head != NIL {
            self.frames[self.head as usize].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }
}

impl std::fmt::Debug for BufferPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BufferPool")
            .field("capacity", &self.capacity)
            .field("block_words", &self.block_words)
            .field("resident", &self.map.len())
            .field("pinned", &self.pinned_frames)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::DiskCounters;

    /// In-memory mock device recording every executed transfer.
    struct MockDevice {
        block_words: usize,
        blocks: HashMap<u64, Vec<u64>>,
        counters: DiskCounters,
        write_log: Vec<u64>,
    }

    impl MockDevice {
        fn new(block_words: usize) -> Self {
            Self {
                block_words,
                blocks: HashMap::new(),
                counters: DiskCounters::default(),
                write_log: Vec::new(),
            }
        }
    }

    impl BlockDevice for MockDevice {
        fn block_words(&self) -> usize {
            self.block_words
        }
        fn contains(&self, key: u64) -> bool {
            self.blocks.contains_key(&key)
        }
        fn read_block(&mut self, key: u64, buf: &mut [u64]) {
            buf.copy_from_slice(&self.blocks[&key]);
            self.counters.block_reads += 1;
        }
        fn write_block(&mut self, key: u64, data: &[u64]) {
            self.blocks.insert(key, data.to_vec());
            self.counters.block_writes += 1;
            self.write_log.push(key);
        }
        fn free_block(&mut self, key: u64) {
            self.blocks.remove(&key);
        }
        fn sync(&mut self) {
            self.counters.syncs += 1;
        }
        fn counters(&self) -> DiskCounters {
            self.counters
        }
    }

    #[test]
    fn lru_eviction_order_is_strict() {
        let mut dev = MockDevice::new(2);
        let mut pool = BufferPool::new(3, 2);
        for key in [10, 11, 12] {
            assert!(pool.access(key, true, true, &mut dev).miss);
        }
        // Refresh 10; admitting 13 must evict 11 (the least recently used).
        assert!(!pool.access(10, false, false, &mut dev).miss);
        assert!(pool.access(13, true, true, &mut dev).miss);
        assert!(pool.resident(10) && pool.resident(12) && pool.resident(13));
        assert!(!pool.resident(11));
        assert_eq!(dev.write_log, vec![11], "only the victim was written back");
    }

    #[test]
    fn dirty_frames_are_written_back_exactly_once() {
        let mut dev = MockDevice::new(2);
        let mut pool = BufferPool::new(1, 2);
        pool.access(1, true, true, &mut dev);
        pool.set_word(1, 0, 99);
        // Eviction by 2: block 1 written back once.
        let t = pool.access(2, false, true, &mut dev);
        assert!(t.miss && t.writeback);
        assert_eq!(dev.write_log, vec![1]);
        // Re-admitting 1 reads it back; evicting it again while *clean*
        // writes nothing.
        let t = pool.access(1, false, false, &mut dev);
        assert!(t.miss && !t.writeback, "block 2 was clean");
        assert_eq!(pool.word(1, 0), 99);
        let t = pool.access(3, false, true, &mut dev);
        assert!(t.miss && !t.writeback, "block 1 is clean after write-back");
        assert_eq!(dev.write_log, vec![1], "no second write-back");
    }

    #[test]
    fn pinned_frames_are_never_victims() {
        let mut dev = MockDevice::new(2);
        let mut pool = BufferPool::new(2, 2);
        pool.access(1, true, true, &mut dev);
        pool.access(2, true, true, &mut dev);
        pool.pin(1);
        assert_eq!(pool.pinned(), 1);
        // 1 is the LRU, but pinned: 2 must be evicted instead, twice over.
        pool.access(3, false, true, &mut dev);
        assert!(pool.resident(1) && pool.resident(3) && !pool.resident(2));
        pool.access(4, false, true, &mut dev);
        assert!(pool.resident(1) && pool.resident(4) && !pool.resident(3));
        pool.unpin(1);
        assert_eq!(pool.pinned(), 0);
        pool.access(5, false, true, &mut dev);
        assert!(!pool.resident(1), "unpinned frames evict normally again");
    }

    #[test]
    #[should_panic(expected = "all 1 frames are pinned")]
    fn fully_pinned_pool_panics_on_admission() {
        let mut dev = MockDevice::new(2);
        let mut pool = BufferPool::new(1, 2);
        pool.access(1, true, true, &mut dev);
        pool.pin(1);
        pool.access(2, false, true, &mut dev);
    }

    #[test]
    fn flush_writes_each_dirty_frame_once_and_clear_drops_all() {
        let mut dev = MockDevice::new(2);
        let mut pool = BufferPool::new(4, 2);
        pool.access(1, true, true, &mut dev);
        pool.access(2, true, true, &mut dev);
        pool.access(3, false, true, &mut dev);
        assert_eq!(pool.dirty_keys(), vec![1, 2], "LRU-first order");
        assert_eq!(pool.flush_to(&mut dev), 2);
        assert_eq!(pool.flush_to(&mut dev), 0, "flushed frames are clean");
        pool.clear();
        assert!(pool.is_empty());
        assert_eq!(dev.counters().block_writes, 2);
    }

    /// The policy-parity property: on any pin-free access sequence the pool
    /// makes exactly the decisions of the simulator's `LruCache` — same
    /// misses, same dirty write-backs. (This is what makes disk-backend
    /// charged counts identical to the simulator's, the E11 `DISK_PARITY`
    /// gate.)
    #[test]
    fn policy_matches_the_simulator_lru_cache() {
        use crate::cache::LruCache;
        for capacity in [1usize, 2, 3, 7] {
            let mut dev = MockDevice::new(1);
            let mut pool = BufferPool::new(capacity, 1);
            let mut cache = LruCache::new(capacity);
            // Deterministic pseudo-random walk over a key space larger than
            // the capacity, mixing reads and writes.
            let mut x = 0x9E37_79B9u64;
            for step in 0..5_000u64 {
                x = x
                    .wrapping_mul(6_364_136_223_846_793_005)
                    .wrapping_add(1_442_695_040_888_963_407);
                let key = (x >> 33) % (capacity as u64 * 3 + 2);
                let write = x & 1 == 0;
                let sim = cache.touch(key, write);
                // `fresh` mirrors the machine: a miss on a block the device
                // has never seen only happens for fresh appends, which the
                // machine detects itself; here every first touch is fresh.
                let fresh = !dev.contains(key) && !pool.resident(key);
                let real = pool.access(key, write, fresh, &mut dev);
                assert_eq!(
                    (sim.miss, sim.writeback),
                    (real.miss, real.writeback),
                    "capacity {capacity}, step {step}, key {key}, write {write}"
                );
            }
        }
    }

    #[test]
    fn discard_drops_without_writeback() {
        let mut dev = MockDevice::new(2);
        let mut pool = BufferPool::new(2, 2);
        pool.access(1, true, true, &mut dev);
        pool.discard(1);
        assert!(!pool.resident(1));
        assert_eq!(dev.counters().block_writes, 0);
    }
}
