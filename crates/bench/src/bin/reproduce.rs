//! Regenerates every experiment table recorded in EXPERIMENTS.md.
//!
//! ```text
//! cargo run --release -p trienum-bench --bin reproduce            # all experiments
//! cargo run --release -p trienum-bench --bin reproduce -- --exp e2 --quick
//! ```
//!
//! `--quick` shrinks the instance sizes (useful for CI smoke runs); the
//! default sizes are the ones EXPERIMENTS.md records.

use trienum_bench::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let selected: Option<String> = args
        .iter()
        .position(|a| a == "--exp")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.to_lowercase());
    let want = |name: &str| selected.as_deref().is_none_or(|s| s == name);

    println!("trienum experiment harness — reproducing the claims of");
    println!(
        "Pagh & Silvestri, \"The Input/Output Complexity of Triangle Enumeration\" (PODS 2014)"
    );
    println!("(simulated external-memory machine; every I/O is an exact block-transfer count)");

    if want("e1") {
        let sizes: &[usize] = if quick {
            &[2_000, 4_000]
        } else {
            &[4_000, 8_000, 16_000, 32_000]
        };
        let rows = experiment_e1(sizes, true);
        println!(
            "{}",
            render_table("E1: I/O scaling in E (ER graphs, M=4096, B=64)", &rows)
        );
    }
    if want("e2") {
        // Quick mode includes E/M = 8 so the crossover gate (which starts
        // there) is exercised by the CI smoke run too.
        let ratios: &[usize] = if quick {
            &[4, 8, 16]
        } else {
            &[4, 8, 16, 32, 64]
        };
        let rows = experiment_e2(ratios);
        println!(
            "{}",
            render_table(
                "E2: measured vs predicted improvement over Hu-Tao-Chung (M=512, B=32)",
                &rows
            )
        );
        // I/O-budget gate (wired into CI through the --quick smoke run and
        // the full-size --exp e2 step): fail loudly if the cache-aware path
        // regresses toward its old per-triple step-3 constant or loses the
        // crossover against Hu-Tao-Chung.
        match check_e2_io_budget(&rows) {
            Ok(()) => println!(
                "io-budget gate: cache-aware io/bound within ceiling \
                 {CACHE_AWARE_IO_CEILING}, crossover >= 1.0 from E/M = \
                 {CACHE_AWARE_CROSSOVER_FROM}"
            ),
            Err(msg) => {
                eprintln!("io-budget gate FAILED: {msg}");
                std::process::exit(1);
            }
        }
    }
    if want("e3") {
        let configs: &[(usize, usize)] = if quick {
            &[(1 << 10, 32), (1 << 13, 32)]
        } else {
            &[
                (1 << 9, 32),
                (1 << 10, 32),
                (1 << 12, 32),
                (1 << 14, 32),
                (1 << 12, 64),
                (1 << 12, 128),
                (1 << 14, 128),
            ]
        };
        let e = if quick { 4_000 } else { 12_000 };
        let rows = experiment_e3(e, configs);
        println!(
            "{}",
            render_table(
                &format!("E3: cache-obliviousness — one binary, E={e}, varying (M, B)"),
                &rows
            )
        );
    }
    if want("e4") {
        let sizes: &[usize] = if quick { &[40, 60] } else { &[40, 60, 80, 100] };
        let rows = experiment_e4(sizes);
        println!(
            "{}",
            render_table(
                "E4: optimality vs the Theorem 3 lower bound (cliques, M=512, B=32)",
                &rows
            )
        );
    }
    if want("e5") {
        let sizes: &[usize] = if quick { &[4_000] } else { &[8_000, 16_000] };
        let rows = experiment_e5(sizes);
        println!(
            "{}",
            render_table("E5: derandomization — colour balance and I/O cost", &rows)
        );
    }
    if want("e6") {
        let groups: &[usize] = if quick { &[40] } else { &[40, 120] };
        let rows = experiment_e6(groups);
        println!(
            "{}",
            render_table("E6: the 5NF Sells join as triangle enumeration", &rows)
        );
    }
    if want("e7") {
        let sizes: &[usize] = if quick { &[4_000] } else { &[8_000, 16_000] };
        let rows = experiment_e7(sizes);
        println!(
            "{}",
            render_table("E7: work optimality (operations vs E^1.5)", &rows)
        );
        // Work-budget gate (wired into CI through the --quick smoke run):
        // fail loudly if the cache-oblivious path regresses toward its old
        // ~52x constant.
        match check_e7_work_budget(&rows) {
            Ok(()) => println!(
                "work-budget gate: cache-oblivious work/E^1.5 within ceiling \
                 {CACHE_OBLIVIOUS_WORK_CEILING}"
            ),
            Err(msg) => {
                eprintln!("work-budget gate FAILED: {msg}");
                std::process::exit(1);
            }
        }
    }
    if want("e8") {
        let (e, trials) = if quick { (4_000, 10) } else { (16_000, 30) };
        let rows = experiment_e8(e, trials);
        println!(
            "{}",
            render_table(
                "E8: Lemma 3 — E[X_xi] <= E*M over random 4-wise colourings",
                &rows
            )
        );
    }
}
