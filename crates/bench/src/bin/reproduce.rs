//! Regenerates every experiment table recorded in EXPERIMENTS.md.
//!
//! ```text
//! cargo run --release -p trienum-bench --bin reproduce            # all experiments
//! cargo run --release -p trienum-bench --bin reproduce -- --exp e2 --quick
//! cargo run --release -p trienum-bench --bin reproduce -- --json bench-records
//! ```
//!
//! `--quick` shrinks the instance sizes (useful for CI smoke runs); the
//! default sizes are the ones EXPERIMENTS.md records. `--json <dir>` writes
//! one machine-readable `BENCH_E<k>.json` record per executed experiment
//! (rows plus gate verdicts) into `dir` — CI uploads these as artifacts so
//! the performance trajectory is tracked run over run. Gate failures and
//! record-write failures are all reported after every selected experiment
//! has run (and its record been attempted), then the process exits
//! non-zero.

use trienum_bench::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let selected: Option<String> = args
        .iter()
        .position(|a| a == "--exp")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.to_lowercase());
    let json_dir: Option<std::path::PathBuf> = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .map(std::path::PathBuf::from);
    let want = |name: &str| selected.as_deref().is_none_or(|s| s == name);

    let mut failures: Vec<String> = Vec::new();
    fn write_record(
        json_dir: &Option<std::path::PathBuf>,
        experiment: &str,
        title: &str,
        rows: &[Row],
        phase_peaks: &[PhasePeakRow],
        gates: &[GateOutcome],
        failures: &mut Vec<String>,
    ) {
        if let Some(dir) = json_dir {
            match write_experiment_record(dir, experiment, title, rows, phase_peaks, gates) {
                Ok(path) => println!("wrote {}", path.display()),
                // Collected, not fatal: the remaining experiments (and their
                // gate verdicts) must still run and be reported.
                Err(err) => failures.push(format!("writing the {experiment} record: {err}")),
            }
        }
    }

    println!("trienum experiment harness — reproducing the claims of");
    println!(
        "Pagh & Silvestri, \"The Input/Output Complexity of Triangle Enumeration\" (PODS 2014)"
    );
    println!("(simulated external-memory machine; every I/O is an exact block-transfer count)");

    if want("e1") {
        let sizes: &[usize] = if quick {
            &[2_000, 4_000]
        } else {
            &[4_000, 8_000, 16_000, 32_000]
        };
        let rows = experiment_e1(sizes, true);
        let title = "E1: I/O scaling in E (ER graphs, M=4096, B=64)";
        println!("{}", render_table(title, &rows));
        write_record(&json_dir, "e1", title, &rows, &[], &[], &mut failures);
    }
    if want("e2") {
        // Quick mode includes E/M = 8 so the crossover gate (which starts
        // there) is exercised by the CI smoke run too.
        let ratios: &[usize] = if quick {
            &[4, 8, 16]
        } else {
            &[4, 8, 16, 32, 64]
        };
        let (rows, peaks) = experiment_e2(ratios);
        let title = "E2: measured vs predicted improvement over Hu-Tao-Chung (M=512, B=32)";
        println!("{}", render_table(title, &rows));
        println!(
            "{}",
            render_phase_peaks("E2: per-phase gauge peaks", &peaks)
        );
        // I/O-budget gate (wired into CI through the --quick smoke run and
        // the full-size --exp e2 step): fail loudly if the cache-aware path
        // regresses toward its old per-triple step-3 constant or loses the
        // crossover against Hu-Tao-Chung.
        let verdict = check_e2_io_budget(&rows);
        let peak_verdict = check_phase_peak_budgets(&peaks);
        write_record(
            &json_dir,
            "e2",
            title,
            &rows,
            &peaks,
            &[
                GateOutcome::of("CACHE_AWARE_IO_CEILING", &verdict),
                GateOutcome::of("PHASE_PEAK_BUDGET", &peak_verdict),
            ],
            &mut failures,
        );
        match verdict {
            Ok(()) => println!(
                "io-budget gate: cache-aware io/bound within ceiling \
                 {CACHE_AWARE_IO_CEILING}, crossover >= 1.0 from E/M = \
                 {CACHE_AWARE_CROSSOVER_FROM}"
            ),
            Err(msg) => failures.push(format!("E2 io-budget gate: {msg}")),
        }
        match peak_verdict {
            Ok(()) => println!("phase-peak gate: every cache-aware phase within 2M words"),
            Err(msg) => failures.push(format!("E2 phase-peak gate: {msg}")),
        }
    }
    if want("e3") {
        let configs: &[(usize, usize)] = if quick {
            &[(1 << 10, 32), (1 << 13, 32)]
        } else {
            &[
                (1 << 9, 32),
                (1 << 10, 32),
                (1 << 12, 32),
                (1 << 14, 32),
                (1 << 12, 64),
                (1 << 12, 128),
                (1 << 14, 128),
            ]
        };
        let e = if quick { 4_000 } else { 12_000 };
        let (rows, peaks) = experiment_e3(e, configs);
        let title = format!("E3: cache-obliviousness — one binary, E={e}, varying (M, B)");
        println!("{}", render_table(&title, &rows));
        println!(
            "{}",
            render_phase_peaks("E3: per-phase gauge peaks", &peaks)
        );
        // I/O-budget gate (wired into CI through the --quick smoke run and
        // the full-size --exp e3 step): fail loudly if the cache-oblivious
        // path regresses toward its pre-rewrite normalised-I/O band.
        let verdict = check_e3_io_budget(&rows);
        let peak_verdict = check_phase_peak_budgets(&peaks);
        write_record(
            &json_dir,
            "e3",
            &title,
            &rows,
            &peaks,
            &[
                GateOutcome::of("CACHE_OBLIVIOUS_IO_CEILING", &verdict),
                GateOutcome::of("PHASE_PEAK_BUDGET", &peak_verdict),
            ],
            &mut failures,
        );
        match verdict {
            Ok(()) => println!(
                "io-budget gate: cache-oblivious io/bound within ceiling \
                 {CACHE_OBLIVIOUS_IO_CEILING}"
            ),
            Err(msg) => failures.push(format!("E3 io-budget gate: {msg}")),
        }
        match peak_verdict {
            Ok(()) => println!(
                "phase-peak gate: every cache-oblivious phase within \
                 {CACHE_OBLIVIOUS_PHASE_PEAK_PER_EDGE} words/edge"
            ),
            Err(msg) => failures.push(format!("E3 phase-peak gate: {msg}")),
        }
    }
    if want("e4") {
        let sizes: &[usize] = if quick { &[40, 60] } else { &[40, 60, 80, 100] };
        let rows = experiment_e4(sizes);
        let title = "E4: optimality vs the Theorem 3 lower bound (cliques, M=512, B=32)";
        println!("{}", render_table(title, &rows));
        write_record(&json_dir, "e4", title, &rows, &[], &[], &mut failures);
    }
    if want("e5") {
        let sizes: &[usize] = if quick { &[4_000] } else { &[8_000, 16_000] };
        let rows = experiment_e5(sizes);
        let title = "E5: derandomization — colour balance and I/O cost";
        println!("{}", render_table(title, &rows));
        write_record(&json_dir, "e5", title, &rows, &[], &[], &mut failures);
    }
    if want("e6") {
        let groups: &[usize] = if quick { &[40] } else { &[40, 120] };
        let rows = experiment_e6(groups);
        let title = "E6: the 5NF Sells join as triangle enumeration";
        println!("{}", render_table(title, &rows));
        write_record(&json_dir, "e6", title, &rows, &[], &[], &mut failures);
    }
    if want("e7") {
        let sizes: &[usize] = if quick { &[4_000] } else { &[8_000, 16_000] };
        let (rows, peaks) = experiment_e7(sizes);
        let title = "E7: work optimality (operations vs E^1.5)";
        println!("{}", render_table(title, &rows));
        println!(
            "{}",
            render_phase_peaks("E7: per-phase gauge peaks", &peaks)
        );
        // Work-budget gate (wired into CI through the --quick smoke run):
        // fail loudly if the cache-oblivious path regresses toward its old
        // per-level constants.
        let verdict = check_e7_work_budget(&rows);
        let peak_verdict = check_phase_peak_budgets(&peaks);
        write_record(
            &json_dir,
            "e7",
            title,
            &rows,
            &peaks,
            &[
                GateOutcome::of("CACHE_OBLIVIOUS_WORK_CEILING", &verdict),
                GateOutcome::of("PHASE_PEAK_BUDGET", &peak_verdict),
            ],
            &mut failures,
        );
        match verdict {
            Ok(()) => println!(
                "work-budget gate: cache-oblivious work/E^1.5 within ceiling \
                 {CACHE_OBLIVIOUS_WORK_CEILING}"
            ),
            Err(msg) => failures.push(format!("E7 work-budget gate: {msg}")),
        }
        match peak_verdict {
            Ok(()) => println!("phase-peak gate: every phase within its declared budget"),
            Err(msg) => failures.push(format!("E7 phase-peak gate: {msg}")),
        }
    }
    if want("e8") {
        let (e, trials) = if quick { (4_000, 10) } else { (16_000, 30) };
        let rows = experiment_e8(e, trials);
        let title = "E8: Lemma 3 — E[X_xi] <= E*M over random 4-wise colourings";
        println!("{}", render_table(title, &rows));
        write_record(&json_dir, "e8", title, &rows, &[], &[], &mut failures);
    }

    if want("e9") {
        let outcome = experiment_e9(quick);
        let title = "E9: chaos — crash sweep, retry/backoff, checkpoint/resume (M=1024, B=32)";
        // The control row and the sweep rows have different columns, so they
        // render as separate tables (the JSON record keeps them together).
        println!("{}", render_table(title, &outcome.rows[..1]));
        println!(
            "{}",
            render_table(
                "E9: crash sweep (one row per injected crash point)",
                &outcome.rows[1..]
            )
        );
        // The chaos gates (wired into CI through the dedicated chaos job):
        // every injected crash point must resume to the reference run's
        // exact triangle multiset with exactly-once delivery, bounded
        // retries, no leaked leases, and recovery I/O within the budget —
        // and the fault layer must cost nothing when unused.
        for gate in &outcome.gates {
            match gate.passed {
                true => println!("{} gate: {}", gate.name, gate.detail),
                false => failures.push(format!("E9 {} gate: {}", gate.name, gate.detail)),
            }
        }
        write_record(
            &json_dir,
            "e9",
            title,
            &outcome.rows,
            &[],
            &outcome.gates,
            &mut failures,
        );
        if let Some(dir) = &json_dir {
            match write_fault_trace_record(dir, &outcome.fault_trace) {
                Ok(path) => println!("wrote {}", path.display()),
                Err(err) => failures.push(format!("writing the e9 fault trace: {err}")),
            }
        }
    }

    if want("e10") {
        let outcome = experiment_e10(quick);
        let title = "E10: multi-worker PEM sweep — P in {1,2,4,8}, per-worker machines";
        println!("{}", render_table(title, &outcome.rows));
        println!(
            "{}",
            render_table(
                "E10: per-worker I/O (sorted by worker index)",
                &outcome.worker_rows
            )
        );
        // Wall-clock is printed but deliberately kept out of the JSON
        // record: timing is machine-dependent, the record is byte-stable.
        println!(
            "{}",
            render_table(
                "E10: wall-clock (stdout only, not recorded)",
                &outcome.timing
            )
        );
        for gate in &outcome.gates {
            match gate.passed {
                true => println!("{} gate: {}", gate.name, gate.detail),
                false => failures.push(format!("E10 {} gate: {}", gate.name, gate.detail)),
            }
        }
        let mut recorded = outcome.rows.clone();
        recorded.extend(outcome.worker_rows.iter().cloned());
        write_record(
            &json_dir,
            "e10",
            title,
            &recorded,
            &[],
            &outcome.gates,
            &mut failures,
        );
    }

    if want("e11") {
        let outcome = experiment_e11(quick);
        let title = "E11: sim-vs-disk — in-memory spec vs file-backed witness (M=4096, B=64)";
        println!("{}", render_table(title, &outcome.rows));
        // E11's timings ARE part of the JSON record (measured wall-clock
        // next to simulated I/O is the point of the experiment), so this
        // record is reproducible in its counts but not byte-stable.
        println!(
            "{}",
            render_table("E11: wall-clock (recorded)", &outcome.timing)
        );
        for gate in &outcome.gates {
            match gate.passed {
                true => println!("{} gate: {}", gate.name, gate.detail),
                false => failures.push(format!("E11 {} gate: {}", gate.name, gate.detail)),
            }
        }
        let mut recorded = outcome.rows.clone();
        recorded.extend(outcome.timing.iter().cloned());
        write_record(
            &json_dir,
            "e11",
            title,
            &recorded,
            &[],
            &outcome.gates,
            &mut failures,
        );
    }

    if !failures.is_empty() {
        for failure in &failures {
            eprintln!("gate FAILED: {failure}");
        }
        std::process::exit(1);
    }
}
