//! # trienum-bench — the experiment harness
//!
//! The paper is a theory paper with no measured tables or figures; the
//! "evaluation" this crate reproduces is therefore the set of quantitative
//! claims made by its theorems (see DESIGN.md §6 and EXPERIMENTS.md). Each
//! experiment is a function returning printable rows, shared between
//!
//! * the `reproduce` binary (`cargo run --release -p trienum-bench --bin
//!   reproduce`), which regenerates every table in EXPERIMENTS.md, and
//! * the Criterion benches (`cargo bench`), which additionally measure
//!   wall-clock time of the simulator runs at a smaller scale.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use emsim::{
    BackendKind, CrashPoint, EmConfig, FaultEvent, FaultPlan, Machine, PhaseSnapshot, RetryPolicy,
};
use graphgen::{generators, naive, Graph};
use trienum::checkpoint::atomic_write;
use trienum::lower_bound::LowerBound;
use trienum::{
    count_triangles, enumerate_triangles, enumerate_triangles_on, enumerate_triangles_sharded,
    enumerate_triangles_with_recovery, measure_random_coloring_balance, resume_enumeration,
    Algorithm, Checkpoint, CheckpointSpec, CollectingSink, ExtGraph, RunReport, ShardPlan,
};

/// One row of an experiment table: a label plus named numeric columns.
#[derive(Debug, Clone)]
pub struct Row {
    /// Row label (e.g. the parameter value it corresponds to).
    pub label: String,
    /// `(column name, value)` pairs, in display order.
    pub values: Vec<(String, f64)>,
}

impl Row {
    /// Creates a row.
    pub fn new(label: impl Into<String>) -> Self {
        Self {
            label: label.into(),
            values: Vec::new(),
        }
    }

    /// Adds a column.
    pub fn col(mut self, name: &str, value: f64) -> Self {
        self.values.push((name.to_string(), value));
        self
    }
}

/// Per-phase peak gauge usage of one run — the dynamic half of the charge
/// accounting. Serialised into the `BENCH_E<k>.json` records (E2, E3, E7)
/// so CI can diff how many working-buffer words each phase had resident at
/// its worst, not just the run-wide maximum.
#[derive(Debug, Clone)]
pub struct PhasePeakRow {
    /// Which run the peaks belong to (same label style as [`Row`]).
    pub case: String,
    /// Declared per-phase budget in words; `None` for ungated baseline runs.
    pub budget_words: Option<u64>,
    /// The gauge snapshots, in phase execution order.
    pub phases: Vec<PhaseSnapshot>,
}

impl PhasePeakRow {
    /// Captures `report`'s phase peaks under `case`, gated by `budget_words`.
    pub fn of(case: impl Into<String>, report: &RunReport, budget_words: Option<u64>) -> Self {
        Self {
            case: case.into(),
            budget_words,
            phases: report.phase_peaks.clone(),
        }
    }
}

/// Per-phase gauge budget for the cache-aware algorithms: the same `2M`
/// slack the whole-run peak assertions in the test-suite allow (the paper's
/// `O(M)` with a small constant).
pub fn cache_aware_phase_budget(cfg: EmConfig) -> u64 {
    2 * cfg.mem_words as u64
}

/// Per-phase gauge budget for the cache-oblivious algorithm, in **words per
/// edge**. The algorithm never reads `M`, so its resident footprint is a
/// function of `E` alone and the budget must be too.
///
/// Recorded 2026-08-08 when the per-phase snapshots were introduced. The
/// `recursion` phase dominates: 1.14 words/edge at `E = 4000` and 0.97 at
/// `E = 12000` (falling with `E`), almost all of it the memoised colour
/// bits (`bit_cache_lease`) plus one subproblem's edge list; `root_sort`
/// peaks at 0 (the pre-sorted input takes the early exit without leasing)
/// and `leaf_batch` only carries the memo words forward. A regression that
/// holds a whole level of the recursion tree resident (the failure mode the
/// depth-first order exists to avoid) costs a multiple of this and trips
/// the gate immediately, while honest noise has ≥ 30% headroom at the
/// `--quick` size.
pub const CACHE_OBLIVIOUS_PHASE_PEAK_PER_EDGE: f64 = 1.5;

/// The cache-oblivious per-phase budget for an `E`-edge input, in words.
pub fn cache_oblivious_phase_budget(e: usize) -> u64 {
    (CACHE_OBLIVIOUS_PHASE_PEAK_PER_EDGE * e as f64) as u64
}

/// Checks every gated [`PhasePeakRow`] against its declared budget; returns
/// a description of the first offending phase, if any.
pub fn check_phase_peak_budgets(peaks: &[PhasePeakRow]) -> Result<(), String> {
    for row in peaks {
        let Some(budget) = row.budget_words else {
            continue;
        };
        for p in &row.phases {
            if p.peak_words > budget {
                return Err(format!(
                    "run '{}' phase '{}': peak {} words exceeds the declared budget of \
                     {budget} words",
                    row.case, p.name, p.peak_words
                ));
            }
        }
    }
    Ok(())
}

/// Renders per-phase peak rows as an aligned text table.
pub fn render_phase_peaks(title: &str, peaks: &[PhasePeakRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!("\n== {title} ==\n"));
    out.push_str(&format!(
        "{:<28} {:>24} {:>12} {:>12} {:>12}\n",
        "case", "phase", "peak_w", "live_w", "budget_w"
    ));
    for row in peaks {
        let budget = row
            .budget_words
            .map_or_else(|| "-".to_string(), |b| b.to_string());
        for p in &row.phases {
            out.push_str(&format!(
                "{:<28} {:>24} {:>12} {:>12} {:>12}\n",
                row.case, p.name, p.peak_words, p.live_words, budget
            ));
        }
    }
    out
}

/// Renders rows as an aligned text table.
pub fn render_table(title: &str, rows: &[Row]) -> String {
    let mut out = String::new();
    out.push_str(&format!("\n== {title} ==\n"));
    if rows.is_empty() {
        out.push_str("(no rows)\n");
        return out;
    }
    let mut header = format!("{:<28}", "case");
    for (name, _) in &rows[0].values {
        header.push_str(&format!(" {name:>16}"));
    }
    out.push_str(&header);
    out.push('\n');
    for row in rows {
        let mut line = format!("{:<28}", row.label);
        for (_, v) in &row.values {
            if v.abs() >= 1000.0 || (*v != 0.0 && v.abs() < 0.01) {
                line.push_str(&format!(" {v:>16.3e}"));
            } else {
                line.push_str(&format!(" {v:>16.2}"));
            }
        }
        out.push_str(&line);
        out.push('\n');
    }
    out
}

/// The default machine configuration used by the experiments
/// (`M = 2^12` words, `B = 64` words — a deliberately memory-starved machine
/// so `E/M` reaches interesting values at laptop scale).
pub fn default_config() -> EmConfig {
    EmConfig::new(1 << 12, 64)
}

/// The three paper algorithms with fixed seeds (experiments are reproducible).
pub fn paper_algorithms() -> Vec<Algorithm> {
    vec![
        Algorithm::CacheAwareRandomized { seed: 0xA11CE },
        Algorithm::CacheObliviousRandomized { seed: 0xA11CE },
        Algorithm::DeterministicCacheAware {
            family_seed: 0xA11CE,
            candidates: Some(32),
        },
    ]
}

fn run(graph: &Graph, alg: Algorithm, cfg: EmConfig) -> RunReport {
    let (_, report) = count_triangles(graph, alg, cfg);
    report
}

/// **E1 — I/O scaling in `E`.** All algorithms on Erdős–Rényi graphs of
/// growing size at a fixed machine; reports raw I/Os and the I/O count
/// normalised by each algorithm's own analytic bound (flat ⇔ the bound's
/// shape is right).
pub fn experiment_e1(sizes: &[usize], include_cubic: bool) -> Vec<Row> {
    let cfg = default_config();
    let mut rows = Vec::new();
    for &e in sizes {
        let g = generators::erdos_renyi(e / 8, e, 1);
        let mut algs = paper_algorithms();
        algs.push(Algorithm::HuTaoChung);
        algs.push(Algorithm::SortBased);
        if include_cubic && e <= 4_000 {
            algs.push(Algorithm::BlockNestedLoop);
        }
        for alg in algs {
            let r = run(&g, alg, cfg);
            rows.push(
                Row::new(format!("E={e} {}", alg.name()))
                    .col("io", r.io.total() as f64)
                    .col(
                        "io/own_bound",
                        r.io.total() as f64 / alg.analytic_bound(cfg, e).max(1.0),
                    )
                    .col("io/paper_bound", r.normalized_to_triangle_bound())
                    .col("triangles", r.triangles as f64),
            );
        }
    }
    rows
}

/// **E2 — improvement factor over Hu–Tao–Chung.** Sweeps `E/M` and reports
/// the measured I/O ratio (Hu et al. / cache-aware) against the paper's
/// predicted `min(√(E/M), √M)` improvement, plus the cache-aware I/O
/// normalised by the paper's `E^{3/2}/(√M·B)` bound (the column the
/// [`CACHE_AWARE_IO_CEILING`] gate watches).
pub fn experiment_e2(e_over_m: &[usize]) -> (Vec<Row>, Vec<PhasePeakRow>) {
    let mem = 512usize;
    let cfg = EmConfig::new(mem, 32);
    let mut rows = Vec::new();
    let mut peaks = Vec::new();
    for &ratio in e_over_m {
        let e = mem * ratio;
        let g = generators::erdos_renyi((e / 8).max(64), e, 2);
        let aware = run(&g, Algorithm::CacheAwareRandomized { seed: 3 }, cfg);
        let hu = run(&g, Algorithm::HuTaoChung, cfg);
        peaks.push(PhasePeakRow::of(
            format!("E/M={ratio} {}", aware.algorithm),
            &aware,
            Some(cache_aware_phase_budget(cfg)),
        ));
        peaks.push(PhasePeakRow::of(
            format!("E/M={ratio} {}", hu.algorithm),
            &hu,
            None,
        ));
        let predicted = (ratio as f64).sqrt().min((mem as f64).sqrt());
        rows.push(
            Row::new(format!("E/M={ratio}"))
                .col("aware_io", aware.io.total() as f64)
                .col(
                    "aware_io/bound",
                    aware.io.total() as f64 / cfg.triangle_bound(e).max(1.0),
                )
                .col("hu_io", hu.io.total() as f64)
                .col(
                    "measured_gain",
                    hu.io.total() as f64 / aware.io.total() as f64,
                )
                .col("predicted_gain", predicted),
        );
    }
    (rows, peaks)
}

/// **E3 — cache-obliviousness.** One fixed graph and one fixed algorithm
/// (which never reads `M`/`B`), swept across machine configurations; the
/// normalised I/O stays in a narrow band.
pub fn experiment_e3(e: usize, configs: &[(usize, usize)]) -> (Vec<Row>, Vec<PhasePeakRow>) {
    let g = generators::erdos_renyi(e / 8, e, 7);
    let alg = Algorithm::CacheObliviousRandomized { seed: 11 };
    let mut rows = Vec::new();
    let mut peaks = Vec::new();
    for &(m, b) in configs {
        let cfg = EmConfig::new(m, b);
        let r = run(&g, alg, cfg);
        peaks.push(PhasePeakRow::of(
            format!("M={m} B={b}"),
            &r,
            Some(cache_oblivious_phase_budget(e)),
        ));
        rows.push(
            Row::new(format!("M={m} B={b}"))
                .col("io", r.io.total() as f64)
                .col("bound", cfg.triangle_bound(e))
                .col("io/bound", r.normalized_to_triangle_bound())
                .col("subproblems", r.extra("subproblems").unwrap_or(0.0)),
        );
    }
    (rows, peaks)
}

/// **E4 — optimality against Theorem 3.** Cliques (the lower-bound witness,
/// `t = Θ(E^{3/2})`): measured I/Os versus the lower bound. A small memory
/// (`M = 512`) is used so that the graphs genuinely exceed the internal
/// memory and the witness term `t/(√M·B)` of the bound is the binding one.
pub fn experiment_e4(clique_sizes: &[usize]) -> Vec<Row> {
    let cfg = EmConfig::new(512, 32);
    let mut rows = Vec::new();
    for &n in clique_sizes {
        let g = generators::clique(n);
        for alg in paper_algorithms() {
            let r = run(&g, alg, cfg);
            let lb = LowerBound::for_triangles(cfg, r.triangles);
            rows.push(
                Row::new(format!("K{n} {}", alg.name()))
                    .col("triangles", r.triangles as f64)
                    .col("io", r.io.total() as f64)
                    .col("lower_bound", lb.sum())
                    .col("io/LB", r.io.total() as f64 / lb.sum().max(1.0)),
            );
        }
    }
    rows
}

/// **E5 — derandomization.** Colour-balance statistic `X_ξ` of the random
/// colouring (Lemma 3: `E[X_ξ] ≤ E·M`) versus the greedily derandomized
/// colouring (`X_ξ ≤ e·E·M`), and the I/O cost of the deterministic
/// algorithm versus the randomized one.
pub fn experiment_e5(sizes: &[usize]) -> Vec<Row> {
    let cfg = default_config();
    let mut rows = Vec::new();
    for &e in sizes {
        let g = generators::erdos_renyi(e / 8, e, 4);
        // Average the random colouring balance over a few seeds.
        let machine = emsim::Machine::new(cfg);
        let ext = ExtGraph::load(&machine, &g);
        let mut x_random = 0f64;
        let seeds = 5;
        for s in 0..seeds {
            let (_, x) = measure_random_coloring_balance(&ext, cfg, s);
            x_random += x as f64 / seeds as f64;
        }
        let rand_run = run(&g, Algorithm::CacheAwareRandomized { seed: 5 }, cfg);
        let det_run = run(
            &g,
            Algorithm::DeterministicCacheAware {
                family_seed: 5,
                candidates: Some(32),
            },
            cfg,
        );
        let em = e as f64 * cfg.mem_words as f64;
        rows.push(
            Row::new(format!("E={e}"))
                .col("X_random(avg)", x_random)
                .col("X_derand", det_run.extra("x_statistic").unwrap_or(0.0))
                .col("E*M (Lemma3)", em)
                .col("e*E*M (Thm2)", std::f64::consts::E * em)
                .col("io_random", rand_run.io.total() as f64)
                .col("io_derand", det_run.io.total() as f64),
        );
    }
    rows
}

/// **E6 — the database join scenario.** Triangle enumeration of the
/// decomposed `Sells` relation is the three-way join; all algorithms produce
/// the same row count, and the winner ordering matches E1.
pub fn experiment_e6(groups: &[usize]) -> Vec<Row> {
    let cfg = default_config();
    let mut rows = Vec::new();
    for &k in groups {
        let (g, _, _) = generators::sells_join(600, 80, 160, k, 6, 9);
        let expected = naive::count_triangles(&g);
        for alg in [
            Algorithm::CacheAwareRandomized { seed: 2 },
            Algorithm::CacheObliviousRandomized { seed: 2 },
            Algorithm::HuTaoChung,
            Algorithm::SortBased,
        ] {
            let r = run(&g, alg, cfg);
            assert_eq!(
                r.triangles,
                expected,
                "join disagreement for {}",
                alg.name()
            );
            rows.push(
                Row::new(format!("groups={k} {}", alg.name()))
                    .col("edges", r.edges as f64)
                    .col("rows", r.triangles as f64)
                    .col("io", r.io.total() as f64)
                    .col("writes", r.io.writes as f64),
            );
        }
    }
    rows
}

/// **E7 — work optimality.** RAM-operation counts versus `E^{3/2}`.
pub fn experiment_e7(sizes: &[usize]) -> (Vec<Row>, Vec<PhasePeakRow>) {
    let cfg = default_config();
    let mut rows = Vec::new();
    let mut peaks = Vec::new();
    for &e in sizes {
        let g = generators::erdos_renyi(e / 8, e, 6);
        for alg in paper_algorithms() {
            let r = run(&g, alg, cfg);
            let budget = if matches!(alg, Algorithm::CacheObliviousRandomized { .. }) {
                cache_oblivious_phase_budget(e)
            } else {
                cache_aware_phase_budget(cfg)
            };
            peaks.push(PhasePeakRow::of(
                format!("E={e} {}", alg.name()),
                &r,
                Some(budget),
            ));
            rows.push(
                Row::new(format!("E={e} {}", alg.name()))
                    .col("work_ops", r.work_ops as f64)
                    .col("E^1.5", (e as f64).powf(1.5))
                    .col("work/E^1.5", r.work_ratio()),
            );
        }
    }
    (rows, peaks)
}

/// Work-budget ceiling for the cache-oblivious algorithm: `reproduce` fails
/// (and CI with it) if any E7 row reports `work/E^{1.5}` above this value.
///
/// Recorded 2026-07-30 after the canonical-edge-list rewrite (PR 5):
/// measured ratios are 6.10 at `E = 4000` (the `--quick` size), 5.92 at
/// `E = 8000` and 4.55 at `E = 16000` — the ratio falls with `E`. The
/// PR 2–4 incidence-list implementation sat at 9.75–10.3 and the pre-PR 2
/// one at ≈ 52.7, so a regression to either (re-materialised reverse
/// orientations, per-leaf wedge sorts, per-child filter scans) trips the
/// gate immediately while leaving honest noise ~30% headroom.
pub const CACHE_OBLIVIOUS_WORK_CEILING: f64 = 8.0;

/// Checks an E7 table against [`CACHE_OBLIVIOUS_WORK_CEILING`]; returns a
/// description of the first offending row, if any.
pub fn check_e7_work_budget(rows: &[Row]) -> Result<(), String> {
    for row in rows {
        if !row.label.contains("cache-oblivious") {
            continue;
        }
        let ratio = row
            .values
            .iter()
            .find(|(name, _)| name == "work/E^1.5")
            .map(|&(_, v)| v)
            .ok_or_else(|| format!("row '{}' lacks a work/E^1.5 column", row.label))?;
        if ratio > CACHE_OBLIVIOUS_WORK_CEILING {
            return Err(format!(
                "row '{}': work/E^1.5 = {ratio:.2} exceeds the recorded ceiling \
                 {CACHE_OBLIVIOUS_WORK_CEILING}",
                row.label
            ));
        }
    }
    Ok(())
}

/// I/O-budget ceiling for the cache-oblivious algorithm on the E3 sweep:
/// `reproduce` fails (and CI with it) if any E3 row reports `io/bound`
/// (measured I/O over the paper's `E^{3/2}/(√M·B)`) above this value.
///
/// Recorded 2026-07-30 after the canonical-edge-list rewrite (PR 5): the
/// normalised I/O sits at 19.7–58.1 across the full `(M, B)` sweep at
/// `E = 12000` (worst row `M = 512, B = 32`) and at 15.8–37.4 on the
/// `--quick` sweep at `E = 4000`. The PR 2–4 incidence-list implementation
/// sat at 79.8–146.0, so a regression toward any of its removed costs (the
/// 2× reverse-orientation routing volume, the root sort, per-leaf wedge
/// files) trips the gate immediately while honest noise has ~12% headroom
/// above the worst recorded row.
pub const CACHE_OBLIVIOUS_IO_CEILING: f64 = 65.0;

/// Checks an E3 table against [`CACHE_OBLIVIOUS_IO_CEILING`]; returns a
/// description of the first offending row, if any.
pub fn check_e3_io_budget(rows: &[Row]) -> Result<(), String> {
    for row in rows {
        let normalised = row
            .values
            .iter()
            .find(|(name, _)| name == "io/bound")
            .map(|&(_, v)| v)
            .ok_or_else(|| format!("row '{}' lacks an io/bound column", row.label))?;
        if normalised > CACHE_OBLIVIOUS_IO_CEILING {
            return Err(format!(
                "row '{}': io/bound = {normalised:.2} exceeds the recorded ceiling \
                 {CACHE_OBLIVIOUS_IO_CEILING}",
                row.label
            ));
        }
    }
    Ok(())
}

/// I/O-budget ceiling for the cache-aware randomized algorithm on the E2
/// sweep: `reproduce` fails (and CI with it) if any E2 row reports
/// `aware_io / (E^{3/2}/(√M·B))` above this value, or a measured gain over
/// Hu–Tao–Chung below 1.0 at `E/M ≥` [`CACHE_AWARE_CROSSOVER_FROM`].
///
/// Recorded 2026-07-30 after the adaptive Lemma 2 chunking +
/// endpoint-range pruning rewrite: the normalised I/O sits at 12.1–14.7
/// across `E/M ∈ {4, …, 64}` and *falls* with `E/M` (the runs are fully
/// deterministic). The pivot-grouped-but-fixed-divisor implementation sat
/// at 21.2–23.6 and the per-triple loop before it at 36.7, so the ceiling
/// catches a regression toward either: a fixed `α = 1/8` chunk constant or
/// unpruned cone scans trips it immediately while honest noise has ~10%
/// headroom.
pub const CACHE_AWARE_IO_CEILING: f64 = 16.0;

/// The `E/M` ratio from which the measured gain over Hu–Tao–Chung must stay
/// ≥ 1.0. The adaptive-chunking sweep crosses over already at `E/M = 4`
/// (measured 1.12), but 4 leaves no noise margin, so the gate starts at 8
/// (measured 1.56).
pub const CACHE_AWARE_CROSSOVER_FROM: usize = 8;

/// Checks an E2 table against [`CACHE_AWARE_IO_CEILING`] (and the ≥ 1.0
/// crossover at `E/M ≥` [`CACHE_AWARE_CROSSOVER_FROM`]); returns a
/// description of the first offending row, if any.
pub fn check_e2_io_budget(rows: &[Row]) -> Result<(), String> {
    let value_of = |row: &Row, name: &str| -> Result<f64, String> {
        row.values
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
            .ok_or_else(|| format!("row '{}' lacks a {name} column", row.label))
    };
    for row in rows {
        let normalised = value_of(row, "aware_io/bound")?;
        if normalised > CACHE_AWARE_IO_CEILING {
            return Err(format!(
                "row '{}': aware_io/bound = {normalised:.2} exceeds the recorded ceiling \
                 {CACHE_AWARE_IO_CEILING}",
                row.label
            ));
        }
        let ratio: usize = row
            .label
            .strip_prefix("E/M=")
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| format!("row '{}' has no E/M label", row.label))?;
        if ratio >= CACHE_AWARE_CROSSOVER_FROM {
            let gain = value_of(row, "measured_gain")?;
            if gain < 1.0 {
                return Err(format!(
                    "row '{}': measured gain {gain:.2} over Hu-Tao-Chung lost the crossover \
                     (must be >= 1.0 from E/M = {CACHE_AWARE_CROSSOVER_FROM} on)",
                    row.label
                ));
            }
        }
    }
    Ok(())
}

/// Outcome of one performance gate, as recorded in the machine-readable
/// per-experiment JSON (see [`experiment_record_json`]).
#[derive(Debug, Clone)]
pub struct GateOutcome {
    /// Gate name (the ceiling constant it enforces).
    pub name: String,
    /// Whether the gate passed.
    pub passed: bool,
    /// The offending-row description on failure, or a short pass note.
    pub detail: String,
}

impl GateOutcome {
    /// Records a gate-check result under `name`.
    pub fn of(name: &str, result: &Result<(), String>) -> Self {
        Self {
            name: name.to_string(),
            passed: result.is_ok(),
            detail: match result {
                Ok(()) => "within ceiling".to_string(),
                Err(msg) => msg.clone(),
            },
        }
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_number(v: f64) -> String {
    // JSON has no NaN/Infinity; record them as null rather than emitting an
    // unparseable file.
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Renders one experiment's rows and gate verdicts as a JSON document — the
/// `BENCH_E<k>.json` record `reproduce --json <dir>` writes and CI uploads,
/// so the performance trajectory is machine-readable run over run. No
/// external serialisation crate is available offline, so the (flat,
/// escape-safe) document is written by hand.
pub fn experiment_record_json(
    experiment: &str,
    title: &str,
    rows: &[Row],
    phase_peaks: &[PhasePeakRow],
    gates: &[GateOutcome],
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!(
        "  \"experiment\": \"{}\",\n",
        json_escape(experiment)
    ));
    out.push_str(&format!("  \"title\": \"{}\",\n", json_escape(title)));
    out.push_str("  \"rows\": [\n");
    for (i, row) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"case\": \"{}\", \"values\": {{",
            json_escape(&row.label)
        ));
        for (j, (name, value)) in row.values.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "\"{}\": {}",
                json_escape(name),
                json_number(*value)
            ));
        }
        out.push_str(if i + 1 < rows.len() { "}},\n" } else { "}}\n" });
    }
    out.push_str("  ],\n");
    out.push_str("  \"phase_peaks\": [\n");
    for (i, row) in phase_peaks.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"case\": \"{}\", \"budget_words\": {}, \"phases\": [",
            json_escape(&row.case),
            row.budget_words
                .map_or_else(|| "null".to_string(), |b| b.to_string())
        ));
        for (j, p) in row.phases.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"name\": \"{}\", \"peak_words\": {}, \"live_words\": {}, \
                 \"live_leases\": {}}}",
                json_escape(&p.name),
                p.peak_words,
                p.live_words,
                p.live_leases.len()
            ));
        }
        out.push_str(if i + 1 < phase_peaks.len() {
            "]},\n"
        } else {
            "]}\n"
        });
    }
    out.push_str("  ],\n");
    out.push_str("  \"gates\": [\n");
    for (i, gate) in gates.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"passed\": {}, \"detail\": \"{}\"}}{}\n",
            json_escape(&gate.name),
            gate.passed,
            json_escape(&gate.detail),
            if i + 1 < gates.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Writes `BENCH_E<k>.json` for one experiment into `dir` (creating it),
/// returning the path written.
pub fn write_experiment_record(
    dir: &std::path::Path,
    experiment: &str,
    title: &str,
    rows: &[Row],
    phase_peaks: &[PhasePeakRow],
    gates: &[GateOutcome],
) -> std::io::Result<std::path::PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("BENCH_{}.json", experiment.to_uppercase()));
    // Atomic (temp + rename): a crashed or killed `reproduce` run must never
    // leave a truncated half-record for CI to upload as if it were real.
    atomic_write(
        &path,
        experiment_record_json(experiment, title, rows, phase_peaks, gates).as_bytes(),
    )?;
    Ok(path)
}

/// **E8 — concentration of the colouring.** Monte-Carlo check of Lemma 3
/// (`E[X_ξ] ≤ E·M`) over many random 4-wise colourings.
pub fn experiment_e8(e: usize, trials: u64) -> Vec<Row> {
    let cfg = default_config();
    let g = generators::erdos_renyi(e / 8, e, 12);
    let machine = emsim::Machine::new(cfg);
    let ext = ExtGraph::load(&machine, &g);
    let mut xs = Vec::new();
    for s in 0..trials {
        let (_, x) = measure_random_coloring_balance(&ext, cfg, s);
        xs.push(x as f64);
    }
    let mean = xs.iter().sum::<f64>() / xs.len() as f64;
    let max = xs.iter().cloned().fold(0f64, f64::max);
    let bound = e as f64 * cfg.mem_words as f64;
    vec![Row::new(format!("E={e}, {trials} colourings"))
        .col("mean X", mean)
        .col("max X", max)
        .col("E*M bound", bound)
        .col("mean/bound", mean / bound)]
}

/// Transient-fault rates injected by the E9 chaos sweep, in ‰ per attempt.
///
/// High enough that every chaos run exercises the bounded-retry loop dozens
/// of times, low enough that exhausting the retry budget (the point where a
/// transient fault escalates to a permanent [`emsim::StorageError`] and
/// aborts the run) is effectively impossible: at 25‰ per attempt and six
/// attempts, `0.025^6 ≈ 2.4·10⁻¹⁰` per transfer.
pub const E9_READ_FAULT_PER_MILLE: u32 = 25;

/// Torn-write rate of the E9 sweep; see [`E9_READ_FAULT_PER_MILLE`].
pub const E9_TORN_WRITE_PER_MILLE: u32 = 20;

/// Retry policy of the E9 sweep: up to six attempts per transfer, simulated
/// exponential backoff starting at 8 work units.
pub fn e9_retry_policy() -> RetryPolicy {
    RetryPolicy::new(6, 8)
}

/// Ceiling on `retry_io / io` for every E9 run: the fraction of all charged
/// block transfers that were retry re-attempts. At the injected rates
/// ([`E9_READ_FAULT_PER_MILLE`], [`E9_TORN_WRITE_PER_MILLE`]) the expected
/// fraction is ≈ 2.3%, so 10% gives ~4× headroom while still catching a
/// retry storm (a storage layer that re-reads whole segments instead of the
/// single failed block, or a backoff loop that stops converging).
pub const E9_RETRY_IO_FRACTION_CEILING: f64 = 0.10;

/// Ceiling on the E9 recovery I/O overhead: for each injected crash point,
/// `(crashed run transfers + resumed run transfers) / fault-free transfers`.
///
/// Recorded 2026-08-08 when the checkpoint/resume machinery landed: the
/// sweep's worst point measures 1.73 at the `--quick` size and 1.57 at the
/// full size (a crash shortly after a checkpoint: the crashed run has paid
/// for work the checkpoint does not capture, and the resume replays the
/// graph-load preamble, the frontier-rebuild filter scans and everything
/// past the last checkpoint), with sweep means near 1.5 and 1.4. A
/// regression that loses the checkpoint frontier — forcing a late crash to
/// restart from scratch — costs ~2× at the worst point and trips the gate;
/// honest noise is zero, the runs are fully deterministic.
pub const E9_RECOVERY_IO_OVERHEAD_CEILING: f64 = 2.0;

/// Checks an E9 table against [`E9_RECOVERY_IO_OVERHEAD_CEILING`]; returns
/// a description of the first offending crash point, if any. Rows without
/// an `overhead` column (the zero-fault control) are skipped.
pub fn check_e9_recovery_overhead(rows: &[Row]) -> Result<(), String> {
    for row in rows {
        for (name, v) in &row.values {
            if name == "overhead" && *v > E9_RECOVERY_IO_OVERHEAD_CEILING {
                return Err(format!(
                    "row '{}': recovery overhead = {v:.2} exceeds the recorded ceiling \
                     {E9_RECOVERY_IO_OVERHEAD_CEILING}",
                    row.label
                ));
            }
        }
    }
    Ok(())
}

/// Checks an E9 table against [`E9_RETRY_IO_FRACTION_CEILING`]; returns a
/// description of the first offending run, if any.
pub fn check_e9_retry_fraction(rows: &[Row]) -> Result<(), String> {
    for row in rows {
        for (name, v) in &row.values {
            if name == "retry_frac" && *v > E9_RETRY_IO_FRACTION_CEILING {
                return Err(format!(
                    "row '{}': retry_frac = {v:.4} exceeds the recorded ceiling \
                     {E9_RETRY_IO_FRACTION_CEILING}",
                    row.label
                ));
            }
        }
    }
    Ok(())
}

/// Everything the E9 chaos sweep produced.
pub struct E9Outcome {
    /// One zero-fault control row plus one row per injected crash point.
    pub rows: Vec<Row>,
    /// Gate verdicts: exactness, zero-fault cost parity, retry bound,
    /// recovery overhead, gauge leaks.
    pub gates: Vec<GateOutcome>,
    /// Fault trace of the mid-sweep crashed run and its resume (written to
    /// `E9_FAULT_TRACE.json` by `reproduce --json`).
    pub fault_trace: Vec<FaultEvent>,
}

/// Installs (once) a panic hook that swallows the [`CrashPoint`] payloads
/// the chaos sweep raises on purpose; every other panic still reaches the
/// previously installed hook, so real failures stay loud.
fn silence_simulated_crash_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<CrashPoint>().is_none() {
                previous(info);
            }
        }));
    });
}

/// A unique scratch directory for one sweep's checkpoint files.
fn e9_scratch_dir() -> std::path::PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("trienum-e9-{}-{n}", std::process::id()))
}

/// **E9 — chaos: fault injection, crash sweep, checkpoint/resume.** Runs the
/// cache-oblivious algorithm once fault-free as the reference, then sweeps a
/// `CrashAt` kill switch across the reference run's whole I/O range with
/// transient read faults and torn writes injected throughout; each crashed
/// run is resumed from its surviving checkpoint (or rerun from scratch if it
/// died before the first one) and held to the reference's exact triangle
/// multiset, bounded retry counts, a leak-free gauge and the
/// [`E9_RECOVERY_IO_OVERHEAD_CEILING`] recovery budget.
pub fn experiment_e9(quick: bool) -> E9Outcome {
    let e = if quick { 2_000 } else { 4_000 };
    let points = if quick { 8 } else { 16 };
    e9_sweep(e, points)
}

fn e9_sweep(e: usize, points: u64) -> E9Outcome {
    silence_simulated_crash_panics();
    let cfg = EmConfig::new(1 << 10, 32);
    let seed = 0xA11CE;
    let g = generators::erdos_renyi(e / 8, e, 9);
    let scratch = e9_scratch_dir();
    std::fs::create_dir_all(&scratch).expect("creating the E9 scratch directory");

    // Reference run: fault-free, no checkpointing. Its multiset is the
    // oracle every chaos run must reproduce bit-identically, and its
    // transfer count is the denominator of the recovery-overhead metric.
    let reference = Machine::new(cfg);
    let mut oracle_sink = CollectingSink::new();
    let ref_report =
        enumerate_triangles_with_recovery(&g, &reference, seed, &mut oracle_sink, None);
    let ref_transfers = reference.transfers();
    let run_io = ref_report.io.total();
    // `CrashAt` counts charged transfers from machine creation, so crash
    // coordinates must be offset past the graph-load preamble.
    let preamble = ref_transfers - run_io;
    let mut oracle = oracle_sink.into_triangles();
    oracle.sort_unstable();
    assert_eq!(
        oracle.len() as u64,
        naive::count_triangles(&g),
        "the E9 reference run disagrees with the in-memory oracle"
    );

    // Zero-fault control: the recovery entry point on a default machine must
    // cost exactly what the plain driver costs — the fault/checkpoint layer
    // is pay-for-what-you-use.
    let plain = run(&g, Algorithm::CacheObliviousRandomized { seed }, cfg);
    let ref_retry_io = ref_report.extra("retry_io").unwrap_or(f64::NAN);
    let zero_fault = if plain.io.total() != ref_report.io.total() {
        Err(format!(
            "zero-fault recovery run cost {} I/Os, the plain driver {} — the fault layer \
             must be free when unused",
            ref_report.io.total(),
            plain.io.total()
        ))
    } else if plain.triangles != ref_report.triangles {
        Err(format!(
            "zero-fault recovery run found {} triangles, the plain driver {}",
            ref_report.triangles, plain.triangles
        ))
    } else if ref_retry_io != 0.0 {
        Err(format!(
            "zero-fault recovery run charged retry_io = {ref_retry_io}, expected 0"
        ))
    } else {
        Ok(())
    };

    let mut rows = vec![Row::new("zero-fault control")
        .col("io", ref_report.io.total() as f64)
        .col("plain_io", plain.io.total() as f64)
        .col("triangles", ref_report.triangles as f64)
        .col("retry_io", ref_retry_io)];

    let interval_io = (run_io / 6).max(1);
    let mut exactness: Result<(), String> = Ok(());
    let mut gauges: Result<(), String> = Ok(());
    let mut permanents: Result<(), String> = Ok(());
    let mut fault_trace: Vec<FaultEvent> = Vec::new();
    let record = |slot: &mut Result<(), String>, err: String| {
        if slot.is_ok() {
            *slot = Err(err);
        }
    };

    for k in 0..points {
        let crash_at = preamble + run_io * (k + 1) / (points + 1);
        let ckpt_path = scratch.join(format!("crash-{k}.ckpt"));
        let spec = CheckpointSpec {
            path: ckpt_path.clone(),
            interval_io,
        };
        let plan = FaultPlan::new(0xE9_0000 + k)
            .with_read_faults(E9_READ_FAULT_PER_MILLE)
            .with_torn_writes(E9_TORN_WRITE_PER_MILLE)
            .with_retry(e9_retry_policy())
            .with_crash_at(crash_at);
        let crashed_machine = Machine::with_faults(cfg, plan);
        let mut collected = CollectingSink::new();
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            enumerate_triangles_with_recovery(
                &g,
                &crashed_machine,
                seed,
                &mut collected,
                Some(&spec),
            )
        }));
        let payload = match outcome {
            Ok(_) => {
                record(
                    &mut exactness,
                    format!("crash@{crash_at}: the kill switch never fired"),
                );
                continue;
            }
            Err(payload) => payload,
        };
        if payload.downcast_ref::<CrashPoint>().is_none() {
            // Not a simulated crash: a real bug escaped the run. Re-raise.
            std::panic::resume_unwind(payload);
        }
        let crashed_stats = crashed_machine.stats();
        let crashed_transfers = crashed_machine.transfers();
        if crashed_machine.gauge().in_use() != 0 {
            record(
                &mut gauges,
                format!(
                    "crash@{crash_at}: {} words still leased after unwinding the crashed run",
                    crashed_machine.gauge().in_use()
                ),
            );
        }

        let resume_plan = FaultPlan::new(0x5EED_0000 + k)
            .with_read_faults(E9_READ_FAULT_PER_MILLE)
            .with_torn_writes(E9_TORN_WRITE_PER_MILLE)
            .with_retry(e9_retry_policy());
        let resume_machine = Machine::with_faults(cfg, resume_plan);
        let resumed = ckpt_path.exists();
        let committed = collected.len() as u64;
        if resumed {
            let ck = Checkpoint::load(&ckpt_path).expect("loading the surviving checkpoint");
            if ck.hwm != committed {
                record(
                    &mut exactness,
                    format!(
                        "crash@{crash_at}: checkpoint high-water mark {} disagrees with the \
                         {committed} triangles actually committed",
                        ck.hwm
                    ),
                );
            }
            resume_enumeration(&g, &resume_machine, &ck, &mut collected, None);
        } else {
            if committed != 0 {
                record(
                    &mut exactness,
                    format!(
                        "crash@{crash_at}: {committed} triangles committed although no \
                         checkpoint was ever written"
                    ),
                );
            }
            // Crashed before the first checkpoint: nothing durable exists,
            // so recovery is a plain fresh run.
            enumerate_triangles_with_recovery(&g, &resume_machine, seed, &mut collected, None);
        }
        let resume_stats = resume_machine.stats();
        let resume_transfers = resume_machine.transfers();
        if resume_machine.gauge().in_use() != 0 {
            record(
                &mut gauges,
                format!(
                    "crash@{crash_at}: {} words still leased after the resumed run",
                    resume_machine.gauge().in_use()
                ),
            );
        }

        let mut got = collected.into_triangles();
        got.sort_unstable();
        if got != oracle {
            record(
                &mut exactness,
                format!(
                    "crash@{crash_at}: the resumed multiset ({} triangles) differs from the \
                     reference ({})",
                    got.len(),
                    oracle.len()
                ),
            );
        }
        for trace in [crashed_machine.fault_trace(), resume_machine.fault_trace()] {
            if let Some(p) = trace
                .iter()
                .find(|ev| ev.kind == emsim::FaultKind::Permanent)
            {
                record(
                    &mut permanents,
                    format!(
                        "crash@{crash_at}: a transient fault at io {} escalated to permanent \
                         ({} failed attempts) — the retry budget is mis-sized",
                        p.io, p.failed_attempts
                    ),
                );
            }
        }
        if k == points / 2 {
            fault_trace = crashed_machine.fault_trace();
            fault_trace.extend(resume_machine.fault_trace());
        }

        let total_io = crashed_stats.io.total() + resume_stats.io.total();
        let retry_io = crashed_stats.retry_io + resume_stats.retry_io;
        rows.push(
            Row::new(format!("crash@{crash_at}"))
                .col("resumed", if resumed { 1.0 } else { 0.0 })
                .col("committed", committed as f64)
                .col("crashed_io", crashed_transfers as f64)
                .col("resume_io", resume_transfers as f64)
                .col(
                    "overhead",
                    (crashed_transfers + resume_transfers) as f64 / ref_transfers as f64,
                )
                .col("retry_frac", retry_io as f64 / total_io.max(1) as f64),
        );
    }
    let _ = std::fs::remove_dir_all(&scratch);

    let retry_check = check_e9_retry_fraction(&rows).and(permanents);
    let overhead_check = check_e9_recovery_overhead(&rows);
    let gates = vec![
        GateOutcome::of("E9_EXACTLY_ONCE", &exactness),
        GateOutcome::of("E9_ZERO_FAULT_EXACTNESS", &zero_fault),
        GateOutcome::of("E9_RETRY_FRACTION_CEILING", &retry_check),
        GateOutcome::of("E9_RECOVERY_IO_OVERHEAD", &overhead_check),
        GateOutcome::of("E9_GAUGE_LEASES", &gauges),
    ];
    E9Outcome {
        rows,
        gates,
        fault_trace,
    }
}

/// Renders a fault trace as JSON — the `E9_FAULT_TRACE.json` record
/// `reproduce --json <dir>` writes next to `BENCH_E9.json`.
pub fn fault_trace_json(events: &[FaultEvent]) -> String {
    let mut out = String::from("{\n  \"experiment\": \"e9\",\n  \"events\": [\n");
    for (i, ev) in events.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"io\": {}, \"kind\": \"{}\", \"failed_attempts\": {}}}{}\n",
            ev.io,
            ev.kind.label(),
            ev.failed_attempts,
            if i + 1 < events.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Writes the E9 fault trace into `dir` (atomically, like every record),
/// returning the path written.
pub fn write_fault_trace_record(
    dir: &std::path::Path,
    events: &[FaultEvent],
) -> std::io::Result<std::path::PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join("E9_FAULT_TRACE.json");
    atomic_write(&path, fault_trace_json(events).as_bytes())?;
    Ok(path)
}

/// Worker counts swept by the E10 multi-worker (PEM) experiment.
pub const E10_WORKER_SWEEP: [usize; 4] = [1, 2, 4, 8];

/// Ceiling on `max_worker_io / sum_io` at the `P = 4` sweep point, for both
/// sharded drivers. Perfect balance is `1/P = 0.25`; the replicated preamble
/// (graph scan, partitioning, the derandomized greedy levels) is charged to
/// every worker and keeps the ratio pinned near `1/P` even when the owned
/// units are skewed, so 0.35 gives ~40% headroom while still catching a
/// sharding regression that lets one worker own a constant fraction of the
/// unit stream (that costs ≥ 0.5 and trips the gate immediately).
pub const E10_BALANCE_MAX_FRACTION: f64 = 0.35;

/// Everything the E10 worker sweep produced.
pub struct E10Outcome {
    /// One row per `(driver, P)` sweep point: triangles, PEM cost
    /// (`max_io`), total I/O, balance, merge I/O. Fully deterministic —
    /// these are what `BENCH_E10.json` records.
    pub rows: Vec<Row>,
    /// One row per worker of every sweep point (read/write/total transfers),
    /// sorted by worker index. Appended after [`E10Outcome::rows`] in the
    /// JSON record.
    pub worker_rows: Vec<Row>,
    /// Wall-clock seconds and speedup vs the sequential driver. Printed to
    /// stdout only — timing is machine-dependent and would break the
    /// byte-stable JSON record.
    pub timing: Vec<Row>,
    /// Gate verdicts: worker balance, multiset invariance, single-worker
    /// I/O parity.
    pub gates: Vec<GateOutcome>,
}

/// **E10 — multi-worker PEM enumeration.** Runs both randomized drivers
/// under the work-unit scheduler ([`enumerate_triangles_sharded`]) for
/// `P ∈ {1, 2, 4, 8}` workers, each worker on its own simulated machine,
/// and holds the sweep to three gates:
///
/// * **balance** — at `P = 4` the PEM cost (the *maximum* per-worker I/O,
///   which is what the PEM model charges) stays within
///   [`E10_BALANCE_MAX_FRACTION`] of the total;
/// * **multiset invariance** — every worker count delivers the bit-identical
///   sorted triangle multiset of the sequential driver;
/// * **single-worker parity** — at `P = 1` the workers' summed I/O equals
///   the sequential driver's exactly (the sharding layer is free when
///   unused).
pub fn experiment_e10(quick: bool) -> E10Outcome {
    let (v, e, cfg) = if quick {
        (500, 4_000, EmConfig::new(256, 32))
    } else {
        (1_000, 12_000, EmConfig::new(512, 32))
    };
    let g = generators::erdos_renyi(v, e, 6);
    let drivers = [
        ("aware", Algorithm::CacheAwareRandomized { seed: 0xA11CE }),
        (
            "oblivious",
            Algorithm::CacheObliviousRandomized { seed: 0xA11CE },
        ),
    ];

    let mut rows = Vec::new();
    let mut worker_rows = Vec::new();
    let mut timing = Vec::new();
    let mut balance: Result<(), String> = Ok(());
    let mut multiset: Result<(), String> = Ok(());
    let mut parity: Result<(), String> = Ok(());
    let record = |slot: &mut Result<(), String>, err: String| {
        if slot.is_ok() {
            *slot = Err(err);
        }
    };

    for (label, alg) in drivers {
        // Sequential reference: the multiset oracle and the P = 1 parity
        // denominator.
        let mut seq_sink = CollectingSink::new();
        let seq_start = std::time::Instant::now();
        let seq = enumerate_triangles(&g, alg, cfg, &mut seq_sink);
        let seq_secs = seq_start.elapsed().as_secs_f64();
        let mut reference = seq_sink.into_triangles();
        reference.sort_unstable();

        for p in E10_WORKER_SWEEP {
            let mut sink = CollectingSink::new();
            let start = std::time::Instant::now();
            let sharded = enumerate_triangles_sharded(&g, alg, cfg, ShardPlan::new(p), &mut sink)
                .expect("the paper drivers support sharded execution");
            let secs = start.elapsed().as_secs_f64();
            let w = &sharded.workers;

            // The sharded sink receives the k-way-merged stream, which is
            // already globally sorted — compare it to the sorted reference
            // without re-sorting, so an out-of-order merge also fails here.
            let got = sink.into_triangles();
            if got != reference {
                record(
                    &mut multiset,
                    format!(
                        "{label} P={p}: sharded multiset ({} triangles) differs from the \
                         sequential driver's ({})",
                        got.len(),
                        reference.len()
                    ),
                );
            }
            if p == 1 && w.sum_io != seq.io.total() {
                record(
                    &mut parity,
                    format!(
                        "{label} P=1: single-worker I/O {} != sequential driver's {} — the \
                         sharding layer must be free when unused",
                        w.sum_io,
                        seq.io.total()
                    ),
                );
            }
            if p == 4 && w.max_io as f64 > E10_BALANCE_MAX_FRACTION * w.sum_io as f64 {
                record(
                    &mut balance,
                    format!(
                        "{label} P=4: max worker I/O {} exceeds {E10_BALANCE_MAX_FRACTION} x \
                         sum_io {} — the unit stream is not balancing",
                        w.max_io, w.sum_io
                    ),
                );
            }

            rows.push(
                Row::new(format!("{label} P={p}"))
                    .col("triangles", sharded.report.triangles as f64)
                    .col("max_io", w.max_io as f64)
                    .col("sum_io", w.sum_io as f64)
                    .col("balance", w.balance)
                    .col("max_io/sum", w.max_io as f64 / w.sum_io.max(1) as f64)
                    .col("merge_io", sharded.merge_io.total() as f64),
            );
            timing.push(
                Row::new(format!("{label} P={p}"))
                    .col("wall_s", secs)
                    .col("speedup", seq_secs / secs.max(1e-9)),
            );
            // `per_worker` is indexed by worker id (the pool sorts by worker
            // index before reporting), so these rows are deterministic.
            for (i, io) in w.per_worker.iter().enumerate() {
                worker_rows.push(
                    Row::new(format!("{label} P={p} w{i}"))
                        .col("reads", io.reads as f64)
                        .col("writes", io.writes as f64)
                        .col("io", io.total() as f64),
                );
            }
        }
    }

    let gates = vec![
        GateOutcome::of("E10_WORKER_BALANCE", &balance),
        GateOutcome::of("E10_MULTISET_INVARIANCE", &multiset),
        GateOutcome::of("E10_SINGLE_WORKER_PARITY", &parity),
    ];
    E10Outcome {
        rows,
        worker_rows,
        timing,
        gates,
    }
}

/// Minimum Pearson correlation the E11 gate demands between simulated
/// charged transfers and measured real disk block I/O across the sweep. The
/// buffer pool replays the simulator's LRU policy decision for decision, so
/// the measured value should be ≈ 1.0; 0.9 is the gate's floor.
pub const E11_MIN_CORRELATION: f64 = 0.9;

/// Pearson correlation coefficient of the paired samples `(xs[i], ys[i])`.
/// Returns 1.0 for degenerate inputs (fewer than two points, or a
/// zero-variance side) *only* when the two sides are exactly equal —
/// otherwise 0.0 — so a constant-but-matching sweep cannot fake a pass.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len());
    let n = xs.len() as f64;
    if xs.len() < 2 {
        return if xs == ys { 1.0 } else { 0.0 };
    }
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        cov += (x - mx) * (y - my);
        vx += (x - mx) * (x - mx);
        vy += (y - my) * (y - my);
    }
    if vx == 0.0 || vy == 0.0 {
        return if xs == ys { 1.0 } else { 0.0 };
    }
    cov / (vx.sqrt() * vy.sqrt())
}

/// Everything the E11 sim-vs-disk sweep produced.
pub struct E11Outcome {
    /// One row per `(E, algorithm)` sweep point: triangles, simulated
    /// charged transfers, real device reads/writes, and the real/simulated
    /// ratio. Deterministic — these go into `BENCH_E11.json`.
    pub rows: Vec<Row>,
    /// Wall-clock milliseconds per backend and the disk/memory slowdown.
    /// Unlike E10's timing these ARE recorded in the JSON (the ISSUE asks
    /// for measured wall-clock next to simulated I/O), so `BENCH_E11.json`
    /// is reproducible in its counts but not byte-stable in its timings.
    pub timing: Vec<Row>,
    /// The measured Pearson r between simulated transfers and real disk I/O.
    pub correlation: f64,
    /// Gate verdicts: `DISK_PARITY` and `E11_CORRELATION`.
    pub gates: Vec<GateOutcome>,
}

/// **E11 — sim-vs-disk correlation.** Runs an E1-style size sweep of all
/// three paper algorithms twice — once on the pure in-memory simulator, once
/// genuinely out-of-core on the file-backed [`BackendKind::Disk`] plane —
/// plus sharded runs at `P ∈ {1, 4}`, and holds the pair to two gates:
///
/// * **`DISK_PARITY`** — the simulator is the spec, the disk is the witness:
///   any divergence in the triangle multiset, the charged read/write
///   counts, or the logical transfer count between the two backends is a
///   hard failure;
/// * **`E11_CORRELATION`** — Pearson r between simulated charged transfers
///   and measured real device block I/O across the sweep must be at least
///   [`E11_MIN_CORRELATION`]. (By construction the pool performs exactly
///   one real read per charged read and one real write per charged write,
///   so r should come out ≈ 1.0; the gate guards the construction.)
pub fn experiment_e11(quick: bool) -> E11Outcome {
    let sizes: &[usize] = if quick {
        &[1_000, 2_000, 4_000]
    } else {
        &[2_000, 4_000, 8_000, 16_000]
    };
    let cfg = default_config();

    let mut rows = Vec::new();
    let mut timing = Vec::new();
    let mut parity: Result<(), String> = Ok(());
    let mut sim_points = Vec::new();
    let mut real_points = Vec::new();
    let record = |slot: &mut Result<(), String>, err: String| {
        if slot.is_ok() {
            *slot = Err(err);
        }
    };

    for &e in sizes {
        let g = generators::erdos_renyi(e / 8, e, 1);
        for alg in paper_algorithms() {
            let label = format!("E={e} {}", alg.name());

            let mem = Machine::new(cfg);
            let mut mem_sink = CollectingSink::new();
            let mem_start = std::time::Instant::now();
            let mem_report = enumerate_triangles_on(&mem, &g, alg, &mut mem_sink);
            let mem_ms = mem_start.elapsed().as_secs_f64() * 1e3;

            let disk = Machine::with_backend(cfg, BackendKind::Disk);
            let mut disk_sink = CollectingSink::new();
            let disk_start = std::time::Instant::now();
            let disk_report = enumerate_triangles_on(&disk, &g, alg, &mut disk_sink);
            let disk_ms = disk_start.elapsed().as_secs_f64() * 1e3;
            // Snapshot the real counters before the fsync below, then
            // exercise the durability barrier (uncharged, so it cannot
            // perturb the parity comparison).
            let real = disk.disk_counters().expect("disk plane has real counters");
            disk.sync();

            // --- DISK_PARITY: the simulator is the spec. ---
            let mut mem_triangles = mem_sink.into_triangles();
            let mut disk_triangles = disk_sink.into_triangles();
            mem_triangles.sort_unstable();
            disk_triangles.sort_unstable();
            if mem_triangles != disk_triangles {
                record(
                    &mut parity,
                    format!(
                        "{label}: disk multiset ({} triangles) differs from the simulator's ({})",
                        disk_triangles.len(),
                        mem_triangles.len()
                    ),
                );
            }
            if mem_report.io != disk_report.io {
                record(
                    &mut parity,
                    format!(
                        "{label}: charged transfers diverge — sim {}r/{}w vs disk {}r/{}w",
                        mem_report.io.reads,
                        mem_report.io.writes,
                        disk_report.io.reads,
                        disk_report.io.writes
                    ),
                );
            }
            if mem.transfers() != disk.transfers() {
                record(
                    &mut parity,
                    format!(
                        "{label}: logical transfer streams diverge — sim {} vs disk {}",
                        mem.transfers(),
                        disk.transfers()
                    ),
                );
            }

            // --- Correlation points: whole-machine charged transfers vs
            // whole-run real device ops (both include the load phase, so
            // they are the same coverage). ---
            let sim_total = disk.io().total() as f64;
            let real_total = real.total() as f64;
            sim_points.push(sim_total);
            real_points.push(real_total);

            rows.push(
                Row::new(label.clone())
                    .col("triangles", disk_report.triangles as f64)
                    .col("sim_io", mem_report.io.total() as f64)
                    .col("disk_io", disk_report.io.total() as f64)
                    .col("real_reads", real.block_reads as f64)
                    .col("real_writes", real.block_writes as f64)
                    .col("real_total", real_total)
                    .col("real/sim", real_total / sim_total.max(1.0)),
            );
            timing.push(
                Row::new(label)
                    .col("mem_ms", mem_ms)
                    .col("disk_ms", disk_ms)
                    .col("slowdown", disk_ms / mem_ms.max(1e-9)),
            );
        }
    }

    // Sharded runs: every worker machine on the disk plane, P ∈ {1, 4}, at
    // the largest sweep size — the out-of-core path must also hold under
    // the work-unit scheduler.
    let e = *sizes.last().expect("the sweep is non-empty");
    let g = generators::erdos_renyi(e / 8, e, 1);
    let alg = Algorithm::CacheAwareRandomized { seed: 0xA11CE };
    for p in [1usize, 4] {
        let label = format!("sharded E={e} aware P={p}");
        let mut mem_sink = CollectingSink::new();
        let mem_sharded =
            enumerate_triangles_sharded(&g, alg, cfg, ShardPlan::new(p), &mut mem_sink)
                .expect("the paper drivers support sharded execution");
        let mut disk_sink = CollectingSink::new();
        let disk_start = std::time::Instant::now();
        let disk_sharded = enumerate_triangles_sharded(
            &g,
            alg,
            cfg,
            ShardPlan::new(p).with_backend(BackendKind::Disk),
            &mut disk_sink,
        )
        .expect("the paper drivers support sharded execution");
        let disk_ms = disk_start.elapsed().as_secs_f64() * 1e3;
        // Both sinks receive the k-way-merged (already sorted) stream.
        if mem_sink.into_triangles() != disk_sink.into_triangles() {
            record(
                &mut parity,
                format!("{label}: disk-plane sharded multiset differs from the simulator's"),
            );
        }
        if mem_sharded.workers.per_worker != disk_sharded.workers.per_worker {
            record(
                &mut parity,
                format!(
                    "{label}: per-worker charged I/O diverges — sim sum {} vs disk sum {}",
                    mem_sharded.workers.sum_io, disk_sharded.workers.sum_io
                ),
            );
        }
        rows.push(
            Row::new(label.clone())
                .col("triangles", disk_sharded.report.triangles as f64)
                .col("sim_io", mem_sharded.workers.sum_io as f64)
                .col("disk_io", disk_sharded.workers.sum_io as f64)
                .col("max_io", disk_sharded.workers.max_io as f64),
        );
        timing.push(Row::new(label).col("disk_ms", disk_ms));
    }

    let correlation = pearson(&sim_points, &real_points);
    let corr_gate = if correlation >= E11_MIN_CORRELATION {
        Ok(())
    } else {
        Err(format!(
            "Pearson r = {correlation:.6} between simulated transfers and real disk I/O \
             is below the {E11_MIN_CORRELATION} floor"
        ))
    };
    let mut gates = vec![
        GateOutcome::of("DISK_PARITY", &parity),
        GateOutcome::of("E11_CORRELATION", &corr_gate),
    ];
    // Surface the measured r in the record even on a pass.
    if let Some(g) = gates.last_mut() {
        if g.passed {
            g.detail = format!("Pearson r = {correlation:.6} (floor {E11_MIN_CORRELATION})");
        }
    }
    E11Outcome {
        rows,
        timing,
        correlation,
        gates,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_render_and_rows_are_consistent() {
        let rows = experiment_e1(&[1000], false);
        assert!(!rows.is_empty());
        let table = render_table("E1 smoke", &rows);
        assert!(table.contains("io/paper_bound"));
        assert!(table.contains("cache-oblivious"));
    }

    #[test]
    fn e2_reports_predicted_and_measured_gain() {
        let (rows, peaks) = experiment_e2(&[4]);
        assert_eq!(rows.len(), 1);
        let aware = peaks
            .iter()
            .find(|p| p.case.contains("cache-aware"))
            .expect("cache-aware phase peaks recorded");
        assert_eq!(aware.budget_words, Some(2 * 512));
        let names: Vec<&str> = aware.phases.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(
            names,
            [
                "step1_high_degree",
                "step2_partition",
                "step3_color_triples"
            ]
        );
        assert!(aware.phases.iter().any(|p| p.peak_words > 0));
        check_phase_peak_budgets(&peaks).expect("phase peaks within declared budgets");
        let predicted = rows[0]
            .values
            .iter()
            .find(|(n, _)| n == "predicted_gain")
            .unwrap()
            .1;
        assert!((predicted - 2.0).abs() < 1e-9);
    }

    #[test]
    fn e2_io_gate_passes_current_code_and_catches_regressions() {
        let (rows, _) = experiment_e2(&[4, 8, 16]);
        check_e2_io_budget(&rows).expect("current implementation must satisfy the ceiling");

        // A regression all the way back to the per-triple step-3 loop…
        let over_budget = vec![Row::new("E/M=32")
            .col("aware_io", 1.063e5)
            .col("aware_io/bound", 36.7)
            .col("measured_gain", 1.24)];
        let err = check_e2_io_budget(&over_budget).unwrap_err();
        assert!(err.contains("exceeds"), "{err}");

        // …and the subtler one back to the fixed α = 1/8 chunk divisor
        // (the pre-adaptive normalised 21.6) must both trip the ceiling.
        let fixed_divisor_regression = vec![Row::new("E/M=32")
            .col("aware_io", 6.262e4)
            .col("aware_io/bound", 21.62)
            .col("measured_gain", 2.10)];
        let err = check_e2_io_budget(&fixed_divisor_regression).unwrap_err();
        assert!(err.contains("exceeds"), "{err}");

        let lost_crossover = vec![Row::new("E/M=8")
            .col("aware_io", 1.3e4)
            .col("aware_io/bound", 14.0)
            .col("measured_gain", 0.97)];
        let err = check_e2_io_budget(&lost_crossover).unwrap_err();
        assert!(err.contains("crossover"), "{err}");

        let below_crossover_threshold = vec![Row::new("E/M=4")
            .col("aware_io", 3.0e3)
            .col("aware_io/bound", 14.4)
            .col("measured_gain", 0.95)];
        check_e2_io_budget(&below_crossover_threshold).expect(
            "the crossover requirement only applies from E/M = CACHE_AWARE_CROSSOVER_FROM on",
        );
    }

    #[test]
    fn work_budget_gate_passes_current_code_and_catches_regressions() {
        let (rows, peaks) = experiment_e7(&[4000]);
        check_e7_work_budget(&rows).expect("current implementation must satisfy the ceiling");
        check_phase_peak_budgets(&peaks).expect("phase peaks within declared budgets");

        let bad = vec![Row::new("E=4000 cache-oblivious")
            .col("work_ops", 1e9)
            .col("E^1.5", 2.53e5)
            .col("work/E^1.5", 52.66)];
        let err = check_e7_work_budget(&bad).unwrap_err();
        assert!(err.contains("exceeds"), "{err}");

        // A regression to the PR 2–4 incidence-list constant (9.75–10.3)
        // must also trip the tightened ceiling.
        let incidence_regression = vec![Row::new("E=8000 cache-oblivious")
            .col("work_ops", 6.973e6)
            .col("E^1.5", 7.155e5)
            .col("work/E^1.5", 9.75)];
        let err = check_e7_work_budget(&incidence_regression).unwrap_err();
        assert!(err.contains("exceeds"), "{err}");

        let unrelated = vec![Row::new("E=4000 hu-tao-chung").col("work/E^1.5", 1e9)];
        check_e7_work_budget(&unrelated).expect("gate only watches the cache-oblivious rows");
    }

    #[test]
    fn e3_io_gate_passes_current_code_and_catches_regressions() {
        let (rows, peaks) = experiment_e3(4_000, &[(1 << 10, 32), (1 << 13, 32)]);
        check_e3_io_budget(&rows).expect("current implementation must satisfy the ceiling");
        assert!(
            peaks.iter().all(
                |p| p.phases.iter().map(|s| s.name.as_str()).collect::<Vec<_>>()
                    == ["root_sort", "recursion", "leaf_batch"]
            ),
            "cache-oblivious runs must record their three phases"
        );
        check_phase_peak_budgets(&peaks).expect("phase peaks within declared budgets");

        // A regression to the incidence-list implementation's worst recorded
        // row (145.97 at M=512 B=32)…
        let incidence_regression = vec![Row::new("M=512 B=32")
            .col("io", 2.650e5)
            .col("io/bound", 145.97)];
        let err = check_e3_io_budget(&incidence_regression).unwrap_err();
        assert!(err.contains("exceeds"), "{err}");

        // …and the subtler one to its best row (79.75 at M=16384 B=32) must
        // both trip the ceiling.
        let best_row_regression = vec![Row::new("M=16384 B=32")
            .col("io", 2.559e4)
            .col("io/bound", 79.75)];
        let err = check_e3_io_budget(&best_row_regression).unwrap_err();
        assert!(err.contains("exceeds"), "{err}");

        let missing_column = vec![Row::new("M=512 B=32").col("io", 1.0)];
        assert!(check_e3_io_budget(&missing_column).is_err());
    }

    #[test]
    fn phase_peak_gate_flags_over_budget_phases_and_skips_ungated_rows() {
        let over = PhasePeakRow {
            case: "E=4000 cache-oblivious".into(),
            budget_words: Some(1000),
            phases: vec![
                PhaseSnapshot {
                    name: "root_sort".into(),
                    peak_words: 900,
                    live_words: 0,
                    live_leases: Vec::new(),
                },
                PhaseSnapshot {
                    name: "recursion".into(),
                    peak_words: 4096,
                    live_words: 64,
                    live_leases: Vec::new(),
                },
            ],
        };
        let err = check_phase_peak_budgets(&[over]).unwrap_err();
        assert!(err.contains("recursion"), "{err}");
        assert!(err.contains("4096"), "{err}");

        let ungated = PhasePeakRow {
            case: "E=4000 hu-tao-chung".into(),
            budget_words: None,
            phases: vec![PhaseSnapshot {
                name: "pivot_join".into(),
                peak_words: u64::MAX,
                live_words: 0,
                live_leases: Vec::new(),
            }],
        };
        check_phase_peak_budgets(&[ungated]).expect("ungated baselines are never flagged");
    }

    #[test]
    fn experiment_records_render_valid_flat_json() {
        let rows = vec![
            Row::new("M=512 B=32")
                .col("io", 1.055e5)
                .col("io/bound", 58.13),
            Row::new("quote\"case")
                .col("weird", f64::NAN)
                .col("neg", -1.5),
        ];
        let gates = vec![
            GateOutcome::of("CACHE_OBLIVIOUS_IO_CEILING", &Ok(())),
            GateOutcome::of(
                "CACHE_OBLIVIOUS_WORK_CEILING",
                &Err("row 'x': broke\nbadly".to_string()),
            ),
        ];
        let peaks = vec![
            PhasePeakRow {
                case: "M=512 B=32".into(),
                budget_words: Some(2000),
                phases: vec![PhaseSnapshot {
                    name: "root_sort".into(),
                    peak_words: 512,
                    live_words: 0,
                    live_leases: Vec::new(),
                }],
            },
            PhasePeakRow {
                case: "baseline".into(),
                budget_words: None,
                phases: Vec::new(),
            },
        ];
        let json = experiment_record_json("e3", "E3: cache-obliviousness", &rows, &peaks, &gates);
        // Structure and escaping: balanced braces, escaped quote and newline,
        // NaN downgraded to null, booleans verbatim.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
        assert!(json.contains("\"experiment\": \"e3\""));
        assert!(json.contains("\"io/bound\": 58.13"));
        assert!(json.contains("quote\\\"case"));
        assert!(json.contains("\"weird\": null"));
        assert!(json.contains("\"passed\": true"));
        assert!(json.contains("\"passed\": false"));
        assert!(json.contains("broke\\nbadly"));
        assert!(!json.contains("NaN"));
        assert!(json.contains("\"phase_peaks\""));
        assert!(json.contains(
            "{\"name\": \"root_sort\", \"peak_words\": 512, \"live_words\": 0, \
             \"live_leases\": 0}"
        ));
        assert!(json.contains("\"budget_words\": 2000"));
        assert!(json.contains("\"budget_words\": null"));

        let dir = std::env::temp_dir().join("trienum-bench-json-test");
        let path =
            write_experiment_record(&dir, "e3", "E3: cache-obliviousness", &rows, &peaks, &gates)
                .unwrap();
        assert!(path.ends_with("BENCH_E3.json"));
        let round = std::fs::read_to_string(&path).unwrap();
        assert_eq!(round, json);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn e9_gates_catch_regressions_and_skip_unrelated_rows() {
        let slow_recovery = vec![Row::new("crash@500")
            .col("overhead", E9_RECOVERY_IO_OVERHEAD_CEILING + 0.5)
            .col("retry_frac", 0.01)];
        let err = check_e9_recovery_overhead(&slow_recovery).unwrap_err();
        assert!(err.contains("exceeds"), "{err}");
        check_e9_retry_fraction(&slow_recovery).expect("retry fraction within ceiling");

        let retry_storm = vec![Row::new("crash@500")
            .col("overhead", 1.2)
            .col("retry_frac", E9_RETRY_IO_FRACTION_CEILING * 5.0)];
        let err = check_e9_retry_fraction(&retry_storm).unwrap_err();
        assert!(err.contains("exceeds"), "{err}");
        check_e9_recovery_overhead(&retry_storm).expect("overhead within ceiling");

        // The zero-fault control row has neither column and is skipped.
        let control = vec![Row::new("zero-fault control").col("io", 1.0)];
        check_e9_recovery_overhead(&control).unwrap();
        check_e9_retry_fraction(&control).unwrap();
    }

    #[test]
    fn e9_chaos_sweep_is_exact_and_within_budgets() {
        // A reduced sweep (the full --quick sweep runs in CI): three crash
        // points over a smaller instance, all gates still enforced.
        let outcome = e9_sweep(1_200, 3);
        for gate in &outcome.gates {
            assert!(gate.passed, "{}: {}", gate.name, gate.detail);
        }
        // One control row plus one row per crash point, and the injected
        // rates are high enough that the representative trace is non-empty.
        assert_eq!(outcome.rows.len(), 4);
        assert!(!outcome.fault_trace.is_empty());
        let json = fault_trace_json(&outcome.fault_trace);
        assert!(json.contains("\"experiment\": \"e9\""));
        assert!(json.contains("\"kind\": \""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn e8_mean_is_below_bound() {
        let rows = experiment_e8(3000, 4);
        let mean_over_bound = rows[0]
            .values
            .iter()
            .find(|(n, _)| n == "mean/bound")
            .unwrap()
            .1;
        assert!(mean_over_bound < 3.0);
    }
}
