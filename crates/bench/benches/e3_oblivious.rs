//! E3 — cache-obliviousness: the same algorithm across machine
//! configurations; wall-clock time here, exact I/O counts via `reproduce`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use emsim::EmConfig;
use graphgen::generators;
use std::hint::black_box;
use trienum::{count_triangles, Algorithm};

fn bench_e3(c: &mut Criterion) {
    let g = generators::erdos_renyi(500, 4_000, 7);
    let alg = Algorithm::CacheObliviousRandomized { seed: 11 };
    let mut group = c.benchmark_group("e3_oblivious");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    for &(m, b) in &[(1usize << 9, 32usize), (1 << 12, 32), (1 << 14, 128)] {
        let cfg = EmConfig::new(m, b);
        group.bench_with_input(
            BenchmarkId::new(format!("M{m}_B{b}"), 4_000),
            &g,
            |bch, g| bch.iter(|| black_box(count_triangles(black_box(g), alg, cfg).0)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_e3);
criterion_main!(benches);
