//! E5 — the cost of determinism: randomized vs derandomized cache-aware
//! algorithm, including the greedy colouring preprocessing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graphgen::generators;
use std::hint::black_box;
use trienum::{count_triangles, Algorithm};
use trienum_bench::default_config;

fn bench_e5(c: &mut Criterion) {
    let cfg = default_config();
    let g = generators::erdos_renyi(1_000, 8_000, 4);
    let mut group = c.benchmark_group("e5_derand");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    group.bench_with_input(BenchmarkId::new("randomized", 8_000), &g, |b, g| {
        b.iter(|| {
            black_box(
                count_triangles(
                    black_box(g),
                    Algorithm::CacheAwareRandomized { seed: 5 },
                    cfg,
                )
                .0,
            )
        })
    });
    for &cands in &[8usize, 32] {
        group.bench_with_input(BenchmarkId::new("derandomized", cands), &g, |b, g| {
            b.iter(|| {
                black_box(
                    count_triangles(
                        black_box(g),
                        Algorithm::DeterministicCacheAware {
                            family_seed: 5,
                            candidates: Some(cands),
                        },
                        cfg,
                    )
                    .0,
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_e5);
criterion_main!(benches);
