//! E6 — the database motivation: the 5NF Sells join as triangle enumeration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graphgen::generators;
use std::hint::black_box;
use trienum::{count_triangles, Algorithm};
use trienum_bench::default_config;

fn bench_e6(c: &mut Criterion) {
    let cfg = default_config();
    let (g, _, _) = generators::sells_join(600, 80, 160, 60, 6, 9);
    let mut group = c.benchmark_group("e6_join");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    for alg in [
        Algorithm::CacheAwareRandomized { seed: 2 },
        Algorithm::CacheObliviousRandomized { seed: 2 },
        Algorithm::HuTaoChung,
        Algorithm::SortBased,
    ] {
        group.bench_with_input(BenchmarkId::new(alg.name(), g.edge_count()), &g, |b, g| {
            b.iter(|| black_box(count_triangles(black_box(g), alg, cfg).0))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_e6);
criterion_main!(benches);
