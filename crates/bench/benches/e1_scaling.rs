//! E1 — I/O scaling in E: every algorithm on ER graphs of growing size.
//! The table EXPERIMENTS.md records comes from the exact I/O counters (run
//! the `reproduce` binary); Criterion here additionally measures the
//! wall-clock cost of the simulated runs and keeps the comparison honest
//! across code changes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graphgen::generators;
use std::hint::black_box;
use trienum::{count_triangles, Algorithm};
use trienum_bench::default_config;

fn bench_e1(c: &mut Criterion) {
    let cfg = default_config();
    let mut group = c.benchmark_group("e1_scaling");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    for &e in &[2_000usize, 4_000] {
        let g = generators::erdos_renyi(e / 8, e, 1);
        let algs = [
            Algorithm::CacheAwareRandomized { seed: 1 },
            Algorithm::CacheObliviousRandomized { seed: 1 },
            Algorithm::DeterministicCacheAware {
                family_seed: 1,
                candidates: Some(16),
            },
            Algorithm::HuTaoChung,
            Algorithm::SortBased,
        ];
        for alg in algs {
            group.bench_with_input(BenchmarkId::new(alg.name(), e), &g, |b, g| {
                b.iter(|| black_box(count_triangles(black_box(g), alg, cfg).0))
            });
        }
        if e <= 2_000 {
            group.bench_with_input(BenchmarkId::new("block-nested-loop", e), &g, |b, g| {
                b.iter(|| {
                    black_box(count_triangles(black_box(g), Algorithm::BlockNestedLoop, cfg).0)
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_e1);
criterion_main!(benches);
