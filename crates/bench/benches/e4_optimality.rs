//! E4 — the lower-bound witness: cliques with t = Θ(E^{3/2}).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graphgen::generators;
use std::hint::black_box;
use trienum::{count_triangles, Algorithm};
use trienum_bench::default_config;

fn bench_e4(c: &mut Criterion) {
    let cfg = default_config();
    let mut group = c.benchmark_group("e4_optimality");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    for &n in &[30usize, 60] {
        let g = generators::clique(n);
        for alg in [
            Algorithm::CacheAwareRandomized { seed: 1 },
            Algorithm::CacheObliviousRandomized { seed: 1 },
            Algorithm::DeterministicCacheAware {
                family_seed: 1,
                candidates: Some(16),
            },
        ] {
            group.bench_with_input(BenchmarkId::new(alg.name(), n), &g, |b, g| {
                b.iter(|| black_box(count_triangles(black_box(g), alg, cfg).0))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_e4);
criterion_main!(benches);
