//! E7 — substrate microbenchmarks: the external-memory sorting primitives
//! and the simulator's access path (the costs every higher-level number is
//! built on), plus the in-memory oracle as a work reference.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use emsim::{EmConfig, ExtVec, Machine};
use graphgen::{generators, naive};
use std::hint::black_box;

fn bench_sorts(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_sorts");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    for &n in &[10_000usize, 50_000] {
        let data: Vec<u64> = (0..n as u64).rev().collect();
        group.bench_with_input(
            BenchmarkId::new("multiway_mergesort", n),
            &data,
            |b, data| {
                b.iter(|| {
                    let machine = Machine::new(EmConfig::new(1 << 12, 64));
                    let v = ExtVec::from_slice(&machine, data);
                    black_box(emalgo::external_sort_by_key(&v, |x| *x).len())
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("oblivious_mergesort", n),
            &data,
            |b, data| {
                b.iter(|| {
                    let machine = Machine::new(EmConfig::new(1 << 12, 64));
                    let v = ExtVec::from_slice(&machine, data);
                    black_box(emalgo::oblivious_sort_by_key(&v, |x| *x).len())
                })
            },
        );
    }
    group.finish();
}

fn bench_simulator_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_simulator");
    group.sample_size(20);
    let machine = Machine::new(EmConfig::new(1 << 12, 64));
    let v = ExtVec::from_slice(&machine, &(0..100_000u64).collect::<Vec<_>>());
    group.bench_function("scan_100k_words", |b| {
        b.iter(|| black_box(v.iter().sum::<u64>()))
    });
    group.finish();
}

fn bench_oracle(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_oracle");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    let g = generators::erdos_renyi(2_000, 16_000, 3);
    group.bench_function("in_memory_oracle_16k_edges", |b| {
        b.iter(|| black_box(naive::count_triangles(black_box(&g))))
    });
    group.finish();
}

criterion_group!(benches, bench_sorts, bench_simulator_scan, bench_oracle);
criterion_main!(benches);
