//! E2 — the improvement factor over Hu–Tao–Chung as E/M grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use emsim::EmConfig;
use graphgen::generators;
use std::hint::black_box;
use trienum::{count_triangles, Algorithm};

fn bench_e2(c: &mut Criterion) {
    let mem = 512usize;
    let cfg = EmConfig::new(mem, 32);
    let mut group = c.benchmark_group("e2_improvement");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    for &ratio in &[8usize, 16] {
        let e = mem * ratio;
        let g = generators::erdos_renyi((e / 8).max(64), e, 2);
        group.bench_with_input(BenchmarkId::new("cache-aware", ratio), &g, |b, g| {
            b.iter(|| {
                black_box(
                    count_triangles(
                        black_box(g),
                        Algorithm::CacheAwareRandomized { seed: 3 },
                        cfg,
                    )
                    .0,
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("hu-tao-chung", ratio), &g, |b, g| {
            b.iter(|| black_box(count_triangles(black_box(g), Algorithm::HuTaoChung, cfg).0))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_e2);
criterion_main!(benches);
