//! Multi-way single-pass partitioning.
//!
//! The cache-oblivious recursion of the paper (Section 3) splits a subproblem
//! into eight children, each child keeping the edges compatible with one of
//! the eight refined colour vectors. Implemented naively that is eight
//! independent filtering scans over the same input — eight times the read
//! volume and eight evaluations of the colouring per element. The
//! [`scan_partition`] primitive below does the same routing in **one** scan:
//! the caller classifies each element once and returns a bitmask naming every
//! bucket that should receive a copy.
//!
//! Cost model: one read scan of the input (`⌈n·w/B⌉` I/Os on a cold cache)
//! plus the sequential write volume of the buckets. Keeping `k` output
//! buckets open requires one active block per bucket, so the primitive
//! assumes `M ≥ (k + 1)·B` — the standard tall-cache-style requirement of
//! any k-way distribution step; `k` itself is a constant, so the primitive
//! remains legal in the cache-oblivious model (which forbids consulting `M`
//! and `B`, not constants). The `O(k)` words of in-core routing state are
//! registered on the machine's [`emsim::MemGauge`] for the duration of the
//! scan.

use emsim::{ExtVec, Machine, MemLease, Record};

/// Maximum number of output buckets of [`scan_partition`] (the routing mask
/// is a `u32`).
pub const MAX_PARTITION_BUCKETS: usize = 32;

/// An incremental, order-preserving multi-way partition: `k` output buckets
/// held open while the caller feeds elements one at a time.
///
/// This is the primitive behind the level-synchronous cache-oblivious
/// recursion: one writer is opened per *level* and every live node's arcs are
/// routed through it, so the whole level pays for a single distribution sweep
/// (k open tail blocks) instead of one [`scan_partition`] call — with its own
/// fresh buckets and its own partial tail blocks — per node. Elements arrive
/// in whatever order the caller feeds them and every bucket preserves exactly
/// that order (the partition is *stable*), so sorted runs fed run-by-run come
/// out as sorted runs, concatenated in feed order.
///
/// The `O(k)` words of in-core routing state are registered on the machine's
/// [`emsim::MemGauge`] for the writer's lifetime. [`scan_partition`] is the
/// one-shot wrapper over this type.
pub struct PartitionWriter<T: Record> {
    machine: Machine,
    out: Vec<ExtVec<T>>,
    live: u32,
    _lease: MemLease,
}

impl<T: Record> PartitionWriter<T> {
    /// Opens a writer with `buckets` output arrays on `machine`.
    ///
    /// # Panics
    ///
    /// Panics if `buckets` is `0` or exceeds [`MAX_PARTITION_BUCKETS`].
    pub fn new(machine: &Machine, buckets: usize) -> Self {
        assert!(
            (1..=MAX_PARTITION_BUCKETS).contains(&buckets),
            "bucket count {buckets} outside 1..={MAX_PARTITION_BUCKETS}"
        );
        let lease = machine.gauge().lease(buckets as u64);
        let live = if buckets == MAX_PARTITION_BUCKETS {
            u32::MAX
        } else {
            (1u32 << buckets) - 1
        };
        Self {
            machine: machine.clone(),
            out: (0..buckets).map(|_| ExtVec::new(machine)).collect(),
            live,
            _lease: lease,
        }
    }

    /// Appends a copy of `value` to every bucket named by `mask` (bit `i` set
    /// means "append to bucket `i`"; bits at positions `≥ buckets` are
    /// ignored, a zero mask routes nowhere). One unit of work per call.
    pub fn push(&mut self, value: T, mask: u32) {
        self.machine.work(1);
        let mut mask = mask & self.live;
        while mask != 0 {
            let i = mask.trailing_zeros() as usize;
            self.out[i].push(value);
            mask &= mask - 1;
        }
    }

    /// Current length of bucket `i` — how callers delimit the per-run output
    /// ranges of a stable multi-run feed.
    pub fn bucket_len(&self, i: usize) -> usize {
        self.out[i].len()
    }

    /// Number of buckets.
    pub fn buckets(&self) -> usize {
        self.out.len()
    }

    /// Closes the writer and returns the buckets.
    pub fn finish(self) -> Vec<ExtVec<T>> {
        self.out
    }
}

/// Routes every element of `input` into up to `buckets` output arrays in a
/// single scan.
///
/// `route` is called exactly once per element and returns a bitmask: bit `i`
/// set means "append a copy to bucket `i`". An element may be sent to
/// several buckets or (mask `0`) to none. Bits at positions `≥ buckets` are
/// ignored. Relative input order is preserved within every bucket, so sorted
/// inputs produce sorted buckets.
///
/// # Panics
///
/// Panics if `buckets` is `0` or exceeds [`MAX_PARTITION_BUCKETS`].
pub fn scan_partition<T, F>(input: &ExtVec<T>, buckets: usize, mut route: F) -> Vec<ExtVec<T>>
where
    T: Record,
    F: FnMut(&T) -> u32,
{
    let mut writer = PartitionWriter::new(input.machine(), buckets);
    for x in input.iter() {
        let mask = route(&x);
        writer.push(x, mask);
    }
    writer.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan_filter;
    use emsim::{EmConfig, Machine};

    fn m() -> Machine {
        Machine::new(EmConfig::new(1 << 10, 64))
    }

    #[test]
    fn routes_every_element_and_preserves_order() {
        let machine = m();
        let v = ExtVec::from_slice(&machine, &(0..100u64).collect::<Vec<_>>());
        let parts = scan_partition(&v, 4, |x| 1 << (x % 4));
        assert_eq!(parts.len(), 4);
        for (i, p) in parts.iter().enumerate() {
            let got = p.load_all();
            assert_eq!(got.len(), 25);
            assert!(got.iter().all(|x| x % 4 == i as u64));
            assert!(got.windows(2).all(|w| w[0] < w[1]), "order preserved");
        }
    }

    #[test]
    fn multi_bucket_masks_duplicate_and_zero_masks_drop() {
        let machine = m();
        let v = ExtVec::from_slice(&machine, &[1u64, 2, 3, 4]);
        // Odd values to buckets 0 and 2, the value 2 nowhere, 4 to bucket 1.
        let parts = scan_partition(&v, 3, |x| match x {
            x if x % 2 == 1 => 0b101,
            4 => 0b010,
            _ => 0,
        });
        assert_eq!(parts[0].load_all(), vec![1, 3]);
        assert_eq!(parts[1].load_all(), vec![4]);
        assert_eq!(parts[2].load_all(), vec![1, 3]);
    }

    #[test]
    fn bits_beyond_bucket_count_are_ignored() {
        let machine = m();
        let v = ExtVec::from_slice(&machine, &[7u64]);
        let parts = scan_partition(&v, 2, |_| u32::MAX);
        assert_eq!(parts[0].load_all(), vec![7]);
        assert_eq!(parts[1].load_all(), vec![7]);
    }

    #[test]
    fn agrees_with_per_bucket_filter_scans() {
        let machine = m();
        let data: Vec<u64> = (0..500).map(|i| i * 2654435761 % 1000).collect();
        let v = ExtVec::from_slice(&machine, &data);
        let classify = |x: &u64| -> u32 {
            let mut mask = 0;
            if *x < 500 {
                mask |= 1;
            }
            if x.is_multiple_of(3) {
                mask |= 2;
            }
            if x % 5 == 1 {
                mask |= 4;
            }
            mask
        };
        let parts = scan_partition(&v, 3, classify);
        for (i, p) in parts.iter().enumerate() {
            let filtered = scan_filter(&v, |x| classify(x) & (1 << i) != 0);
            assert_eq!(p.load_all(), filtered.load_all(), "bucket {i}");
        }
    }

    #[test]
    fn single_scan_reads_input_once() {
        // 8 buckets + the input stream fit the cache, so the read side must
        // cost exactly one scan of the input — that is the whole point of the
        // primitive versus 8 filter passes.
        let machine = Machine::new(EmConfig::new(1 << 10, 64)); // 16 frames
        let n = 64 * 40usize;
        let v = ExtVec::from_slice(&machine, &(0..n as u64).collect::<Vec<_>>());
        machine.cold_cache();
        let before = machine.io();
        let parts = scan_partition(&v, 8, |x| 1 << (x % 8));
        assert_eq!(parts.iter().map(ExtVec::len).sum::<usize>(), n);
        let reads = machine.io().reads - before.reads;
        assert_eq!(reads, 40, "one sequential scan of 40 blocks");
    }

    #[test]
    fn work_counter_charges_one_op_per_element() {
        let machine = m();
        let v = ExtVec::from_slice(&machine, &(0..77u64).collect::<Vec<_>>());
        let before = machine.stats().work_ops;
        let _ = scan_partition(&v, 2, |_| 0b11);
        assert_eq!(machine.stats().work_ops - before, 77);
    }

    #[test]
    fn routing_state_is_gauge_accounted() {
        let machine = m();
        let v = ExtVec::from_slice(&machine, &[1u64]);
        machine.gauge().reset_peak();
        let _ = scan_partition(&v, 8, |_| 0);
        assert!(machine.gauge().peak() >= 8);
        assert_eq!(machine.gauge().in_use(), 0, "lease released after the scan");
    }

    #[test]
    #[should_panic]
    fn zero_buckets_rejected() {
        let machine = m();
        let v = ExtVec::from_slice(&machine, &[1u64]);
        let _ = scan_partition(&v, 0, |_| 0);
    }

    #[test]
    fn writer_is_stable_across_multiple_runs_and_reports_lengths() {
        // The level-synchronous use case: several sorted runs fed through one
        // open writer come out as sorted runs, delimited by bucket_len deltas.
        let machine = m();
        let runs: Vec<Vec<u64>> = vec![vec![0, 2, 4, 6], vec![1, 3, 5], vec![8, 10]];
        let mut writer: PartitionWriter<u64> = PartitionWriter::new(&machine, 2);
        assert_eq!(writer.buckets(), 2);
        let mut marks = Vec::new();
        for run in &runs {
            let before = (writer.bucket_len(0), writer.bucket_len(1));
            for &x in run {
                writer.push(x, if x % 4 == 0 { 0b01 } else { 0b10 });
            }
            marks.push((before, (writer.bucket_len(0), writer.bucket_len(1))));
        }
        let out = writer.finish();
        assert_eq!(out[0].load_all(), vec![0, 4, 8]);
        assert_eq!(out[1].load_all(), vec![2, 6, 1, 3, 5, 10]);
        // Per-run ranges reconstruct each run's contribution exactly.
        assert_eq!(marks[0], ((0, 0), (2, 2)));
        assert_eq!(marks[1], ((2, 2), (2, 5)));
        assert_eq!(marks[2], ((2, 5), (3, 6)));
    }

    #[test]
    fn writer_state_is_gauge_accounted_for_its_lifetime() {
        let machine = m();
        machine.gauge().reset_peak();
        let writer: PartitionWriter<u64> = PartitionWriter::new(&machine, 8);
        assert_eq!(machine.gauge().in_use(), 8);
        let _ = writer.finish();
        assert_eq!(machine.gauge().in_use(), 0, "lease released on finish");
        assert!(machine.gauge().peak() >= 8);
    }

    #[test]
    fn one_writer_per_level_beats_one_scan_partition_per_node_on_tiny_runs() {
        // The I/O rationale for the writer: 64 nodes of 4 elements each,
        // routed to 4 buckets. Per-node scan_partition pays fresh partial
        // tail blocks for every node; the shared writer packs every bucket
        // densely.
        let machine = Machine::new(EmConfig::new(1 << 10, 64));
        let nodes: Vec<Vec<u64>> = (0..64u64).map(|n| (4 * n..4 * n + 4).collect()).collect();
        let inputs: Vec<ExtVec<u64>> = nodes
            .iter()
            .map(|n| ExtVec::from_slice(&machine, n))
            .collect();

        machine.cold_cache();
        let before = machine.io().total();
        let per_node_out: Vec<_> = inputs
            .iter()
            .map(|v| scan_partition(v, 4, |x| 1 << (x % 4)))
            .collect();
        machine.cold_cache();
        let per_node_io = machine.io().total() - before;
        drop(per_node_out);

        machine.cold_cache();
        let before = machine.io().total();
        let mut writer: PartitionWriter<u64> = PartitionWriter::new(&machine, 4);
        for v in &inputs {
            for x in v.iter() {
                writer.push(x, 1 << (x % 4));
            }
        }
        let out = writer.finish();
        machine.cold_cache();
        let level_io = machine.io().total() - before;
        assert_eq!(out.iter().map(ExtVec::len).sum::<usize>(), 256);
        assert!(
            2 * level_io < per_node_io,
            "shared writer should at least halve the I/O (per-node {per_node_io}, level {level_io})"
        );
    }
}
