//! # emalgo — external-memory algorithmic primitives
//!
//! The building blocks every algorithm in the paper assumes:
//!
//! * [`external_sort_by_key`] — the classic **cache-aware multiway
//!   mergesort**: run formation over `Θ(M)`-word chunks followed by
//!   `(M/B − 1)`-way merge passes, achieving the textbook
//!   `sort(n) = O((n/B)·log_{M/B}(n/B))` I/O bound. This is the `sort`
//!   primitive used by the cache-aware algorithms (Sections 2 and 4 of the
//!   paper) and by the Hu–Tao–Chung and Dementiev baselines.
//! * [`oblivious_sort_by_key`] — a **cache-oblivious recursive mergesort**
//!   whose code never consults `M` or `B`; under the simulator's LRU cache it
//!   costs `O((n/B)·log_2(n/M))` I/Os, which is what Theorem 1's proof needs
//!   from "any efficient cache-oblivious sorting algorithm" (funnelsort would
//!   shave the base of the logarithm; the experiment harness reports the
//!   sort share so the difference is visible and immaterial at our scales).
//! * [`kway_merge`] — a **buffered streaming k-way merge**: one in-core head
//!   element per sorted cursor (gauge-accounted), everything else streamed
//!   through the block cache, yielding the merged order as an iterator
//!   without materialising it. It is the merge pass of the cache-aware sort
//!   and the on-the-fly colour-class union of the cache-aware triangle
//!   algorithms' step 3.
//! * [`merge_sorted`], [`scan_filter`], [`is_sorted_by_key`], [`dedup_sorted`]
//!   — scanning utilities with the obvious `O(n/B)` costs.
//! * [`scan_partition`] / [`PartitionWriter`] — a **multi-way single-pass
//!   partition**: every element is classified once and routed to any subset
//!   of up to [`MAX_PARTITION_BUCKETS`] output buckets in one scan. The
//!   writer form keeps the buckets open across many sorted runs, which is how
//!   the level-synchronous cache-oblivious recursion routes a whole tree
//!   level (every live node's eight-child split) through one distribution
//!   sweep.
//! * [`kway_merge_tagged`] — the merge with **source tags**: each yielded
//!   element names the cursor it came from, turning the merge into a
//!   single-pass join driver over key-aligned files (the batched wedge-join
//!   base case closes all leaves' wedges against all leaves' edges this way).
//!
//! All primitives operate on [`emsim::ExtVec`] arrays so that every block
//! transfer is accounted for by the simulator.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod merge;
mod oblivious;
mod partition;
mod sort;

pub use merge::{
    dedup_sorted, is_sorted_by_key, kway_merge, kway_merge_tagged, merge_sorted, scan_filter,
    KWayMerge, KWayMergeTagged,
};
pub use oblivious::oblivious_sort_by_key;
pub use partition::{scan_partition, PartitionWriter, MAX_PARTITION_BUCKETS};
pub use sort::{external_sort_by_key, external_sort_by_key_with_stats, SortStats};

#[cfg(test)]
mod tests {
    use super::*;
    use emsim::{EmConfig, ExtVec, Machine};
    use rand::prelude::*;

    #[test]
    fn both_sorts_agree_with_std_sort() {
        let mut rng = StdRng::seed_from_u64(1);
        let machine = Machine::new(EmConfig::new(512, 64));
        let data: Vec<u64> = (0..5000).map(|_| rng.random_range(0..100_000)).collect();
        let v = ExtVec::from_slice(&machine, &data);

        let aware = external_sort_by_key(&v, |x| *x);
        let oblivious = oblivious_sort_by_key(&v, |x| *x);

        let mut expected = data.clone();
        expected.sort_unstable();
        assert_eq!(aware.load_all(), expected);
        assert_eq!(oblivious.load_all(), expected);
    }

    #[test]
    fn aware_sort_uses_fewer_ios_than_oblivious_binary_mergesort() {
        // With a decent fanout the multiway sort does ~2 passes while the
        // binary mergesort does ~log2(n/M) passes; just confirm both are in a
        // sane range and the aware sort does not lose.
        let machine = Machine::new(EmConfig::new(1 << 12, 64));
        let n = 200_000usize;
        let data: Vec<u64> = (0..n as u64).rev().collect();
        let v = ExtVec::from_slice(&machine, &data);
        machine.cold_cache();

        let before = machine.io().total();
        let a = external_sort_by_key(&v, |x| *x);
        let aware_io = machine.io().total() - before;
        drop(a);

        machine.cold_cache();
        let before = machine.io().total();
        let b = oblivious_sort_by_key(&v, |x| *x);
        let obl_io = machine.io().total() - before;
        drop(b);

        assert!(
            aware_io <= obl_io,
            "multiway ({aware_io}) should not exceed binary mergesort ({obl_io})"
        );
        // Both are within a small factor of the analytic sort bound.
        let bound = machine.config().sort_cost(n) as f64;
        assert!((aware_io as f64) < 8.0 * bound);
        assert!((obl_io as f64) < 40.0 * bound);
    }
}
