//! Scanning utilities: merging, filtering, deduplication.

use emsim::{ExtVec, Record};

/// Merges two arrays that are already sorted by `key` into a new sorted
/// array, in a single simultaneous scan (`O((|a|+|b|)/B)` I/Os).
pub fn merge_sorted<T, K, F>(a: &ExtVec<T>, b: &ExtVec<T>, key: F) -> ExtVec<T>
where
    T: Record,
    K: Ord + Copy,
    F: Fn(&T) -> K,
{
    let machine = a.machine().clone();
    let mut out: ExtVec<T> = ExtVec::new(&machine);
    let mut ia = a.iter().peekable();
    let mut ib = b.iter().peekable();
    loop {
        machine.work(1);
        match (ia.peek().copied(), ib.peek().copied()) {
            (Some(x), Some(y)) => {
                if key(&x) <= key(&y) {
                    out.push(x);
                    ia.next();
                } else {
                    out.push(y);
                    ib.next();
                }
            }
            (Some(x), None) => {
                out.push(x);
                ia.next();
            }
            (None, Some(y)) => {
                out.push(y);
                ib.next();
            }
            (None, None) => break,
        }
    }
    out
}

/// Scans `input` and writes the elements satisfying `keep` to a new array
/// (`O(n/B)` I/Os plus the output volume).
pub fn scan_filter<T, F>(input: &ExtVec<T>, mut keep: F) -> ExtVec<T>
where
    T: Record,
    F: FnMut(&T) -> bool,
{
    let machine = input.machine().clone();
    let mut out: ExtVec<T> = ExtVec::new(&machine);
    for x in input.iter() {
        machine.work(1);
        if keep(&x) {
            out.push(x);
        }
    }
    out
}

/// Checks in one scan whether `input` is sorted (non-decreasing) by `key`.
pub fn is_sorted_by_key<T, K, F>(input: &ExtVec<T>, key: F) -> bool
where
    T: Record,
    K: Ord + Copy,
    F: Fn(&T) -> K,
{
    let machine = input.machine().clone();
    let mut prev: Option<K> = None;
    for x in input.iter() {
        machine.work(1);
        let k = key(&x);
        if let Some(p) = prev {
            if k < p {
                return false;
            }
        }
        prev = Some(k);
    }
    true
}

/// Removes adjacent duplicates (by `key`) from a sorted array in one scan,
/// returning the deduplicated array.
pub fn dedup_sorted<T, K, F>(input: &ExtVec<T>, key: F) -> ExtVec<T>
where
    T: Record,
    K: Ord + Copy + PartialEq,
    F: Fn(&T) -> K,
{
    let machine = input.machine().clone();
    let mut out: ExtVec<T> = ExtVec::new(&machine);
    let mut prev: Option<K> = None;
    for x in input.iter() {
        machine.work(1);
        let k = key(&x);
        if prev != Some(k) {
            out.push(x);
            prev = Some(k);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use emsim::{EmConfig, Machine};

    fn m() -> Machine {
        Machine::new(EmConfig::new(256, 64))
    }

    #[test]
    fn merge_interleaves_correctly() {
        let machine = m();
        let a = ExtVec::from_slice(&machine, &[1u64, 3, 5, 7]);
        let b = ExtVec::from_slice(&machine, &[2u64, 2, 6, 8, 10]);
        let out = merge_sorted(&a, &b, |x| *x).load_all();
        assert_eq!(out, vec![1, 2, 2, 3, 5, 6, 7, 8, 10]);
    }

    #[test]
    fn merge_with_empty_side() {
        let machine = m();
        let a = ExtVec::from_slice(&machine, &[1u64, 2]);
        let b: ExtVec<u64> = ExtVec::new(&machine);
        assert_eq!(merge_sorted(&a, &b, |x| *x).load_all(), vec![1, 2]);
        assert_eq!(merge_sorted(&b, &a, |x| *x).load_all(), vec![1, 2]);
    }

    #[test]
    fn filter_keeps_matching_elements_in_order() {
        let machine = m();
        let v = ExtVec::from_slice(&machine, &(0..100u64).collect::<Vec<_>>());
        let evens = scan_filter(&v, |x| x % 2 == 0).load_all();
        assert_eq!(evens.len(), 50);
        assert!(evens.iter().all(|x| x % 2 == 0));
        assert!(evens.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn sortedness_check() {
        let machine = m();
        let sorted = ExtVec::from_slice(&machine, &[1u64, 1, 2, 9]);
        let unsorted = ExtVec::from_slice(&machine, &[1u64, 3, 2]);
        assert!(is_sorted_by_key(&sorted, |x| *x));
        assert!(!is_sorted_by_key(&unsorted, |x| *x));
        let empty: ExtVec<u64> = ExtVec::new(&machine);
        assert!(is_sorted_by_key(&empty, |x| *x));
    }

    #[test]
    fn dedup_removes_adjacent_duplicates() {
        let machine = m();
        let v = ExtVec::from_slice(&machine, &[1u64, 1, 1, 2, 3, 3, 9]);
        assert_eq!(dedup_sorted(&v, |x| *x).load_all(), vec![1, 2, 3, 9]);
    }
}
