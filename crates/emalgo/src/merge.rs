//! Scanning utilities: merging, filtering, deduplication.

use emsim::{ExtVec, Machine, MemLease, Record, ScanReader};

/// A streaming `k`-way merge over sorted sequential cursors.
///
/// Holds exactly one in-core head element per cursor (the `O(k)`-word state is
/// registered on the machine's [`emsim::MemGauge`] for the merger's lifetime);
/// everything else streams through the block cache, so with `k ≤ M/B − 1` each
/// cursor keeps its current block resident and a full merge of `n` elements
/// costs `O(n/B)` read I/Os. Produced elements are yielded in `key` order
/// (ties broken by cursor index, making the merge stable across cursors)
/// without ever being materialised — callers that want an array push the
/// iterator into an [`ExtVec`], callers that want a pure stream (e.g. the
/// cone-edge scans of the triangle algorithms) consume it element by element.
pub struct KWayMerge<'a, T, K, F>
where
    T: Record,
    K: Ord + Copy,
    F: Fn(&T) -> K,
{
    inner: KWayMergeTagged<'a, T, K, F>,
}

/// A streaming `k`-way merge that additionally reports, for every yielded
/// element, **which cursor it came from** (its *tag*).
///
/// Same machinery and cost model as [`KWayMerge`] (one in-core head per
/// cursor, gauge-accounted, `O(n/B)` read I/Os for sequential cursors); ties
/// go to the lower cursor index. The tag is what turns the merge into a
/// multi-source *join* driver: interleave two key-aligned files (say, a
/// leaf-tagged edge file and a leaf-tagged wedge file) and the tag tells the
/// consumer whether the element it just saw is a probe or a match candidate —
/// the cache-oblivious batched base case closes every leaf's wedges against
/// every leaf's edges in exactly one such pass.
pub struct KWayMergeTagged<'a, T, K, F>
where
    T: Record,
    K: Ord + Copy,
    F: Fn(&T) -> K,
{
    machine: Machine,
    cursors: Vec<ScanReader<'a, T>>,
    heads: Vec<Option<(K, T)>>,
    live: usize,
    key: F,
    _lease: MemLease,
}

/// Starts a streaming merge of the sorted `inputs` (see [`KWayMerge`]).
/// Each input cursor must be sorted (non-decreasing) by `key`.
pub fn kway_merge<'a, T, K, F>(
    machine: &Machine,
    inputs: Vec<ScanReader<'a, T>>,
    key: F,
) -> KWayMerge<'a, T, K, F>
where
    T: Record,
    K: Ord + Copy,
    F: Fn(&T) -> K,
{
    KWayMerge {
        inner: kway_merge_tagged(machine, inputs, key),
    }
}

/// Starts a streaming *tagged* merge of the sorted `inputs` (see
/// [`KWayMergeTagged`]). Each input cursor must be sorted (non-decreasing)
/// by `key`; the merge yields `(cursor index, element)` pairs in `key` order,
/// ties broken toward the lower cursor index.
pub fn kway_merge_tagged<'a, T, K, F>(
    machine: &Machine,
    inputs: Vec<ScanReader<'a, T>>,
    key: F,
) -> KWayMergeTagged<'a, T, K, F>
where
    T: Record,
    K: Ord + Copy,
    F: Fn(&T) -> K,
{
    let lease = machine
        .gauge()
        .lease((inputs.len() * (T::WORDS + 2)) as u64);
    let mut merge = KWayMergeTagged {
        machine: machine.clone(),
        cursors: inputs,
        heads: Vec::new(),
        live: 0,
        key,
        _lease: lease,
    };
    for i in 0..merge.cursors.len() {
        let head = merge.cursors[i].next().map(|t| ((merge.key)(&t), t));
        if head.is_some() {
            merge.live += 1;
        }
        merge.heads.push(head);
    }
    merge
}

impl<T, K, F> Iterator for KWayMergeTagged<'_, T, K, F>
where
    T: Record,
    K: Ord + Copy,
    F: Fn(&T) -> K,
{
    type Item = (usize, T);

    fn next(&mut self) -> Option<(usize, T)> {
        if self.live == 0 {
            return None;
        }
        // Select the cursor with the smallest head key (first wins on ties).
        let mut best: Option<usize> = None;
        for (i, h) in self.heads.iter().enumerate() {
            if let Some((k, _)) = h {
                if best.is_none_or(|b| {
                    let (bk, _) = self.heads[b].as_ref().expect("best head present");
                    k < bk
                }) {
                    best = Some(i);
                }
            }
        }
        let i = best.expect("live > 0 implies a head exists");
        let (_, t) = self.heads[i].take().expect("selected head present");
        // The linear selection really compares every live head, so charge
        // O(live) work per yielded element (the work counter backs the E7
        // tables — it must track what the code executes).
        self.machine.work(self.live as u64);
        match self.cursors[i].next() {
            Some(nt) => self.heads[i] = Some(((self.key)(&nt), nt)),
            None => self.live -= 1,
        }
        Some((i, t))
    }
}

impl<T, K, F> Iterator for KWayMerge<'_, T, K, F>
where
    T: Record,
    K: Ord + Copy,
    F: Fn(&T) -> K,
{
    type Item = T;

    fn next(&mut self) -> Option<T> {
        self.inner.next().map(|(_, t)| t)
    }
}

/// Merges two arrays that are already sorted by `key` into a new sorted
/// array, in a single simultaneous scan (`O((|a|+|b|)/B)` I/Os). A thin
/// materialising wrapper over [`kway_merge`].
pub fn merge_sorted<T, K, F>(a: &ExtVec<T>, b: &ExtVec<T>, key: F) -> ExtVec<T>
where
    T: Record,
    K: Ord + Copy,
    F: Fn(&T) -> K,
{
    let machine = a.machine().clone();
    let mut out: ExtVec<T> = ExtVec::new(&machine);
    // emlint: allow(unleased, reason = "two cursor handles, not a data buffer; the merge itself is charged by kway_merge")
    out.extend(kway_merge(&machine, vec![a.iter(), b.iter()], key));
    out
}

/// Scans `input` and writes the elements satisfying `keep` to a new array
/// (`O(n/B)` I/Os plus the output volume).
pub fn scan_filter<T, F>(input: &ExtVec<T>, mut keep: F) -> ExtVec<T>
where
    T: Record,
    F: FnMut(&T) -> bool,
{
    let machine = input.machine().clone();
    let mut out: ExtVec<T> = ExtVec::new(&machine);
    for x in input.iter() {
        machine.work(1);
        if keep(&x) {
            out.push(x);
        }
    }
    out
}

/// Checks in one scan whether `input` is sorted (non-decreasing) by `key`.
pub fn is_sorted_by_key<T, K, F>(input: &ExtVec<T>, key: F) -> bool
where
    T: Record,
    K: Ord + Copy,
    F: Fn(&T) -> K,
{
    let machine = input.machine().clone();
    let mut prev: Option<K> = None;
    for x in input.iter() {
        machine.work(1);
        let k = key(&x);
        if let Some(p) = prev {
            if k < p {
                return false;
            }
        }
        prev = Some(k);
    }
    true
}

/// Removes adjacent duplicates (by `key`) from a sorted array in one scan,
/// returning the deduplicated array.
pub fn dedup_sorted<T, K, F>(input: &ExtVec<T>, key: F) -> ExtVec<T>
where
    T: Record,
    K: Ord + Copy + PartialEq,
    F: Fn(&T) -> K,
{
    let machine = input.machine().clone();
    let mut out: ExtVec<T> = ExtVec::new(&machine);
    let mut prev: Option<K> = None;
    for x in input.iter() {
        machine.work(1);
        let k = key(&x);
        if prev != Some(k) {
            out.push(x);
            prev = Some(k);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use emsim::{EmConfig, Machine};

    fn m() -> Machine {
        Machine::new(EmConfig::new(256, 64))
    }

    #[test]
    fn merge_interleaves_correctly() {
        let machine = m();
        let a = ExtVec::from_slice(&machine, &[1u64, 3, 5, 7]);
        let b = ExtVec::from_slice(&machine, &[2u64, 2, 6, 8, 10]);
        let out = merge_sorted(&a, &b, |x| *x).load_all();
        assert_eq!(out, vec![1, 2, 2, 3, 5, 6, 7, 8, 10]);
    }

    #[test]
    fn merge_with_empty_side() {
        let machine = m();
        let a = ExtVec::from_slice(&machine, &[1u64, 2]);
        let b: ExtVec<u64> = ExtVec::new(&machine);
        assert_eq!(merge_sorted(&a, &b, |x| *x).load_all(), vec![1, 2]);
        assert_eq!(merge_sorted(&b, &a, |x| *x).load_all(), vec![1, 2]);
    }

    #[test]
    fn filter_keeps_matching_elements_in_order() {
        let machine = m();
        let v = ExtVec::from_slice(&machine, &(0..100u64).collect::<Vec<_>>());
        let evens = scan_filter(&v, |x| x % 2 == 0).load_all();
        assert_eq!(evens.len(), 50);
        assert!(evens.iter().all(|x| x % 2 == 0));
        assert!(evens.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn sortedness_check() {
        let machine = m();
        let sorted = ExtVec::from_slice(&machine, &[1u64, 1, 2, 9]);
        let unsorted = ExtVec::from_slice(&machine, &[1u64, 3, 2]);
        assert!(is_sorted_by_key(&sorted, |x| *x));
        assert!(!is_sorted_by_key(&unsorted, |x| *x));
        let empty: ExtVec<u64> = ExtVec::new(&machine);
        assert!(is_sorted_by_key(&empty, |x| *x));
    }

    #[test]
    fn dedup_removes_adjacent_duplicates() {
        let machine = m();
        let v = ExtVec::from_slice(&machine, &[1u64, 1, 1, 2, 3, 3, 9]);
        assert_eq!(dedup_sorted(&v, |x| *x).load_all(), vec![1, 2, 3, 9]);
    }

    #[test]
    fn kway_merge_streams_many_cursors_in_order() {
        let machine = m();
        let a = ExtVec::from_slice(&machine, &[0u64, 3, 6, 9]);
        let b = ExtVec::from_slice(&machine, &[1u64, 4, 7]);
        let c = ExtVec::from_slice(&machine, &[2u64, 5, 8, 10, 11]);
        let merged: Vec<u64> =
            kway_merge(&machine, vec![a.iter(), b.iter(), c.iter()], |x| *x).collect();
        assert_eq!(merged, (0..12u64).collect::<Vec<_>>());
    }

    #[test]
    fn kway_merge_over_slices_and_empty_cursors() {
        let machine = m();
        let v = ExtVec::from_slice(&machine, &[1u64, 5, 9, 2, 6, 7]);
        // Two sorted sub-ranges of the same array plus an empty one.
        let merged: Vec<u64> = kway_merge(
            &machine,
            vec![
                v.slice(0, 3).iter(),
                v.slice(3, 6).iter(),
                v.slice(6, 6).iter(),
            ],
            |x| *x,
        )
        .collect();
        assert_eq!(merged, vec![1, 2, 5, 6, 7, 9]);
        let none: Vec<u64> = kway_merge(&machine, Vec::new(), |x: &u64| *x).collect();
        assert!(none.is_empty());
    }

    #[test]
    fn kway_merge_is_stable_across_cursors_and_gauge_accounted() {
        let machine = m();
        let a = ExtVec::from_slice(&machine, &[(1u32, 10u32), (2, 10)]);
        let b = ExtVec::from_slice(&machine, &[(1u32, 20u32), (3, 20)]);
        let mut it = kway_merge(&machine, vec![a.iter(), b.iter()], |x| x.0);
        // The merger's O(k) head state is leased while it is alive.
        assert!(machine.gauge().in_use() > 0);
        // Equal keys: the earlier cursor's element comes first.
        assert_eq!(it.next(), Some((1, 10)));
        assert_eq!(it.next(), Some((1, 20)));
        assert_eq!(it.next(), Some((2, 10)));
        assert_eq!(it.next(), Some((3, 20)));
        assert_eq!(it.next(), None);
        drop(it);
        assert_eq!(machine.gauge().in_use(), 0);
    }

    #[test]
    fn tagged_merge_reports_source_cursors_and_breaks_ties_low_first() {
        let machine = m();
        // Two key-aligned files: "edges" (cursor 0) and "wedges" (cursor 1)
        // sharing keys; the tag stream drives a merge join.
        let edges = ExtVec::from_slice(&machine, &[(1u32, 10u32), (3, 30)]);
        let wedges = ExtVec::from_slice(&machine, &[(1u32, 77u32), (1, 78), (2, 79), (3, 80)]);
        let tagged: Vec<(usize, (u32, u32))> =
            kway_merge_tagged(&machine, vec![edges.iter(), wedges.iter()], |x| x.0).collect();
        assert_eq!(
            tagged,
            vec![
                (0, (1, 10)), // the edge arrives before its equal-key wedges
                (1, (1, 77)),
                (1, (1, 78)),
                (1, (2, 79)),
                (0, (3, 30)),
                (1, (3, 80)),
            ]
        );
        // The classic join pattern over the tags: a wedge matches iff the
        // last edge seen had the same key.
        let mut last_edge = None;
        let mut matched = Vec::new();
        for (tag, (k, payload)) in tagged {
            if tag == 0 {
                last_edge = Some(k);
            } else if last_edge == Some(k) {
                matched.push(payload);
            }
        }
        assert_eq!(matched, vec![77, 78, 80]);
    }

    #[test]
    fn kway_merge_of_sequential_cursors_costs_one_scan() {
        // The point of the streaming merge: k sequential cursors with one
        // in-core head each read every block exactly once.
        let machine = Machine::new(emsim::EmConfig::new(64 * 8, 64));
        let per_run = 64 * 10u64;
        let runs: Vec<ExtVec<u64>> = (0..3)
            .map(|r| {
                ExtVec::from_slice(
                    &machine,
                    &(0..per_run).map(|i| 3 * i + r).collect::<Vec<_>>(),
                )
            })
            .collect();
        machine.cold_cache();
        let before = machine.io();
        let merged: Vec<u64> =
            kway_merge(&machine, runs.iter().map(|r| r.iter()).collect(), |x| *x).collect();
        assert_eq!(merged, (0..3 * per_run).collect::<Vec<_>>());
        let reads = machine.io().reads - before.reads;
        assert_eq!(reads, 30, "3-way merge of 30 blocks must read 30 blocks");
    }
}
