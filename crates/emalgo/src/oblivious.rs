//! Cache-oblivious recursive mergesort.
//!
//! The cache-oblivious algorithm of the paper (Section 3) must not consult
//! `M` or `B`; in particular its sorting subroutine must be cache-oblivious.
//! This module provides a recursive two-way mergesort over [`emsim::ExtVec`]
//! arrays:
//!
//! * the recursion splits the range in half until a small **constant** base
//!   size (constants are allowed in the cache-oblivious model — what is
//!   forbidden is dependence on the machine parameters),
//! * merging is a simultaneous sequential scan of the two sorted halves.
//!
//! Under an (ideal or LRU) cache, every recursion subtree whose data fits in
//! internal memory incurs no further misses after it is first loaded, so the
//! cost is `O((n/B)·log_2(n/M))` I/Os without the code ever knowing `M` or
//! `B`. (Funnelsort improves the log base to `M/B`; it is listed as an
//! extension in DESIGN.md because the sorting term is a lower-order
//! contribution to the triangle-enumeration totals.)

use emsim::{ExtVec, Record};

/// Elements at or below this count are sorted directly; a fixed constant,
/// independent of the machine parameters.
const BASE: usize = 32;

/// Sorts `input` by `key` cache-obliviously and returns a new sorted array.
///
/// Already-sorted input is detected by a single fully charged scan (one unit
/// of work per element, the usual `O(n/B)` sequential read cost) and copied
/// out directly — `O(n/B)` I/Os instead of the `log` merge passes. This is
/// what lets call sites keep a defensive sort in front of data that an
/// order-preserving partition already delivers sorted: the defence costs a
/// scan, not a sort.
pub fn oblivious_sort_by_key<T, K, F>(input: &ExtVec<T>, key: F) -> ExtVec<T>
where
    T: Record,
    K: Ord + Copy,
    F: Fn(&T) -> K,
{
    let machine = input.machine().clone();
    if input.is_empty() {
        return ExtVec::new(&machine);
    }
    if crate::is_sorted_by_key(input, &key) {
        let mut out: ExtVec<T> = ExtVec::new(&machine);
        for x in input.iter() {
            machine.work(1);
            out.push(x);
        }
        return out;
    }
    sort_range(input, 0, input.len(), &key)
}

fn sort_range<T, K, F>(input: &ExtVec<T>, lo: usize, hi: usize, key: &F) -> ExtVec<T>
where
    T: Record,
    K: Ord + Copy,
    F: Fn(&T) -> K,
{
    let machine = input.machine().clone();
    let n = hi - lo;
    if n <= BASE {
        // Constant-size base case: read, sort, write.
        let _lease = machine.gauge().lease((n * T::WORDS) as u64);
        let mut buf = input.load_range(lo, hi);
        // emlint: charge(work, n as u64 * 6)
        buf.sort_by_key(|t| key(t));
        machine.work(n as u64 * 6);
        return ExtVec::from_slice(&machine, &buf);
    }
    let mid = lo + n / 2;
    let left = sort_range(input, lo, mid, key);
    let right = sort_range(input, mid, hi, key);
    merge_two(&left, &right, key)
}

fn merge_two<T, K, F>(a: &ExtVec<T>, b: &ExtVec<T>, key: &F) -> ExtVec<T>
where
    T: Record,
    K: Ord + Copy,
    F: Fn(&T) -> K,
{
    let machine = a.machine().clone();
    let mut out: ExtVec<T> = ExtVec::new(&machine);
    let (mut i, mut j) = (0usize, 0usize);
    let (na, nb) = (a.len(), b.len());
    while i < na && j < nb {
        machine.work(1);
        let x = a.get(i);
        let y = b.get(j);
        if key(&x) <= key(&y) {
            out.push(x);
            i += 1;
        } else {
            out.push(y);
            j += 1;
        }
    }
    while i < na {
        out.push(a.get(i));
        i += 1;
    }
    while j < nb {
        out.push(b.get(j));
        j += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use emsim::{EmConfig, Machine};
    use rand::prelude::*;

    #[test]
    fn sorts_small_and_edge_cases() {
        let m = Machine::new(EmConfig::new(256, 64));
        let empty: ExtVec<u64> = ExtVec::new(&m);
        assert!(oblivious_sort_by_key(&empty, |x| *x).is_empty());
        let one = ExtVec::from_slice(&m, &[9u64]);
        assert_eq!(oblivious_sort_by_key(&one, |x| *x).load_all(), vec![9]);
        let dup = ExtVec::from_slice(&m, &[3u64, 3, 3, 1, 1]);
        assert_eq!(
            oblivious_sort_by_key(&dup, |x| *x).load_all(),
            vec![1, 1, 3, 3, 3]
        );
    }

    #[test]
    fn sorts_random_input() {
        let m = Machine::new(EmConfig::new(512, 64));
        let mut rng = StdRng::seed_from_u64(11);
        let data: Vec<u64> = (0..7777).map(|_| rng.random_range(0..10_000)).collect();
        let v = ExtVec::from_slice(&m, &data);
        let out = oblivious_sort_by_key(&v, |x| *x).load_all();
        let mut expected = data;
        expected.sort_unstable();
        assert_eq!(out, expected);
    }

    #[test]
    fn more_memory_means_fewer_misses_without_code_changes() {
        // The essence of cache-obliviousness: the same code, run on machines
        // that differ only in M, automatically benefits from the larger
        // memory. (The algorithm itself never reads M.)
        let n = 50_000usize;
        let data: Vec<u64> = (0..n as u64).rev().collect();

        let run = |mem: usize| -> u64 {
            let m = Machine::new(EmConfig::new(mem, 64));
            let v = ExtVec::from_slice(&m, &data);
            m.cold_cache();
            let before = m.io().total();
            let s = oblivious_sort_by_key(&v, |x| *x);
            assert_eq!(s.len(), n);
            m.io().total() - before
        };

        let small = run(1 << 9);
        let large = run(1 << 15);
        assert!(
            large * 2 < small,
            "larger memory should cut misses substantially: small={small}, large={large}"
        );
    }

    #[test]
    fn already_sorted_input_early_exits_at_scan_cost() {
        let m = Machine::new(EmConfig::new(512, 64));
        let n = 64 * 200usize;
        let sorted = ExtVec::from_slice(&m, &(0..n as u64).collect::<Vec<_>>());

        m.cold_cache();
        let io_before = m.io().total();
        let work_before = m.stats().work_ops;
        let out = oblivious_sort_by_key(&sorted, |x| *x);
        m.cold_cache(); // flush the output's dirty tail so writes are counted
        let io = m.io().total() - io_before;
        let work = m.stats().work_ops - work_before;
        assert_eq!(out.load_all(), (0..n as u64).collect::<Vec<_>>());
        // Detection scan + copy-out: ~3 block passes, nowhere near the
        // log(n/M) ≈ 6 read+write passes of the full mergesort.
        let blocks = (n / 64) as u64;
        assert!(
            io <= 3 * blocks + 4,
            "sorted input should cost ~3 scans, got {io} I/Os over {blocks} blocks"
        );
        assert!(work >= 2 * n as u64, "the detection scan must be charged");

        // An almost-sorted input (violation at the very end) still sorts.
        let mut data: Vec<u64> = (0..1000).collect();
        data.swap(998, 999);
        let v = ExtVec::from_slice(&m, &data);
        let out = oblivious_sort_by_key(&v, |x| *x);
        assert_eq!(out.load_all(), (0..1000u64).collect::<Vec<_>>());
    }

    #[test]
    fn stable_for_equal_keys_projection() {
        let m = Machine::new(EmConfig::new(512, 64));
        let data: Vec<(u32, u32)> = vec![(2, 0), (1, 1), (2, 2), (1, 3), (1, 4)];
        let v = ExtVec::from_slice(&m, &data);
        let out = oblivious_sort_by_key(&v, |e| e.0).load_all();
        // Keys sorted; payloads of equal keys keep their relative order
        // (two-way merge with <= is stable).
        assert_eq!(out, vec![(1, 1), (1, 3), (1, 4), (2, 0), (2, 2)]);
    }
}
