//! Cache-aware multiway external mergesort.

use emsim::{ExtVec, Record};

/// Statistics about one external sort invocation (returned by
/// [`external_sort_by_key_with_stats`]).
#[derive(Debug, Default, Clone, Copy)]
pub struct SortStats {
    /// Number of initial sorted runs formed.
    pub runs: usize,
    /// Number of merge passes over the data.
    pub passes: usize,
    /// Merge fan-in used.
    pub fanout: usize,
}

/// Sorts `input` by `key` with the classic external-memory multiway
/// mergesort and returns a new sorted array on the same machine.
///
/// * **Run formation** reads the input in chunks of at most `M` words, sorts
///   each chunk in internal memory (the chunk is registered with the
///   machine's [`emsim::MemGauge`]), and writes it back as a sorted run.
/// * **Merging** repeatedly merges up to `M/B − 1` runs at a time until one
///   run remains.
///
/// Total cost: `O((n/B) · log_{M/B}(n/B))` I/Os — the `sort(n)` primitive of
/// the paper's preliminaries.
pub fn external_sort_by_key<T, K, F>(input: &ExtVec<T>, key: F) -> ExtVec<T>
where
    T: Record,
    K: Ord + Copy,
    F: Fn(&T) -> K,
{
    external_sort_by_key_with_stats(input, key).0
}

/// Like [`external_sort_by_key`] but also returns run/pass statistics.
pub fn external_sort_by_key_with_stats<T, K, F>(input: &ExtVec<T>, key: F) -> (ExtVec<T>, SortStats)
where
    T: Record,
    K: Ord + Copy,
    F: Fn(&T) -> K,
{
    let machine = input.machine().clone();
    let cfg = machine.config();
    let n = input.len();

    // Items per in-memory run: fill the memory budget, but always at least
    // one block's worth so tiny configurations still work.
    let items_per_run = (cfg.mem_words / T::WORDS)
        .max(cfg.block_words / T::WORDS)
        .max(1);

    if n <= items_per_run {
        // The whole input fits in the memory budget: one in-core sort.
        let _lease = machine.gauge().lease((n * T::WORDS) as u64);
        let mut buf = input.load_all();
        machine.work(buf.len() as u64 * (usize::BITS - buf.len().leading_zeros()) as u64);
        // emlint: charge(work, buf.len() as u64 * (usize::BITS - buf.len().leading_zeros()) as u64)
        buf.sort_by_key(|t| key(t));
        let out = ExtVec::from_slice(&machine, &buf);
        return (
            out,
            SortStats {
                runs: 1,
                passes: 0,
                fanout: 0,
            },
        );
    }

    // ---- Run formation ----
    let mut runs: Vec<ExtVec<T>> = Vec::new();
    let mut start = 0usize;
    while start < n {
        let end = (start + items_per_run).min(n);
        let _lease = machine.gauge().lease(((end - start) * T::WORDS) as u64);
        let mut buf = input.load_range(start, end);
        machine.work(buf.len() as u64 * (usize::BITS - buf.len().leading_zeros()) as u64);
        // emlint: charge(work, buf.len() as u64 * (usize::BITS - buf.len().leading_zeros()) as u64)
        buf.sort_by_key(|t| key(t));
        runs.push(ExtVec::from_slice(&machine, &buf));
        start = end;
    }
    let initial_runs = runs.len();

    // ---- Merge passes ----
    // One input buffer (block) per run plus one output buffer must fit in M.
    let fanout = (cfg.frames().saturating_sub(1)).max(2);
    let mut passes = 0usize;
    while runs.len() > 1 {
        passes += 1;
        let mut next: Vec<ExtVec<T>> = Vec::new();
        for group in runs.chunks(fanout) {
            next.push(merge_runs(group, &key));
        }
        runs = next;
    }

    let sorted = runs.pop().expect("at least one run");
    (
        sorted,
        SortStats {
            runs: initial_runs,
            passes,
            fanout,
        },
    )
}

/// Merges already-sorted runs into one sorted output via the streaming
/// [`crate::kway_merge`] primitive. The per-run read cursor plus the output
/// cursor are all sequential, so with `k ≤ M/B − 1` the LRU cache gives each
/// cursor its own frame and the pass costs `O(total/B)` I/Os.
fn merge_runs<T, K, F>(runs: &[ExtVec<T>], key: &F) -> ExtVec<T>
where
    T: Record,
    K: Ord + Copy,
    F: Fn(&T) -> K,
{
    let machine = runs[0].machine().clone();
    let mut out: ExtVec<T> = ExtVec::new(&machine);
    out.extend(crate::kway_merge(
        &machine,
        runs.iter().map(|r| r.iter()).collect(),
        key,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use emsim::{EmConfig, Machine};
    use rand::prelude::*;

    fn is_sorted<T: Ord>(v: &[T]) -> bool {
        v.windows(2).all(|w| w[0] <= w[1])
    }

    #[test]
    fn sorts_empty_and_singleton() {
        let m = Machine::new(EmConfig::new(256, 64));
        let v: ExtVec<u64> = ExtVec::new(&m);
        assert!(external_sort_by_key(&v, |x| *x).is_empty());
        let v1 = ExtVec::from_slice(&m, &[42u64]);
        assert_eq!(external_sort_by_key(&v1, |x| *x).load_all(), vec![42]);
    }

    #[test]
    fn sorts_reverse_order_with_multiple_runs_and_passes() {
        let m = Machine::new(EmConfig::new(256, 64)); // tiny memory: many runs
        let n = 10_000usize;
        let data: Vec<u64> = (0..n as u64).rev().collect();
        let v = ExtVec::from_slice(&m, &data);
        let (sorted, stats) = external_sort_by_key_with_stats(&v, |x| *x);
        assert!(stats.runs > 1);
        assert!(stats.passes >= 1);
        let out = sorted.load_all();
        assert!(is_sorted(&out));
        assert_eq!(out.len(), n);
        assert_eq!(out[0], 0);
        assert_eq!(out[n - 1], n as u64 - 1);
    }

    #[test]
    fn sort_by_projection_key() {
        let m = Machine::new(EmConfig::new(512, 64));
        let mut rng = StdRng::seed_from_u64(7);
        let data: Vec<(u32, u32)> = (0..3000)
            .map(|_| (rng.random_range(0..500), rng.random_range(0..500)))
            .collect();
        let v = ExtVec::from_slice(&m, &data);
        // Sort by the *second* component.
        let sorted = external_sort_by_key(&v, |e| e.1).load_all();
        assert!(sorted.windows(2).all(|w| w[0].1 <= w[1].1));
        assert_eq!(sorted.len(), data.len());
    }

    #[test]
    fn duplicate_keys_preserved() {
        let m = Machine::new(EmConfig::new(256, 64));
        let data: Vec<u64> = vec![5; 2000].into_iter().chain(vec![1; 2000]).collect();
        let v = ExtVec::from_slice(&m, &data);
        let out = external_sort_by_key(&v, |x| *x).load_all();
        assert_eq!(out.iter().filter(|&&x| x == 1).count(), 2000);
        assert_eq!(out.iter().filter(|&&x| x == 5).count(), 2000);
        assert!(is_sorted(&out));
    }

    #[test]
    fn io_cost_is_near_sort_bound() {
        let m = Machine::new(EmConfig::new(1 << 12, 128));
        let n = 100_000usize;
        let mut rng = StdRng::seed_from_u64(3);
        let data: Vec<u64> = (0..n).map(|_| rng.random()).collect();
        let v = ExtVec::from_slice(&m, &data);
        m.cold_cache();
        let before = m.io().total();
        let s = external_sort_by_key(&v, |x| *x);
        let cost = m.io().total() - before;
        assert_eq!(s.len(), n);
        let bound = m.config().sort_cost(n);
        // Constant-factor agreement: the measured cost is within a small
        // multiple of the analytic bound (read+write per pass gives ~4x).
        assert!(cost <= 6 * bound, "cost {cost} vs bound {bound}");
        assert!(
            cost >= bound / 4,
            "cost {cost} suspiciously below bound {bound}"
        );
    }

    #[test]
    fn memory_gauge_stays_within_budget() {
        let cfg = EmConfig::new(2048, 64);
        let m = Machine::new(cfg);
        let data: Vec<u64> = (0..50_000u64).rev().collect();
        let v = ExtVec::from_slice(&m, &data);
        let _ = external_sort_by_key(&v, |x| *x);
        assert!(
            m.gauge().peak() <= 2 * cfg.mem_words as u64,
            "peak in-core usage {} exceeds 2M = {}",
            m.gauge().peak(),
            2 * cfg.mem_words
        );
    }
}
