// Clean fixture: an own-line waiver covers every physical line of the
// rustfmt-wrapped statement below it, including the `.collect()` that
// landed three lines down.

pub fn wrapped(xs: &[u64]) -> Vec<u64> {
    // emlint: allow(unleased, reason = "fixture: bounded scratch returned to the caller")
    let doubled: Vec<u64> = xs
        .iter()
        .map(|x| x * 2)
        .collect();
    doubled
}
