// Clean R7 fixture: the helper's only call site holds a lease, so the
// workspace summary pass attributes its allocation to the caller's lease
// and no waiver is needed inside the helper.

fn scratch_for_caller(n: usize) -> Vec<u64> {
    Vec::with_capacity(n)
}

pub fn leased_entry(machine: &Machine, n: usize) -> Vec<u64> {
    let _lease = machine.gauge().lease(n as u64);
    scratch_for_caller(n)
}
