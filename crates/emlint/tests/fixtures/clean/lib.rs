//! Clean crate-root fixture: carries the forbid attribute R4 requires.
#![forbid(unsafe_code)]

pub fn nothing() {}
