// Clean twin of violations/storage_backend.rs: the trace buffer is covered
// by a lease and the block index carries a reasoned waiver.

pub fn record_fault_trace(n: usize, gauge: &MemGauge) -> Vec<u64> {
    let _lease = gauge.lease(n as u64);
    let mut trace = Vec::with_capacity(n);
    trace.push(7);
    trace
}

pub fn order_blocks(keys: &mut [u64]) {
    // emlint: allow(uncharged-std, reason = "fixture: in-core sort of a leased buffer")
    keys.sort_unstable();
}
