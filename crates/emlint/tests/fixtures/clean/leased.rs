// Clean fixture: leases, waivers and test code silence R1-R3.

use std::collections::HashMap;

pub fn gather(ev: &ExtVec<u64>, gauge: &MemGauge) -> Vec<u64> {
    let _lease = gauge.lease(ev.len() as u64);
    let mut out = Vec::with_capacity(ev.len());
    out.extend(ev.load_all());
    out
}

pub fn order(xs: &mut [u32]) {
    // emlint: allow(uncharged-std, reason = "fixture: in-core sort of a leased buffer")
    xs.sort_unstable();
}

#[cfg(test)]
mod tests {
    #[test]
    fn scratch() {
        let m: HashMap<u32, u32> = HashMap::new();
        let v = vec![1, 2, 3];
        assert_eq!(m.len() + v.len(), 3);
    }
}
