// Clean R6 fixture: every charge annotation is backed by a `.work(…)` call
// with the identical (whitespace-normalised) expression in the same block,
// so the sorts below are accounted for and the annotations verify.

pub fn charged_sort(machine: &Machine, xs: &mut Vec<u64>) {
    machine.work(xs.len() as u64 * 6);
    // emlint: charge(work, xs.len() as u64 * 6)
    xs.sort_unstable();
}

pub fn charge_covers_a_wrapped_statement(machine: &Machine, xs: &mut Vec<u64>) {
    machine.work(xs.len() as u64);
    // emlint: charge(work, xs.len() as u64)
    xs.sort_unstable_by_key(|x| {
        let key = x / 2;
        key
    });
}
