// Clean R5 fixture: a lease is live at every use of materialised data, or
// the use carries an explicit tainted-materialisation waiver.

pub fn lease_precedes_every_use(machine: &Machine, ev: &ExtVec<u64>) -> u64 {
    let _lease = machine.gauge().lease(ev.len() as u64);
    let buf = ev.load_all();
    let mut acc = 0;
    for x in &buf {
        acc += x;
    }
    acc
}

pub fn caller_holds_the_words(lease: &mut MemLease, ev: &ExtVec<u64>) -> u64 {
    let buf = ev.load_all();
    buf[0]
}

pub fn waived_probe(machine: &Machine, ev: &ExtVec<u64>) -> u64 {
    let buf = ev.load_all();
    // emlint: allow(tainted-materialisation, reason = "fixture: O(1) probe before the lease lands")
    let first = buf[0];
    let _lease = machine.gauge().lease(buf.len() as u64);
    first
}
