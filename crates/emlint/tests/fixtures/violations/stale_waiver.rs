// R4 fixture: a waiver that no longer suppresses anything.

// emlint: allow(uncharged-std, reason = "left behind after a refactor")
pub fn fixed_long_ago() -> u32 {
    42
}
