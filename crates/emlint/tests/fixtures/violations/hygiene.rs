// R4 fixture: unsafe tokens and waiver rot.

pub fn peek(xs: &[u64]) -> u64 {
    unsafe { *xs.get_unchecked(0) }
}

pub fn no_reason() -> Vec<u64> {
    // emlint: allow(unleased)
    Vec::with_capacity(4)
}

// emlint: allow(not-a-rule, reason = "unknown slug")
pub fn unknown() {}

// emlint: something else entirely
pub fn malformed() {}
