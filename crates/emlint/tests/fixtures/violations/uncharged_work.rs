// R6 fixture: charge-annotation rot. Charges are process errors when they
// cannot be verified, and (unlike waivers) they are never waivable.

pub fn unbacked(xs: &mut Vec<u64>) {
    // emlint: charge(work, xs.len() as u64)
    xs.sort_unstable();
}

pub fn unknown_kind(xs: &mut Vec<u64>) {
    // emlint: charge(io, xs.len() as u64)
    xs.sort_unstable();
}

pub fn stale(machine: &Machine) {
    machine.work(1);
    // emlint: charge(work, 1)
    let count = 1;
}

// emlint: charge(work)
pub fn malformed_annotation() {}
