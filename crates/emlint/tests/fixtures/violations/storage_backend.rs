// File-scope fixture: a storage backend holding unleased trace buffers and
// an uncharged block index — the shape the exact-file scopes for
// crates/emsim/src/{storage,faults}.rs exist to catch.
use std::collections::HashMap;

pub fn record_fault_trace(n: usize) -> Vec<u64> {
    let mut trace = Vec::with_capacity(n);
    trace.extend(vec![1, 2, 3]);
    trace
}

pub fn index_blocks(keys: &[u64]) -> usize {
    let mut map: HashMap<u64, u64> = HashMap::new();
    for &k in keys {
        map.insert(k, k);
    }
    map.len()
}
