// R1 fixture: allocations outside any lease-holding scope.

pub fn build_index(n: usize) -> Vec<u64> {
    let mut out = Vec::with_capacity(n);
    out.extend(vec![1, 2, 3]);
    out
}

pub fn copy_all(xs: &[u64]) -> Vec<u64> {
    xs.to_vec()
}
