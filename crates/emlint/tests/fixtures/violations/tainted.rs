// R5 fixture: flow-unsound uses R1/R3 cannot see. Every fn here mentions
// lease machinery somewhere (so the scope-level heuristic is satisfied),
// just not where the materialised buffer is actually used.

pub fn lease_after_use(machine: &Machine, ev: &ExtVec<u64>) -> u64 {
    let buf = ev.load_all();
    let first = buf[0];
    let _lease = machine.gauge().lease(buf.len() as u64);
    first
}

pub fn revoked_by_drop(machine: &Machine, ev: &ExtVec<u64>) -> u64 {
    let guard = machine.gauge().lease(ev.len() as u64);
    let buf = ev.load_all();
    drop(guard);
    let mut acc = 0;
    for x in &buf {
        acc += x;
    }
    acc
}

pub fn taint_outlives_the_lease_scope(machine: &Machine, ev: &ExtVec<u64>) -> u64 {
    let mut escaped = Vec::new();
    if ev.len() > 0 {
        let _lease = machine.gauge().lease(ev.len() as u64);
        escaped = ev.load_all();
    }
    escaped[7]
}
