// R3 fixture: materialising external data without a lease.

pub fn slurp(ev: &ExtVec<u64>) -> Vec<u64> {
    ev.load_all()
}

pub fn window(ev: &ExtVec<u64>) -> Vec<u64> {
    ev.load_range(0, 8)
}

pub fn leased_slurp(ev: &ExtVec<u64>, gauge: &MemGauge) -> Vec<u64> {
    let _lease = gauge.lease(ev.len() as u64);
    ev.load_all()
}
