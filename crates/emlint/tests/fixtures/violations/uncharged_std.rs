// R2 fixture: std containers and sorts stay uncharged even under a lease.

use std::collections::HashMap;

pub fn histogram(xs: &[u32], gauge: &MemGauge) -> usize {
    let _lease = gauge.lease(xs.len() as u64);
    let mut m: HashMap<u32, u32> = HashMap::new();
    for &x in xs {
        *m.entry(x).or_insert(0) += 1;
    }
    m.len()
}

pub fn order(xs: &mut [u32]) {
    xs.sort_unstable();
}
