// R7 fixture: a helper that charges its buffer to a caller-provided
// MemLease, called from a function with no leased context of its own. The
// finding lands on the call line, not inside the helper.

fn fill_under_callers_lease(lease: &mut MemLease, n: usize) -> Vec<u64> {
    lease.grow(n as u64);
    Vec::with_capacity(n)
}

pub fn forgets_the_context(n: usize) -> Vec<u64> {
    fill_under_callers_lease(detached(), n)
}
