//! Property tests for the blanked code view: every rule's byte-offset
//! arithmetic (line lookup, waiver/charge targeting, scope spans) assumes
//! that `SourceView::parse` replaces comment/string/char contents without
//! moving anything. These properties pin that down over random interleavings
//! of code, comments, string literals (raw, escaped, multi-line), char
//! literals, lifetimes, and non-ASCII text.

use emlint::source::SourceView;
use proptest::prelude::*;

/// Source fragments the generator interleaves. Deliberately adversarial:
/// comment markers inside strings, quotes inside comments, nested block
/// comments, raw strings spanning lines, non-ASCII in both code-adjacent
/// and blanked positions.
const FRAGMENTS: &[&str] = &[
    "fn f(machine: &Machine) {\n",
    "    let x = 1;\n",
    "}\n",
    "// emlint: allow(unleased, reason = \"scratch\")\n",
    "// plain comment mentioning .load_all() and vec![9]\n",
    "/* block /* nested */ comment */\n",
    "let s = \"string with // not a comment and \\\" escape\";\n",
    "let r = r#\"raw \"quoted\" text\nspanning a line\"#;\n",
    "let c = 'x';\n",
    "let nl = '\\n';\n",
    "fn g<'a>(xs: &'a [u64]) -> &'a [u64] { xs }\n",
    "let unicode = \"héllo → wörld\";\n",
    "// cömment with non-ASCII émlint text\n",
    "machine.work(n as u64);\n",
    "let v = vec![1, 2, 3];\n",
    "\n",
];

/// Joins a random selection of fragments into one source text.
fn compose(picks: &[usize]) -> String {
    picks.iter().map(|&i| FRAGMENTS[i]).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn blanking_preserves_char_offsets_and_line_structure(
        picks in prop::collection::vec(0usize..FRAGMENTS.len(), 0..40),
    ) {
        let src = compose(&picks);
        let view = SourceView::parse(&src);

        // One cleaned char per source char, and all of them ASCII — so byte
        // offsets into `cleaned` are also char offsets into the source.
        prop_assert!(view.cleaned.is_ascii());
        prop_assert_eq!(view.cleaned.chars().count(), src.chars().count());

        // Each position is either untouched or blanked in place (space, or
        // `~` for non-ASCII in code position); newlines survive exactly.
        for (c_src, c_clean) in src.chars().zip(view.cleaned.chars()) {
            prop_assert!(
                c_clean == c_src || c_clean == ' ' || c_clean == '~',
                "char {c_src:?} blanked to {c_clean:?}"
            );
            prop_assert_eq!(c_src == '\n', c_clean == '\n');
        }

        // `line_starts` is exactly [0, every offset following a newline].
        let expected: Vec<usize> = std::iter::once(0)
            .chain(
                view.cleaned
                    .bytes()
                    .enumerate()
                    .filter(|&(_, b)| b == b'\n')
                    .map(|(o, _)| o + 1),
            )
            .collect();
        prop_assert_eq!(&view.line_starts, &expected);

        // `line_of` and `cleaned_line` agree with that table: each line
        // start maps to its own 1-based line, and the per-line views
        // reassemble the whole cleaned text.
        for (k, &start) in view.line_starts.iter().enumerate() {
            if start < view.cleaned.len() {
                prop_assert_eq!(view.line_of(start), k + 1);
            }
        }
        let rejoined = (1..=view.line_starts.len())
            .map(|l| view.cleaned_line(l))
            .collect::<Vec<_>>()
            .join("\n");
        prop_assert_eq!(rejoined, view.cleaned.clone());
    }
}
