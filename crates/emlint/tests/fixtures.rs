//! Fixture-based end-to-end tests: each rule is exercised against a small
//! on-disk Rust file under `tests/fixtures/` and must report exactly the
//! expected `file:line` pairs — no more, no fewer. The fixtures are data,
//! not code: cargo never compiles them (only top-level files in `tests/`
//! become test targets), so they can reference emsim types freely.

use std::path::Path;

use emlint::{check_file, check_file_with_summaries, lint_workspace, Config, Rule, Summaries};

const ALL: &[Rule] = &[
    Rule::R1,
    Rule::R2,
    Rule::R3,
    Rule::R4,
    Rule::R5,
    Rule::R6,
    Rule::R7,
];

fn fixture_root() -> &'static Path {
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures"))
}

/// Lints one fixture and projects findings to `(line, rule id)`.
fn check(rel: &str) -> Vec<(usize, &'static str)> {
    let text = std::fs::read_to_string(fixture_root().join(rel)).unwrap();
    check_file(rel, &text, ALL)
        .into_iter()
        .map(|f| (f.line, f.rule.id()))
        .collect()
}

/// Like [`check`], with lease summaries built from the fixture itself so
/// R7's inter-procedural half runs.
fn check_with_summaries(rel: &str) -> Vec<(usize, &'static str)> {
    let text = std::fs::read_to_string(fixture_root().join(rel)).unwrap();
    let summaries = Summaries::build([(rel, text.as_str())]);
    check_file_with_summaries(rel, &text, ALL, Some(&summaries))
        .into_iter()
        .map(|f| (f.line, f.rule.id()))
        .collect()
}

#[test]
fn r1_unleased_fixture_reports_exact_lines() {
    assert_eq!(
        check("violations/unleased.rs"),
        vec![(4, "R1"), (5, "R1"), (10, "R1")]
    );
}

#[test]
fn r2_uncharged_std_fixture_reports_exact_lines() {
    // Line 7 declares and constructs a HashMap — two pattern hits, one line.
    assert_eq!(
        check("violations/uncharged_std.rs"),
        vec![(7, "R2"), (7, "R2"), (15, "R2")]
    );
}

#[test]
fn r3_uncharged_probe_fixture_reports_exact_lines() {
    // The leased_slurp load on line 13 is exempt.
    assert_eq!(
        check("violations/uncharged_probe.rs"),
        vec![(4, "R3"), (8, "R3")]
    );
}

#[test]
fn r4_hygiene_fixture_reports_unsafe_and_waiver_rot() {
    let text = std::fs::read_to_string(fixture_root().join("violations/hygiene.rs")).unwrap();
    let findings = check_file("violations/hygiene.rs", &text, ALL);
    let lines: Vec<(usize, &str)> = findings.iter().map(|f| (f.line, f.rule.id())).collect();
    assert_eq!(lines, vec![(4, "R4"), (8, "R4"), (12, "R4"), (15, "R4")]);
    assert!(findings[0].message.contains("unsafe"));
    assert!(findings[1].message.contains("reason"));
    assert!(findings[2].message.contains("unknown rule"));
    assert!(findings[3].message.contains("malformed"));
    // The reasonless waiver on line 8 still suppresses the R1 on line 9 —
    // the rot is reported without double-reporting the allocation.
    assert!(!lines.contains(&(9, "R1")));
}

#[test]
fn stale_waiver_fixture_is_an_error() {
    let text = std::fs::read_to_string(fixture_root().join("violations/stale_waiver.rs")).unwrap();
    let findings = check_file("violations/stale_waiver.rs", &text, ALL);
    assert_eq!(findings.len(), 1);
    assert_eq!((findings[0].line, findings[0].rule), (3, Rule::R4));
    assert!(findings[0].message.contains("stale"));
}

#[test]
fn r5_tainted_fixture_reports_exact_lines() {
    // Line 7: indexed before the lease lands; line 17: iterated after
    // drop(guard); line 29: indexed after the lease's scope closed.
    assert_eq!(
        check("violations/tainted.rs"),
        vec![(7, "R5"), (17, "R5"), (29, "R5")]
    );
}

#[test]
fn r6_uncharged_work_fixture_reports_exact_lines() {
    let text =
        std::fs::read_to_string(fixture_root().join("violations/uncharged_work.rs")).unwrap();
    let findings = check_file("violations/uncharged_work.rs", &text, ALL);
    let lines: Vec<(usize, &str)> = findings.iter().map(|f| (f.line, f.rule.id())).collect();
    // The unknown-kind charge on line 10 suppresses nothing, so its sort on
    // line 11 still fires R2.
    assert_eq!(
        lines,
        vec![(5, "R6"), (10, "R6"), (11, "R2"), (16, "R6"), (20, "R6")]
    );
    assert!(findings[0].message.contains("unbacked"));
    assert!(findings[1].message.contains("unknown charge kind"));
    assert!(findings[3].message.contains("stale charge"));
    assert!(findings[4].message.contains("malformed"));
}

#[test]
fn r7_lease_summary_fixture_reports_the_call_line() {
    let rel = "violations/lease_summary.rs";
    let text = std::fs::read_to_string(fixture_root().join(rel)).unwrap();
    let summaries = Summaries::build([(rel, text.as_str())]);
    let findings = check_file_with_summaries(rel, &text, ALL, Some(&summaries));
    let lines: Vec<(usize, &str)> = findings.iter().map(|f| (f.line, f.rule.id())).collect();
    assert_eq!(lines, vec![(11, "R7")]);
    assert!(findings[0].message.contains("`fill_under_callers_lease`"));
    assert!(findings[0].message.contains("`forgets_the_context`"));
}

#[test]
fn clean_fixtures_produce_no_findings() {
    assert_eq!(check("clean/leased.rs"), vec![]);
    assert_eq!(check("clean/lib.rs"), vec![]);
    assert_eq!(check("clean/tainted_ok.rs"), vec![]);
    assert_eq!(check("clean/charged_work.rs"), vec![]);
    assert_eq!(check("clean/wrapped_waiver.rs"), vec![]);
    // The helper's allocation is owned by its leased caller — clean only
    // once the summary pass runs (as it does in every workspace lint).
    assert_eq!(check_with_summaries("clean/lease_summary.rs"), vec![]);
}

#[test]
fn findings_render_as_file_line_rule_slug() {
    let text = std::fs::read_to_string(fixture_root().join("violations/unleased.rs")).unwrap();
    let findings = check_file("violations/unleased.rs", &text, ALL);
    let rendered = findings[0].to_string();
    assert!(
        rendered.starts_with("violations/unleased.rs:4: R1(unleased): "),
        "unexpected rendering: {rendered}"
    );
    assert!(
        rendered.contains("emlint: allow(unleased"),
        "must carry a fix hint"
    );
}

#[test]
fn storage_backend_fixture_reports_exact_lines() {
    assert_eq!(
        check("violations/storage_backend.rs"),
        vec![(7, "R1"), (8, "R1"), (13, "R2"), (13, "R2")]
    );
    assert_eq!(check("clean/storage_backend.rs"), vec![]);
}

#[test]
fn exact_file_scopes_lint_one_file_without_walking_its_siblings() {
    // The scope path is a file, not a directory: only that file is walked
    // and linted, its sibling fixtures stay untouched — the mechanism the
    // emlint.toml scopes for crates/emsim/src/{storage,faults}.rs rely on.
    let config = Config::parse(
        "[[scope]]\npath = \"violations/storage_backend.rs\"\nrules = [\"R1\", \"R2\", \"R4\", \"R5\"]\n",
    )
    .unwrap();
    let findings = lint_workspace(fixture_root(), &config).unwrap();
    assert!(
        findings
            .iter()
            .all(|f| f.file == "violations/storage_backend.rs"),
        "an exact-file scope must not walk sibling fixtures"
    );
    let lines: Vec<(usize, &str)> = findings.iter().map(|f| (f.line, f.rule.id())).collect();
    assert_eq!(lines, vec![(7, "R1"), (8, "R1"), (13, "R2"), (13, "R2")]);
}

#[test]
fn workspace_walk_honours_scopes_and_is_deterministic() {
    let rules = "rules = [\"R1\", \"R2\", \"R3\", \"R4\", \"R5\", \"R6\", \"R7\"]";
    let config = Config::parse(&format!(
        "[[scope]]\npath = \"violations\"\n{rules}\n\n[[scope]]\npath = \"clean\"\n{rules}\n"
    ))
    .unwrap();
    let findings = lint_workspace(fixture_root(), &config).unwrap();
    // 3 (unleased) + 3 (uncharged_std) + 2 (uncharged_probe) + 4 (hygiene)
    // + 1 (stale_waiver) + 3 (tainted) + 5 (uncharged_work) + 1
    // (lease_summary) + 4 (storage_backend: 2 unleased, 2 uncharged_std),
    // none from clean/.
    assert_eq!(findings.len(), 26);
    assert!(findings.iter().all(|f| f.file.starts_with("violations/")));
    let again = lint_workspace(fixture_root(), &config).unwrap();
    let key = |fs: &[emlint::Finding]| {
        fs.iter()
            .map(|f| (f.file.clone(), f.line))
            .collect::<Vec<_>>()
    };
    assert_eq!(
        key(&findings),
        key(&again),
        "walk order must be deterministic"
    );
}
