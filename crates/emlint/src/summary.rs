//! Per-function lease summaries for rule R7 (`lease-summary`).
//!
//! R1/R3 judge each function in isolation: a helper that allocates on behalf
//! of a caller whose lease already covers the words (the "folded into the
//! caller's lease" pattern of `lemma2::merge_dedup` and friends) looks
//! unleased and needs a waiver. This module removes that blind spot with a
//! first pass over every scoped file of the workspace:
//!
//! * **Definitions** — each non-test `fn` is summarised by name: does it
//!   hold lease machinery itself (`holds_lease`), does it take a `&MemLease`
//!   / `&mut MemLease` parameter, and is it `pub` beyond the crate (public
//!   functions can be called from unscoped code, so they are never assumed
//!   covered).
//! * **Call sites** — word-bounded `name(` occurrences outside test spans
//!   and definitions, each attributed to its enclosing function.
//! * **Fixpoint** — a function is *covered* when it has at least one known
//!   call site and every call site's caller is itself leased-context
//!   (holds a lease, or is covered in turn). Coverage propagates up the
//!   call graph until stable.
//!
//! Two fns sharing a name are merged conservatively: all defs must be
//! non-public and all call sites leased for the name to count as covered.
//!
//! The rule pack uses the summaries in two directions: R1/R3 findings inside
//! a covered function are suppressed (the caller's lease owns the words),
//! and a call to a `MemLease`-parameter-taking helper from a caller that is
//! *not* leased-context is reported as an R7 finding at the call line.

use std::collections::BTreeMap;

use crate::analysis::{fn_name, is_ident_byte, Analysis};
use crate::source::SourceView;
use crate::taint::signature_params;

/// One call site of a summarised function.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// File the call appears in (as handed to the linter).
    pub file: String,
    /// 1-based line of the call.
    pub line: usize,
    /// Name of the enclosing function, if any.
    pub caller: Option<String>,
    /// Whether the enclosing function holds lease machinery itself.
    pub caller_holds_lease: bool,
}

/// Merged per-name definition facts.
#[derive(Debug, Default)]
struct DefFacts {
    /// Some definition takes a `&MemLease`/`&mut MemLease` parameter.
    takes_lease_param: bool,
    /// Some definition is `pub` beyond the crate.
    any_public: bool,
}

/// Workspace-wide lease summaries, built once per `lint_workspace` run.
#[derive(Debug, Default)]
pub struct Summaries {
    facts: BTreeMap<String, DefFacts>,
    sites: BTreeMap<String, Vec<CallSite>>,
    covered: BTreeMap<String, bool>,
}

impl Summaries {
    /// Builds summaries from `(file, text)` pairs — every file the workspace
    /// run will lint. Single-file callers can pass just that file.
    pub fn build<'a>(files: impl IntoIterator<Item = (&'a str, &'a str)>) -> Summaries {
        let parsed: Vec<(String, SourceView, Analysis)> = files
            .into_iter()
            .map(|(path, text)| {
                let view = SourceView::parse(text);
                let analysis = Analysis::scan(&view);
                (path.to_string(), view, analysis)
            })
            .collect();

        let mut s = Summaries::default();
        for (_, view, analysis) in &parsed {
            for f in &analysis.fns {
                if analysis.in_test(f.sig_start) {
                    continue;
                }
                let Some(name) = fn_name(&view.cleaned, f) else {
                    continue;
                };
                let facts = s.facts.entry(name.to_string()).or_default();
                facts.takes_lease_param |= signature_params(&view.cleaned, f).contains("MemLease");
                facts.any_public |= is_public_fn(&view.cleaned, f.sig_start);
            }
        }

        // Call sites of every known name, across every file.
        for (path, view, analysis) in &parsed {
            for name in s.facts.keys() {
                for pos in call_sites_in(&view.cleaned, name) {
                    if analysis.in_test(pos) {
                        continue;
                    }
                    let caller = analysis.enclosing_fn(pos).filter(|f| {
                        // The definition's own span: `fn name(` is not a call.
                        !(pos >= f.sig_start
                            && fn_name(&view.cleaned, f) == Some(name.as_str())
                            && pos < f.body.start)
                    });
                    if caller.is_none() && analysis.enclosing_fn(pos).is_some() {
                        continue; // the definition itself
                    }
                    s.sites.entry(name.clone()).or_default().push(CallSite {
                        file: path.clone(),
                        line: view.line_of(pos),
                        caller: caller.and_then(|f| fn_name(&view.cleaned, f).map(String::from)),
                        caller_holds_lease: caller.is_some_and(|f| f.holds_lease),
                    });
                }
            }
        }

        // Fixpoint: covered(name) ⇐ has sites ∧ every caller leased-context.
        let names: Vec<String> = s.facts.keys().cloned().collect();
        for name in &names {
            s.covered.insert(name.clone(), false);
        }
        loop {
            let mut changed = false;
            for name in &names {
                if s.covered[name] {
                    continue;
                }
                let now = s.compute_covered(name);
                if now {
                    s.covered.insert(name.clone(), true);
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        s
    }

    fn compute_covered(&self, name: &str) -> bool {
        let Some(facts) = self.facts.get(name) else {
            return false;
        };
        if facts.any_public {
            return false; // callable from unscoped code; never assume covered
        }
        let Some(sites) = self.sites.get(name) else {
            return false;
        };
        !sites.is_empty() && sites.iter().all(|site| self.site_is_leased(site))
    }

    fn site_is_leased(&self, site: &CallSite) -> bool {
        site.caller_holds_lease
            || site
                .caller
                .as_deref()
                .is_some_and(|c| self.covered.get(c).copied().unwrap_or(false))
    }

    /// Whether every known call site of `name` is leased-context (and at
    /// least one exists): R1/R3 findings inside `name` are then owned by the
    /// callers' leases.
    pub fn covered(&self, name: &str) -> bool {
        self.covered.get(name).copied().unwrap_or(false)
    }

    /// R7 violations whose call site lies in `file`: calls to a
    /// `MemLease`-parameter-taking helper from a caller that is not
    /// leased-context, as `(line, helper, caller)`.
    pub fn unleased_lease_taker_calls(&self, file: &str) -> Vec<(usize, String, String)> {
        let mut out = Vec::new();
        for (name, facts) in &self.facts {
            if !facts.takes_lease_param {
                continue;
            }
            for site in self.sites.get(name).map_or(&[][..], |v| v.as_slice()) {
                if site.file == file && !self.site_is_leased(site) {
                    out.push((
                        site.line,
                        name.clone(),
                        site.caller.clone().unwrap_or_else(|| "<top level>".into()),
                    ));
                }
            }
        }
        out.sort();
        out
    }
}

/// Whether the `fn` at `sig_start` is `pub` beyond the crate: the preceding
/// tokens end in `pub` (not `pub(crate)`/`pub(super)`/`pub(in …)`).
fn is_public_fn(cleaned: &str, sig_start: usize) -> bool {
    let before = cleaned[..sig_start].trim_end();
    if before.ends_with("pub") {
        let head = before.len() - 3;
        return head == 0 || !is_ident_byte(before.as_bytes()[head - 1]);
    }
    false
}

/// Word-bounded `name(`/`name (`/`name::<…>(` call positions in `cleaned`
/// (definitions included; the caller filters those).
fn call_sites_in(cleaned: &str, name: &str) -> Vec<usize> {
    let bytes = cleaned.as_bytes();
    let mut out = Vec::new();
    let mut from = 0usize;
    while let Some(rel) = cleaned[from..].find(name) {
        let pos = from + rel;
        from = pos + 1;
        if pos > 0 && is_ident_byte(bytes[pos - 1]) {
            continue;
        }
        let mut end = pos + name.len();
        if end < bytes.len() && is_ident_byte(bytes[end]) {
            continue;
        }
        // Skip `::<Turbofish>` then require `(`.
        if cleaned[end..].starts_with("::<") {
            let mut depth = 0usize;
            let mut i = end + 2;
            while i < bytes.len() {
                match bytes[i] {
                    b'<' => depth += 1,
                    b'>' => {
                        depth -= 1;
                        if depth == 0 {
                            i += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                i += 1;
            }
            end = i;
        }
        while end < bytes.len() && bytes[end] == b' ' {
            end += 1;
        }
        if bytes.get(end) == Some(&b'(') {
            out.push(pos);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helper_with_all_leased_callers_is_covered() {
        let src = "fn helper(n: usize) -> Vec<u32> {\n    Vec::with_capacity(n)\n}\nfn caller(m: &Machine) {\n    let _l = m.gauge().lease(8);\n    let v = helper(8);\n}\n";
        let s = Summaries::build([("a.rs", src)]);
        assert!(s.covered("helper"));
        assert!(!s.covered("caller"));
    }

    #[test]
    fn an_unleased_caller_breaks_coverage() {
        let src = "fn helper(n: usize) -> Vec<u32> {\n    Vec::with_capacity(n)\n}\nfn leased(m: &Machine) {\n    let _l = m.gauge().lease(8);\n    let v = helper(8);\n}\nfn bare() {\n    let v = helper(8);\n}\n";
        let s = Summaries::build([("a.rs", src)]);
        assert!(!s.covered("helper"));
    }

    #[test]
    fn coverage_propagates_transitively() {
        let src = "fn inner(n: usize) -> Vec<u32> { Vec::with_capacity(n) }\nfn mid(n: usize) -> Vec<u32> { inner(n) }\nfn top(m: &Machine) {\n    let _l = m.gauge().lease(8);\n    let v = mid(8);\n}\n";
        let s = Summaries::build([("a.rs", src)]);
        assert!(s.covered("mid"));
        assert!(s.covered("inner"));
    }

    #[test]
    fn public_fns_and_unreferenced_fns_are_never_covered() {
        let src = "pub fn api(n: usize) -> Vec<u32> { Vec::with_capacity(n) }\nfn orphan(n: usize) -> Vec<u32> { Vec::with_capacity(n) }\nfn caller(m: &Machine) {\n    let _l = m.gauge().lease(8);\n    let v = api(8);\n}\n";
        let s = Summaries::build([("a.rs", src)]);
        assert!(
            !s.covered("api"),
            "pub fns can be called from unscoped code"
        );
        assert!(!s.covered("orphan"), "no call sites means no evidence");
    }

    #[test]
    fn pub_crate_fns_are_coverable() {
        let src = "pub(crate) fn helper(n: usize) -> Vec<u32> {\n    Vec::with_capacity(n)\n}\nfn caller(m: &Machine) {\n    let _l = m.gauge().lease(8);\n    let v = helper(8);\n}\n";
        let s = Summaries::build([("a.rs", src)]);
        assert!(s.covered("helper"));
    }

    #[test]
    fn lease_taker_called_from_unleased_scope_is_reported() {
        let src = "fn fill(lease: &mut MemLease, n: usize) -> Vec<u32> {\n    Vec::with_capacity(n)\n}\nfn bare(n: usize) {\n    let v = fill(unrelated(), n);\n}\n";
        let s = Summaries::build([("a.rs", src)]);
        let v = s.unleased_lease_taker_calls("a.rs");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].1, "fill");
        assert_eq!(v[0].2, "bare");
    }

    #[test]
    fn test_spans_contribute_neither_defs_nor_sites() {
        let src = "fn helper(n: usize) -> Vec<u32> { Vec::with_capacity(n) }\nfn caller(m: &Machine) {\n    let _l = m.gauge().lease(8);\n    let v = helper(8);\n}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { let v = helper(8); }\n}\n";
        let s = Summaries::build([("a.rs", src)]);
        assert!(
            s.covered("helper"),
            "test call sites must not break coverage"
        );
    }
}
