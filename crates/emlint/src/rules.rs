//! The rule pack: R1–R4 over one file's code view.
//!
//! * **R1 `unleased`** — allocation sites (`with_capacity(`, `vec![`,
//!   `.reserve(`, `.to_vec()`, `.collect(`/`.collect::<`, `Vec::new()`)
//!   outside a scope that holds a [`MemLease`] (detected as `.lease(`,
//!   `.lease_tagged(` or a `MemLease` mention in the enclosing `fn`).
//! * **R2 `uncharged-std`** — std hashing/tree containers and in-place
//!   `[T]::sort*` calls: their work is invisible to the machine's counters,
//!   so charged paths must route through `emalgo::{external_sort_by_key,
//!   kway_merge}` or explicitly `machine.work(…)`-charged leased structures.
//!   Applies regardless of leases (a leased `HashMap` still hashes for free).
//! * **R3 `uncharged-probe`** — materialising `ExtVec`/`ExtSlice` data into
//!   core (`.load()`, `.load_all()`, `.load_range(`) outside a leased scope:
//!   probing the resulting `Vec` bypasses the charged probe API
//!   (`ExtSlice::get` / `partition_point`).
//! * **R4 `hygiene`** — `unsafe` tokens, a missing `#![forbid(unsafe_code)]`
//!   in crate roots, and waiver hygiene: waivers must parse, must name a
//!   non-empty reason, must name a known rule, and must suppress something
//!   (a stale waiver on a clean line is an error).
//!
//! `use` declaration lines are exempt from R1–R3 (importing a name is not
//! using it; the usage sites are flagged instead). Test-only code
//! (`#[cfg(test)]` / `#[test]` spans) is exempt from R1–R3 but not from R4.

use crate::analysis::{is_ident_byte, Analysis};
use crate::source::SourceView;

/// The rule pack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// No uncharged allocation in algorithm code.
    R1,
    /// No std hash/tree containers or std sorts in charged paths.
    R2,
    /// No gauge-bypassing materialisation of external data.
    R3,
    /// `forbid(unsafe_code)` + waiver hygiene.
    R4,
}

impl Rule {
    /// `"R1"` … `"R4"`.
    pub fn id(self) -> &'static str {
        match self {
            Rule::R1 => "R1",
            Rule::R2 => "R2",
            Rule::R3 => "R3",
            Rule::R4 => "R4",
        }
    }

    /// The slug used in waivers and finding headers.
    pub fn slug(self) -> &'static str {
        match self {
            Rule::R1 => "unleased",
            Rule::R2 => "uncharged-std",
            Rule::R3 => "uncharged-probe",
            Rule::R4 => "hygiene",
        }
    }

    /// Parses `"R1"`/`"unleased"` style names.
    pub fn parse(s: &str) -> Option<Rule> {
        match s {
            "R1" | "unleased" => Some(Rule::R1),
            "R2" | "uncharged-std" => Some(Rule::R2),
            "R3" | "uncharged-probe" => Some(Rule::R3),
            "R4" | "hygiene" => Some(Rule::R4),
            _ => None,
        }
    }
}

/// One reported violation.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Path as handed to the linter (workspace-relative in CLI use).
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// The violated rule.
    pub rule: Rule,
    /// Human-readable description with a fix hint.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: {}({}): {}",
            self.file,
            self.line,
            self.rule.id(),
            self.rule.slug(),
            self.message
        )
    }
}

/// An allocation/usage pattern: the needle, whether it must start at an
/// identifier boundary, whether it must end at one, and its display name.
struct Pattern {
    needle: &'static str,
    bound_before: bool,
    bound_after: bool,
    display: &'static str,
}

const fn pat(
    needle: &'static str,
    bound_before: bool,
    bound_after: bool,
    display: &'static str,
) -> Pattern {
    Pattern {
        needle,
        bound_before,
        bound_after,
        display,
    }
}

const R1_PATTERNS: &[Pattern] = &[
    pat("with_capacity(", true, false, "`with_capacity`"),
    pat("vec![", true, false, "`vec![]`"),
    pat(".reserve(", false, false, "`reserve`"),
    pat(".to_vec()", false, false, "`to_vec`"),
    pat(".collect(", false, false, "`collect` into an owned buffer"),
    pat(
        ".collect::<",
        false,
        false,
        "`collect` into an owned buffer",
    ),
    pat(
        "Vec::new()",
        true,
        false,
        "`Vec::new` (grows unleased via push)",
    ),
];

const R2_PATTERNS: &[Pattern] = &[
    pat("HashMap", true, true, "std `HashMap`"),
    pat("HashSet", true, true, "std `HashSet`"),
    pat("BTreeMap", true, true, "std `BTreeMap`"),
    pat("BTreeSet", true, true, "std `BTreeSet`"),
    pat("BinaryHeap", true, true, "std `BinaryHeap`"),
    pat(".sort()", false, false, "std `sort`"),
    pat(".sort_by(", false, false, "std `sort_by`"),
    pat(".sort_by_key(", false, false, "std `sort_by_key`"),
    pat(
        ".sort_by_cached_key(",
        false,
        false,
        "std `sort_by_cached_key`",
    ),
    pat(".sort_unstable()", false, false, "std `sort_unstable`"),
    pat(".sort_unstable_by(", false, false, "std `sort_unstable_by`"),
    pat(
        ".sort_unstable_by_key(",
        false,
        false,
        "std `sort_unstable_by_key`",
    ),
];

const R3_PATTERNS: &[Pattern] = &[
    pat(".load()", false, false, "`ExtSlice::load`"),
    pat(".load_all()", false, false, "`ExtVec::load_all`"),
    pat(".load_range(", false, false, "`ExtVec::load_range`"),
];

fn hint(rule: Rule) -> &'static str {
    match rule {
        Rule::R1 => {
            "hold a MemLease in this scope (machine.gauge().lease/lease_tagged) or waive: \
             // emlint: allow(unleased, reason = \"…\")"
        }
        Rule::R2 => {
            "route through emalgo::{external_sort_by_key, kway_merge} or a leased, \
             machine.work()-charged structure, or waive: \
             // emlint: allow(uncharged-std, reason = \"…\")"
        }
        Rule::R3 => {
            "probe through the charged API (ExtSlice::get/partition_point/iter), or lease \
             the materialised buffer in this scope, or waive: \
             // emlint: allow(uncharged-probe, reason = \"…\")"
        }
        Rule::R4 => "",
    }
}

/// Whether the file is a crate root that must carry
/// `#![forbid(unsafe_code)]` (R4): any file named `lib.rs` or `main.rs`.
fn is_crate_root(file: &str) -> bool {
    let name = file.rsplit(['/', '\\']).next().unwrap_or(file);
    name == "lib.rs" || name == "main.rs"
}

/// Runs `rules` over one file and returns its findings, waivers applied.
pub fn check_file(file: &str, text: &str, rules: &[Rule]) -> Vec<Finding> {
    let view = SourceView::parse(text);
    let analysis = Analysis::scan(&view);
    let mut findings: Vec<Finding> = Vec::new();
    let mut waiver_used = vec![false; view.waivers.len()];

    for &rule in rules {
        let patterns: &[Pattern] = match rule {
            Rule::R1 => R1_PATTERNS,
            Rule::R2 => R2_PATTERNS,
            Rule::R3 => R3_PATTERNS,
            Rule::R4 => continue,
        };
        for p in patterns {
            for pos in find_all(&view.cleaned, p) {
                if analysis.in_test(pos) {
                    continue;
                }
                let line = view.line_of(pos);
                if view.cleaned_line(line).trim_start().starts_with("use ") {
                    continue;
                }
                if matches!(rule, Rule::R1 | Rule::R3)
                    && analysis.enclosing_fn(pos).is_some_and(|f| f.holds_lease)
                {
                    continue;
                }
                // Waivers: same rule, covering this line.
                if let Some(w) = view.waivers.iter().position(|w| {
                    !w.malformed
                        && w.target_line == Some(line)
                        && Rule::parse(&w.rule) == Some(rule)
                }) {
                    waiver_used[w] = true;
                    continue;
                }
                findings.push(Finding {
                    file: file.to_string(),
                    line,
                    rule,
                    message: format!("{} outside a charged scope — {}", p.display, hint(rule)),
                });
            }
        }
    }

    if rules.contains(&Rule::R4) {
        // unsafe tokens (anywhere, tests included).
        let unsafe_pat = pat("unsafe", true, true, "`unsafe`");
        for pos in find_all(&view.cleaned, &unsafe_pat) {
            findings.push(Finding {
                file: file.to_string(),
                line: view.line_of(pos),
                rule: Rule::R4,
                message: "`unsafe` in a charged crate — the accounting model cannot see \
                          through unsafe code; remove it (crate roots carry \
                          #![forbid(unsafe_code)])"
                    .to_string(),
            });
        }
        if is_crate_root(file) && !view.cleaned.contains("#![forbid(unsafe_code)]") {
            findings.push(Finding {
                file: file.to_string(),
                line: 1,
                rule: Rule::R4,
                message: "crate root lacks `#![forbid(unsafe_code)]` — add it below the \
                          crate docs"
                    .to_string(),
            });
        }
        // Waiver hygiene.
        for (w, used) in view.waivers.iter().zip(&waiver_used) {
            let problem = if w.malformed {
                Some(
                    "malformed waiver — expected \
                     // emlint: allow(<rule>, reason = \"…\")"
                        .to_string(),
                )
            } else if Rule::parse(&w.rule).is_none() {
                Some(format!(
                    "waiver names unknown rule `{}` (known: unleased, uncharged-std, \
                     uncharged-probe)",
                    w.rule
                ))
            } else if w.reason.is_none() {
                Some(format!(
                    "waiver for `{}` must name a reason: \
                     // emlint: allow({}, reason = \"…\")",
                    w.rule, w.rule
                ))
            } else if !*used {
                Some(format!(
                    "stale waiver — line {} triggers no `{}` finding; delete the waiver",
                    w.target_line.unwrap_or(w.comment_line),
                    w.rule
                ))
            } else {
                None
            };
            if let Some(message) = problem {
                findings.push(Finding {
                    file: file.to_string(),
                    line: w.comment_line,
                    rule: Rule::R4,
                    message,
                });
            }
        }
    }

    findings.sort_by_key(|f| (f.line, f.rule));
    findings
}

/// All byte offsets of `p` in `hay`, boundary conditions respected.
fn find_all(hay: &str, p: &Pattern) -> Vec<usize> {
    let mut out = Vec::new();
    let bytes = hay.as_bytes();
    let mut from = 0usize;
    while let Some(rel) = hay[from..].find(p.needle) {
        let pos = from + rel;
        from = pos + 1;
        if p.bound_before && pos > 0 && is_ident_byte(bytes[pos - 1]) {
            continue;
        }
        let end = pos + p.needle.len();
        if p.bound_after && end < bytes.len() && is_ident_byte(bytes[end]) {
            continue;
        }
        out.push(pos);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: &[Rule] = &[Rule::R1, Rule::R2, Rule::R3, Rule::R4];

    #[test]
    fn unleased_alloc_is_flagged_and_leased_scope_is_not() {
        let src = "fn bad() {\n    let v = Vec::with_capacity(8);\n}\nfn good(g: &MemGauge) {\n    let _l = g.lease(8);\n    let v = Vec::with_capacity(8);\n}\n";
        let f = check_file("x.rs", src, ALL);
        assert_eq!(f.len(), 1);
        assert_eq!((f[0].line, f[0].rule), (2, Rule::R1));
    }

    #[test]
    fn sorts_are_flagged_even_in_leased_scopes() {
        let src = "fn f(g: &MemGauge) {\n    let _l = g.lease(8);\n    buf.sort_unstable();\n}\n";
        let f = check_file("x.rs", src, ALL);
        assert_eq!(f.len(), 1);
        assert_eq!((f[0].line, f[0].rule), (3, Rule::R2));
    }

    #[test]
    fn waiver_suppresses_and_stale_waiver_errors() {
        let ok = "fn f() {\n    // emlint: allow(unleased, reason = \"caller charges it\")\n    let v = vec![1];\n}\n";
        assert!(check_file("x.rs", ok, ALL).is_empty());
        let stale = "fn f(g: &MemGauge) {\n    let _l = g.lease(1);\n    // emlint: allow(unleased, reason = \"obsolete\")\n    let v = vec![1];\n}\n";
        let f = check_file("x.rs", stale, ALL);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::R4);
        assert!(f[0].message.contains("stale"));
    }

    #[test]
    fn use_lines_and_test_code_are_exempt_from_r1_to_r3() {
        let src = "use std::collections::HashMap;\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        let m: HashMap<u32, u32> = HashMap::new();\n        let v = vec![1].to_vec();\n    }\n}\n";
        assert!(check_file("x.rs", src, ALL).is_empty());
    }

    #[test]
    fn crate_roots_need_forbid_unsafe() {
        let f = check_file("src/lib.rs", "fn f() {}\n", &[Rule::R4]);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("forbid(unsafe_code)"));
        let ok = "#![forbid(unsafe_code)]\nfn f() {}\n";
        assert!(check_file("src/lib.rs", ok, &[Rule::R4]).is_empty());
    }

    #[test]
    fn doc_comments_and_strings_never_trigger() {
        let src = "/// Uses a `HashMap` conceptually, and vec![] too.\nfn f() {\n    let s = \"don't .sort_unstable() me\";\n    drop(s);\n}\n";
        assert!(check_file("x.rs", src, ALL).is_empty());
    }
}
