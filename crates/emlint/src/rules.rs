//! The rule pack: R1–R4 over one file's code view.
//!
//! * **R1 `unleased`** — allocation sites (`with_capacity(`, `vec![`,
//!   `.reserve(`, `.to_vec()`, `.collect(`/`.collect::<`, `Vec::new()`)
//!   outside a scope that holds a [`MemLease`] (detected as `.lease(`,
//!   `.lease_tagged(` or a `MemLease` mention in the enclosing `fn`).
//! * **R2 `uncharged-std`** — std hashing/tree containers and in-place
//!   `[T]::sort*` calls: their work is invisible to the machine's counters,
//!   so charged paths must route through `emalgo::{external_sort_by_key,
//!   kway_merge}` or explicitly `machine.work(…)`-charged leased structures.
//!   Applies regardless of leases (a leased `HashMap` still hashes for free).
//! * **R3 `uncharged-probe`** — materialising `ExtVec`/`ExtSlice` data into
//!   core (`.load()`, `.load_all()`, `.load_range(`) outside a leased scope:
//!   probing the resulting `Vec` bypasses the charged probe API
//!   (`ExtSlice::get` / `partition_point`).
//! * **R4 `hygiene`** — `unsafe` tokens, a missing `#![forbid(unsafe_code)]`
//!   in crate roots, and waiver hygiene: waivers must parse, must name a
//!   non-empty reason, must name a known rule, and must suppress something
//!   (a stale waiver on a clean line is an error).
//!
//! `use` declaration lines are exempt from R1–R3 (importing a name is not
//! using it; the usage sites are flagged instead). Test-only code
//! (`#[cfg(test)]` / `#[test]` spans) is exempt from R1–R3 but not from R4.

use crate::analysis::{fn_name, is_ident_byte, Analysis};
use crate::source::{ChargeAnnotation, SourceView};
use crate::summary::Summaries;
use crate::taint;

/// The rule pack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// No uncharged allocation in algorithm code.
    R1,
    /// No std hash/tree containers or std sorts in charged paths.
    R2,
    /// No gauge-bypassing materialisation of external data.
    R3,
    /// `forbid(unsafe_code)` + waiver hygiene.
    R4,
    /// No index/iterate/sort over a materialised buffer without a live lease.
    R5,
    /// `charge(work, …)` annotations must be backed by an adjacent
    /// `machine.work(…)` call in the same block.
    R6,
    /// Lease-taking helpers must be called from leased context.
    R7,
}

impl Rule {
    /// `"R1"` … `"R7"`.
    pub fn id(self) -> &'static str {
        match self {
            Rule::R1 => "R1",
            Rule::R2 => "R2",
            Rule::R3 => "R3",
            Rule::R4 => "R4",
            Rule::R5 => "R5",
            Rule::R6 => "R6",
            Rule::R7 => "R7",
        }
    }

    /// The slug used in waivers and finding headers.
    pub fn slug(self) -> &'static str {
        match self {
            Rule::R1 => "unleased",
            Rule::R2 => "uncharged-std",
            Rule::R3 => "uncharged-probe",
            Rule::R4 => "hygiene",
            Rule::R5 => "tainted-materialisation",
            Rule::R6 => "uncharged-work",
            Rule::R7 => "lease-summary",
        }
    }

    /// Parses `"R1"`/`"unleased"` style names.
    pub fn parse(s: &str) -> Option<Rule> {
        match s {
            "R1" | "unleased" => Some(Rule::R1),
            "R2" | "uncharged-std" => Some(Rule::R2),
            "R3" | "uncharged-probe" => Some(Rule::R3),
            "R4" | "hygiene" => Some(Rule::R4),
            "R5" | "tainted-materialisation" => Some(Rule::R5),
            "R6" | "uncharged-work" => Some(Rule::R6),
            "R7" | "lease-summary" => Some(Rule::R7),
            _ => None,
        }
    }
}

/// One reported violation.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Path as handed to the linter (workspace-relative in CLI use).
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// The violated rule.
    pub rule: Rule,
    /// Human-readable description with a fix hint.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: {}({}): {}",
            self.file,
            self.line,
            self.rule.id(),
            self.rule.slug(),
            self.message
        )
    }
}

/// An allocation/usage pattern: the needle, whether it must start at an
/// identifier boundary, whether it must end at one, and its display name.
struct Pattern {
    needle: &'static str,
    bound_before: bool,
    bound_after: bool,
    display: &'static str,
}

const fn pat(
    needle: &'static str,
    bound_before: bool,
    bound_after: bool,
    display: &'static str,
) -> Pattern {
    Pattern {
        needle,
        bound_before,
        bound_after,
        display,
    }
}

const R1_PATTERNS: &[Pattern] = &[
    pat("with_capacity(", true, false, "`with_capacity`"),
    pat("vec![", true, false, "`vec![]`"),
    pat(".reserve(", false, false, "`reserve`"),
    pat(".to_vec()", false, false, "`to_vec`"),
    pat(".collect(", false, false, "`collect` into an owned buffer"),
    pat(
        ".collect::<",
        false,
        false,
        "`collect` into an owned buffer",
    ),
    pat(
        "Vec::new()",
        true,
        false,
        "`Vec::new` (grows unleased via push)",
    ),
];

const R2_PATTERNS: &[Pattern] = &[
    pat("HashMap", true, true, "std `HashMap`"),
    pat("HashSet", true, true, "std `HashSet`"),
    pat("BTreeMap", true, true, "std `BTreeMap`"),
    pat("BTreeSet", true, true, "std `BTreeSet`"),
    pat("BinaryHeap", true, true, "std `BinaryHeap`"),
    pat(".sort()", false, false, "std `sort`"),
    pat(".sort_by(", false, false, "std `sort_by`"),
    pat(".sort_by_key(", false, false, "std `sort_by_key`"),
    pat(
        ".sort_by_cached_key(",
        false,
        false,
        "std `sort_by_cached_key`",
    ),
    pat(".sort_unstable()", false, false, "std `sort_unstable`"),
    pat(".sort_unstable_by(", false, false, "std `sort_unstable_by`"),
    pat(
        ".sort_unstable_by_key(",
        false,
        false,
        "std `sort_unstable_by_key`",
    ),
];

const R3_PATTERNS: &[Pattern] = &[
    pat(".load()", false, false, "`ExtSlice::load`"),
    pat(".load_all()", false, false, "`ExtVec::load_all`"),
    pat(".load_range(", false, false, "`ExtVec::load_range`"),
];

fn hint(rule: Rule) -> &'static str {
    match rule {
        Rule::R1 => {
            "hold a MemLease in this scope (machine.gauge().lease/lease_tagged) or waive: \
             // emlint: allow(unleased, reason = \"…\")"
        }
        Rule::R2 => {
            "route through emalgo::{external_sort_by_key, kway_merge} or a leased, \
             machine.work()-charged structure, or waive: \
             // emlint: allow(uncharged-std, reason = \"…\")"
        }
        Rule::R3 => {
            "probe through the charged API (ExtSlice::get/partition_point/iter), or lease \
             the materialised buffer in this scope, or waive: \
             // emlint: allow(uncharged-probe, reason = \"…\")"
        }
        Rule::R4 => "",
        Rule::R5 => {
            "create the lease before the use (a lease created later does not cover it), \
             or waive: // emlint: allow(tainted-materialisation, reason = \"…\")"
        }
        Rule::R6 => "",
        Rule::R7 => {
            "hold a lease in the calling scope (the helper charges its buffers to the \
             caller's lease), or waive: // emlint: allow(lease-summary, reason = \"…\")"
        }
    }
}

/// Whether the file is a crate root that must carry
/// `#![forbid(unsafe_code)]` (R4): any file named `lib.rs` or `main.rs`.
fn is_crate_root(file: &str) -> bool {
    let name = file.rsplit(['/', '\\']).next().unwrap_or(file);
    name == "lib.rs" || name == "main.rs"
}

/// Runs `rules` over one file and returns its findings, waivers applied.
/// Intra-procedural only: R7's inter-procedural half needs workspace
/// summaries — see [`check_file_with_summaries`].
pub fn check_file(file: &str, text: &str, rules: &[Rule]) -> Vec<Finding> {
    check_file_with_summaries(file, text, rules, None)
}

/// Marks the first waiver covering `line` for `rule` as used; `true` when
/// one exists. R4 and R6 findings are process errors and never waivable.
fn try_waive(view: &SourceView, used: &mut [bool], line: usize, rule: Rule) -> bool {
    if matches!(rule, Rule::R4 | Rule::R6) {
        return false;
    }
    match view
        .waivers
        .iter()
        .position(|w| !w.malformed && w.covers(line) && Rule::parse(&w.rule) == Some(rule))
    {
        Some(i) => {
            used[i] = true;
            true
        }
        None => false,
    }
}

/// Like [`check_file`], with workspace lease summaries enabling R7: R1/R3
/// findings inside covered helpers are suppressed, and unleased calls to
/// `MemLease`-taking helpers in this file are reported.
pub fn check_file_with_summaries(
    file: &str,
    text: &str,
    rules: &[Rule],
    summaries: Option<&Summaries>,
) -> Vec<Finding> {
    let view = SourceView::parse(text);
    let analysis = Analysis::scan(&view);
    let mut findings: Vec<Finding> = Vec::new();
    let mut waiver_used = vec![false; view.waivers.len()];
    let mut charge_used = vec![false; view.charges.len()];

    for &rule in rules {
        let patterns: &[Pattern] = match rule {
            Rule::R1 => R1_PATTERNS,
            Rule::R2 => R2_PATTERNS,
            Rule::R3 => R3_PATTERNS,
            Rule::R4 | Rule::R5 | Rule::R6 | Rule::R7 => continue,
        };
        for p in patterns {
            for pos in find_all(&view.cleaned, p) {
                if analysis.in_test(pos) {
                    continue;
                }
                let line = view.line_of(pos);
                if view.cleaned_line(line).trim_start().starts_with("use ") {
                    continue;
                }
                if matches!(rule, Rule::R1 | Rule::R3) {
                    let enclosing = analysis.enclosing_fn(pos);
                    if enclosing.is_some_and(|f| f.holds_lease) {
                        continue;
                    }
                    // R7 suppression: every call site of this helper is
                    // leased-context, so the words are owned by the callers.
                    if rules.contains(&Rule::R7) {
                        if let (Some(s), Some(f)) = (summaries, enclosing) {
                            if fn_name(&view.cleaned, f).is_some_and(|name| s.covered(name)) {
                                continue;
                            }
                        }
                    }
                }
                // R6: an in-core sort covered by a charge annotation is
                // accounted for; the annotation itself is verified below.
                if rule == Rule::R2 && p.needle.starts_with(".sort") && rules.contains(&Rule::R6) {
                    if let Some(ci) = view
                        .charges
                        .iter()
                        .position(|c| !c.malformed && c.kind == "work" && c.covers(line))
                    {
                        charge_used[ci] = true;
                        continue;
                    }
                }
                // Waivers: same rule, covering this line's statement.
                if try_waive(&view, &mut waiver_used, line, rule) {
                    continue;
                }
                findings.push(Finding {
                    file: file.to_string(),
                    line,
                    rule,
                    message: format!("{} outside a charged scope — {}", p.display, hint(rule)),
                });
            }
        }
    }

    if rules.contains(&Rule::R5) {
        for u in taint::tainted_uses(&view, &analysis) {
            let line = view.line_of(u.pos);
            if try_waive(&view, &mut waiver_used, line, Rule::R5) {
                continue;
            }
            findings.push(Finding {
                file: file.to_string(),
                line,
                rule: Rule::R5,
                message: format!(
                    "`{}` holds materialised ExtVec contents and is {} with no lease \
                     live here — {}",
                    u.name,
                    u.how,
                    hint(Rule::R5)
                ),
            });
        }
    }

    if rules.contains(&Rule::R6) {
        for (ci, c) in view.charges.iter().enumerate() {
            let problem = if c.malformed {
                "malformed charge annotation — expected \
                 // emlint: charge(work, <expr>)"
                    .to_string()
            } else if c.kind != "work" {
                format!("unknown charge kind `{}` (known kinds: work)", c.kind)
            } else if !charge_backed(&view, &analysis, c) {
                format!(
                    "unbacked charge annotation — no `.work({})` call in the \
                     enclosing block",
                    c.expr
                )
            } else if rules.contains(&Rule::R2) && !charge_used[ci] {
                format!(
                    "stale charge annotation — line {} triggers no uncharged-std \
                     sort; delete the annotation",
                    if c.target_line == 0 {
                        c.comment_line
                    } else {
                        c.target_line
                    }
                )
            } else {
                continue;
            };
            findings.push(Finding {
                file: file.to_string(),
                line: c.comment_line,
                rule: Rule::R6,
                message: problem,
            });
        }
    }

    if rules.contains(&Rule::R7) {
        if let Some(s) = summaries {
            for (line, helper, caller) in s.unleased_lease_taker_calls(file) {
                if try_waive(&view, &mut waiver_used, line, Rule::R7) {
                    continue;
                }
                findings.push(Finding {
                    file: file.to_string(),
                    line,
                    rule: Rule::R7,
                    message: format!(
                        "`{helper}` charges its buffers to a caller-provided MemLease, \
                         but `{caller}` calls it without leased context — {}",
                        hint(Rule::R7)
                    ),
                });
            }
        }
    }

    if rules.contains(&Rule::R4) {
        // unsafe tokens (anywhere, tests included).
        let unsafe_pat = pat("unsafe", true, true, "`unsafe`");
        for pos in find_all(&view.cleaned, &unsafe_pat) {
            findings.push(Finding {
                file: file.to_string(),
                line: view.line_of(pos),
                rule: Rule::R4,
                message: "`unsafe` in a charged crate — the accounting model cannot see \
                          through unsafe code; remove it (crate roots carry \
                          #![forbid(unsafe_code)])"
                    .to_string(),
            });
        }
        if is_crate_root(file) && !view.cleaned.contains("#![forbid(unsafe_code)]") {
            findings.push(Finding {
                file: file.to_string(),
                line: 1,
                rule: Rule::R4,
                message: "crate root lacks `#![forbid(unsafe_code)]` — add it below the \
                          crate docs"
                    .to_string(),
            });
        }
        // Waiver hygiene.
        for (w, used) in view.waivers.iter().zip(&waiver_used) {
            let problem = if w.malformed {
                Some(
                    "malformed waiver — expected \
                     // emlint: allow(<rule>, reason = \"…\")"
                        .to_string(),
                )
            } else if Rule::parse(&w.rule).is_none() {
                Some(format!(
                    "waiver names unknown rule `{}` (known: unleased, uncharged-std, \
                     uncharged-probe, tainted-materialisation, lease-summary)",
                    w.rule
                ))
            } else if w.reason.is_none() {
                Some(format!(
                    "waiver for `{}` must name a reason: \
                     // emlint: allow({}, reason = \"…\")",
                    w.rule, w.rule
                ))
            } else if !*used {
                Some(format!(
                    "stale waiver — line {} triggers no `{}` finding; delete the waiver",
                    if w.target_line == 0 {
                        w.comment_line
                    } else {
                        w.target_line
                    },
                    w.rule
                ))
            } else {
                None
            };
            if let Some(message) = problem {
                findings.push(Finding {
                    file: file.to_string(),
                    line: w.comment_line,
                    rule: Rule::R4,
                    message,
                });
            }
        }
    }

    findings.sort_by_key(|f| (f.line, f.rule));
    findings
}

/// Whether a `charge(work, <expr>)` annotation is backed: some `.work(…)`
/// call in the block enclosing the annotated statement has an argument
/// equal (whitespace-normalised) to `<expr>`.
fn charge_backed(view: &SourceView, analysis: &Analysis, c: &ChargeAnnotation) -> bool {
    if c.target_line == 0 {
        return false;
    }
    let Some(&line_start) = view.line_starts.get(c.target_line - 1) else {
        return false;
    };
    let pos = line_start
        + view
            .cleaned_line(c.target_line)
            .bytes()
            .position(|b| !b.is_ascii_whitespace())
            .unwrap_or(0);
    let block = analysis
        .innermost_scope(pos)
        .map_or(view.cleaned.as_str(), |s| &view.cleaned[s.start..s.end]);
    let want = normalise(&c.expr);
    work_call_args(block)
        .iter()
        .any(|arg| normalise(arg) == want)
}

/// Strips all whitespace for expression comparison.
fn normalise(expr: &str) -> String {
    expr.split_whitespace().collect()
}

/// The argument text of every `.work(…)` call in `text` (balanced parens).
fn work_call_args(text: &str) -> Vec<String> {
    let bytes = text.as_bytes();
    let mut out = Vec::new();
    let mut from = 0usize;
    while let Some(rel) = text[from..].find(".work(") {
        let open = from + rel + 5;
        from = from + rel + 1;
        let mut depth = 0usize;
        for i in open..bytes.len() {
            match bytes[i] {
                b'(' => depth += 1,
                b')' => {
                    depth -= 1;
                    if depth == 0 {
                        out.push(text[open + 1..i].to_string());
                        break;
                    }
                }
                _ => {}
            }
        }
    }
    out
}

/// All byte offsets of `p` in `hay`, boundary conditions respected.
fn find_all(hay: &str, p: &Pattern) -> Vec<usize> {
    let mut out = Vec::new();
    let bytes = hay.as_bytes();
    let mut from = 0usize;
    while let Some(rel) = hay[from..].find(p.needle) {
        let pos = from + rel;
        from = pos + 1;
        if p.bound_before && pos > 0 && is_ident_byte(bytes[pos - 1]) {
            continue;
        }
        let end = pos + p.needle.len();
        if p.bound_after && end < bytes.len() && is_ident_byte(bytes[end]) {
            continue;
        }
        out.push(pos);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: &[Rule] = &[Rule::R1, Rule::R2, Rule::R3, Rule::R4];

    #[test]
    fn unleased_alloc_is_flagged_and_leased_scope_is_not() {
        let src = "fn bad() {\n    let v = Vec::with_capacity(8);\n}\nfn good(g: &MemGauge) {\n    let _l = g.lease(8);\n    let v = Vec::with_capacity(8);\n}\n";
        let f = check_file("x.rs", src, ALL);
        assert_eq!(f.len(), 1);
        assert_eq!((f[0].line, f[0].rule), (2, Rule::R1));
    }

    #[test]
    fn sorts_are_flagged_even_in_leased_scopes() {
        let src = "fn f(g: &MemGauge) {\n    let _l = g.lease(8);\n    buf.sort_unstable();\n}\n";
        let f = check_file("x.rs", src, ALL);
        assert_eq!(f.len(), 1);
        assert_eq!((f[0].line, f[0].rule), (3, Rule::R2));
    }

    #[test]
    fn waiver_suppresses_and_stale_waiver_errors() {
        let ok = "fn f() {\n    // emlint: allow(unleased, reason = \"caller charges it\")\n    let v = vec![1];\n}\n";
        assert!(check_file("x.rs", ok, ALL).is_empty());
        let stale = "fn f(g: &MemGauge) {\n    let _l = g.lease(1);\n    // emlint: allow(unleased, reason = \"obsolete\")\n    let v = vec![1];\n}\n";
        let f = check_file("x.rs", stale, ALL);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::R4);
        assert!(f[0].message.contains("stale"));
    }

    #[test]
    fn use_lines_and_test_code_are_exempt_from_r1_to_r3() {
        let src = "use std::collections::HashMap;\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        let m: HashMap<u32, u32> = HashMap::new();\n        let v = vec![1].to_vec();\n    }\n}\n";
        assert!(check_file("x.rs", src, ALL).is_empty());
    }

    #[test]
    fn crate_roots_need_forbid_unsafe() {
        let f = check_file("src/lib.rs", "fn f() {}\n", &[Rule::R4]);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("forbid(unsafe_code)"));
        let ok = "#![forbid(unsafe_code)]\nfn f() {}\n";
        assert!(check_file("src/lib.rs", ok, &[Rule::R4]).is_empty());
    }

    #[test]
    fn waiver_covers_a_rustfmt_wrapped_statement() {
        let src = "fn f() {\n    // emlint: allow(unleased, reason = \"caller charges it\")\n    let v: Vec<u32> =\n        xs.iter()\n            .map(|x| x + 1)\n            .collect();\n}\n";
        assert!(
            check_file("x.rs", src, ALL).is_empty(),
            "the waiver must cover every physical line of the statement"
        );
    }

    #[test]
    fn charge_annotation_suppresses_sort_and_verifies_backing() {
        let rules = &[Rule::R2, Rule::R4, Rule::R6];
        let ok = "fn f(machine: &Machine) {\n    machine.work(n as u64 * 6);\n    // emlint: charge(work, n as u64 * 6)\n    buf.sort_unstable();\n}\n";
        assert!(check_file("x.rs", ok, rules).is_empty());
        let unbacked = "fn f(machine: &Machine) {\n    // emlint: charge(work, n as u64 * 6)\n    buf.sort_unstable();\n}\n";
        let f = check_file("x.rs", unbacked, rules);
        assert_eq!(f.len(), 1);
        assert_eq!((f[0].line, f[0].rule), (2, Rule::R6));
        assert!(f[0].message.contains("unbacked"));
    }

    #[test]
    fn stale_and_malformed_charge_annotations_error() {
        let rules = &[Rule::R2, Rule::R4, Rule::R6];
        let stale = "fn f(machine: &Machine) {\n    machine.work(1);\n    // emlint: charge(work, 1)\n    let x = 1;\n}\n";
        let f = check_file("x.rs", stale, rules);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("stale charge"));
        let bad = "fn f() {\n    // emlint: charge(cycles, 1)\n    buf.sort_unstable();\n}\n";
        let f = check_file("x.rs", bad, rules);
        // The unknown-kind annotation suppresses nothing: R2 + R6 both fire.
        assert_eq!(f.len(), 2);
        assert!(f.iter().any(|f| f.message.contains("unknown charge kind")));
    }

    #[test]
    fn r5_flags_tainted_use_and_respects_waivers() {
        let rules = &[Rule::R4, Rule::R5];
        let bad = "fn f(xs: &ExtVec<u32>) {\n    let mut buf = xs.load_all();\n    buf.sort_unstable();\n}\n";
        let f = check_file("x.rs", bad, rules);
        assert_eq!(f.len(), 1);
        assert_eq!((f[0].line, f[0].rule), (3, Rule::R5));
        let waived = "fn f(xs: &ExtVec<u32>) {\n    let mut buf = xs.load_all();\n    // emlint: allow(tainted-materialisation, reason = \"bounded probe scratch\")\n    buf.sort_unstable();\n}\n";
        assert!(check_file("x.rs", waived, rules).is_empty());
    }

    #[test]
    fn r7_summaries_suppress_covered_helpers_and_flag_unleased_lease_takers() {
        use crate::summary::Summaries;
        let src = "fn helper(n: usize) -> Vec<u32> {\n    Vec::with_capacity(n)\n}\nfn taker(lease: &mut MemLease, n: usize) -> Vec<u32> {\n    Vec::with_capacity(n)\n}\nfn leased(m: &Machine) {\n    let _l = m.gauge().lease(8);\n    let a = helper(8);\n}\nfn bare() {\n    let b = taker_call();\n}\nfn taker_call() -> Vec<u32> {\n    taker(global_lease(), 8)\n}\n";
        let s = Summaries::build([("x.rs", src)]);
        let rules = &[Rule::R1, Rule::R4, Rule::R7];
        let f = check_file_with_summaries("x.rs", src, rules, Some(&s));
        // helper's with_capacity is covered; taker holds a lease param so R1
        // skips it; the unleased call to taker is the R7 finding. taker_call
        // and bare allocate nothing... except taker_call's Vec return.
        assert!(
            f.iter()
                .any(|f| f.rule == Rule::R7 && f.message.contains("`taker`")),
            "expected an R7 finding for the unleased taker call, got {f:?}"
        );
        assert!(
            !f.iter().any(|f| f.rule == Rule::R1 && f.line == 2),
            "helper's allocation must be covered by its leased caller"
        );
    }

    #[test]
    fn doc_comments_and_strings_never_trigger() {
        let src = "/// Uses a `HashMap` conceptually, and vec![] too.\nfn f() {\n    let s = \"don't .sort_unstable() me\";\n    drop(s);\n}\n";
        assert!(check_file("x.rs", src, ALL).is_empty());
    }
}
