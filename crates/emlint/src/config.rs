//! `emlint.toml` reader — a minimal hand-rolled TOML subset (no registry
//! access, so no `toml` crate). Exactly this shape is supported:
//!
//! ```toml
//! # comments and blank lines
//! [[scope]]
//! path = "crates/core/src"
//! rules = ["R1", "R2", "R3", "R4"]
//! ```
//!
//! Rule names accept both ids (`"R1"`) and slugs (`"unleased"`). Paths are
//! workspace-relative directory prefixes *or* exact file paths; a file is
//! linted under the most specific (longest-path) scope that matches it, so
//! bench/test/example trees simply get no scope and stay out of R1–R3, while
//! a single charged file inside an otherwise unscoped crate (e.g.
//! `crates/emsim/src/storage.rs`) can be brought under lint on its own.

use crate::rules::Rule;

/// One `[[scope]]` entry.
#[derive(Debug, Clone)]
pub struct Scope {
    /// Workspace-relative directory prefix, `/`-separated.
    pub path: String,
    /// Rules to run on files under `path`.
    pub rules: Vec<Rule>,
}

/// Parsed `emlint.toml`.
#[derive(Debug, Clone, Default)]
pub struct Config {
    /// All scopes in file order.
    pub scopes: Vec<Scope>,
}

impl Config {
    /// Parses the config text; errors carry 1-based line numbers.
    pub fn parse(text: &str) -> Result<Config, String> {
        let mut scopes: Vec<Scope> = Vec::new();
        let mut in_scope = false;
        for (idx, raw) in text.lines().enumerate() {
            let lno = idx + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if line == "[[scope]]" {
                scopes.push(Scope {
                    path: String::new(),
                    rules: Vec::new(),
                });
                in_scope = true;
                continue;
            }
            if line.starts_with('[') {
                return Err(format!(
                    "emlint.toml:{lno}: unsupported table `{line}` (only [[scope]] entries)"
                ));
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!(
                    "emlint.toml:{lno}: expected `key = value`, got `{line}`"
                ));
            };
            if !in_scope {
                return Err(format!(
                    "emlint.toml:{lno}: `{}` outside a [[scope]] entry",
                    key.trim()
                ));
            }
            let scope = scopes.last_mut().expect("in_scope implies a scope exists");
            match key.trim() {
                "path" => {
                    scope.path = parse_string(value.trim())
                        .ok_or_else(|| format!("emlint.toml:{lno}: `path` wants a quoted string"))?
                        .trim_matches('/')
                        .to_string();
                }
                "rules" => {
                    scope.rules = parse_rule_array(value.trim())
                        .map_err(|e| format!("emlint.toml:{lno}: {e}"))?;
                }
                other => {
                    return Err(format!(
                        "emlint.toml:{lno}: unknown key `{other}` (expected path/rules)"
                    ));
                }
            }
        }
        for (i, s) in scopes.iter().enumerate() {
            if s.path.is_empty() {
                return Err(format!("emlint.toml: scope #{} has no `path`", i + 1));
            }
            if s.rules.is_empty() {
                return Err(format!("emlint.toml: scope `{}` has no `rules`", s.path));
            }
        }
        Ok(Config { scopes })
    }

    /// The rules applying to a workspace-relative file path: those of the
    /// longest-prefix matching scope, or none. A scope path is a directory
    /// prefix (matching whole path components) or an exact file path (the
    /// stripped remainder is empty).
    pub fn rules_for(&self, rel_path: &str) -> &[Rule] {
        self.scopes
            .iter()
            .filter(|s| {
                rel_path
                    .strip_prefix(s.path.as_str())
                    .is_some_and(|rest| rest.starts_with('/') || rest.is_empty())
            })
            .max_by_key(|s| s.path.len())
            .map_or(&[], |s| s.rules.as_slice())
    }
}

/// `"…"` → inner text.
fn parse_string(v: &str) -> Option<&str> {
    v.strip_prefix('"')?.strip_suffix('"')
}

/// `["R1", "unleased", …]` → rules.
fn parse_rule_array(v: &str) -> Result<Vec<Rule>, String> {
    let inner = v
        .strip_prefix('[')
        .and_then(|r| r.strip_suffix(']'))
        .ok_or_else(|| "`rules` wants an array of quoted rule names".to_string())?;
    let mut rules = Vec::new();
    for item in inner.split(',') {
        let item = item.trim();
        if item.is_empty() {
            continue;
        }
        let name = parse_string(item)
            .ok_or_else(|| format!("rule entry `{item}` is not a quoted string"))?;
        let rule = Rule::parse(name).ok_or_else(|| {
            format!("unknown rule `{name}` (known: R1/unleased, R2/uncharged-std, R3/uncharged-probe, R4/hygiene)")
        })?;
        if !rules.contains(&rule) {
            rules.push(rule);
        }
    }
    Ok(rules)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scopes_and_resolves_longest_prefix() {
        let cfg = Config::parse(
            "# rules\n[[scope]]\npath = \"crates/core/src\"\nrules = [\"R1\", \"R4\"]\n\n[[scope]]\npath = \"crates/core/src/baselines\"\nrules = [\"hygiene\"]\n",
        )
        .unwrap();
        assert_eq!(cfg.scopes.len(), 2);
        assert_eq!(
            cfg.rules_for("crates/core/src/lemma2.rs"),
            &[Rule::R1, Rule::R4]
        );
        assert_eq!(
            cfg.rules_for("crates/core/src/baselines/nested_loop.rs"),
            &[Rule::R4]
        );
        assert!(cfg.rules_for("crates/bench/src/lib.rs").is_empty());
        // Prefixes match whole path components, not substrings.
        assert!(cfg.rules_for("crates/core/srcx/lib.rs").is_empty());
    }

    #[test]
    fn exact_file_scopes_match_only_that_file_and_win_on_length() {
        let cfg = Config::parse(
            "[[scope]]\npath = \"crates/emsim/src/storage.rs\"\nrules = [\"R1\", \"R2\"]\n\n[[scope]]\npath = \"crates/emsim/src\"\nrules = [\"R4\"]\n",
        )
        .unwrap();
        // The exact-file scope is the longer match and overrides the
        // directory scope for that one file…
        assert_eq!(
            cfg.rules_for("crates/emsim/src/storage.rs"),
            &[Rule::R1, Rule::R2]
        );
        // …its siblings keep the directory scope…
        assert_eq!(cfg.rules_for("crates/emsim/src/machine.rs"), &[Rule::R4]);
        // …and the file scope never bleeds onto lookalike paths.
        assert_eq!(
            cfg.rules_for("crates/emsim/src/storage.rs.bak"),
            &[Rule::R4],
            "a name that merely starts with the file path is not the file"
        );
    }

    #[test]
    fn rejects_malformed_configs_with_line_numbers() {
        assert!(Config::parse("path = \"x\"\n").unwrap_err().contains(":1:"));
        assert!(Config::parse("[[scope]]\npath = \"x\"\nrules = [\"R9\"]\n")
            .unwrap_err()
            .contains("unknown rule"));
        assert!(Config::parse("[[scope]]\nrules = [\"R1\"]\n")
            .unwrap_err()
            .contains("no `path`"));
    }
}
