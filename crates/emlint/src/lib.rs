//! # emlint — charge-soundness lints for the trienum workspace
//!
//! The external-memory simulator ([`emsim`]) only keeps the paper's
//! accounting honest if algorithm code actually routes its memory and work
//! through the charged APIs: working buffers held under [`MemGauge`] leases,
//! block transfers through `ExtVec`, sorts through `emalgo`. Nothing in the
//! type system enforces that — a stray `Vec::with_capacity(n)` or
//! `HashMap` compiles fine and silently under-reports M or the CPU side.
//!
//! `emlint` closes that gap statically. It is a dependency-free, token-level
//! analyzer (no `syn`; see [`source`] and [`analysis`]) running seven rules:
//!
//! | rule | slug | catches |
//! |------|------|---------|
//! | R1 | `unleased` | allocations outside a `MemLease`-holding scope |
//! | R2 | `uncharged-std` | std hash/tree containers, `[T]::sort*` |
//! | R3 | `uncharged-probe` | `ExtVec`/`ExtSlice` materialisation bypassing charged probes |
//! | R4 | `hygiene` | `unsafe`, missing `#![forbid(unsafe_code)]`, waiver rot |
//! | R5 | `tainted-materialisation` | index/iterate/sort of a loaded buffer with no lease live ([`taint`]) |
//! | R6 | `uncharged-work` | `charge(work, …)` annotations without a matching `machine.work(…)` call |
//! | R7 | `lease-summary` | unleased calls to helpers folded into their caller's lease ([`summary`]) |
//!
//! R5–R7 are *flow-aware*: R5 tracks taint from `.load*()` through moves and
//! clones and demands a lease **live at the use site** (not merely somewhere
//! in the fn), R6 turns the "sort charged via adjacent `machine.work`"
//! waiver family into a checked annotation, and R7 builds per-function lease
//! summaries over the whole workspace so helpers whose buffers are charged
//! to every caller's lease need no waiver at all.
//!
//! Deliberate exceptions carry inline waivers that must name a reason and go
//! stale loudly (see [`source::Waiver`]); a waiver above a statement covers
//! every physical line rustfmt wrapped it onto:
//!
//! ```text
//! // emlint: allow(unleased, reason = "cursor handles, O(1) per run")
//! let cursors: Vec<_> = runs.iter().map(|r| r.iter()).collect();
//! ```
//!
//! Checked charge annotations replace the old sort-waiver family
//! (see [`source::ChargeAnnotation`] and rule R6):
//!
//! ```text
//! // emlint: charge(work, n as u64 * 6)
//! buf.sort_unstable();
//! ```
//!
//! Scoping lives in `emlint.toml` at the workspace root ([`config`]): charged
//! crates get R1–R7, `kwise` (no `emsim` dependency — its buffers are leased
//! by callers) gets R2+R4, the root facade gets R2+R4, and
//! bench/graphgen/test trees get nothing.
//!
//! The CLI (`cargo run -p emlint -- --workspace [--json]`) prints
//! `file:line: R<k>(<slug>): message — hint` lines plus the waivers-in-effect
//! count and exits nonzero on findings; CI runs it alongside the dynamic half
//! of the story, `emsim`'s `gauge-audit` feature (live-lease registry,
//! per-phase peak snapshots, leak detection at gauge drop).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod config;
pub mod rules;
pub mod source;
pub mod summary;
pub mod taint;

pub use config::{Config, Scope};
pub use rules::{check_file, check_file_with_summaries, Finding, Rule};
pub use summary::Summaries;

use std::path::{Path, PathBuf};

/// Lints one on-disk file under `rules`, reporting paths as `rel_path`.
pub fn lint_file(root: &Path, rel_path: &str, rules: &[Rule]) -> Result<Vec<Finding>, String> {
    let text =
        std::fs::read_to_string(root.join(rel_path)).map_err(|e| format!("{rel_path}: {e}"))?;
    Ok(check_file(rel_path, &text, rules))
}

/// What a workspace lint run saw: findings plus the accounting-debt
/// numbers CI and EXPERIMENTS.md track.
#[derive(Debug)]
pub struct WorkspaceReport {
    /// All findings, in walk order.
    pub findings: Vec<Finding>,
    /// Files linted under some scope.
    pub files: usize,
    /// Well-formed `emlint: allow` waivers in scoped files.
    pub waivers: usize,
    /// Well-formed `emlint: charge` annotations in scoped files.
    pub charges: usize,
}

/// Lints every `.rs` file under the config's scopes, rooted at `root`
/// (the directory containing `emlint.toml`). Deterministic order: files
/// sorted by workspace-relative path.
pub fn lint_workspace(root: &Path, config: &Config) -> Result<Vec<Finding>, String> {
    lint_workspace_report(root, config).map(|r| r.findings)
}

/// Like [`lint_workspace`], also reporting file/waiver/charge counts. Runs
/// in two passes: the first builds the inter-procedural lease summaries R7
/// consumes, the second applies the rule pack per file.
pub fn lint_workspace_report(root: &Path, config: &Config) -> Result<WorkspaceReport, String> {
    let mut files: Vec<String> = Vec::new();
    for scope in &config.scopes {
        // A scope path may be an exact file (see `Config::rules_for`) or a
        // directory tree to walk.
        if root.join(&scope.path).is_file() {
            files.push(scope.path.clone());
        } else {
            collect_rs_files(root, &scope.path, &mut files)?;
        }
    }
    files.sort();
    files.dedup();

    let mut sources: Vec<(String, String)> = Vec::new();
    for rel in &files {
        if config.rules_for(rel).is_empty() {
            continue;
        }
        let text = std::fs::read_to_string(root.join(rel)).map_err(|e| format!("{rel}: {e}"))?;
        sources.push((rel.clone(), text));
    }
    let summaries = Summaries::build(sources.iter().map(|(p, t)| (p.as_str(), t.as_str())));

    let mut report = WorkspaceReport {
        findings: Vec::new(),
        files: sources.len(),
        waivers: 0,
        charges: 0,
    };
    for (rel, text) in &sources {
        let rules = config.rules_for(rel);
        report.findings.extend(check_file_with_summaries(
            rel,
            text,
            rules,
            Some(&summaries),
        ));
        let view = source::SourceView::parse(text);
        report.waivers += view.waivers.iter().filter(|w| !w.malformed).count();
        report.charges += view.charges.iter().filter(|c| !c.malformed).count();
    }
    Ok(report)
}

/// Recursively collects `.rs` files under `root/rel_dir` as
/// workspace-relative `/`-separated paths.
fn collect_rs_files(root: &Path, rel_dir: &str, out: &mut Vec<String>) -> Result<(), String> {
    let dir = root.join(rel_dir);
    let entries = std::fs::read_dir(&dir)
        .map_err(|e| format!("{rel_dir}: {e} (check emlint.toml scope paths)"))?;
    let mut names: Vec<(bool, String)> = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| format!("{rel_dir}: {e}"))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else {
            continue;
        };
        let is_dir = entry
            .file_type()
            .map_err(|e| format!("{rel_dir}/{name}: {e}"))?
            .is_dir();
        names.push((is_dir, name.to_string()));
    }
    names.sort();
    for (is_dir, name) in names {
        let rel = format!("{rel_dir}/{name}");
        if is_dir {
            collect_rs_files(root, &rel, out)?;
        } else if name.ends_with(".rs") {
            out.push(rel);
        }
    }
    Ok(())
}

/// Ascends from `start` looking for a directory containing `emlint.toml`;
/// returns that directory.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        if dir.join("emlint.toml").is_file() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}
