//! # emlint — charge-soundness lints for the trienum workspace
//!
//! The external-memory simulator ([`emsim`]) only keeps the paper's
//! accounting honest if algorithm code actually routes its memory and work
//! through the charged APIs: working buffers held under [`MemGauge`] leases,
//! block transfers through `ExtVec`, sorts through `emalgo`. Nothing in the
//! type system enforces that — a stray `Vec::with_capacity(n)` or
//! `HashMap` compiles fine and silently under-reports M or the CPU side.
//!
//! `emlint` closes that gap statically. It is a dependency-free, token-level
//! analyzer (no `syn`; see [`source`] and [`analysis`]) running four rules:
//!
//! | rule | slug | catches |
//! |------|------|---------|
//! | R1 | `unleased` | allocations outside a `MemLease`-holding scope |
//! | R2 | `uncharged-std` | std hash/tree containers, `[T]::sort*` |
//! | R3 | `uncharged-probe` | `ExtVec`/`ExtSlice` materialisation bypassing charged probes |
//! | R4 | `hygiene` | `unsafe`, missing `#![forbid(unsafe_code)]`, waiver rot |
//!
//! Deliberate exceptions carry inline waivers that must name a reason and go
//! stale loudly (see [`source::Waiver`]):
//!
//! ```text
//! // emlint: allow(uncharged-std, reason = "in-core sort of a leased buffer; charged via machine.work")
//! buf.sort_unstable();
//! ```
//!
//! Scoping lives in `emlint.toml` at the workspace root ([`config`]): charged
//! crates get R1–R4, `kwise` (no `emsim` dependency — its buffers are leased
//! by callers) gets R2+R4, and bench/graphgen/test trees get nothing.
//!
//! The CLI (`cargo run -p emlint -- --workspace`) prints `file:line:
//! R<k>(<slug>): message — hint` lines and exits nonzero on findings; CI runs
//! it alongside the dynamic half of the story, `emsim`'s `gauge-audit`
//! feature (live-lease registry, leak detection at gauge drop).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod config;
pub mod rules;
pub mod source;

pub use config::{Config, Scope};
pub use rules::{check_file, Finding, Rule};

use std::path::{Path, PathBuf};

/// Lints one on-disk file under `rules`, reporting paths as `rel_path`.
pub fn lint_file(root: &Path, rel_path: &str, rules: &[Rule]) -> Result<Vec<Finding>, String> {
    let text =
        std::fs::read_to_string(root.join(rel_path)).map_err(|e| format!("{rel_path}: {e}"))?;
    Ok(check_file(rel_path, &text, rules))
}

/// Lints every `.rs` file under the config's scopes, rooted at `root`
/// (the directory containing `emlint.toml`). Deterministic order: files
/// sorted by workspace-relative path.
pub fn lint_workspace(root: &Path, config: &Config) -> Result<Vec<Finding>, String> {
    let mut files: Vec<String> = Vec::new();
    for scope in &config.scopes {
        collect_rs_files(root, &scope.path, &mut files)?;
    }
    files.sort();
    files.dedup();

    let mut findings = Vec::new();
    for rel in &files {
        let rules = config.rules_for(rel);
        if rules.is_empty() {
            continue;
        }
        findings.extend(lint_file(root, rel, rules)?);
    }
    Ok(findings)
}

/// Recursively collects `.rs` files under `root/rel_dir` as
/// workspace-relative `/`-separated paths.
fn collect_rs_files(root: &Path, rel_dir: &str, out: &mut Vec<String>) -> Result<(), String> {
    let dir = root.join(rel_dir);
    let entries = std::fs::read_dir(&dir)
        .map_err(|e| format!("{rel_dir}: {e} (check emlint.toml scope paths)"))?;
    let mut names: Vec<(bool, String)> = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| format!("{rel_dir}: {e}"))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else {
            continue;
        };
        let is_dir = entry
            .file_type()
            .map_err(|e| format!("{rel_dir}/{name}: {e}"))?
            .is_dir();
        names.push((is_dir, name.to_string()));
    }
    names.sort();
    for (is_dir, name) in names {
        let rel = format!("{rel_dir}/{name}");
        if is_dir {
            collect_rs_files(root, &rel, out)?;
        } else if name.ends_with(".rs") {
            out.push(rel);
        }
    }
    Ok(())
}

/// Ascends from `start` looking for a directory containing `emlint.toml`;
/// returns that directory.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        if dir.join("emlint.toml").is_file() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}
