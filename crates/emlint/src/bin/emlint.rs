//! CLI: `cargo run -p emlint -- --workspace [--json]` (scoped by
//! `emlint.toml`), or `cargo run -p emlint -- --rules R1,R4 path/to/file.rs …`
//! for ad-hoc runs. Prints `file:line: R<k>(<slug>): message — hint` lines,
//! sorted, plus the waiver/charge-annotation counts CI tracks, and exits 1
//! when anything is found (2 on usage/config/io errors). `--json` emits the
//! same information as a machine-readable object for the CI artifact.

use std::path::Path;
use std::process::ExitCode;

use emlint::{find_workspace_root, lint_file, lint_workspace_report, Config, Rule};

const USAGE: &str = "\
emlint — charge-soundness lints for the trienum workspace

USAGE:
    emlint --workspace [--json]        lint every scope in emlint.toml
                                       (found by ascending from the cwd);
                                       --json prints a findings object for
                                       the CI artifact
    emlint [--rules LIST] FILE...      lint specific files; LIST is a
                                       comma-separated set of rule ids or
                                       slugs (default: R1,R2,R3,R4,R5,R6)
    emlint --help

Rules: R1/unleased, R2/uncharged-std, R3/uncharged-probe, R4/hygiene,
R5/tainted-materialisation, R6/uncharged-work, R7/lease-summary.
Waive a finding in source with:
    // emlint: allow(<slug>, reason = \"…\")
Declare an adjacent work charge (verified by R6) with:
    // emlint: charge(work, <expr>)
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("emlint: error: {msg}");
            ExitCode::from(2)
        }
    }
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print!("{USAGE}");
        return Ok(ExitCode::SUCCESS);
    }

    if args.iter().any(|a| a == "--workspace") {
        let json = args.iter().any(|a| a == "--json");
        let expected = 1 + usize::from(json);
        if args.len() != expected {
            return Err("--workspace takes no arguments other than --json".to_string());
        }
        let cwd = std::env::current_dir().map_err(|e| e.to_string())?;
        let root = find_workspace_root(&cwd)
            .ok_or_else(|| "no emlint.toml found above the current directory".to_string())?;
        let text = std::fs::read_to_string(root.join("emlint.toml"))
            .map_err(|e| format!("emlint.toml: {e}"))?;
        let config = Config::parse(&text)?;
        let mut report = lint_workspace_report(&root, &config)?;
        report
            .findings
            .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
        if json {
            println!("{}", render_json(&report));
        } else {
            for f in &report.findings {
                println!("{f}");
            }
            println!(
                "emlint: {} finding{} across {} files ({} waivers in effect, {} charge annotations)",
                report.findings.len(),
                if report.findings.len() == 1 { "" } else { "s" },
                report.files,
                report.waivers,
                report.charges
            );
        }
        return Ok(if report.findings.is_empty() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        });
    }

    // Explicit-file mode.
    let mut rules: Vec<Rule> = vec![Rule::R1, Rule::R2, Rule::R3, Rule::R4, Rule::R5, Rule::R6];
    let mut files: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--rules" {
            let list = it
                .next()
                .ok_or_else(|| "--rules wants a comma-separated list".to_string())?;
            rules = parse_rules(list)?;
        } else if let Some(list) = arg.strip_prefix("--rules=") {
            rules = parse_rules(list)?;
        } else if arg.starts_with('-') {
            return Err(format!("unknown flag `{arg}` (see --help)"));
        } else {
            files.push(arg.clone());
        }
    }
    if files.is_empty() {
        return Err("no input files (see --help)".to_string());
    }
    let mut findings = Vec::new();
    for file in &files {
        findings.extend(lint_file(Path::new(""), file, &rules)?);
    }
    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    if findings.is_empty() {
        println!("emlint: clean");
    } else {
        for f in &findings {
            println!("{f}");
        }
        println!(
            "emlint: {} finding{}",
            findings.len(),
            if findings.len() == 1 { "" } else { "s" }
        );
    }
    Ok(if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn parse_rules(list: &str) -> Result<Vec<Rule>, String> {
    list.split(',')
        .map(|name| {
            Rule::parse(name.trim()).ok_or_else(|| format!("unknown rule `{}`", name.trim()))
        })
        .collect()
}

/// Hand-rolled JSON (the container has no registry access, so no serde):
/// `{"findings": […], "files": N, "waivers": N, "charges": N}`.
fn render_json(report: &emlint::WorkspaceReport) -> String {
    let mut out = String::from("{\n  \"findings\": [");
    for (i, f) in report.findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"file\": {}, \"line\": {}, \"rule\": {}, \"slug\": {}, \"message\": {}}}",
            json_str(&f.file),
            f.line,
            json_str(f.rule.id()),
            json_str(f.rule.slug()),
            json_str(&f.message)
        ));
    }
    if !report.findings.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str(&format!(
        "],\n  \"files\": {},\n  \"waivers\": {},\n  \"charges\": {}\n}}",
        report.files, report.waivers, report.charges
    ));
    out
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}
