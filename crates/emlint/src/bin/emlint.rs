//! CLI: `cargo run -p emlint -- --workspace` (scoped by `emlint.toml`), or
//! `cargo run -p emlint -- --rules R1,R4 path/to/file.rs …` for ad-hoc runs.
//! Prints `file:line: R<k>(<slug>): message — hint` lines, sorted, and exits
//! 1 when anything is found (2 on usage/config/io errors).

use std::path::Path;
use std::process::ExitCode;

use emlint::{find_workspace_root, lint_file, lint_workspace, Config, Finding, Rule};

const USAGE: &str = "\
emlint — charge-soundness lints for the trienum workspace

USAGE:
    emlint --workspace                 lint every scope in emlint.toml
                                       (found by ascending from the cwd)
    emlint [--rules LIST] FILE...      lint specific files; LIST is a
                                       comma-separated set of rule ids or
                                       slugs (default: R1,R2,R3,R4)
    emlint --help

Rules: R1/unleased, R2/uncharged-std, R3/uncharged-probe, R4/hygiene.
Waive a finding in source with:
    // emlint: allow(<slug>, reason = \"…\")
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(findings) if findings.is_empty() => {
            println!("emlint: clean");
            ExitCode::SUCCESS
        }
        Ok(findings) => {
            for f in &findings {
                println!("{f}");
            }
            println!(
                "emlint: {} finding{}",
                findings.len(),
                if findings.len() == 1 { "" } else { "s" }
            );
            ExitCode::FAILURE
        }
        Err(msg) => {
            eprintln!("emlint: error: {msg}");
            ExitCode::from(2)
        }
    }
}

fn run(args: &[String]) -> Result<Vec<Finding>, String> {
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print!("{USAGE}");
        return Ok(Vec::new());
    }

    if args.iter().any(|a| a == "--workspace") {
        if args.len() != 1 {
            return Err("--workspace takes no other arguments".to_string());
        }
        let cwd = std::env::current_dir().map_err(|e| e.to_string())?;
        let root = find_workspace_root(&cwd)
            .ok_or_else(|| "no emlint.toml found above the current directory".to_string())?;
        let text = std::fs::read_to_string(root.join("emlint.toml"))
            .map_err(|e| format!("emlint.toml: {e}"))?;
        let config = Config::parse(&text)?;
        let mut findings = lint_workspace(&root, &config)?;
        findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
        return Ok(findings);
    }

    // Explicit-file mode.
    let mut rules: Vec<Rule> = vec![Rule::R1, Rule::R2, Rule::R3, Rule::R4];
    let mut files: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--rules" {
            let list = it
                .next()
                .ok_or_else(|| "--rules wants a comma-separated list".to_string())?;
            rules = list
                .split(',')
                .map(|name| {
                    Rule::parse(name.trim())
                        .ok_or_else(|| format!("unknown rule `{}`", name.trim()))
                })
                .collect::<Result<_, _>>()?;
        } else if let Some(list) = arg.strip_prefix("--rules=") {
            rules = list
                .split(',')
                .map(|name| {
                    Rule::parse(name.trim())
                        .ok_or_else(|| format!("unknown rule `{}`", name.trim()))
                })
                .collect::<Result<_, _>>()?;
        } else if arg.starts_with('-') {
            return Err(format!("unknown flag `{arg}` (see --help)"));
        } else {
            files.push(arg.clone());
        }
    }
    if files.is_empty() {
        return Err("no input files (see --help)".to_string());
    }
    let mut findings = Vec::new();
    for file in &files {
        findings.extend(lint_file(Path::new(""), file, &rules)?);
    }
    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(findings)
}
