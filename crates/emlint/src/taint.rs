//! Flow-aware taint tracking for rule R5 (`tainted-materialisation`).
//!
//! R3 flags the `.load*()` call itself when it happens outside a leased
//! scope. That leaves a hole: a function can materialise an `ExtVec` into a
//! `Vec` *inside* a leased scope, move the buffer around, and then index,
//! iterate or sort it at a point where no lease is live any more — the
//! materialised words silently leave the accounting. This module closes the
//! hole with a deliberately simple intra-procedural dataflow over the
//! blanked code view ([`SourceView`]) and the brace scopes of [`Analysis`]:
//!
//! * **Sources** — `let`-bindings whose right-hand side contains `.load()`,
//!   `.load_all()` or `.load_range(` taint every bound identifier.
//! * **Propagation** — `let y = x;`, `y = x;`, `let y = x.clone();` and
//!   `let y = x.to_vec();` carry taint from `x` to `y`; rebinding an
//!   identifier to anything else clears its taint (shadowing kills).
//! * **Sinks** — indexing (`x[`), iteration (`x.iter()`, `x.iter_mut()`,
//!   `x.into_iter()`, `for … in [&[mut ]]x`) and in-place sorting
//!   (`x.sort*`) of a tainted identifier.
//! * **Lease liveness** — a sink is covered when a lease binding is live at
//!   its position: any `let` whose RHS calls `.lease(`/`.lease_tagged(` or
//!   that binds an identifier containing `lease` (tuple-returned leases) is
//!   live from the end of its statement to the end of its innermost brace
//!   scope, cut short by `drop(<name>)`. A `&MemLease`/`&mut MemLease`
//!   parameter makes the whole body live — the caller holds the words.
//!
//! Everything is position-aware: unlike `holds_lease` (R1/R3), a lease
//! created *after* a use does not cover it, which is exactly what makes
//! "load, sort, then lease" flow-unsound code visible.

use crate::analysis::{is_ident_byte, Analysis, FnInfo};
use crate::source::SourceView;

/// One flagged use of a tainted buffer.
#[derive(Debug)]
pub struct TaintedUse {
    /// Byte offset of the identifier in the cleaned text.
    pub pos: usize,
    /// The tainted identifier.
    pub name: String,
    /// What the use does (`indexed`, `iterated`, `sorted in place`).
    pub how: &'static str,
}

/// Byte-offset intervals; all half-open.
type Interval = (usize, usize);

/// Runs the taint analysis over every non-test function of the file.
pub fn tainted_uses(view: &SourceView, analysis: &Analysis) -> Vec<TaintedUse> {
    let mut out = Vec::new();
    for f in &analysis.fns {
        if analysis.in_test(f.body.start) {
            continue;
        }
        scan_fn(view, analysis, f, &mut out);
    }
    out.sort_by_key(|u| u.pos);
    out
}

/// A `let` binding or plain assignment, in source order.
struct BindEvent {
    /// Ordering key: offset of the `let` keyword / LHS identifier.
    pos: usize,
    /// Exclusive end of the statement.
    stmt_end: usize,
    /// Bound identifiers (all idents of the pattern; `mut` stripped).
    names: Vec<String>,
    /// RHS text range (empty for `let x;`).
    rhs: Interval,
}

fn scan_fn(view: &SourceView, analysis: &Analysis, f: &FnInfo, out: &mut Vec<TaintedUse>) {
    let cleaned = &view.cleaned;
    let bytes = cleaned.as_bytes();
    let body = (f.body.start + 1).min(f.body.end)..f.body.end.saturating_sub(1);
    if body.is_empty() {
        return;
    }
    // Nested fns get their own pass; exclude their spans from this one.
    let children: Vec<Interval> = analysis
        .fns
        .iter()
        .filter(|g| g.sig_start > f.sig_start && g.body.end <= f.body.end)
        .map(|g| (g.sig_start, g.body.end))
        .collect();
    let in_child = |pos: usize| children.iter().any(|&(s, e)| s <= pos && pos < e);

    // Collect binding events (let + assignments).
    let mut events: Vec<BindEvent> = Vec::new();
    for pos in find_word(cleaned, body.clone(), "let") {
        if in_child(pos) {
            continue;
        }
        if let Some(ev) = parse_let(cleaned, pos, body.end) {
            events.push(ev);
        }
    }
    for ev in find_assignments(cleaned, body.clone()) {
        if !in_child(ev.pos) {
            events.push(ev);
        }
    }
    events.sort_by_key(|e| e.pos);

    // Lease liveness intervals.
    let param_list = signature_params(cleaned, f);
    let whole_body_leased = param_list.contains("MemLease");
    let mut leases: Vec<(Vec<String>, Interval)> = Vec::new();
    for ev in &events {
        let rhs = &cleaned[ev.rhs.0..ev.rhs.1];
        let is_lease = rhs.contains(".lease(")
            || rhs.contains(".lease_tagged(")
            || ev
                .names
                .iter()
                .any(|n| n.to_ascii_lowercase().contains("lease"));
        if is_lease {
            let scope_end = analysis
                .innermost_scope(ev.pos)
                .map_or(f.body.end, |s| s.end);
            leases.push((ev.names.clone(), (ev.stmt_end, scope_end)));
        }
    }
    // drop(<name>) cuts a live lease short.
    for pos in find_word(cleaned, body.clone(), "drop") {
        if in_child(pos) || bytes.get(pos + 4) != Some(&b'(') {
            continue;
        }
        let arg_end = cleaned[pos + 5..body.end]
            .find(')')
            .map_or(body.end, |r| pos + 5 + r);
        let name = cleaned[pos + 5..arg_end]
            .trim()
            .trim_start_matches('&')
            .trim();
        for (names, interval) in &mut leases {
            if names.iter().any(|n| n == name) && interval.0 <= pos && pos < interval.1 {
                interval.1 = pos;
            }
        }
    }
    let lease_live =
        |pos: usize| whole_body_leased || leases.iter().any(|(_, (s, e))| *s <= pos && pos < *e);

    // Propagate taint through the events in order, producing per-identifier
    // tainted intervals.
    let mut tainted: Vec<(String, usize)> = Vec::new(); // name -> interval start
    let mut intervals: Vec<(String, Interval)> = Vec::new();
    for ev in &events {
        let rhs = &cleaned[ev.rhs.0..ev.rhs.1];
        let taints = rhs_materialises(rhs)
            || rhs_root(rhs).is_some_and(|root| tainted.iter().any(|(n, _)| n == root));
        for name in &ev.names {
            if let Some(idx) = tainted.iter().position(|(n, _)| n == name) {
                let (n, start) = tainted.swap_remove(idx);
                intervals.push((n, (start, ev.pos)));
            }
            if taints {
                tainted.push((name.clone(), ev.stmt_end));
            }
        }
    }
    for (n, start) in tainted {
        intervals.push((n, (start, body.end)));
    }

    // Flag uncovered uses inside each tainted interval.
    for (name, (start, end)) in &intervals {
        for pos in find_word(cleaned, *start..*end, name) {
            if in_child(pos) {
                continue;
            }
            let Some(how) = classify_use(cleaned, pos, pos + name.len()) else {
                continue;
            };
            if lease_live(pos) {
                continue;
            }
            out.push(TaintedUse {
                pos,
                name: name.clone(),
                how,
            });
        }
    }
}

/// Whether an RHS materialises external data into core.
fn rhs_materialises(rhs: &str) -> bool {
    rhs.contains(".load()") || rhs.contains(".load_all()") || rhs.contains(".load_range(")
}

/// The root identifier of a move/clone-shaped RHS (`x`, `&x`, `x.clone()`,
/// `x.to_vec()`), or `None` for anything more complex.
fn rhs_root(rhs: &str) -> Option<&str> {
    let mut s = rhs.trim();
    while let Some(rest) = s.strip_prefix('&') {
        s = rest.trim_start();
    }
    s = s.strip_prefix("mut ").map_or(s, str::trim_start);
    let end = s.bytes().position(|b| !is_ident_byte(b)).unwrap_or(s.len());
    if end == 0 {
        return None;
    }
    let (root, rest) = s.split_at(end);
    let rest = rest.trim();
    matches!(rest, "" | ".clone()" | ".to_vec()").then_some(root)
}

/// Parses a `let` statement starting at `pos` (the `let` keyword) into a
/// binding event. Pattern idents are everything before the first top-level
/// `:` or `=`; the RHS runs from after `=` to the statement end.
fn parse_let(cleaned: &str, pos: usize, limit: usize) -> Option<BindEvent> {
    let bytes = cleaned.as_bytes();
    let stmt_end = stmt_end(cleaned, pos, limit);
    // Find the `=` that starts the initialiser: first `=` at paren depth 0
    // that is not part of `==`/`=>`/`<=`/`>=`…
    let mut depth = 0usize;
    let mut eq: Option<usize> = None;
    let mut colon: Option<usize> = None;
    let mut i = pos + 3;
    while i < stmt_end {
        match bytes[i] {
            b'(' | b'[' | b'<' => depth += 1,
            b')' | b']' | b'>' => depth = depth.saturating_sub(1),
            b':' if depth == 0 && colon.is_none() => colon = Some(i),
            b'=' if depth == 0
                && bytes.get(i + 1) != Some(&b'=')
                && bytes.get(i + 1) != Some(&b'>')
                && !matches!(bytes[i - 1], b'=' | b'!' | b'<' | b'>') =>
            {
                eq = Some(i);
                break;
            }
            _ => {}
        }
        i += 1;
    }
    let pattern_end = colon.or(eq).unwrap_or(stmt_end.saturating_sub(1));
    let pattern = &cleaned[(pos + 3).min(pattern_end)..pattern_end];
    let names: Vec<String> = pattern
        .split(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
        .filter(|w| !w.is_empty() && *w != "mut" && *w != "ref" && *w != "_")
        .map(str::to_string)
        .collect();
    if names.is_empty() {
        return None;
    }
    let rhs = eq.map_or((stmt_end, stmt_end), |e| {
        (e + 1, stmt_end.saturating_sub(1).max(e + 1))
    });
    Some(BindEvent {
        pos,
        stmt_end,
        names,
        rhs,
    })
}

/// Finds plain `x = rhs;` assignments: an `=` whose LHS is a lone identifier
/// opening the statement.
fn find_assignments(cleaned: &str, range: std::ops::Range<usize>) -> Vec<BindEvent> {
    let bytes = cleaned.as_bytes();
    let mut out = Vec::new();
    for i in range.clone() {
        if bytes[i] != b'='
            || bytes.get(i + 1) == Some(&b'=')
            || bytes.get(i + 1) == Some(&b'>')
            || i == 0
            || matches!(
                bytes[i - 1],
                b'=' | b'!' | b'<' | b'>' | b'+' | b'-' | b'*' | b'/' | b'%' | b'&' | b'|' | b'^'
            )
        {
            continue;
        }
        // Walk back over `ident` and require a statement boundary before it.
        let mut j = i;
        while j > range.start && bytes[j - 1].is_ascii_whitespace() {
            j -= 1;
        }
        let name_end = j;
        while j > range.start && is_ident_byte(bytes[j - 1]) {
            j -= 1;
        }
        if j == name_end {
            continue;
        }
        let name = &cleaned[j..name_end];
        let mut k = j;
        while k > range.start && bytes[k - 1].is_ascii_whitespace() {
            k -= 1;
        }
        if k > range.start && !matches!(bytes[k - 1], b';' | b'{' | b'}') {
            continue;
        }
        let stmt_end = stmt_end(cleaned, i, range.end);
        out.push(BindEvent {
            pos: j,
            stmt_end,
            names: vec![name.to_string()],
            rhs: (i + 1, stmt_end.saturating_sub(1).max(i + 1)),
        });
    }
    out
}

/// Classifies the token context of an identifier occurrence as a flagged use.
fn classify_use(cleaned: &str, pos: usize, end: usize) -> Option<&'static str> {
    let rest = &cleaned[end..];
    if rest.starts_with('[') {
        return Some("indexed");
    }
    if rest.starts_with(".iter()")
        || rest.starts_with(".iter_mut()")
        || rest.starts_with(".into_iter()")
    {
        return Some("iterated");
    }
    if rest.starts_with(".sort") {
        return Some("sorted in place");
    }
    // `for … in [&[mut ]]name`
    let bytes = cleaned.as_bytes();
    let mut j = pos;
    loop {
        while j > 0 && bytes[j - 1].is_ascii_whitespace() {
            j -= 1;
        }
        if j > 0 && bytes[j - 1] == b'&' {
            j -= 1;
        } else if j >= 3 && &cleaned[j - 3..j] == "mut" && (j == 3 || !is_ident_byte(bytes[j - 4]))
        {
            j -= 3;
        } else {
            break;
        }
    }
    while j > 0 && bytes[j - 1].is_ascii_whitespace() {
        j -= 1;
    }
    if j >= 2 && &cleaned[j - 2..j] == "in" && (j == 2 || !is_ident_byte(bytes[j - 3])) {
        return Some("iterated");
    }
    None
}

/// Exclusive end of the statement containing/starting at `pos`: past the
/// first `;` outside nesting, or at the `}` closing the enclosing scope.
fn stmt_end(cleaned: &str, pos: usize, limit: usize) -> usize {
    let bytes = cleaned.as_bytes();
    let mut paren = 0usize;
    let mut brace = 0usize;
    let mut i = pos;
    while i < limit {
        match bytes[i] {
            b'(' | b'[' => paren += 1,
            b')' | b']' => paren = paren.saturating_sub(1),
            b'{' if paren == 0 => brace += 1,
            b'}' if paren == 0 => {
                if brace == 0 {
                    return i;
                }
                brace -= 1;
            }
            b';' if paren == 0 && brace == 0 => return i + 1,
            _ => {}
        }
        i += 1;
    }
    limit
}

/// The parameter-list text of `f`'s signature (between the first `(` after
/// the `fn` keyword and its matching `)`), empty for malformed input.
pub(crate) fn signature_params<'a>(cleaned: &'a str, f: &FnInfo) -> &'a str {
    let sig = &cleaned[f.sig_start..f.body.start.min(cleaned.len())];
    let Some(open) = sig.find('(') else {
        return "";
    };
    let bytes = sig.as_bytes();
    let mut depth = 0usize;
    for (i, &b) in bytes.iter().enumerate().skip(open) {
        match b {
            b'(' => depth += 1,
            b')' => {
                depth -= 1;
                if depth == 0 {
                    return &sig[open + 1..i];
                }
            }
            _ => {}
        }
    }
    &sig[open + 1..]
}

/// Word-bounded occurrences of `word` within `range` of `cleaned`.
fn find_word(cleaned: &str, range: std::ops::Range<usize>, word: &str) -> Vec<usize> {
    let bytes = cleaned.as_bytes();
    let mut out = Vec::new();
    let mut from = range.start;
    while from < range.end {
        let Some(rel) = cleaned[from..range.end].find(word) else {
            break;
        };
        let pos = from + rel;
        from = pos + 1;
        let before_ok = pos == 0 || !is_ident_byte(bytes[pos - 1]);
        let end = pos + word.len();
        let after_ok = end >= bytes.len() || !is_ident_byte(bytes[end]);
        if before_ok && after_ok {
            out.push(pos);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uses(src: &str) -> Vec<(String, &'static str)> {
        let view = SourceView::parse(src);
        let analysis = Analysis::scan(&view);
        tainted_uses(&view, &analysis)
            .into_iter()
            .map(|u| (u.name, u.how))
            .collect()
    }

    #[test]
    fn load_then_sort_without_lease_is_flagged() {
        let src = "fn f(xs: &ExtVec<u32>) {\n    let mut buf = xs.load_all();\n    buf.sort_unstable();\n}\n";
        assert_eq!(uses(src), vec![("buf".to_string(), "sorted in place")]);
    }

    #[test]
    fn live_lease_covers_later_uses_but_not_earlier_ones() {
        let ok = "fn f(m: &Machine, xs: &ExtVec<u32>) {\n    let _l = m.gauge().lease(8);\n    let buf = xs.load_all();\n    for x in &buf { use_it(x); }\n}\n";
        assert!(uses(ok).is_empty());
        let bad = "fn f(m: &Machine, xs: &ExtVec<u32>) {\n    let mut buf = xs.load_all();\n    buf.sort_unstable();\n    let _l = m.gauge().lease(8);\n}\n";
        assert_eq!(
            uses(bad).len(),
            1,
            "a lease created after the use must not cover it"
        );
    }

    #[test]
    fn taint_propagates_through_moves_and_clones() {
        let src = "fn f(xs: &ExtVec<u32>) {\n    let buf = xs.load_all();\n    let moved = buf;\n    let cloned = moved.clone();\n    let x = cloned[0];\n}\n";
        assert_eq!(uses(src), vec![("cloned".to_string(), "indexed")]);
    }

    #[test]
    fn rebinding_to_a_fresh_value_clears_taint() {
        let src = "fn f(xs: &ExtVec<u32>) {\n    let mut buf = xs.load_all();\n    buf = fresh();\n    let x = buf[0];\n}\n";
        assert!(uses(src).is_empty());
    }

    #[test]
    fn memlease_param_covers_the_whole_body() {
        let src = "fn helper(lease: &mut MemLease, xs: &ExtVec<u32>) {\n    let buf = xs.load_all();\n    let x = buf[0];\n}\n";
        assert!(uses(src).is_empty());
    }

    #[test]
    fn dropping_the_lease_revokes_coverage() {
        let src = "fn f(m: &Machine, xs: &ExtVec<u32>) {\n    let guard = m.gauge().lease(8);\n    let buf = xs.load_all();\n    drop(guard);\n    let x = buf[0];\n}\n";
        assert_eq!(uses(src), vec![("buf".to_string(), "indexed")]);
    }

    #[test]
    fn tuple_bound_lease_names_count_as_live() {
        let src = "fn f(p: &Pivots) {\n    let (chunk, lease) = p.load_chunk();\n    let buf = chunk.edges.load_all();\n    for e in &buf { g(e); }\n}\n";
        assert!(uses(src).is_empty());
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t(xs: &ExtVec<u32>) {\n        let buf = xs.load_all();\n        buf.sort_unstable();\n    }\n}\n";
        assert!(uses(src).is_empty());
    }
}
