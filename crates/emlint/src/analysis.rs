//! Brace/scope tracking over a blanked code view: function spans, test-only
//! spans, and per-function lease detection.
//!
//! This is deliberately not a Rust parser. The build container has no
//! registry access (so no `syn`); a token-level scanner with a brace stack is
//! enough to answer the two questions the rules need: *which function does a
//! byte offset belong to* and *is that offset inside test-only code*.

use crate::source::SourceView;

/// A half-open byte range of the cleaned text.
#[derive(Debug, Clone, Copy)]
pub struct Span {
    /// Inclusive start offset.
    pub start: usize,
    /// Exclusive end offset.
    pub end: usize,
}

impl Span {
    fn contains(&self, pos: usize) -> bool {
        self.start <= pos && pos < self.end
    }
}

/// One `fn` item: its signature start, its body span, and whether the span
/// mentions lease machinery.
#[derive(Debug)]
pub struct FnInfo {
    /// Offset of the `fn` keyword.
    pub sig_start: usize,
    /// Body span including the braces (end fixed up to EOF for unclosed
    /// bodies in malformed input).
    pub body: Span,
    /// Whether the signature or body mentions `.lease(`, `.lease_tagged(` or
    /// `MemLease` — the scope-holds-a-lease heuristic of rules R1/R3.
    pub holds_lease: bool,
}

/// Scope facts about one file.
#[derive(Debug)]
pub struct Analysis {
    /// Every `fn` item in source order.
    pub fns: Vec<FnInfo>,
    /// Spans of test-only items: `#[cfg(test)]`/`#[test]`-attributed items.
    pub test_spans: Vec<Span>,
    /// Every brace-delimited scope `{…}` (fn bodies, blocks, modules), each
    /// span covering both braces. Unclosed scopes extend to EOF.
    pub scopes: Vec<Span>,
}

/// What a pushed `{` opens.
#[derive(Debug, Clone, Copy)]
enum BraceKind {
    /// Body of `fns[idx]`.
    Fn(usize),
    /// Body of a test-attributed item; `test_spans[idx]`.
    TestItem(usize),
    /// Body of a test-attributed fn: both at once.
    FnTest(usize, usize),
    Plain,
}

impl Analysis {
    /// Scans the cleaned text of `view`.
    pub fn scan(view: &SourceView) -> Analysis {
        let text = view.cleaned.as_bytes();
        let mut fns: Vec<FnInfo> = Vec::new();
        let mut test_spans: Vec<Span> = Vec::new();
        let mut scopes: Vec<Span> = Vec::new();
        let mut stack: Vec<(usize, BraceKind)> = Vec::new();
        let mut pending_fn: Option<usize> = None;
        let mut pending_test: Option<usize> = None;
        let mut paren_depth = 0usize;

        let mut i = 0usize;
        while i < text.len() {
            match text[i] {
                b'#' => {
                    // Attribute: scan to the matching ], check for test
                    // markers. Inner attributes (#![…]) never mark items.
                    let inner = text.get(i + 1) == Some(&b'!');
                    let open = i + 1 + usize::from(inner);
                    if text.get(open) == Some(&b'[') {
                        let (end, body) = bracket_span(text, open);
                        if !inner && (body.contains("cfg(test") || attr_is_test(body)) {
                            pending_test.get_or_insert(i);
                        }
                        i = end;
                        continue;
                    }
                    i += 1;
                }
                b'(' => {
                    paren_depth += 1;
                    i += 1;
                }
                b')' => {
                    paren_depth = paren_depth.saturating_sub(1);
                    i += 1;
                }
                b'{' => {
                    let fn_idx = if let (Some(sig_start), 0) = (pending_fn, paren_depth) {
                        fns.push(FnInfo {
                            sig_start,
                            body: Span {
                                start: i,
                                end: text.len(),
                            },
                            holds_lease: false,
                        });
                        pending_fn = None;
                        Some(fns.len() - 1)
                    } else {
                        None
                    };
                    let test_idx = pending_test.take().map(|attr_start| {
                        test_spans.push(Span {
                            start: attr_start,
                            end: text.len(),
                        });
                        test_spans.len() - 1
                    });
                    stack.push((
                        i,
                        match (fn_idx, test_idx) {
                            (Some(f), Some(t)) => BraceKind::FnTest(f, t),
                            (Some(f), None) => BraceKind::Fn(f),
                            (None, Some(t)) => BraceKind::TestItem(t),
                            (None, None) => BraceKind::Plain,
                        },
                    ));
                    i += 1;
                }
                b'}' => {
                    match stack.pop() {
                        Some((open, BraceKind::Fn(f))) => {
                            fns[f].body.end = i + 1;
                            scopes.push(Span {
                                start: open,
                                end: i + 1,
                            });
                        }
                        Some((open, BraceKind::TestItem(t))) => {
                            test_spans[t].end = i + 1;
                            scopes.push(Span {
                                start: open,
                                end: i + 1,
                            });
                        }
                        Some((open, BraceKind::FnTest(f, t))) => {
                            fns[f].body.end = i + 1;
                            test_spans[t].end = i + 1;
                            scopes.push(Span {
                                start: open,
                                end: i + 1,
                            });
                        }
                        Some((open, BraceKind::Plain)) => {
                            scopes.push(Span {
                                start: open,
                                end: i + 1,
                            });
                        }
                        None => {}
                    }
                    i += 1;
                }
                b';' => {
                    // `fn` declarations without bodies (traits) and
                    // attribute-then-semicolon items give up their markers.
                    if paren_depth == 0 {
                        pending_fn = None;
                        pending_test = None;
                    }
                    i += 1;
                }
                b'f' if is_keyword_at(text, i, b"fn") => {
                    pending_fn = Some(i);
                    i += 2;
                }
                _ => i += 1,
            }
        }

        // Unclosed scopes (malformed input) extend to EOF.
        for (open, _) in stack {
            scopes.push(Span {
                start: open,
                end: text.len(),
            });
        }
        for f in &mut fns {
            let hay = &view.cleaned[f.sig_start..f.body.end.min(view.cleaned.len())];
            f.holds_lease = hay.contains(".lease(")
                || hay.contains(".lease_tagged(")
                || hay.contains("MemLease");
        }
        Analysis {
            fns,
            test_spans,
            scopes,
        }
    }

    /// The innermost `fn` whose signature+body contains `pos`.
    pub fn enclosing_fn(&self, pos: usize) -> Option<&FnInfo> {
        self.fns
            .iter()
            .filter(|f| f.sig_start <= pos && pos < f.body.end)
            .min_by_key(|f| f.body.end - f.sig_start)
    }

    /// Whether `pos` lies inside test-only code.
    pub fn in_test(&self, pos: usize) -> bool {
        self.test_spans.iter().any(|s| s.contains(pos))
    }

    /// The innermost brace scope containing `pos`, if any.
    pub fn innermost_scope(&self, pos: usize) -> Option<Span> {
        self.scopes
            .iter()
            .filter(|s| s.contains(pos))
            .min_by_key(|s| s.end - s.start)
            .copied()
    }
}

/// The name of `f` as declared after its `fn` keyword, read from the cleaned
/// text (`None` for malformed input).
pub fn fn_name<'a>(cleaned: &'a str, f: &FnInfo) -> Option<&'a str> {
    let bytes = cleaned.as_bytes();
    let mut i = f.sig_start + 2; // past `fn`
    while i < bytes.len() && bytes[i].is_ascii_whitespace() {
        i += 1;
    }
    let start = i;
    while i < bytes.len() && is_ident_byte(bytes[i]) {
        i += 1;
    }
    (i > start).then(|| &cleaned[start..i])
}

/// Whether the attribute body (text between `[` and `]`) marks a test fn:
/// `test`, `tokio::test`, … — the first path segment chain ends in `test`.
fn attr_is_test(body: &str) -> bool {
    let head = body.split(['(', ',', '=']).next().unwrap_or("").trim();
    head == "test" || head.ends_with("::test")
}

/// Returns the end offset of the `[...]` starting at `open` plus the inner
/// text (nested brackets respected).
fn bracket_span(text: &[u8], open: usize) -> (usize, &str) {
    let mut depth = 0usize;
    let mut i = open;
    while i < text.len() {
        match text[i] {
            b'[' => depth += 1,
            b']' => {
                depth -= 1;
                if depth == 0 {
                    let inner = std::str::from_utf8(&text[open + 1..i]).unwrap_or("");
                    return (i + 1, inner);
                }
            }
            _ => {}
        }
        i += 1;
    }
    (text.len(), "")
}

/// Whether `kw` occurs at `pos` as a standalone word.
fn is_keyword_at(text: &[u8], pos: usize, kw: &[u8]) -> bool {
    if pos + kw.len() > text.len() || &text[pos..pos + kw.len()] != kw {
        return false;
    }
    let before_ok = pos == 0 || !is_ident_byte(text[pos - 1]);
    let after_ok = pos + kw.len() == text.len() || !is_ident_byte(text[pos + kw.len()]);
    before_ok && after_ok
}

/// Whether `b` can appear in an identifier.
pub fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn analyse(src: &str) -> (SourceView, Analysis) {
        let v = SourceView::parse(src);
        let a = Analysis::scan(&v);
        (v, a)
    }

    #[test]
    fn functions_get_spans_and_lease_detection() {
        let src = "fn leased(g: &MemGauge) {\n    let _l = g.lease(10);\n    let v = vec![1];\n}\nfn bare() {\n    let v = vec![2];\n}\n";
        let (view, a) = analyse(src);
        assert_eq!(a.fns.len(), 2);
        assert!(a.fns[0].holds_lease);
        assert!(!a.fns[1].holds_lease);
        let pos = view.cleaned.find("vec![2]").unwrap();
        assert!(!a.enclosing_fn(pos).unwrap().holds_lease);
    }

    #[test]
    fn memlease_parameter_counts_as_leased_scope() {
        let src = "fn helper(lease: &mut MemLease) {\n    let v = vec![1];\n}\n";
        let (_, a) = analyse(src);
        assert!(a.fns[0].holds_lease);
    }

    #[test]
    fn cfg_test_modules_and_test_fns_are_test_spans() {
        let src = "fn prod() { let a = 1; }\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { let b = 2; }\n}\n";
        let (view, a) = analyse(src);
        let a_pos = view.cleaned.find("let a").unwrap();
        let b_pos = view.cleaned.find("let b").unwrap();
        assert!(!a.in_test(a_pos));
        assert!(a.in_test(b_pos));
    }

    #[test]
    fn nested_fns_attribute_to_the_innermost() {
        let src =
            "fn outer() {\n    let _l = m.gauge().lease(1);\n    fn inner() { let v = 1; }\n}\n";
        let (view, a) = analyse(src);
        let pos = view.cleaned.find("let v").unwrap();
        let f = a.enclosing_fn(pos).unwrap();
        assert!(!f.holds_lease, "inner fn must not inherit the outer lease");
    }

    #[test]
    fn scopes_record_every_brace_pair_and_query_innermost() {
        let src = "fn f() {\n    if x {\n        g();\n    }\n    h();\n}\n";
        let (view, a) = analyse(src);
        assert_eq!(a.scopes.len(), 2);
        let g_pos = view.cleaned.find("g()").unwrap();
        let h_pos = view.cleaned.find("h()").unwrap();
        let inner = a.innermost_scope(g_pos).unwrap();
        let outer = a.innermost_scope(h_pos).unwrap();
        assert!(inner.start > outer.start && inner.end < outer.end);
    }

    #[test]
    fn fn_names_are_read_from_signatures() {
        let src = "fn alpha() {}\npub(crate) fn beta_2(x: u32) -> u32 { x }\n";
        let (view, a) = analyse(src);
        assert_eq!(fn_name(&view.cleaned, &a.fns[0]), Some("alpha"));
        assert_eq!(fn_name(&view.cleaned, &a.fns[1]), Some("beta_2"));
    }

    #[test]
    fn trait_method_declarations_do_not_leak_pending_fn() {
        let src =
            "trait T { fn a(&self); }\nstruct S;\nimpl T for S { fn a(&self) { let x = 1; } }\n";
        let (view, a) = analyse(src);
        assert_eq!(a.fns.len(), 1);
        let pos = view.cleaned.find("let x").unwrap();
        assert!(a.enclosing_fn(pos).is_some());
    }
}
