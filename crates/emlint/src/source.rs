//! The token-level *code view* of a Rust source file.
//!
//! [`SourceView::parse`] runs a small lexer over the raw text and produces a
//! same-length copy in which every comment, string literal, char literal and
//! non-ASCII character is blanked out (newlines preserved), so the rule
//! engine can pattern-match code without tripping over `"sort_unstable"` in
//! a doc comment. Waiver comments (`// emlint: allow(rule, reason = "…")`)
//! and charge annotations (`// emlint: charge(work, <expr>)`) are collected
//! on the way, each resolved to the code *statement* it covers: an own-line
//! comment covers every physical line of the following statement (rustfmt
//! wrapping a call across lines must not strand the waiver on line one).

/// A parsed waiver comment.
#[derive(Debug, Clone)]
pub struct Waiver {
    /// 1-based line of the comment itself.
    pub comment_line: usize,
    /// 1-based first code line the waiver covers: the comment's own line if
    /// code precedes the comment, otherwise the next line carrying code.
    /// `0` when no such line exists (covers nothing; always stale).
    pub target_line: usize,
    /// 1-based last covered line: for an own-line comment, the last physical
    /// line of the statement starting on `target_line`; for a trailing
    /// comment, the comment's own line.
    pub target_end: usize,
    /// The rule slug inside `allow(...)` (e.g. `unleased`).
    pub rule: String,
    /// The quoted `reason = "..."` text, if present and non-empty.
    pub reason: Option<String>,
    /// Set when the comment mentions `emlint:` but does not parse as
    /// `allow(<slug>[, reason = "…"])`.
    pub malformed: bool,
}

impl Waiver {
    /// Whether the waiver covers 1-based `line`.
    pub fn covers(&self, line: usize) -> bool {
        self.target_line <= line && line <= self.target_end
    }
}

/// A parsed `// emlint: charge(<kind>, <expr>)` annotation: the statement it
/// covers performs `<expr>` units of `<kind>` that are charged by an adjacent
/// call in the same block (verified by rule R6).
#[derive(Debug, Clone)]
pub struct ChargeAnnotation {
    /// 1-based line of the comment itself.
    pub comment_line: usize,
    /// First covered code line (resolution as for [`Waiver::target_line`]).
    pub target_line: usize,
    /// Last covered line of the annotated statement.
    pub target_end: usize,
    /// The charge kind (`work` is the only known kind).
    pub kind: String,
    /// The declared charge expression, verbatim (whitespace-normalised when
    /// R6 compares it against `machine.work(…)` call arguments).
    pub expr: String,
    /// Set when the comment says `emlint:` + `charge(` but does not parse as
    /// `charge(<kind>, <expr>)`.
    pub malformed: bool,
}

impl ChargeAnnotation {
    /// Whether the annotation covers 1-based `line`.
    pub fn covers(&self, line: usize) -> bool {
        self.target_line <= line && line <= self.target_end
    }
}

/// The blanked code view of one file plus its waivers.
#[derive(Debug)]
pub struct SourceView {
    /// ASCII-only text, same line structure as the input, with comments,
    /// string/char literal contents and non-ASCII characters blanked.
    pub cleaned: String,
    /// Byte offset of the start of each (0-based) line in `cleaned`.
    pub line_starts: Vec<usize>,
    /// Every `emlint:` waiver comment found.
    pub waivers: Vec<Waiver>,
    /// Every `emlint: charge(…)` annotation found.
    pub charges: Vec<ChargeAnnotation>,
}

impl SourceView {
    /// Lexes `text` into a code view.
    pub fn parse(text: &str) -> SourceView {
        let chars: Vec<char> = text.chars().collect();
        let mut cleaned = String::with_capacity(chars.len());
        // (line, comment text) of every line comment, captured for waivers.
        let mut comments: Vec<(usize, String)> = Vec::new();
        let mut line = 1usize;

        let mut i = 0usize;
        while i < chars.len() {
            let c = chars[i];
            let next = chars.get(i + 1).copied();
            match c {
                '\n' => {
                    cleaned.push('\n');
                    line += 1;
                    i += 1;
                }
                '/' if next == Some('/') => {
                    // Line comment: capture text, blank it.
                    let start_line = line;
                    let mut text = String::new();
                    while i < chars.len() && chars[i] != '\n' {
                        text.push(chars[i]);
                        cleaned.push(' ');
                        i += 1;
                    }
                    comments.push((start_line, text));
                }
                '/' if next == Some('*') => {
                    // Block comment, possibly nested.
                    let mut depth = 1u32;
                    cleaned.push(' ');
                    cleaned.push(' ');
                    i += 2;
                    while i < chars.len() && depth > 0 {
                        if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                            depth += 1;
                            cleaned.push(' ');
                            cleaned.push(' ');
                            i += 2;
                        } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                            depth -= 1;
                            cleaned.push(' ');
                            cleaned.push(' ');
                            i += 2;
                        } else {
                            if chars[i] == '\n' {
                                cleaned.push('\n');
                                line += 1;
                            } else {
                                cleaned.push(' ');
                            }
                            i += 1;
                        }
                    }
                }
                '"' => {
                    i = Self::blank_string(&chars, i, &mut cleaned, &mut line);
                }
                'r' | 'b' if Self::starts_raw_or_byte_literal(&chars, i, &cleaned) => {
                    i = Self::blank_prefixed_literal(&chars, i, &mut cleaned, &mut line);
                }
                '\'' => {
                    i = Self::blank_char_or_lifetime(&chars, i, &mut cleaned);
                }
                c if c.is_ascii() => {
                    cleaned.push(c);
                    i += 1;
                }
                _ => {
                    // Non-ASCII in code position (identifiers here are ASCII);
                    // blank to a non-identifier placeholder so byte offsets
                    // stay aligned with char offsets.
                    cleaned.push('~');
                    i += 1;
                }
            }
        }

        let line_starts = std::iter::once(0)
            .chain(
                cleaned
                    .bytes()
                    .enumerate()
                    .filter(|(_, b)| *b == b'\n')
                    .map(|(o, _)| o + 1),
            )
            .collect::<Vec<_>>();

        let mut view = SourceView {
            cleaned,
            line_starts,
            waivers: Vec::new(),
            charges: Vec::new(),
        };
        for (l, text) in &comments {
            let Some(after) = text.split("emlint:").nth(1) else {
                continue;
            };
            if after.trim_start().starts_with("charge(") {
                let c = view.parse_charge(*l, after.trim_start());
                view.charges.push(c);
            } else {
                let w = view.parse_waiver(*l, text);
                view.waivers.push(w);
            }
        }
        view
    }

    /// 1-based line containing byte offset `pos` of `cleaned`.
    pub fn line_of(&self, pos: usize) -> usize {
        self.line_starts.partition_point(|&s| s <= pos)
    }

    /// The cleaned text of 1-based `line` (empty if out of range).
    pub fn cleaned_line(&self, line: usize) -> &str {
        let Some(&start) = self.line_starts.get(line - 1) else {
            return "";
        };
        let end = self
            .line_starts
            .get(line)
            .map_or(self.cleaned.len(), |&next| next - 1);
        &self.cleaned[start..end]
    }

    fn parse_waiver(&self, comment_line: usize, text: &str) -> Waiver {
        let (target_line, target_end) = self.target_range(comment_line);
        let mut w = Waiver {
            comment_line,
            target_line,
            target_end,
            rule: String::new(),
            reason: None,
            malformed: true,
        };
        let Some(after) = text.split("emlint:").nth(1) else {
            return w;
        };
        let after = after.trim_start();
        let Some(args) = after
            .strip_prefix("allow(")
            .and_then(|rest| rest.rfind(')').map(|end| &rest[..end]))
        else {
            return w;
        };
        let (slug, rest) = match args.split_once(',') {
            Some((s, r)) => (s.trim(), r.trim()),
            None => (args.trim(), ""),
        };
        if slug.is_empty() || !slug.chars().all(|c| c.is_ascii_alphanumeric() || c == '-') {
            return w;
        }
        w.rule = slug.to_string();
        if !rest.is_empty() {
            let Some(quoted) = rest
                .strip_prefix("reason")
                .map(str::trim_start)
                .and_then(|r| r.strip_prefix('='))
                .map(str::trim_start)
                .and_then(|r| r.strip_prefix('"'))
                .and_then(|r| r.rfind('"').map(|end| &r[..end]))
            else {
                return w; // anything but a well-formed reason is malformed
            };
            if !quoted.trim().is_empty() {
                w.reason = Some(quoted.trim().to_string());
            }
        }
        w.malformed = false;
        w
    }

    /// Parses the args of `// emlint: charge(<kind>, <expr>)`; `after` is the
    /// comment tail starting at `charge(`.
    fn parse_charge(&self, comment_line: usize, after: &str) -> ChargeAnnotation {
        let (target_line, target_end) = self.target_range(comment_line);
        let mut c = ChargeAnnotation {
            comment_line,
            target_line,
            target_end,
            kind: String::new(),
            expr: String::new(),
            malformed: true,
        };
        let Some(args) = after
            .strip_prefix("charge(")
            .and_then(|rest| rest.rfind(')').map(|end| &rest[..end]))
        else {
            return c;
        };
        let Some((kind, expr)) = args.split_once(',') else {
            return c;
        };
        let (kind, expr) = (kind.trim(), expr.trim());
        if kind.is_empty()
            || expr.is_empty()
            || !kind
                .chars()
                .all(|ch| ch.is_ascii_alphanumeric() || ch == '-')
        {
            return c;
        }
        c.kind = kind.to_string();
        c.expr = expr.to_string();
        c.malformed = false;
        c
    }

    /// The inclusive line range an `emlint:` comment on `comment_line`
    /// covers: `(0, 0)` when no code follows, the comment's own line for a
    /// trailing comment, or the full statement starting on the next code
    /// line for an own-line comment.
    fn target_range(&self, comment_line: usize) -> (usize, usize) {
        // Trailing comment: code on the same line, before the comment.
        if !self.cleaned_line(comment_line).trim().is_empty() {
            return (comment_line, comment_line);
        }
        // Own-line comment: the next line carrying code, extended to the end
        // of the statement that starts there.
        match ((comment_line + 1)..=self.line_starts.len())
            .find(|&l| !self.cleaned_line(l).trim().is_empty())
        {
            Some(start) => (start, self.statement_end_line(start)),
            None => (0, 0),
        }
    }

    /// The 1-based last line of the statement that starts on `start_line`:
    /// scans forward to the first `;` outside any nesting, the `}` closing a
    /// statement-level block with no continuation (`else`, `;`, `.`, `?`),
    /// or the `}` closing the enclosing scope.
    pub fn statement_end_line(&self, start_line: usize) -> usize {
        let Some(&line_start) = self.line_starts.get(start_line.wrapping_sub(1)) else {
            return start_line;
        };
        let bytes = self.cleaned.as_bytes();
        let mut paren = 0usize; // () and [] nesting (closures live here)
        let mut brace = 0usize; // {} nesting outside parens
        let mut i = line_start;
        while i < bytes.len() {
            match bytes[i] {
                b'(' | b'[' => paren += 1,
                b')' | b']' => paren = paren.saturating_sub(1),
                b'{' if paren == 0 => brace += 1,
                b'}' if paren == 0 => {
                    if brace == 0 {
                        // Closing the scope the statement lives in.
                        return self.line_of(i.max(line_start));
                    }
                    brace -= 1;
                    if brace == 0 && !self.statement_continues(i + 1) {
                        return self.line_of(i);
                    }
                }
                b';' if paren == 0 && brace == 0 => return self.line_of(i),
                _ => {}
            }
            i += 1;
        }
        self.line_of(bytes.len().saturating_sub(1).max(line_start))
    }

    /// After a statement-level `}` at offset `i`: whether the statement keeps
    /// going (`let x = match … {…};`, `if … {…} else {…}`, method chains).
    fn statement_continues(&self, mut i: usize) -> bool {
        let bytes = self.cleaned.as_bytes();
        while i < bytes.len() && bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        match bytes.get(i) {
            Some(b';') | Some(b'.') | Some(b'?') => true,
            Some(b'e') => self.cleaned[i..].starts_with("else"),
            _ => false,
        }
    }

    fn blank_string(chars: &[char], mut i: usize, cleaned: &mut String, line: &mut usize) -> usize {
        cleaned.push(' '); // opening quote
        i += 1;
        while i < chars.len() {
            match chars[i] {
                '\\' => {
                    cleaned.push(' ');
                    if i + 1 < chars.len() {
                        if chars[i + 1] == '\n' {
                            cleaned.push('\n');
                            *line += 1;
                        } else {
                            cleaned.push(' ');
                        }
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                '"' => {
                    cleaned.push(' ');
                    return i + 1;
                }
                '\n' => {
                    cleaned.push('\n');
                    *line += 1;
                    i += 1;
                }
                _ => {
                    cleaned.push(' ');
                    i += 1;
                }
            }
        }
        i
    }

    /// Whether position `i` (an `r` or `b`) starts a raw/byte string or byte
    /// char literal rather than an identifier like `radius` or `b1`.
    fn starts_raw_or_byte_literal(chars: &[char], i: usize, cleaned: &str) -> bool {
        if cleaned
            .bytes()
            .last()
            .is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_')
        {
            return false; // the r/b continues an identifier
        }
        let mut j = i + 1;
        if chars[i] == 'b' && chars.get(j) == Some(&'r') {
            j += 1;
        }
        while chars.get(j) == Some(&'#') {
            j += 1;
        }
        matches!(chars.get(j), Some('"')) || (chars[i] == 'b' && chars.get(i + 1) == Some(&'\''))
    }

    /// Blanks `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#` or `b'…'` starting at `i`.
    fn blank_prefixed_literal(
        chars: &[char],
        mut i: usize,
        cleaned: &mut String,
        line: &mut usize,
    ) -> usize {
        if chars[i] == 'b' && chars.get(i + 1) == Some(&'\'') {
            cleaned.push(' ');
            return Self::blank_char_or_lifetime(chars, i + 1, cleaned);
        }
        let mut hashes = 0usize;
        let raw = {
            let mut j = i;
            cleaned.push(' ');
            j += 1; // consume r or b
            if chars.get(j) == Some(&'r') {
                cleaned.push(' ');
                j += 1;
            }
            while chars.get(j) == Some(&'#') {
                cleaned.push(' ');
                hashes += 1;
                j += 1;
            }
            j
        };
        i = raw;
        if chars.get(i) != Some(&'"') {
            return i; // defensive: not actually a literal
        }
        if hashes == 0 && chars[i.saturating_sub(1)] != 'r' && chars[i - 1] != '#' {
            // b"…" — ordinary escapes apply.
            return Self::blank_string(chars, i, cleaned, line);
        }
        cleaned.push(' ');
        i += 1;
        while i < chars.len() {
            if chars[i] == '"' {
                let mut ok = true;
                for k in 0..hashes {
                    if chars.get(i + 1 + k) != Some(&'#') {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    for _ in 0..=hashes {
                        cleaned.push(' ');
                    }
                    return i + 1 + hashes;
                }
            }
            if chars[i] == '\n' {
                cleaned.push('\n');
                *line += 1;
            } else {
                cleaned.push(' ');
            }
            i += 1;
        }
        i
    }

    /// Blanks a char literal starting at the `'` at `i`, or passes a lifetime
    /// through untouched.
    fn blank_char_or_lifetime(chars: &[char], i: usize, cleaned: &mut String) -> usize {
        let is_char_literal = match chars.get(i + 1) {
            Some('\\') => true,
            Some(_) => chars.get(i + 2) == Some(&'\''),
            None => false,
        };
        if !is_char_literal {
            cleaned.push('\''); // lifetime: keep, it breaks no patterns
            return i + 1;
        }
        cleaned.push(' ');
        let mut j = i + 1;
        while j < chars.len() {
            match chars[j] {
                '\\' => {
                    cleaned.push(' ');
                    if j + 1 < chars.len() {
                        cleaned.push(' ');
                    }
                    j += 2;
                }
                '\'' => {
                    cleaned.push(' ');
                    return j + 1;
                }
                _ => {
                    cleaned.push(' ');
                    j += 1;
                }
            }
        }
        j
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_are_blanked() {
        let v = SourceView::parse("let x = \"sort_unstable\"; // HashMap\nlet y = 1;\n");
        assert!(!v.cleaned.contains("sort_unstable"));
        assert!(!v.cleaned.contains("HashMap"));
        assert!(v.cleaned.contains("let x ="));
        assert!(v.cleaned.contains("let y = 1;"));
    }

    #[test]
    fn line_structure_is_preserved() {
        let src = "a\n\"two\nlines\"\n/* block\ncomment */\nb\n";
        let v = SourceView::parse(src);
        assert_eq!(
            v.cleaned.matches('\n').count(),
            src.matches('\n').count(),
            "newline count must survive blanking"
        );
        assert_eq!(v.line_of(v.cleaned.find('b').unwrap()), 6);
    }

    #[test]
    fn raw_strings_and_char_literals_are_blanked_lifetimes_kept() {
        let v = SourceView::parse("let s = r#\"vec![]\"#; let c = 'v'; fn f<'a>(x: &'a u32) {}");
        assert!(!v.cleaned.contains("vec!["));
        assert!(!v.cleaned.contains("'v'"));
        assert!(v.cleaned.contains("<'a>"));
        assert!(v.cleaned.contains("&'a u32"));
    }

    #[test]
    fn trailing_waiver_targets_its_own_line() {
        let src = "let v = vec![1]; // emlint: allow(unleased, reason = \"test scratch\")\n";
        let v = SourceView::parse(src);
        assert_eq!(v.waivers.len(), 1);
        let w = &v.waivers[0];
        assert_eq!((w.target_line, w.target_end), (1, 1));
        assert_eq!(w.rule, "unleased");
        assert_eq!(w.reason.as_deref(), Some("test scratch"));
        assert!(!w.malformed);
    }

    #[test]
    fn own_line_waiver_targets_next_code_line() {
        let src = "// emlint: allow(uncharged-std, reason = \"why\")\n\nlet m = HashMap::new();\n";
        let v = SourceView::parse(src);
        assert_eq!(v.waivers[0].target_line, 3);
        assert_eq!(v.waivers[0].target_end, 3);
    }

    #[test]
    fn own_line_waiver_covers_the_whole_wrapped_statement() {
        let src = "// emlint: allow(unleased, reason = \"why\")\nlet merged: Vec<u32> =\n    merge(a,\n          b);\nlet next = 1;\n";
        let v = SourceView::parse(src);
        let w = &v.waivers[0];
        assert_eq!((w.target_line, w.target_end), (2, 4));
        assert!(w.covers(3));
        assert!(!w.covers(5));
    }

    #[test]
    fn statement_extent_handles_blocks_and_continuations() {
        let v = SourceView::parse("let x = match y {\n    0 => 1,\n    _ => 2,\n};\nlet z = 3;\n");
        assert_eq!(v.statement_end_line(1), 4);
        let v = SourceView::parse("for e in es {\n    f(e);\n}\nlet z = 3;\n");
        assert_eq!(v.statement_end_line(1), 3);
        // A closing brace right away: the statement never left its line.
        let v = SourceView::parse("fn f() {\n    g();\n}\n");
        assert_eq!(v.statement_end_line(2), 2);
    }

    #[test]
    fn charge_annotations_parse_and_cover_their_statement() {
        let src =
            "// emlint: charge(work, n as u64 * 6)\nbuf.sort_unstable_by_key(\n    |e| e.0);\n";
        let v = SourceView::parse(src);
        assert!(v.waivers.is_empty());
        assert_eq!(v.charges.len(), 1);
        let c = &v.charges[0];
        assert!(!c.malformed);
        assert_eq!(c.kind, "work");
        assert_eq!(c.expr, "n as u64 * 6");
        assert_eq!((c.target_line, c.target_end), (2, 3));
        let v = SourceView::parse("// emlint: charge(work)\nlet x = 1;\n");
        assert!(v.charges[0].malformed);
    }

    #[test]
    fn missing_reason_and_malformed_waivers_are_recognised() {
        let v = SourceView::parse("// emlint: allow(unleased)\nlet x = 1;\n");
        assert!(!v.waivers[0].malformed);
        assert!(v.waivers[0].reason.is_none());
        let v = SourceView::parse("// emlint: allow(unleased, reason = \"\")\nlet x = 1;\n");
        assert!(v.waivers[0].reason.is_none());
        let v = SourceView::parse("// emlint: disallow everything\nlet x = 1;\n");
        assert!(v.waivers[0].malformed);
    }
}
