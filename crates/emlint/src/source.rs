//! The token-level *code view* of a Rust source file.
//!
//! [`SourceView::parse`] runs a small lexer over the raw text and produces a
//! same-length copy in which every comment, string literal, char literal and
//! non-ASCII character is blanked out (newlines preserved), so the rule
//! engine can pattern-match code without tripping over `"sort_unstable"` in
//! a doc comment. Waiver comments (`// emlint: allow(rule, reason = "…")`)
//! are collected on the way, each resolved to the code line it covers.

/// A parsed waiver comment.
#[derive(Debug, Clone)]
pub struct Waiver {
    /// 1-based line of the comment itself.
    pub comment_line: usize,
    /// 1-based code line the waiver covers: the comment's own line if code
    /// precedes the comment, otherwise the next line carrying code. `None`
    /// when no such line exists (always stale).
    pub target_line: Option<usize>,
    /// The rule slug inside `allow(...)` (e.g. `unleased`).
    pub rule: String,
    /// The quoted `reason = "..."` text, if present and non-empty.
    pub reason: Option<String>,
    /// Set when the comment mentions `emlint:` but does not parse as
    /// `allow(<slug>[, reason = "…"])`.
    pub malformed: bool,
}

/// The blanked code view of one file plus its waivers.
#[derive(Debug)]
pub struct SourceView {
    /// ASCII-only text, same line structure as the input, with comments,
    /// string/char literal contents and non-ASCII characters blanked.
    pub cleaned: String,
    /// Byte offset of the start of each (0-based) line in `cleaned`.
    pub line_starts: Vec<usize>,
    /// Every `emlint:` waiver comment found.
    pub waivers: Vec<Waiver>,
}

impl SourceView {
    /// Lexes `text` into a code view.
    pub fn parse(text: &str) -> SourceView {
        let chars: Vec<char> = text.chars().collect();
        let mut cleaned = String::with_capacity(chars.len());
        // (line, comment text) of every line comment, captured for waivers.
        let mut comments: Vec<(usize, String)> = Vec::new();
        let mut line = 1usize;

        let mut i = 0usize;
        while i < chars.len() {
            let c = chars[i];
            let next = chars.get(i + 1).copied();
            match c {
                '\n' => {
                    cleaned.push('\n');
                    line += 1;
                    i += 1;
                }
                '/' if next == Some('/') => {
                    // Line comment: capture text, blank it.
                    let start_line = line;
                    let mut text = String::new();
                    while i < chars.len() && chars[i] != '\n' {
                        text.push(chars[i]);
                        cleaned.push(' ');
                        i += 1;
                    }
                    comments.push((start_line, text));
                }
                '/' if next == Some('*') => {
                    // Block comment, possibly nested.
                    let mut depth = 1u32;
                    cleaned.push(' ');
                    cleaned.push(' ');
                    i += 2;
                    while i < chars.len() && depth > 0 {
                        if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                            depth += 1;
                            cleaned.push(' ');
                            cleaned.push(' ');
                            i += 2;
                        } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                            depth -= 1;
                            cleaned.push(' ');
                            cleaned.push(' ');
                            i += 2;
                        } else {
                            if chars[i] == '\n' {
                                cleaned.push('\n');
                                line += 1;
                            } else {
                                cleaned.push(' ');
                            }
                            i += 1;
                        }
                    }
                }
                '"' => {
                    i = Self::blank_string(&chars, i, &mut cleaned, &mut line);
                }
                'r' | 'b' if Self::starts_raw_or_byte_literal(&chars, i, &cleaned) => {
                    i = Self::blank_prefixed_literal(&chars, i, &mut cleaned, &mut line);
                }
                '\'' => {
                    i = Self::blank_char_or_lifetime(&chars, i, &mut cleaned);
                }
                c if c.is_ascii() => {
                    cleaned.push(c);
                    i += 1;
                }
                _ => {
                    // Non-ASCII in code position (identifiers here are ASCII);
                    // blank to a non-identifier placeholder so byte offsets
                    // stay aligned with char offsets.
                    cleaned.push('~');
                    i += 1;
                }
            }
        }

        let line_starts = std::iter::once(0)
            .chain(
                cleaned
                    .bytes()
                    .enumerate()
                    .filter(|(_, b)| *b == b'\n')
                    .map(|(o, _)| o + 1),
            )
            .collect::<Vec<_>>();

        let mut view = SourceView {
            cleaned,
            line_starts,
            waivers: Vec::new(),
        };
        view.waivers = comments
            .iter()
            .filter(|(_, text)| text.contains("emlint:"))
            .map(|(l, text)| view.parse_waiver(*l, text))
            .collect();
        view
    }

    /// 1-based line containing byte offset `pos` of `cleaned`.
    pub fn line_of(&self, pos: usize) -> usize {
        self.line_starts.partition_point(|&s| s <= pos)
    }

    /// The cleaned text of 1-based `line` (empty if out of range).
    pub fn cleaned_line(&self, line: usize) -> &str {
        let Some(&start) = self.line_starts.get(line - 1) else {
            return "";
        };
        let end = self
            .line_starts
            .get(line)
            .map_or(self.cleaned.len(), |&next| next - 1);
        &self.cleaned[start..end]
    }

    fn parse_waiver(&self, comment_line: usize, text: &str) -> Waiver {
        let mut w = Waiver {
            comment_line,
            target_line: self.waiver_target(comment_line),
            rule: String::new(),
            reason: None,
            malformed: true,
        };
        let Some(after) = text.split("emlint:").nth(1) else {
            return w;
        };
        let after = after.trim_start();
        let Some(args) = after
            .strip_prefix("allow(")
            .and_then(|rest| rest.rfind(')').map(|end| &rest[..end]))
        else {
            return w;
        };
        let (slug, rest) = match args.split_once(',') {
            Some((s, r)) => (s.trim(), r.trim()),
            None => (args.trim(), ""),
        };
        if slug.is_empty() || !slug.chars().all(|c| c.is_ascii_alphanumeric() || c == '-') {
            return w;
        }
        w.rule = slug.to_string();
        if !rest.is_empty() {
            let Some(quoted) = rest
                .strip_prefix("reason")
                .map(str::trim_start)
                .and_then(|r| r.strip_prefix('='))
                .map(str::trim_start)
                .and_then(|r| r.strip_prefix('"'))
                .and_then(|r| r.rfind('"').map(|end| &r[..end]))
            else {
                return w; // anything but a well-formed reason is malformed
            };
            if !quoted.trim().is_empty() {
                w.reason = Some(quoted.trim().to_string());
            }
        }
        w.malformed = false;
        w
    }

    /// The code line a waiver comment on `comment_line` covers.
    fn waiver_target(&self, comment_line: usize) -> Option<usize> {
        // Trailing comment: code on the same line, before the comment.
        if !self.cleaned_line(comment_line).trim().is_empty() {
            return Some(comment_line);
        }
        // Own-line comment: the next line carrying code.
        ((comment_line + 1)..=self.line_starts.len())
            .find(|&l| !self.cleaned_line(l).trim().is_empty())
    }

    fn blank_string(chars: &[char], mut i: usize, cleaned: &mut String, line: &mut usize) -> usize {
        cleaned.push(' '); // opening quote
        i += 1;
        while i < chars.len() {
            match chars[i] {
                '\\' => {
                    cleaned.push(' ');
                    if i + 1 < chars.len() {
                        if chars[i + 1] == '\n' {
                            cleaned.push('\n');
                            *line += 1;
                        } else {
                            cleaned.push(' ');
                        }
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                '"' => {
                    cleaned.push(' ');
                    return i + 1;
                }
                '\n' => {
                    cleaned.push('\n');
                    *line += 1;
                    i += 1;
                }
                _ => {
                    cleaned.push(' ');
                    i += 1;
                }
            }
        }
        i
    }

    /// Whether position `i` (an `r` or `b`) starts a raw/byte string or byte
    /// char literal rather than an identifier like `radius` or `b1`.
    fn starts_raw_or_byte_literal(chars: &[char], i: usize, cleaned: &str) -> bool {
        if cleaned
            .bytes()
            .last()
            .is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_')
        {
            return false; // the r/b continues an identifier
        }
        let mut j = i + 1;
        if chars[i] == 'b' && chars.get(j) == Some(&'r') {
            j += 1;
        }
        while chars.get(j) == Some(&'#') {
            j += 1;
        }
        matches!(chars.get(j), Some('"')) || (chars[i] == 'b' && chars.get(i + 1) == Some(&'\''))
    }

    /// Blanks `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#` or `b'…'` starting at `i`.
    fn blank_prefixed_literal(
        chars: &[char],
        mut i: usize,
        cleaned: &mut String,
        line: &mut usize,
    ) -> usize {
        if chars[i] == 'b' && chars.get(i + 1) == Some(&'\'') {
            cleaned.push(' ');
            return Self::blank_char_or_lifetime(chars, i + 1, cleaned);
        }
        let mut hashes = 0usize;
        let raw = {
            let mut j = i;
            cleaned.push(' ');
            j += 1; // consume r or b
            if chars.get(j) == Some(&'r') {
                cleaned.push(' ');
                j += 1;
            }
            while chars.get(j) == Some(&'#') {
                cleaned.push(' ');
                hashes += 1;
                j += 1;
            }
            j
        };
        i = raw;
        if chars.get(i) != Some(&'"') {
            return i; // defensive: not actually a literal
        }
        if hashes == 0 && chars[i.saturating_sub(1)] != 'r' && chars[i - 1] != '#' {
            // b"…" — ordinary escapes apply.
            return Self::blank_string(chars, i, cleaned, line);
        }
        cleaned.push(' ');
        i += 1;
        while i < chars.len() {
            if chars[i] == '"' {
                let mut ok = true;
                for k in 0..hashes {
                    if chars.get(i + 1 + k) != Some(&'#') {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    for _ in 0..=hashes {
                        cleaned.push(' ');
                    }
                    return i + 1 + hashes;
                }
            }
            if chars[i] == '\n' {
                cleaned.push('\n');
                *line += 1;
            } else {
                cleaned.push(' ');
            }
            i += 1;
        }
        i
    }

    /// Blanks a char literal starting at the `'` at `i`, or passes a lifetime
    /// through untouched.
    fn blank_char_or_lifetime(chars: &[char], i: usize, cleaned: &mut String) -> usize {
        let is_char_literal = match chars.get(i + 1) {
            Some('\\') => true,
            Some(_) => chars.get(i + 2) == Some(&'\''),
            None => false,
        };
        if !is_char_literal {
            cleaned.push('\''); // lifetime: keep, it breaks no patterns
            return i + 1;
        }
        cleaned.push(' ');
        let mut j = i + 1;
        while j < chars.len() {
            match chars[j] {
                '\\' => {
                    cleaned.push(' ');
                    if j + 1 < chars.len() {
                        cleaned.push(' ');
                    }
                    j += 2;
                }
                '\'' => {
                    cleaned.push(' ');
                    return j + 1;
                }
                _ => {
                    cleaned.push(' ');
                    j += 1;
                }
            }
        }
        j
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_are_blanked() {
        let v = SourceView::parse("let x = \"sort_unstable\"; // HashMap\nlet y = 1;\n");
        assert!(!v.cleaned.contains("sort_unstable"));
        assert!(!v.cleaned.contains("HashMap"));
        assert!(v.cleaned.contains("let x ="));
        assert!(v.cleaned.contains("let y = 1;"));
    }

    #[test]
    fn line_structure_is_preserved() {
        let src = "a\n\"two\nlines\"\n/* block\ncomment */\nb\n";
        let v = SourceView::parse(src);
        assert_eq!(
            v.cleaned.matches('\n').count(),
            src.matches('\n').count(),
            "newline count must survive blanking"
        );
        assert_eq!(v.line_of(v.cleaned.find('b').unwrap()), 6);
    }

    #[test]
    fn raw_strings_and_char_literals_are_blanked_lifetimes_kept() {
        let v = SourceView::parse("let s = r#\"vec![]\"#; let c = 'v'; fn f<'a>(x: &'a u32) {}");
        assert!(!v.cleaned.contains("vec!["));
        assert!(!v.cleaned.contains("'v'"));
        assert!(v.cleaned.contains("<'a>"));
        assert!(v.cleaned.contains("&'a u32"));
    }

    #[test]
    fn trailing_waiver_targets_its_own_line() {
        let src = "let v = vec![1]; // emlint: allow(unleased, reason = \"test scratch\")\n";
        let v = SourceView::parse(src);
        assert_eq!(v.waivers.len(), 1);
        let w = &v.waivers[0];
        assert_eq!(w.target_line, Some(1));
        assert_eq!(w.rule, "unleased");
        assert_eq!(w.reason.as_deref(), Some("test scratch"));
        assert!(!w.malformed);
    }

    #[test]
    fn own_line_waiver_targets_next_code_line() {
        let src = "// emlint: allow(uncharged-std, reason = \"why\")\n\nlet m = HashMap::new();\n";
        let v = SourceView::parse(src);
        assert_eq!(v.waivers[0].target_line, Some(3));
    }

    #[test]
    fn missing_reason_and_malformed_waivers_are_recognised() {
        let v = SourceView::parse("// emlint: allow(unleased)\nlet x = 1;\n");
        assert!(!v.waivers[0].malformed);
        assert!(v.waivers[0].reason.is_none());
        let v = SourceView::parse("// emlint: allow(unleased, reason = \"\")\nlet x = 1;\n");
        assert!(v.waivers[0].reason.is_none());
        let v = SourceView::parse("// emlint: disallow everything\nlet x = 1;\n");
        assert!(v.waivers[0].malformed);
    }
}
