//! In-memory triangle oracle used to verify the external-memory algorithms.
//!
//! This is the standard "forward" / node-iterator algorithm over the
//! degree-ordered orientation: for every edge `(u, v)` with `u < v` in degree
//! order, intersect the higher-ordered neighbourhoods of `u` and `v`. It runs
//! in `O(E^{3/2})` time in memory, which is plenty for the laptop-scale
//! instances the experiments use, and is independent of all the code under
//! test (no shared subroutines), making it a credible oracle.

use std::collections::HashMap;

use crate::{Graph, Triangle, VertexId};

/// Enumerates every triangle of `g`, returned as canonical [`Triangle`]s in
/// unspecified order (no duplicates).
pub fn enumerate_triangles(g: &Graph) -> Vec<Triangle> {
    let mut out = Vec::new();
    for_each_triangle(g, |t| out.push(t));
    out
}

/// Counts the triangles of `g`.
pub fn count_triangles(g: &Graph) -> u64 {
    let mut n = 0u64;
    for_each_triangle(g, |_| n += 1);
    n
}

/// An order-independent digest of the triangle set of `g`
/// (wrapping sum of per-triangle digests), used to compare against the sets
/// emitted by the external-memory algorithms without materialising both.
pub fn triangle_checksum(g: &Graph) -> (u64, u64) {
    let mut count = 0u64;
    let mut sum = 0u64;
    for_each_triangle(g, |t| {
        count += 1;
        sum = sum.wrapping_add(t.digest());
    });
    (count, sum)
}

/// Calls `f` once for every triangle of `g`.
pub fn for_each_triangle<F: FnMut(Triangle)>(g: &Graph, mut f: F) {
    let deg = g.degrees();
    let n = g.vertex_count();
    // Total order: (degree, id) — the same order the external algorithms use.
    let rank_of = |v: VertexId| (deg[v as usize], v);

    // Oriented adjacency: out-neighbours that come later in the order.
    let mut adj: Vec<Vec<VertexId>> = vec![Vec::new(); n];
    for e in g.edges() {
        let (a, b) = (e.u, e.v);
        if rank_of(a) < rank_of(b) {
            adj[a as usize].push(b);
        } else {
            adj[b as usize].push(a);
        }
    }
    for l in &mut adj {
        l.sort_unstable();
    }

    // Index of each vertex's out-neighbour list for O(1) membership checks.
    let mut pos: HashMap<(VertexId, VertexId), ()> = HashMap::new();
    for (u, l) in adj.iter().enumerate() {
        for &w in l {
            pos.insert((u as VertexId, w), ());
        }
    }

    for (u, l) in adj.iter().enumerate() {
        for (i, &v) in l.iter().enumerate() {
            for &w in &l[i + 1..] {
                // u precedes both v and w; the triangle closes iff v–w is an
                // edge (in either orientation).
                if pos.contains_key(&(v, w)) || pos.contains_key(&(w, v)) {
                    f(Triangle::new(u as VertexId, v, w));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::Edge;

    #[test]
    fn counts_known_small_graphs() {
        assert_eq!(count_triangles(&generators::clique(3)), 1);
        assert_eq!(count_triangles(&generators::clique(4)), 4);
        assert_eq!(count_triangles(&generators::clique(7)), 35);
        assert_eq!(count_triangles(&generators::path(10)), 0);
        assert_eq!(count_triangles(&generators::complete_bipartite(5, 5)), 0);
    }

    #[test]
    fn enumerates_each_triangle_once() {
        let g = generators::erdos_renyi(60, 400, 123);
        let tris = enumerate_triangles(&g);
        let set: std::collections::HashSet<Triangle> = tris.iter().copied().collect();
        assert_eq!(set.len(), tris.len(), "no duplicates");
        assert_eq!(tris.len() as u64, count_triangles(&g));
        // Every emitted triangle's edges really exist.
        let edges: std::collections::HashSet<Edge> = g.edges().iter().copied().collect();
        for t in &tris {
            for e in t.edges() {
                assert!(edges.contains(&e), "phantom edge {e:?} in {t:?}");
            }
        }
    }

    #[test]
    fn brute_force_cross_check_on_tiny_graphs() {
        // Compare against an O(V^3) brute force on a handful of random graphs.
        for seed in 0..5u64 {
            let g = generators::erdos_renyi(18, 60, seed);
            let edges: std::collections::HashSet<Edge> = g.edges().iter().copied().collect();
            let mut brute = 0u64;
            let n = g.vertex_count() as u32;
            for a in 0..n {
                for b in (a + 1)..n {
                    if !edges.contains(&Edge::new(a, b)) {
                        continue;
                    }
                    for c in (b + 1)..n {
                        if edges.contains(&Edge::new(a, c)) && edges.contains(&Edge::new(b, c)) {
                            brute += 1;
                        }
                    }
                }
            }
            assert_eq!(count_triangles(&g), brute, "seed {seed}");
        }
    }

    #[test]
    fn checksum_is_order_independent_and_discriminating() {
        let g = generators::erdos_renyi(40, 200, 5);
        let (c1, s1) = triangle_checksum(&g);
        let (c2, s2) = triangle_checksum(&g);
        assert_eq!((c1, s1), (c2, s2));
        let g2 = generators::erdos_renyi(40, 200, 6);
        let (c3, s3) = triangle_checksum(&g2);
        assert!(
            c1 != c3 || s1 != s3,
            "different graphs should differ in checksum"
        );
    }

    #[test]
    fn checksum_counts_match_enumeration() {
        let g = generators::chung_lu_power_law(300, 1200, 2.3, 8);
        let (count, _) = triangle_checksum(&g);
        assert_eq!(count, enumerate_triangles(&g).len() as u64);
    }
}
