//! Synthetic graph generators used by the tests, examples and experiments.
//!
//! Each generator is deterministic in its `seed`, so every experiment in
//! EXPERIMENTS.md is exactly reproducible.

use rand::prelude::*;
use std::collections::HashSet;

use crate::{Edge, Graph};

/// Erdős–Rényi `G(n, m)`: `m` distinct edges drawn uniformly at random among
/// `n` vertices.
///
/// # Panics
///
/// Panics if `m` exceeds the number of possible edges `n(n−1)/2`.
pub fn erdos_renyi(n: usize, m: usize, seed: u64) -> Graph {
    let possible = n * n.saturating_sub(1) / 2;
    assert!(m <= possible, "cannot place {m} edges among {n} vertices");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut set: HashSet<Edge> = HashSet::with_capacity(m * 2);
    // Dense case: sample by shuffling all pairs to avoid rejection stalls.
    if possible <= 4 * m && possible <= 2_000_000 {
        let mut all: Vec<Edge> = Vec::with_capacity(possible);
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                all.push(Edge::new(u, v));
            }
        }
        all.shuffle(&mut rng);
        all.truncate(m);
        return Graph::from_edges(n, all);
    }
    while set.len() < m {
        let a = rng.random_range(0..n as u32);
        let b = rng.random_range(0..n as u32);
        if a != b {
            set.insert(Edge::new(a, b));
        }
    }
    Graph::from_edges(n, set)
}

/// The complete graph on `n` vertices: `E = n(n−1)/2` edges and
/// `t = C(n,3) = Θ(E^{3/2})` triangles — the paper's worst case, used to
/// exercise the lower bound (Theorem 3) at its binding point.
pub fn clique(n: usize) -> Graph {
    let mut edges = Vec::with_capacity(n * (n - 1) / 2);
    for u in 0..n as u32 {
        for v in (u + 1)..n as u32 {
            edges.push(Edge::new(u, v));
        }
    }
    Graph::from_edges(n, edges)
}

/// A disjoint union of `k` cliques of `size` vertices each — many triangles
/// but bounded degree, a useful contrast to the single clique.
pub fn clique_union(k: usize, size: usize) -> Graph {
    let mut edges = Vec::new();
    for c in 0..k {
        let base = (c * size) as u32;
        for u in 0..size as u32 {
            for v in (u + 1)..size as u32 {
                edges.push(Edge::new(base + u, base + v));
            }
        }
    }
    Graph::from_edges(k * size, edges)
}

/// A random tripartite graph with parts of sizes `na`, `nb`, `nc` and edge
/// probability `p` between every pair of parts. Triangles correspond
/// one-to-one to joinable triples — the abstract version of the paper's
/// database example.
pub fn tripartite(na: usize, nb: usize, nc: usize, p: f64, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let a0 = 0u32;
    let b0 = na as u32;
    let c0 = (na + nb) as u32;
    let mut edges = Vec::new();
    for i in 0..na as u32 {
        for j in 0..nb as u32 {
            if rng.random_bool(p) {
                edges.push(Edge::new(a0 + i, b0 + j));
            }
        }
    }
    for j in 0..nb as u32 {
        for k in 0..nc as u32 {
            if rng.random_bool(p) {
                edges.push(Edge::new(b0 + j, c0 + k));
            }
        }
    }
    for i in 0..na as u32 {
        for k in 0..nc as u32 {
            if rng.random_bool(p) {
                edges.push(Edge::new(a0 + i, c0 + k));
            }
        }
    }
    Graph::from_edges(na + nb + nc, edges)
}

/// The paper's motivating database scenario, §1: a `Sells(salesperson,
/// brand, productType)` relation in 5th normal form, decomposed into three
/// two-attribute tables. Each of the `groups` draws a random set of
/// salespeople `S`, brands `B` and product types `T` and every pair in
/// `S×B ∪ B×T ∪ S×T` becomes an edge; the triangles of the union are exactly
/// the rows of the reconstructed three-way join.
///
/// Returns the graph together with the vertex-id offsets of the brand and
/// product-type columns, so examples can decode emitted triangles back into
/// `(salesperson, brand, productType)` rows.
pub fn sells_join(
    salespeople: usize,
    brands: usize,
    product_types: usize,
    groups: usize,
    group_size: usize,
    seed: u64,
) -> (Graph, u32, u32) {
    let mut rng = StdRng::seed_from_u64(seed);
    let brand_base = salespeople as u32;
    let type_base = (salespeople + brands) as u32;
    let mut edges: HashSet<Edge> = HashSet::new();
    for _ in 0..groups {
        let pick = |rng: &mut StdRng, n: usize, base: u32, k: usize| -> Vec<u32> {
            let mut chosen = HashSet::new();
            let k = k.min(n);
            while chosen.len() < k {
                chosen.insert(base + rng.random_range(0..n as u32));
            }
            chosen.into_iter().collect()
        };
        let s = pick(&mut rng, salespeople, 0, group_size);
        let b = pick(&mut rng, brands, brand_base, group_size);
        let t = pick(&mut rng, product_types, type_base, group_size);
        for &x in &s {
            for &y in &b {
                edges.insert(Edge::new(x, y));
            }
        }
        for &y in &b {
            for &z in &t {
                edges.insert(Edge::new(y, z));
            }
        }
        for &x in &s {
            for &z in &t {
                edges.insert(Edge::new(x, z));
            }
        }
    }
    (
        Graph::from_edges(salespeople + brands + product_types, edges),
        brand_base,
        type_base,
    )
}

/// A Chung–Lu random graph with a power-law expected degree sequence of
/// exponent `gamma` and roughly `m` edges — a stand-in for the social
/// networks the paper's introduction cites as a motivating application.
pub fn chung_lu_power_law(n: usize, m: usize, gamma: f64, seed: u64) -> Graph {
    assert!(gamma > 1.0, "power-law exponent must exceed 1");
    let mut rng = StdRng::seed_from_u64(seed);
    // Expected-degree weights w_i ∝ (i+1)^{-1/(gamma-1)}.
    let weights: Vec<f64> = (0..n)
        .map(|i| ((i + 1) as f64).powf(-1.0 / (gamma - 1.0)))
        .collect();
    let total: f64 = weights.iter().sum();
    // Cumulative distribution for weighted vertex sampling.
    let mut cdf = Vec::with_capacity(n);
    let mut acc = 0.0;
    for w in &weights {
        acc += w / total;
        cdf.push(acc);
    }
    let sample = |rng: &mut StdRng| -> u32 {
        let x: f64 = rng.random();
        match cdf.binary_search_by(|p| p.partial_cmp(&x).unwrap()) {
            Ok(i) | Err(i) => (i.min(n - 1)) as u32,
        }
    };
    let mut set: HashSet<Edge> = HashSet::with_capacity(m * 2);
    let mut attempts = 0usize;
    let max_attempts = m * 50;
    while set.len() < m && attempts < max_attempts {
        attempts += 1;
        let a = sample(&mut rng);
        let b = sample(&mut rng);
        if a != b {
            set.insert(Edge::new(a, b));
        }
    }
    Graph::from_edges(n, set)
}

/// A recursive-matrix (RMAT) graph with `2^scale` vertices and `m` distinct
/// edges, using partition probabilities `(a, b, c)` (with `d = 1 − a − b − c`).
/// The classic skewed parameters `(0.57, 0.19, 0.19)` give a heavy-tailed
/// degree distribution similar to web and social graphs.
pub fn rmat(scale: u32, m: usize, a: f64, b: f64, c: f64, seed: u64) -> Graph {
    assert!(a + b + c <= 1.0 + 1e-9, "rmat probabilities exceed 1");
    let n = 1usize << scale;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut set: HashSet<Edge> = HashSet::with_capacity(m * 2);
    let mut attempts = 0usize;
    let max_attempts = m * 100;
    while set.len() < m && attempts < max_attempts {
        attempts += 1;
        let (mut u, mut v) = (0usize, 0usize);
        for _ in 0..scale {
            let r: f64 = rng.random();
            let (du, dv) = if r < a {
                (0, 0)
            } else if r < a + b {
                (0, 1)
            } else if r < a + b + c {
                (1, 0)
            } else {
                (1, 1)
            };
            u = (u << 1) | du;
            v = (v << 1) | dv;
        }
        if u != v {
            set.insert(Edge::new(u as u32, v as u32));
        }
    }
    Graph::from_edges(n, set)
}

/// A star `K_{1,n−1}`: one centre adjacent to everything. Triangle-free, with
/// one maximally high-degree vertex — stresses the high-degree handling
/// (Lemma 1 path) of every algorithm.
pub fn star(n: usize) -> Graph {
    assert!(n >= 2);
    Graph::from_edges(n, (1..n as u32).map(|v| Edge::new(0, v)))
}

/// A simple path on `n` vertices (triangle-free).
pub fn path(n: usize) -> Graph {
    Graph::from_edges(n, (0..n as u32 - 1).map(|v| Edge::new(v, v + 1)))
}

/// A simple cycle on `n ≥ 3` vertices (triangle-free for `n > 3`).
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3);
    let mut edges: Vec<Edge> = (0..n as u32 - 1).map(|v| Edge::new(v, v + 1)).collect();
    edges.push(Edge::new(n as u32 - 1, 0));
    Graph::from_edges(n, edges)
}

/// The complete bipartite graph `K_{a,b}` — dense yet triangle-free, a
/// worst case for wedge-based algorithms that the output-sensitive bounds
/// must still handle gracefully.
pub fn complete_bipartite(a: usize, b: usize) -> Graph {
    let mut edges = Vec::with_capacity(a * b);
    for i in 0..a as u32 {
        for j in 0..b as u32 {
            edges.push(Edge::new(i, a as u32 + j));
        }
    }
    Graph::from_edges(a + b, edges)
}

/// A "lollipop": a clique of `k` vertices with a path of `p` vertices
/// attached — mixes a triangle-dense core with a triangle-free tail.
pub fn lollipop(k: usize, p: usize) -> Graph {
    let mut edges: Vec<Edge> = clique(k).edges().to_vec();
    let mut prev = (k - 1) as u32;
    for i in 0..p as u32 {
        let nxt = k as u32 + i;
        edges.push(Edge::new(prev, nxt));
        prev = nxt;
    }
    Graph::from_edges(k + p, edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive;

    #[test]
    fn erdos_renyi_has_exact_edge_count_and_is_simple() {
        for &(n, m) in &[(50usize, 100usize), (10, 45), (1000, 5000)] {
            let g = erdos_renyi(n, m, 3);
            assert_eq!(g.edge_count(), m);
            g.validate().unwrap();
        }
    }

    #[test]
    fn erdos_renyi_is_deterministic_in_seed() {
        assert_eq!(erdos_renyi(100, 400, 9), erdos_renyi(100, 400, 9));
        assert_ne!(erdos_renyi(100, 400, 9), erdos_renyi(100, 400, 10));
    }

    #[test]
    fn clique_counts() {
        let g = clique(10);
        assert_eq!(g.edge_count(), 45);
        assert_eq!(naive::count_triangles(&g), 120); // C(10,3)
        let u = clique_union(3, 4);
        assert_eq!(u.edge_count(), 3 * 6);
        assert_eq!(naive::count_triangles(&u), 3 * 4);
    }

    #[test]
    fn tripartite_triangles_are_cross_part() {
        let g = tripartite(10, 10, 10, 0.5, 1);
        g.validate().unwrap();
        for t in naive::enumerate_triangles(&g) {
            // One vertex per part: with parts [0,10), [10,20), [20,30).
            let parts: std::collections::HashSet<u32> =
                [t.a / 10, t.b / 10, t.c / 10].into_iter().collect();
            assert_eq!(parts.len(), 3, "triangle {t:?} not cross-part");
        }
    }

    #[test]
    fn sells_join_triangles_are_join_rows() {
        let (g, brand_base, type_base) = sells_join(20, 10, 15, 5, 4, 7);
        g.validate().unwrap();
        let tris = naive::enumerate_triangles(&g);
        assert!(!tris.is_empty(), "join scenario should produce rows");
        for t in tris {
            let kinds = [t.a, t.b, t.c]
                .iter()
                .map(|&v| {
                    if v < brand_base {
                        0
                    } else if v < type_base {
                        1
                    } else {
                        2
                    }
                })
                .collect::<std::collections::HashSet<_>>();
            assert_eq!(kinds.len(), 3, "a join row must have one value per column");
        }
    }

    #[test]
    fn power_law_and_rmat_are_simple_and_skewed() {
        let g = chung_lu_power_law(2000, 6000, 2.5, 5);
        g.validate().unwrap();
        assert!(g.edge_count() > 4000);
        assert!(g.max_degree() > 50, "power-law graph should have hubs");

        let r = rmat(10, 4000, 0.57, 0.19, 0.19, 5);
        r.validate().unwrap();
        assert!(r.edge_count() > 3000);
        assert!(r.max_degree() > 30, "rmat graph should have hubs");
    }

    #[test]
    fn degenerate_families_are_triangle_free() {
        assert_eq!(naive::count_triangles(&star(50)), 0);
        assert_eq!(naive::count_triangles(&path(50)), 0);
        assert_eq!(naive::count_triangles(&cycle(50)), 0);
        assert_eq!(naive::count_triangles(&complete_bipartite(10, 12)), 0);
        assert_eq!(naive::count_triangles(&cycle(3)), 1);
    }

    #[test]
    fn lollipop_mixes_core_and_tail() {
        let g = lollipop(6, 10);
        assert_eq!(naive::count_triangles(&g), 20); // C(6,3)
        assert_eq!(g.vertex_count(), 16);
    }
}
