//! Core graph types and the canonical degree-order preprocessing.

use emsim::Record;

/// A vertex identifier. The paper assumes vertices are totally ordered by
/// degree; [`Graph::degree_ordered`] renumbers vertices so that the integer
/// order *is* that degree order, which keeps every later comparison a plain
/// integer comparison.
pub type VertexId = u32;

/// An undirected edge `{u, v}` stored canonically with `u < v`.
///
/// Matching the paper's accounting, an edge occupies exactly one machine word
/// when stored in simulated external memory (two packed 32-bit endpoints).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Edge {
    /// The smaller endpoint.
    pub u: VertexId,
    /// The larger endpoint.
    pub v: VertexId,
}

impl Edge {
    /// Creates the canonical edge for the unordered pair `{a, b}`.
    ///
    /// # Panics
    ///
    /// Panics if `a == b` (self loops are not allowed in a simple graph).
    pub fn new(a: VertexId, b: VertexId) -> Self {
        assert_ne!(a, b, "self loop {a}");
        if a < b {
            Self { u: a, v: b }
        } else {
            Self { u: b, v: a }
        }
    }

    /// Whether `x` is one of the endpoints.
    pub fn touches(&self, x: VertexId) -> bool {
        self.u == x || self.v == x
    }

    /// The endpoint different from `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not an endpoint.
    pub fn other(&self, x: VertexId) -> VertexId {
        if self.u == x {
            self.v
        } else if self.v == x {
            self.u
        } else {
            panic!("vertex {x} is not an endpoint of {self:?}")
        }
    }
}

impl Record for Edge {
    const WORDS: usize = 1;

    fn encode(&self, out: &mut [u64]) {
        out[0] = ((self.u as u64) << 32) | self.v as u64;
    }

    fn decode(words: &[u64]) -> Self {
        Edge {
            u: (words[0] >> 32) as u32,
            v: (words[0] & 0xffff_ffff) as u32,
        }
    }
}

/// A triangle `{a, b, c}` stored with `a < b < c`.
///
/// In the paper's terminology `a` is the *cone vertex* and `{b, c}` the
/// *pivot edge*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Triangle {
    /// Smallest vertex (the cone vertex).
    pub a: VertexId,
    /// Middle vertex.
    pub b: VertexId,
    /// Largest vertex.
    pub c: VertexId,
}

impl Triangle {
    /// Creates the canonical triangle for the vertex set `{x, y, z}`.
    ///
    /// # Panics
    ///
    /// Panics if two of the vertices coincide.
    pub fn new(x: VertexId, y: VertexId, z: VertexId) -> Self {
        let mut t = [x, y, z];
        t.sort_unstable();
        assert!(t[0] != t[1] && t[1] != t[2], "degenerate triangle {t:?}");
        Self {
            a: t[0],
            b: t[1],
            c: t[2],
        }
    }

    /// The pivot edge `{b, c}` (the edge between the two largest vertices).
    pub fn pivot(&self) -> Edge {
        Edge::new(self.b, self.c)
    }

    /// The cone vertex `a` (the smallest vertex).
    pub fn cone(&self) -> VertexId {
        self.a
    }

    /// The three edges of the triangle.
    pub fn edges(&self) -> [Edge; 3] {
        [
            Edge::new(self.a, self.b),
            Edge::new(self.a, self.c),
            Edge::new(self.b, self.c),
        ]
    }

    /// A 64-bit mixing of the triangle used for order-independent checksums.
    pub fn digest(&self) -> u64 {
        let mut x = (self.a as u64) << 42 ^ (self.b as u64) << 21 ^ self.c as u64;
        // splitmix64 finaliser
        x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^ (x >> 31)
    }
}

/// An error produced by [`Graph::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An endpoint is outside `[0, num_vertices)`.
    VertexOutOfRange(VertexId),
    /// The same edge appears twice.
    DuplicateEdge(Edge),
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::VertexOutOfRange(v) => write!(f, "vertex {v} out of range"),
            GraphError::DuplicateEdge(e) => write!(f, "duplicate edge {{{}, {}}}", e.u, e.v),
        }
    }
}

impl std::error::Error for GraphError {}

/// A simple undirected graph held in memory as an edge list.
///
/// This type is the *input specification*; the algorithms copy it into
/// simulated external memory before running, so its in-core existence does
/// not let any algorithm cheat the I/O accounting.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Graph {
    num_vertices: usize,
    edges: Vec<Edge>,
}

impl Graph {
    /// Creates a graph with `num_vertices` isolated vertices.
    pub fn empty(num_vertices: usize) -> Self {
        Self {
            num_vertices,
            edges: Vec::new(),
        }
    }

    /// Builds a graph from an edge list, deduplicating and canonicalising the
    /// edges. Vertex count is taken as `max endpoint + 1` unless
    /// `num_vertices` is larger.
    pub fn from_edges(num_vertices: usize, edges: impl IntoIterator<Item = Edge>) -> Self {
        let mut edges: Vec<Edge> = edges.into_iter().collect();
        edges.sort_unstable();
        edges.dedup();
        let max_v = edges.iter().map(|e| e.v as usize + 1).max().unwrap_or(0);
        Self {
            num_vertices: num_vertices.max(max_v),
            edges,
        }
    }

    /// Adds edge `{a, b}` (not deduplicated; call [`Graph::from_edges`] or
    /// validate afterwards for strictness).
    pub fn add_edge(&mut self, a: VertexId, b: VertexId) {
        let e = Edge::new(a, b);
        self.num_vertices = self.num_vertices.max(e.v as usize + 1);
        self.edges.push(e);
    }

    /// Number of vertices `V` (including isolated ones).
    pub fn vertex_count(&self) -> usize {
        self.num_vertices
    }

    /// Number of edges `E`.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The edges, in whatever order they are currently stored.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Per-vertex degrees.
    pub fn degrees(&self) -> Vec<u32> {
        let mut deg = vec![0u32; self.num_vertices];
        for e in &self.edges {
            deg[e.u as usize] += 1;
            deg[e.v as usize] += 1;
        }
        deg
    }

    /// Maximum degree.
    pub fn max_degree(&self) -> u32 {
        self.degrees().into_iter().max().unwrap_or(0)
    }

    /// Checks that the graph is simple: endpoints in range and no duplicate
    /// edges. (Self loops are impossible by construction of [`Edge`].)
    pub fn validate(&self) -> Result<(), GraphError> {
        let mut seen = std::collections::HashSet::with_capacity(self.edges.len());
        for e in &self.edges {
            if e.v as usize >= self.num_vertices {
                return Err(GraphError::VertexOutOfRange(e.v));
            }
            if !seen.insert(*e) {
                return Err(GraphError::DuplicateEdge(*e));
            }
        }
        Ok(())
    }

    /// Returns the paper's canonical form of the graph: vertices renumbered
    /// so that integer order equals the degree order (ties broken by original
    /// id — an "arbitrary but consistent" tie-break, as the paper requires),
    /// edges re-canonicalised and sorted lexicographically.
    ///
    /// Also returns the mapping `new id → old id` so callers can translate
    /// emitted triangles back to the original vertex names.
    pub fn degree_ordered(&self) -> (Graph, Vec<VertexId>) {
        let deg = self.degrees();
        let mut order: Vec<VertexId> = (0..self.num_vertices as u32).collect();
        order.sort_unstable_by_key(|&v| (deg[v as usize], v));
        // order[rank] = old id; build inverse: old id -> rank.
        let mut rank = vec![0u32; self.num_vertices];
        for (r, &old) in order.iter().enumerate() {
            rank[old as usize] = r as u32;
        }
        let mut new_edges: Vec<Edge> = self
            .edges
            .iter()
            .map(|e| Edge::new(rank[e.u as usize], rank[e.v as usize]))
            .collect();
        new_edges.sort_unstable();
        new_edges.dedup();
        (
            Graph {
                num_vertices: self.num_vertices,
                edges: new_edges,
            },
            order,
        )
    }

    /// An upper bound on the number of triangles, `E^{3/2}` (attained by the
    /// clique up to constants) — handy for sizing buffers in tests.
    pub fn triangle_upper_bound(&self) -> u64 {
        (self.edges.len() as f64).powf(1.5).ceil() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_canonicalisation() {
        assert_eq!(Edge::new(5, 2), Edge { u: 2, v: 5 });
        assert_eq!(Edge::new(2, 5), Edge { u: 2, v: 5 });
        assert!(Edge::new(1, 2).touches(1));
        assert_eq!(Edge::new(1, 2).other(1), 2);
        assert_eq!(Edge::new(1, 2).other(2), 1);
    }

    #[test]
    #[should_panic]
    fn self_loop_rejected() {
        let _ = Edge::new(3, 3);
    }

    #[test]
    fn edge_record_roundtrip_preserves_order() {
        let e = Edge::new(70_000, 3);
        let mut w = [0u64];
        e.encode(&mut w);
        assert_eq!(Edge::decode(&w), e);
        // Packed order equals lexicographic order.
        let mut w2 = [0u64];
        Edge::new(4, 1_000_000).encode(&mut w2);
        assert!(w[0] < w2[0]);
    }

    #[test]
    fn triangle_canonicalisation_and_parts() {
        let t = Triangle::new(9, 2, 5);
        assert_eq!((t.a, t.b, t.c), (2, 5, 9));
        assert_eq!(t.cone(), 2);
        assert_eq!(t.pivot(), Edge::new(5, 9));
        assert_eq!(t.edges().len(), 3);
        assert_ne!(t.digest(), Triangle::new(2, 5, 10).digest());
    }

    #[test]
    #[should_panic]
    fn degenerate_triangle_rejected() {
        let _ = Triangle::new(1, 1, 2);
    }

    #[test]
    fn graph_construction_and_validation() {
        let mut g = Graph::empty(3);
        g.add_edge(0, 1);
        g.add_edge(2, 1);
        assert_eq!(g.vertex_count(), 3);
        assert_eq!(g.edge_count(), 2);
        g.validate().unwrap();
        g.add_edge(0, 1);
        assert!(matches!(g.validate(), Err(GraphError::DuplicateEdge(_))));
    }

    #[test]
    fn from_edges_dedups() {
        let g = Graph::from_edges(0, vec![Edge::new(1, 0), Edge::new(0, 1), Edge::new(1, 2)]);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.vertex_count(), 3);
        g.validate().unwrap();
    }

    #[test]
    fn degrees_and_max_degree() {
        let g = Graph::from_edges(
            5,
            vec![
                Edge::new(0, 1),
                Edge::new(0, 2),
                Edge::new(0, 3),
                Edge::new(1, 2),
            ],
        );
        assert_eq!(g.degrees(), vec![3, 2, 2, 1, 0]);
        assert_eq!(g.max_degree(), 3);
    }

    #[test]
    fn degree_ordering_puts_low_degree_first_and_preserves_structure() {
        // Star with centre 0 plus a pendant triangle: centre must be renamed
        // to the largest id.
        let g = Graph::from_edges(
            6,
            vec![
                Edge::new(0, 1),
                Edge::new(0, 2),
                Edge::new(0, 3),
                Edge::new(0, 4),
                Edge::new(0, 5),
                Edge::new(4, 5),
            ],
        );
        let (ordered, back) = g.degree_ordered();
        assert_eq!(ordered.edge_count(), g.edge_count());
        assert_eq!(ordered.vertex_count(), g.vertex_count());
        ordered.validate().unwrap();
        // The old centre (vertex 0, degree 5) must receive the largest rank.
        let centre_rank = back.iter().position(|&old| old == 0).unwrap();
        assert_eq!(centre_rank, g.vertex_count() - 1);
        // Degrees are non-decreasing in the new numbering.
        let deg = ordered.degrees();
        let mut sorted = deg.clone();
        sorted.sort_unstable();
        assert_eq!(deg, sorted);
    }

    #[test]
    fn degree_ordering_is_a_permutation() {
        let g = Graph::from_edges(
            4,
            vec![
                Edge::new(0, 1),
                Edge::new(1, 2),
                Edge::new(2, 3),
                Edge::new(0, 3),
            ],
        );
        let (_, back) = g.degree_ordered();
        let mut sorted = back.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3]);
    }
}
